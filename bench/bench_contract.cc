// Contract-checking overhead sweep.
//
// The contract checker (JobSpec::check_contracts) proves the user-supplied
// comparators, partitioner, combiner, and reducer obey the MapReduce
// execution contract while the job runs — a broken comparator becomes a
// structured job failure instead of silently wrong (or nondeterministic)
// join output. The cost knob is JobSpec::contract_sample_every: every kth
// emitted key enters the axiom pool. This bench sweeps the sampling rate
// on the full self-join pipeline (BTO-PK-BRJ) and reports
//
//   * the simulated check seconds and the overhead fraction per rate —
//     the default rate (every 16th key) must stay under 10% overhead,
//     the bench FAILS otherwise;
//   * byte-identity: every checked run must match the checks-off golden
//     output exactly (checks may only meter, never change answers — the
//     bench FAILS otherwise).
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_contract.json at the repo root and smoke-tested by CI).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace fj;

constexpr uint32_t kDefaultSampleEvery = 16;  // JobSpec default
constexpr double kMaxDefaultOverhead = 0.10;

struct Row {
  std::string label;
  bool check = false;
  uint32_t sample_every = 0;  // meaningless when !check
  double total_seconds = 0;
  double contract_seconds = 0;
  double overhead_fraction = 0;  // contract / (total - contract)
  uint64_t contract_checks = 0;
  bool output_identical = false;
};

struct SweepResult {
  std::vector<Row> rows;
  size_t records = 0;
};

void Accumulate(const join::JoinRunResult& result,
                const mr::ClusterConfig& cluster, Row* row) {
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) {
      auto simulated = mr::SimulateJob(job, cluster);
      row->total_seconds += simulated.total();
      row->contract_seconds += simulated.contract_seconds;
      row->contract_checks += job.contract_checks;
    }
  }
  const double base = row->total_seconds - row->contract_seconds;
  row->overhead_fraction = base > 0 ? row->contract_seconds / base : 0.0;
}

Result<SweepResult> RunSweep(size_t base, size_t factor, size_t nodes,
                             double work_scale) {
  SweepResult sweep;
  mr::Dfs dfs;
  sweep.records = bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  int run_id = 0;
  std::vector<std::string> golden;
  auto run_one = [&](const std::string& label, bool check,
                     uint32_t sample_every) -> Status {
    auto config = bench::MakeConfig(bench::PaperCombos()[1], nodes);
    config.check_contracts = check;
    if (check) config.contract_sample_every = sample_every;

    Row row;
    row.label = label;
    row.check = check;
    row.sample_every = sample_every;

    FJ_ASSIGN_OR_RETURN(
        auto result,
        join::RunSelfJoin(&dfs, "dblp", "c" + std::to_string(run_id++),
                          config));
    Accumulate(result, cluster, &row);

    FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines,
                        dfs.ReadFile(result.output_file));
    if (golden.empty()) {
      golden = *lines;  // the checks-off baseline runs first
      row.output_identical = true;
    } else {
      row.output_identical = *lines == golden;
    }
    sweep.rows.push_back(std::move(row));
    return Status::OK();
  };

  FJ_RETURN_IF_ERROR(run_one("off", false, 0));
  for (uint32_t k : {64u, kDefaultSampleEvery, 4u, 1u}) {
    FJ_RETURN_IF_ERROR(run_one("every-" + std::to_string(k), true, k));
  }
  return sweep;
}

void PrintTable(const SweepResult& sweep) {
  std::printf("%-10s %7s %8s %9s %9s %12s %6s\n", "plan", "sample", "total",
              "contract", "overhead", "checks", "same");
  for (const Row& row : sweep.rows) {
    std::printf("%-10s %7s %7.1fs %8.2fs %8.2f%% %12llu %6s\n",
                row.label.c_str(),
                row.check ? std::to_string(row.sample_every).c_str() : "-",
                row.total_seconds, row.contract_seconds,
                100.0 * row.overhead_fraction,
                static_cast<unsigned long long>(row.contract_checks),
                row.output_identical ? "yes" : "NO");
  }
  std::printf(
      "\npaper-shape checks:\n"
      "  check cost scales with the sampling rate (every key >> every\n"
      "  16th key), stays under %.0f%% of simulated time at the default\n"
      "  rate, and never changes a byte of the join output.\n",
      100.0 * kMaxDefaultOverhead);
}

int WriteJson(const SweepResult& sweep, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_contract\",\n"
      << "  \"records\": " << sweep.records << ",\n  \"plans\": [\n";
  bool first = true;
  for (const Row& row : sweep.rows) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"plan\": \"" << row.label << "\", \"check_contracts\": "
        << (row.check ? "true" : "false") << ", \"sample_every\": "
        << row.sample_every << ", \"simulated_seconds\": "
        << row.total_seconds << ", \"contract_seconds\": "
        << row.contract_seconds << ", \"contract_overhead_fraction\": "
        << row.overhead_fraction << ", \"contract_checks\": "
        << row.contract_checks << ", \"output_identical\": "
        << (row.output_identical ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (%zu plans)\n", path.c_str(), sweep.rows.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "contract-check sweep",
      "comparator/partitioner/combiner contract checking overhead",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO-PK-BRJ, " + std::to_string(nodes) +
          " nodes");

  auto sweep = RunSweep(base, factor, nodes, work_scale);
  if (!sweep.ok()) {
    std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : sweep->rows) {
    if (!row.output_identical) {
      std::fprintf(stderr,
                   "FATAL: %s changed the join output (checks must only "
                   "meter, never alter results)\n",
                   row.label.c_str());
      return 1;
    }
    if (row.check && row.sample_every == kDefaultSampleEvery &&
        row.overhead_fraction > kMaxDefaultOverhead) {
      std::fprintf(stderr,
                   "FATAL: %s overhead %.1f%% exceeds the %.0f%% budget at "
                   "the default sampling rate\n",
                   row.label.c_str(), 100.0 * row.overhead_fraction,
                   100.0 * kMaxDefaultOverhead);
      return 1;
    }
  }
  PrintTable(*sweep);
  if (!json_path.empty()) return WriteJson(*sweep, json_path);
  return 0;
}
