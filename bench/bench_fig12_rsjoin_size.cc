// Figure 12: R-S join running time vs dataset size.
//
// Paper setup: DBLP×n ⋈ CITESEERX×n (n = 5..25) on 10 nodes. Stage 1 runs
// on DBLP only; stage 3 scans both datasets, and the much larger
// CITESEERX records make it the dominant stage at small n. At ×25 the
// OPRJ variant ran out of memory loading the RID-pair list, leaving BRJ
// as the only option.
//
// Here: base datasets with the paper's record-size ratio, factors 1..5;
// the OPRJ per-task memory budget is set so the largest factor exceeds it.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t r_base = flags.GetInt("r_base", 1500);
  size_t s_base = flags.GetInt("s_base", 1200);
  size_t max_factor = flags.GetInt("max_factor", 5);
  size_t nodes = flags.GetInt("nodes", 10);
  size_t reps = flags.GetInt("reps", 3);
  uint64_t oprj_limit = flags.GetInt("oprj_limit", 0);  // 0 = auto
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Figure 12", "R-S join running time vs dataset size",
      "DBLP-like " + std::to_string(r_base) + " x n  JOIN  CITESEERX-like " +
          std::to_string(s_base) + " x n, n = 1.." +
          std::to_string(max_factor) + ", " + std::to_string(nodes) +
          " nodes");

  auto cluster = bench::MakeCluster(nodes, work_scale);
  std::printf("%-7s %-12s %9s %9s %9s %9s\n", "factor", "combo", "stage1",
              "stage2", "stage3", "total");

  bool oprj_oom_seen = false;
  for (size_t factor = 1; factor <= max_factor; ++factor) {
    mr::Dfs dfs;
    bench::PrepareRSData(&dfs, "dblp", "citeseerx", r_base, s_base, factor,
                         /*seed=*/42);
    if (oprj_limit == 0) {
      // Auto budget: sized so only the largest factor's RID-pair list
      // exceeds it — mirroring the paper's out-of-memory point at x25.
      oprj_limit = 50 * r_base * (max_factor - 1);
    }
    for (const auto& combo : bench::PaperCombos()) {
      auto config = bench::MakeConfig(combo, nodes);
      config.oprj_memory_limit_bytes = oprj_limit;
      auto run = bench::RunRSRepeated(
          &dfs, "dblp", "citeseerx",
          std::string("f12-") + combo.name + "-" + std::to_string(factor),
          config, cluster, reps);
      if (!run.ok()) {
        if (run.status().code() == StatusCode::kResourceExhausted) {
          std::printf("%-7zu %-12s %9s (RID-pair list over the per-task "
                      "budget; paper: same at x25)\n",
                      factor, combo.name, "OOM");
          oprj_oom_seen = true;
        } else {
          std::printf("%-7zu %-12s FAILED: %s\n", factor, combo.name,
                      run.status().ToString().c_str());
        }
        continue;
      }
      std::printf("%-7zu %-12s %8.1fs %8.1fs %8.1fs %8.1fs\n", factor,
                  combo.name, run->times.stage1, run->times.stage2,
                  run->times.stage3, run->times.total());
    }
  }

  std::printf("\npaper-shape checks:\n");
  std::printf("  OPRJ hit its memory budget at the largest factor: %s "
              "(paper: yes, at x25)\n",
              oprj_oom_seen ? "yes" : "NO");
  return 0;
}
