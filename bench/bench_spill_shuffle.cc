// Memory-pressure sweep of the sort-spill-merge shuffle.
//
// Hadoop bounds every map task's in-memory sort buffer (io.sort.mb, 100 MB
// in the paper's era) and spills sorted runs to local disk whenever it
// fills; the reduce side k-way merges the runs (io.sort.factor at a time).
// This bench sweeps JobSpec::sort_buffer_bytes across the full self-join
// pipeline and reports how shrinking the buffer trades memory for local
// disk traffic and merge passes — while the join output stays byte
// identical (verified against the unbounded run every row).
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 3);
  size_t nodes = flags.GetInt("nodes", 10);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "sort-spill-merge sweep",
      "self-join under shrinking map-side sort buffers",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO-PK-BRJ, " + std::to_string(nodes) +
          " nodes");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  // The local workload is the paper's shape at laptop scale: per-task
  // intermediate volume is KBs, not Hadoop's 100 MB, so the sweep spans
  // "never binds" down to "a handful of pairs per run".
  const uint64_t kBudgets[] = {0, 16 << 10, 2 << 10, 512, 128};

  std::printf("%-10s %8s %10s %8s %10s %9s %9s %6s\n", "buffer", "spills",
              "spill KB", "merges", "peak KB", "spill", "total", "same");
  const std::vector<std::string>* golden = nullptr;
  int run_id = 0;
  for (uint64_t budget : kBudgets) {
    auto config = bench::MakeConfig(bench::PaperCombos()[1], nodes);
    config.sort_buffer_bytes = budget;
    auto run = bench::RunSelfRepeated(&dfs, "dblp",
                                      "s" + std::to_string(run_id++), config,
                                      cluster, reps);
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }

    uint64_t spills = 0, spilled_bytes = 0, merges = 0, peak = 0;
    double spill_seconds = 0;
    for (const auto& stage : run->last_run.stages) {
      for (const auto& job : stage.jobs) {
        spills += job.spill_count;
        spilled_bytes += job.spilled_bytes;
        merges += job.merge_passes;
        for (const auto& t : job.map_tasks) {
          peak = std::max(peak, t.peak_buffer_bytes);
        }
        spill_seconds += mr::SimulateJob(job, cluster).spill_seconds;
      }
    }

    auto lines = dfs.ReadFile(run->last_run.output_file);
    if (!lines.ok()) {
      std::fprintf(stderr, "%s\n", lines.status().ToString().c_str());
      return 1;
    }
    bool same = true;
    if (golden == nullptr) {
      golden = lines.value();  // budget 0 runs first: the reference
    } else {
      same = *lines.value() == *golden;
    }

    char label[32];
    if (budget == 0) {
      std::snprintf(label, sizeof label, "unbounded");
    } else if (budget >= 1024) {
      std::snprintf(label, sizeof label, "%llu KB",
                    static_cast<unsigned long long>(budget >> 10));
    } else {
      std::snprintf(label, sizeof label, "%llu B",
                    static_cast<unsigned long long>(budget));
    }
    std::printf("%-10s %8llu %10.1f %8llu %10.1f %8.2fs %8.1fs %6s\n", label,
                static_cast<unsigned long long>(spills),
                spilled_bytes / 1024.0,
                static_cast<unsigned long long>(merges), peak / 1024.0,
                spill_seconds, run->times.total(),
                same ? "yes" : "NO");
  }

  std::printf(
      "\npaper-shape checks:\n"
      "  smaller buffers -> more spills, more local-disk traffic, deeper\n"
      "  merges, bounded peak memory; the join result never changes.\n");
  return 0;
}
