#include "bench_util.h"

#include <cstdio>
#include <cstdlib>

namespace fj::bench {

const std::vector<Combo>& PaperCombos() {
  static const std::vector<Combo> combos = {
      {join::Stage1Algorithm::kBTO, join::Stage2Algorithm::kBK,
       join::Stage3Algorithm::kBRJ, "BTO-BK-BRJ"},
      {join::Stage1Algorithm::kBTO, join::Stage2Algorithm::kPK,
       join::Stage3Algorithm::kBRJ, "BTO-PK-BRJ"},
      {join::Stage1Algorithm::kBTO, join::Stage2Algorithm::kPK,
       join::Stage3Algorithm::kOPRJ, "BTO-PK-OPRJ"},
  };
  return combos;
}

join::JoinConfig MakeConfig(const Combo& combo, size_t nodes) {
  join::JoinConfig config;
  config.stage1 = combo.stage1;
  config.stage2 = combo.stage2;
  config.stage3 = combo.stage3;
  // The paper runs 4 map and 4 reduce tasks per node; give the map phase
  // two waves of work so LPT has something to schedule.
  config.num_map_tasks = nodes * 4 * 2;
  config.num_reduce_tasks = nodes * 4;
  return config;
}

mr::ClusterConfig MakeCluster(size_t nodes, double work_scale) {
  mr::ClusterConfig cluster;
  cluster.nodes = nodes;
  cluster.map_slots_per_node = 4;
  cluster.reduce_slots_per_node = 4;
  cluster.work_scale = work_scale;
  return cluster;
}

size_t PrepareSelfData(mr::Dfs* dfs, const std::string& name,
                       size_t base_records, size_t factor, uint64_t seed) {
  auto base = data::GenerateRecords(data::DblpLikeConfig(base_records, seed));
  auto increased = data::IncreaseDataset(base, factor);
  if (!increased.ok()) {
    std::fprintf(stderr, "increase failed: %s\n",
                 increased.status().ToString().c_str());
    std::exit(1);
  }
  auto status = dfs->WriteFile(name, data::RecordsToLines(*increased));
  if (!status.ok()) {
    std::fprintf(stderr, "dfs write failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  return increased->size();
}

void PrepareRSData(mr::Dfs* dfs, const std::string& r_name,
                   const std::string& s_name, size_t r_base, size_t s_base,
                   size_t factor, uint64_t seed) {
  auto r_records = data::GenerateRecords(data::DblpLikeConfig(r_base, seed));
  auto s_records =
      data::GenerateRecords(data::CiteseerxLikeConfig(s_base, seed + 1));
  data::InjectOverlap(r_records, 0.30, /*max_edits=*/1, seed + 2, &s_records);

  // One shared token order for both relations, so every shifted copy
  // reproduces the base R-S matches (see data/increase.h).
  auto status = data::IncreaseDatasetsTogether(&r_records, &s_records, factor);
  if (!status.ok()) {
    std::fprintf(stderr, "increase failed: %s\n", status.ToString().c_str());
    std::exit(1);
  }
  if (!dfs->WriteFile(r_name, data::RecordsToLines(r_records)).ok() ||
      !dfs->WriteFile(s_name, data::RecordsToLines(s_records)).ok()) {
    std::fprintf(stderr, "dfs write failed\n");
    std::exit(1);
  }
}

namespace {

void FoldMin(StageTimes* acc, const StageTimes& sample, bool first) {
  if (first) {
    *acc = sample;
    return;
  }
  acc->stage1 = std::min(acc->stage1, sample.stage1);
  acc->stage2 = std::min(acc->stage2, sample.stage2);
  acc->stage3 = std::min(acc->stage3, sample.stage3);
}

}  // namespace

Result<RepeatedRun> RunSelfRepeated(mr::Dfs* dfs, const std::string& input,
                                    const std::string& prefix,
                                    const join::JoinConfig& config,
                                    const mr::ClusterConfig& cluster,
                                    size_t reps) {
  if (reps == 0) reps = 1;
  Result<RepeatedRun> out = Status::Internal("no runs");
  StageTimes min_times;
  StageTimes min_measured;
  for (size_t rep = 0; rep < reps; ++rep) {
    auto result = join::RunSelfJoin(
        dfs, input, prefix + ".rep" + std::to_string(rep), config);
    if (!result.ok()) return result.status();  // e.g. OPRJ OOM
    FoldMin(&min_times, Simulate(*result, cluster), rep == 0);
    FoldMin(&min_measured, Measured(*result), rep == 0);
    if (rep + 1 == reps) {
      out = RepeatedRun{min_times, min_measured, std::move(result).value()};
    }
  }
  return out;
}

Result<RepeatedRun> RunRSRepeated(mr::Dfs* dfs, const std::string& r,
                                  const std::string& s,
                                  const std::string& prefix,
                                  const join::JoinConfig& config,
                                  const mr::ClusterConfig& cluster,
                                  size_t reps) {
  if (reps == 0) reps = 1;
  Result<RepeatedRun> out = Status::Internal("no runs");
  StageTimes min_times;
  StageTimes min_measured;
  for (size_t rep = 0; rep < reps; ++rep) {
    auto result = join::RunRSJoin(dfs, r, s,
                                  prefix + ".rep" + std::to_string(rep),
                                  config);
    if (!result.ok()) return result.status();
    FoldMin(&min_times, Simulate(*result, cluster), rep == 0);
    FoldMin(&min_measured, Measured(*result), rep == 0);
    if (rep + 1 == reps) {
      out = RepeatedRun{min_times, min_measured, std::move(result).value()};
    }
  }
  return out;
}

StageTimes Simulate(const join::JoinRunResult& result,
                    const mr::ClusterConfig& cluster) {
  StageTimes times;
  times.stage1 = result.SimulatedStageSeconds(0, cluster);
  times.stage2 = result.SimulatedStageSeconds(1, cluster);
  times.stage3 = result.SimulatedStageSeconds(2, cluster);
  return times;
}

StageTimes Measured(const join::JoinRunResult& result) {
  StageTimes times;
  double* stages[] = {&times.stage1, &times.stage2, &times.stage3};
  for (size_t i = 0; i < result.stages.size() && i < 3; ++i) {
    for (const auto& job : result.stages[i].jobs) {
      *stages[i] += job.wall_seconds;
    }
  }
  return times;
}

void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& workload) {
  std::printf("================================================================\n");
  std::printf("%s: %s\n", id.c_str(), title.c_str());
  std::printf("workload: %s\n", workload.c_str());
  std::printf("(simulated cluster seconds; shapes comparable to the paper,\n");
  std::printf(" absolute values depend on the work_scale extrapolation)\n");
  std::printf("================================================================\n");
}

}  // namespace fj::bench
