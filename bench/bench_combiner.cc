// Section 3.1.1 ablation: the stage-1 combiner.
//
// The paper: "To minimize the network traffic between the map and reduce
// functions, we use a combine function to aggregate the 1's output by the
// map function into partial counts." This bench runs stage 1 with and
// without the combiner and reports shuffle volume and simulated time. It
// also shows the paper's speedup caveat: with more nodes (more, smaller
// map tasks) each combiner sees less input, so the savings shrink.
#include <cstdio>

#include "bench_util.h"
#include "fuzzyjoin/stage1.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Section 3.1.1 ablation", "stage-1 token counting with/without combiner",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);

  std::printf("%-7s %-9s %14s %14s %10s\n", "nodes", "combiner",
              "shuffle recs", "shuffle KB", "stage1");
  int run_id = 0;
  std::map<std::pair<size_t, bool>, double> ratios;
  for (size_t nodes : {2u, 10u}) {
    auto cluster = bench::MakeCluster(nodes, work_scale);
    for (bool combiner : {true, false}) {
      auto config = bench::MakeConfig(bench::PaperCombos()[0], nodes);
      config.use_stage1_combiner = combiner;
      double best_time = 0;
      mr::JobMetrics metrics;
      for (size_t rep = 0; rep < reps; ++rep) {
        auto result = join::RunStage1(
            &dfs, "dblp", "ord" + std::to_string(run_id++), config);
        if (!result.ok()) {
          std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
          return 1;
        }
        double t = mr::SimulatePipelineSeconds(result->jobs, cluster);
        if (rep == 0 || t < best_time) {
          best_time = t;
          metrics = result->jobs[0];
        }
      }
      std::printf("%-7zu %-9s %14llu %14.1f %9.1fs\n", nodes,
                  combiner ? "on" : "off",
                  static_cast<unsigned long long>(metrics.shuffle_records),
                  metrics.shuffle_bytes / 1024.0, best_time);
      ratios[{nodes, combiner}] = static_cast<double>(metrics.shuffle_records);
    }
  }

  std::printf("\npaper-shape checks:\n");
  double saving_2 = ratios[{2, false}] / std::max(1.0, ratios[{2, true}]);
  double saving_10 = ratios[{10, false}] / std::max(1.0, ratios[{10, true}]);
  std::printf("  shuffle-record reduction: %.1fx at 2 nodes, %.1fx at 10 "
              "nodes (paper: combiner helps,\n  but less with more nodes — "
              "each combiner sees less input)\n",
              saving_2, saving_10);
  return 0;
}
