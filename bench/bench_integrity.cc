// Integrity-verification overhead and corruption-recovery sweep.
//
// The checksum layer (JobSpec::verify_integrity) buys HDFS-style
// end-to-end integrity: every byte a job reads or commits is re-hashed,
// so a flipped byte becomes a detected corruption and a task retry
// instead of silently wrong join output. This bench quantifies both
// sides of that trade on the full self-join pipeline (BTO-PK-BRJ):
//
//   * the price — simulated checksum seconds and the verification
//     overhead fraction at corruption probability 0;
//   * the payoff — with verification ON, every corruption probability in
//     the sweep ends byte-identical to the clean baseline (the bench
//     FAILS otherwise); with verification OFF the same fault plans leak
//     corrupted bytes into the output (or crash a parser downstream),
//     which is exactly the silent-corruption failure mode the layer
//     exists to prevent.
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_integrity.json at the repo root and smoke-tested by CI).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace fj;

struct Row {
  std::string label;
  double corrupt_p = 0;
  bool verify = false;
  bool completed = true;   // pipeline returned OK
  double total_seconds = 0;
  double integrity_seconds = 0;
  double wasted_seconds = 0;
  double overhead_fraction = 0;  // integrity / (total - integrity)
  uint64_t failed_attempts = 0;
  uint64_t corruption_detected = 0;
  uint64_t integrity_bytes_verified = 0;
  uint64_t records_skipped = 0;
  bool output_identical = false;
};

struct SweepResult {
  std::vector<Row> rows;
  size_t records = 0;
};

void Accumulate(const join::JoinRunResult& result,
                const mr::ClusterConfig& cluster, Row* row) {
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) {
      auto simulated = mr::SimulateJob(job, cluster);
      row->total_seconds += simulated.total();
      row->integrity_seconds += simulated.integrity_seconds;
      row->wasted_seconds += simulated.wasted_seconds;
      row->failed_attempts += job.failed_attempts;
      row->corruption_detected += job.corruption_detected;
      row->integrity_bytes_verified += job.integrity_bytes_verified;
      row->records_skipped += job.records_skipped;
    }
  }
  const double base = row->total_seconds - row->integrity_seconds;
  row->overhead_fraction = base > 0 ? row->integrity_seconds / base : 0.0;
}

Result<SweepResult> RunSweep(size_t base, size_t factor, size_t nodes,
                             double work_scale) {
  SweepResult sweep;
  mr::Dfs dfs;
  sweep.records = bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  int run_id = 0;
  std::vector<std::string> golden;
  auto run_one = [&](const std::string& label, double corrupt_p,
                     bool verify) -> Status {
    auto config = bench::MakeConfig(bench::PaperCombos()[1], nodes);
    config.verify_integrity = verify;
    if (corrupt_p > 0) {
      auto plan = std::make_shared<mr::FaultPlan>();
      plan->seed = 11;
      plan->corrupt_probability = corrupt_p;
      plan->corrupt_failing_attempts = 2;
      if (verify && !plan->RecoverableWith(config.max_task_attempts, true)) {
        return Status::InvalidArgument("unrecoverable sweep point");
      }
      config.fault_plan = std::move(plan);
    }

    Row row;
    row.label = label;
    row.corrupt_p = corrupt_p;
    row.verify = verify;

    auto result = join::RunSelfJoin(&dfs, "dblp",
                                    "i" + std::to_string(run_id++), config);
    if (!result.ok()) {
      // Verification ON must always recover; without it a corrupted
      // intermediate record may crash a downstream parser instead of
      // leaking into the output — record that, it is still data loss.
      if (verify) return result.status();
      row.completed = false;
      sweep.rows.push_back(std::move(row));
      return Status::OK();
    }
    Accumulate(*result, cluster, &row);

    FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines,
                        dfs.ReadFile(result->output_file));
    if (golden.empty()) {
      golden = *lines;  // the clean verify-off baseline runs first
      row.output_identical = true;
    } else {
      row.output_identical = *lines == golden;
    }
    sweep.rows.push_back(std::move(row));
    return Status::OK();
  };

  const std::vector<double> probabilities = {0.0, 0.05, 0.15, 0.30};
  for (double p : probabilities) {
    const std::string suffix =
        p == 0 ? "clean" : "p=" + std::to_string(p).substr(0, 4);
    FJ_RETURN_IF_ERROR(run_one("off+" + suffix, p, false));
    FJ_RETURN_IF_ERROR(run_one("on+" + suffix, p, true));
  }
  return sweep;
}

void PrintTable(const SweepResult& sweep) {
  std::printf("%-12s %6s %8s %9s %9s %7s %8s %6s\n", "plan", "verify",
              "total", "checksum", "overhead", "detect", "wasted", "same");
  for (const Row& row : sweep.rows) {
    if (!row.completed) {
      std::printf("%-12s %6s %s\n", row.label.c_str(),
                  row.verify ? "on" : "off",
                  "PIPELINE FAILED (corruption crashed a downstream parser)");
      continue;
    }
    std::printf("%-12s %6s %7.1fs %8.2fs %8.1f%% %7llu %7.1fs %6s\n",
                row.label.c_str(), row.verify ? "on" : "off",
                row.total_seconds, row.integrity_seconds,
                100.0 * row.overhead_fraction,
                static_cast<unsigned long long>(row.corruption_detected),
                row.wasted_seconds, row.output_identical ? "yes" : "NO");
  }
  std::printf(
      "\npaper-shape checks:\n"
      "  verification costs a modest slice of simulated time (checksum\n"
      "  bandwidth ~400MB/s/node) and converts every injected corruption\n"
      "  into a detected retry — output stays byte-identical. With\n"
      "  verification off the same plans end NOT-identical or crash a\n"
      "  downstream parser: silent corruption.\n");
}

int WriteJson(const SweepResult& sweep, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_integrity\",\n"
      << "  \"records\": " << sweep.records << ",\n  \"plans\": [\n";
  bool first = true;
  for (const Row& row : sweep.rows) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"plan\": \"" << row.label << "\", \"corrupt_probability\": "
        << row.corrupt_p << ", \"verify_integrity\": "
        << (row.verify ? "true" : "false") << ", \"completed\": "
        << (row.completed ? "true" : "false") << ", \"simulated_seconds\": "
        << row.total_seconds << ", \"integrity_seconds\": "
        << row.integrity_seconds << ", \"verification_overhead_fraction\": "
        << row.overhead_fraction << ", \"integrity_bytes_verified\": "
        << row.integrity_bytes_verified << ", \"corruption_detected\": "
        << row.corruption_detected << ", \"failed_attempts\": "
        << row.failed_attempts << ", \"wasted_seconds\": "
        << row.wasted_seconds << ", \"records_skipped\": "
        << row.records_skipped << ", \"output_identical\": "
        << (row.output_identical ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (%zu plans)\n", path.c_str(), sweep.rows.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "integrity sweep",
      "checksum overhead vs corruption recovery on the self-join",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO-PK-BRJ, " + std::to_string(nodes) +
          " nodes");

  auto sweep = RunSweep(base, factor, nodes, work_scale);
  if (!sweep.ok()) {
    std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : sweep->rows) {
    if (row.verify && row.completed && !row.output_identical) {
      std::fprintf(stderr,
                   "FATAL: %s changed the join output despite verification\n",
                   row.label.c_str());
      return 1;
    }
    if (row.verify && !row.completed) {
      std::fprintf(stderr, "FATAL: %s failed despite verification\n",
                   row.label.c_str());
      return 1;
    }
  }
  PrintTable(*sweep);
  if (!json_path.empty()) return WriteJson(*sweep, json_path);
  return 0;
}
