// Figure 11: self-join scaleup.
//
// Paper setup: dataset size and cluster size grown together — DBLP×5 on 2
// nodes up to DBLP×25 on 10 nodes; perfect scaleup = flat curve.
//
// Here: base×1 on 2 nodes up to base×5 on 10 nodes. Expected shape
// (paper): all three combinations scale up well; BTO-PK-BRJ scales best
// (OPRJ's broadcast list grows with the data, so BTO-PK-OPRJ degrades).
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Figure 11", "self-join scaleup (data and cluster grown together)",
      "DBLP-like base " + std::to_string(base) +
          ", (nodes, factor) = (2,1) (4,2) (6,3) (8,4) (10,5)");

  const std::vector<std::pair<size_t, size_t>> points{
      {2, 1}, {4, 2}, {6, 3}, {8, 4}, {10, 5}};

  std::printf("%-14s", "nodes/factor");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");

  std::vector<std::vector<double>> totals(bench::PaperCombos().size());
  std::vector<std::vector<double>> measured(bench::PaperCombos().size());
  for (const auto& [nodes, factor] : points) {
    mr::Dfs dfs;
    bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
    auto cluster = bench::MakeCluster(nodes, work_scale);
    std::printf("%2zu / x%-8zu", nodes, factor);
    for (size_t c = 0; c < bench::PaperCombos().size(); ++c) {
      const auto& combo = bench::PaperCombos()[c];
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunSelfRepeated(
          &dfs, "dblp",
          std::string("f11-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        std::printf(" %12s", "FAILED");
        totals[c].push_back(0);
        measured[c].push_back(0);
        continue;
      }
      totals[c].push_back(run->times.total());
      measured[c].push_back(run->measured.total());
      std::printf(" %11.1fs", run->times.total());
    }
    std::printf("\n");
  }

  std::printf("\n[measured] host wall-clock seconds (min of %zu reps)\n",
              reps);
  std::printf("%-14s", "nodes/factor");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("%2zu / x%-8zu", points[i].first, points[i].second);
    for (size_t c = 0; c < measured.size(); ++c) {
      std::printf(" %11.3fs", measured[c][i]);
    }
    std::printf("\n");
  }

  std::printf("\npaper-shape checks (scaleup ratio = last/first; 1.0 = perfect):\n");
  double best_ratio = 1e9;
  std::string best_combo;
  for (size_t c = 0; c < totals.size(); ++c) {
    double ratio = totals[c].back() / totals[c].front();
    std::printf("  %s: %.2f\n", bench::PaperCombos()[c].name, ratio);
    if (ratio < best_ratio) {
      best_ratio = ratio;
      best_combo = bench::PaperCombos()[c].name;
    }
  }
  std::printf("  best scaleup: %s (paper: BTO-PK-BRJ)\n", best_combo.c_str());
  return 0;
}
