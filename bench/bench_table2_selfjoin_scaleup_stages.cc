// Table 2: per-stage self-join scaleup.
//
// Paper setup: the Figure 11 axis — (2 nodes, ×5) ... (10 nodes, ×25) —
// with each stage algorithm reported separately.
//
// Expected shape (paper): BTO scales almost perfectly while OPTO degrades
// and eventually loses to BTO (single aggregation reducer); PK always
// beats BK and scales better (BK's reducer is quadratic in the growing
// group size); BRJ scales almost perfectly while OPRJ degrades (its
// broadcast RID-pair list grows with the data).
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Table 2", "per-stage scaleup (data and cluster grown together)",
      "DBLP-like base " + std::to_string(base) +
          ", (nodes, factor) = (2,1) (4,2) (8,4) (10,5)");

  const std::vector<std::pair<size_t, size_t>> points{
      {2, 1}, {4, 2}, {8, 4}, {10, 5}};

  std::vector<bench::Combo> combos{
      {join::Stage1Algorithm::kBTO, join::Stage2Algorithm::kBK,
       join::Stage3Algorithm::kBRJ, "BTO-BK-BRJ"},
      {join::Stage1Algorithm::kOPTO, join::Stage2Algorithm::kPK,
       join::Stage3Algorithm::kOPRJ, "OPTO-PK-OPRJ"},
  };

  std::map<std::pair<int, std::string>, std::vector<double>> rows;
  for (const auto& [nodes, factor] : points) {
    mr::Dfs dfs;
    bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
    auto cluster = bench::MakeCluster(nodes, work_scale);
    for (const auto& combo : combos) {
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunSelfRepeated(
          &dfs, "dblp",
          std::string("t2-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", combo.name,
                     run.status().ToString().c_str());
        return 1;
      }
      rows[{1, join::Stage1Name(combo.stage1)}].push_back(run->times.stage1);
      rows[{2, join::Stage2Name(combo.stage2)}].push_back(run->times.stage2);
      rows[{3, join::Stage3Name(combo.stage3)}].push_back(run->times.stage3);
    }
  }

  std::printf("%-6s %-6s", "stage", "alg");
  for (const auto& [nodes, factor] : points) {
    std::printf("   %2zu/x%zu    ", nodes, factor);
  }
  std::printf("\n");
  for (const auto& [key, times] : rows) {
    std::printf("%-6d %-6s", key.first, key.second.c_str());
    for (double t : times) std::printf("  %9.1fs", t);
    std::printf("\n");
  }

  std::printf("\npaper-shape checks (scaleup ratio = last/first; 1.0 = perfect):\n");
  for (const auto& [key, times] : rows) {
    std::printf("  stage %d %-5s: %.2f\n", key.first, key.second.c_str(),
                times.back() / times.front());
  }
  auto& bto = rows[{1, "BTO"}];
  auto& opto = rows[{1, "OPTO"}];
  auto& brj = rows[{3, "BRJ"}];
  auto& oprj = rows[{3, "OPRJ"}];
  std::printf("  BTO scales better than OPTO: %s (paper: yes)\n",
              bto.back() / bto.front() < opto.back() / opto.front() ? "yes"
                                                                    : "NO");
  std::printf("  BRJ scales better than OPRJ: %s (paper: yes)\n",
              brj.back() / brj.front() < oprj.back() / oprj.front() ? "yes"
                                                                    : "NO");
  return 0;
}
