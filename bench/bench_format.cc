// Record-format sweep on the Figure 9 self-join workload: the same
// DBLP-like dataset and BTO-PK-BRJ pipeline run under every
// format x codec combination (text, binary, binary+fjlz), with a spill
// budget small enough that the sort-spill-merge path carries real
// traffic.
//
// Reported per combination: spilled + shuffled bytes (the traffic the
// binary format exists to shrink), the codec's logical vs. encoded byte
// meters, measured host wall, and simulated cluster seconds (which price
// shuffle/spill bytes against network/disk bandwidth and the codec CPU
// against ClusterConfig::codec_bytes_per_second_per_node).
//
// Hard-fails (non-zero exit, CI smoke-tests this):
//   - join output not byte-identical to the text baseline;
//   - binary+fjlz does not cut spilled+shuffled bytes by >= 1.5x;
//   - binary+fjlz simulated cluster time not below text.
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_format.json at the repo root).
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "mapreduce/record_format.h"

namespace {

struct FormatPoint {
  std::string name;
  fj::mr::RecordFormat format = fj::mr::RecordFormat::kText;
  fj::mr::BlockCodec codec = fj::mr::BlockCodec::kNone;
  uint64_t shuffle_bytes = 0;
  uint64_t spilled_bytes = 0;
  uint64_t codec_logical_bytes = 0;
  uint64_t codec_encoded_bytes = 0;
  double measured_seconds = 0;
  double simulated_seconds = 0;
  bool output_identical = false;

  uint64_t traffic() const { return shuffle_bytes + spilled_bytes; }
};

int WriteJson(const std::vector<FormatPoint>& points, size_t records,
              size_t reps, double bytes_reduction, double simulated_speedup,
              const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_format\",\n";
  out << "  \"workload\": \"fig09 self-join, BTO-PK-BRJ, 10-node task "
         "shape\",\n";
  out << "  \"records\": " << records << ",\n";
  out << "  \"reps\": " << reps << ",\n";
  out << "  \"bytes_reduction_binary_fjlz_vs_text\": " << bytes_reduction
      << ",\n";
  out << "  \"simulated_speedup_binary_fjlz_vs_text\": " << simulated_speedup
      << ",\n";
  out << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const FormatPoint& p = points[i];
    out << "    {\"format\": \"" << fj::mr::RecordFormatName(p.format)
        << "\", \"codec\": \"" << fj::mr::BlockCodecName(p.codec)
        << "\", \"shuffle_bytes\": " << p.shuffle_bytes
        << ", \"spilled_bytes\": " << p.spilled_bytes
        << ", \"codec_logical_bytes\": " << p.codec_logical_bytes
        << ", \"codec_encoded_bytes\": " << p.codec_encoded_bytes
        << ", \"measured_seconds\": " << p.measured_seconds
        << ", \"simulated_seconds\": " << p.simulated_seconds
        << ", \"output_identical\": "
        << (p.output_identical ? "true" : "false") << "}"
        << (i + 1 < points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);
  uint64_t sort_buffer = flags.GetInt("sort_buffer", 32 * 1024);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "Format sweep", "binary record format + block codec",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO-PK-BRJ, sort_buffer " +
          std::to_string(sort_buffer));

  mr::Dfs dfs;
  size_t records = bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(10, work_scale);

  const struct {
    const char* name;
    mr::RecordFormat format;
    mr::BlockCodec codec;
  } combos[] = {
      {"text", mr::RecordFormat::kText, mr::BlockCodec::kNone},
      {"binary", mr::RecordFormat::kBinary, mr::BlockCodec::kNone},
      {"binary+fjlz", mr::RecordFormat::kBinary, mr::BlockCodec::kFjlz},
  };

  std::vector<FormatPoint> points;
  const std::vector<std::string>* baseline_output = nullptr;
  std::printf("%-13s %12s %12s %12s %8s %11s %11s %7s\n", "combo",
              "shuffled", "spilled", "logical", "ratio", "measured",
              "simulated", "output");
  for (const auto& combo : combos) {
    auto config = bench::MakeConfig(bench::PaperCombos()[1], 10);
    config.sort_buffer_bytes = sort_buffer;
    config.record_format = combo.format;
    config.block_codec = combo.codec;
    auto run = bench::RunSelfRepeated(&dfs, "dblp",
                                      std::string("fmt-") + combo.name,
                                      config, cluster, reps);
    if (!run.ok()) {
      std::fprintf(stderr, "%s failed: %s\n", combo.name,
                   run.status().ToString().c_str());
      return 1;
    }
    auto output = dfs.ReadFile(run->last_run.output_file);
    if (!output.ok()) {
      std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
      return 1;
    }
    FormatPoint point;
    point.name = combo.name;
    point.format = combo.format;
    point.codec = combo.codec;
    for (const auto& stage : run->last_run.stages) {
      for (const auto& job : stage.jobs) {
        point.shuffle_bytes += job.shuffle_bytes;
        point.spilled_bytes += job.spilled_bytes;
        point.codec_logical_bytes += job.codec_logical_bytes;
        point.codec_encoded_bytes += job.codec_encoded_bytes;
      }
    }
    point.measured_seconds = run->measured.total();
    point.simulated_seconds = run->times.total();
    if (baseline_output == nullptr) {
      baseline_output = *output;
      point.output_identical = true;
    } else {
      point.output_identical = (**output == *baseline_output);
    }
    double ratio =
        point.codec_encoded_bytes > 0
            ? static_cast<double>(point.codec_logical_bytes) /
                  static_cast<double>(point.codec_encoded_bytes)
            : 1.0;
    std::printf("%-13s %9.1f KB %9.1f KB %9.1f KB %7.2fx %10.3fs %10.1fs"
                " %7s\n",
                combo.name, point.shuffle_bytes / 1024.0,
                point.spilled_bytes / 1024.0,
                point.codec_logical_bytes / 1024.0, ratio,
                point.measured_seconds, point.simulated_seconds,
                point.output_identical ? "same" : "DIFFERS");
    points.push_back(std::move(point));
  }

  const FormatPoint& text = points.front();
  const FormatPoint& packed = points.back();
  double bytes_reduction =
      packed.traffic() > 0
          ? static_cast<double>(text.traffic()) /
                static_cast<double>(packed.traffic())
          : 0.0;
  double simulated_speedup = packed.simulated_seconds > 0
                                 ? text.simulated_seconds /
                                       packed.simulated_seconds
                                 : 0.0;
  std::printf("\nbinary+fjlz vs text: %.2fx fewer spilled+shuffled bytes, "
              "%.2fx simulated cluster speedup\n",
              bytes_reduction, simulated_speedup);

  int exit_code = 0;
  for (const FormatPoint& point : points) {
    if (!point.output_identical) {
      std::fprintf(stderr, "FAIL: %s join output differs from text\n",
                   point.name.c_str());
      exit_code = 1;
    }
  }
  if (bytes_reduction < 1.5) {
    std::fprintf(stderr,
                 "FAIL: binary+fjlz cut spilled+shuffled bytes only %.2fx "
                 "(need >= 1.5x)\n",
                 bytes_reduction);
    exit_code = 1;
  }
  if (packed.simulated_seconds >= text.simulated_seconds) {
    std::fprintf(stderr,
                 "FAIL: binary+fjlz simulated time %.1fs not below text "
                 "%.1fs\n",
                 packed.simulated_seconds, text.simulated_seconds);
    exit_code = 1;
  }

  if (!json_path.empty()) {
    int rc = WriteJson(points, records, reps, bytes_reduction,
                       simulated_speedup, json_path);
    if (rc != 0) return rc;
    std::printf("wrote %s\n", json_path.c_str());
  }
  return exit_code;
}
