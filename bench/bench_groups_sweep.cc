// Section 6.1.1 group-count study (stage 2, PK kernel).
//
// The paper evaluated the PK kernel with different numbers of token
// groups and observed the best performance with ONE GROUP PER TOKEN
// (individual routing): grouping tokens more coarsely makes the framework
// spend the same grouping effort while the reducer benefits less (and the
// groups get bigger). This binary sweeps the group count and reports the
// kernel's simulated time plus the shuffle/grouping metrics that explain
// it.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Section 6.1.1", "effect of the number of token groups (PK kernel)",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", " + std::to_string(nodes) + " nodes");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  struct Row {
    std::string label;
    join::TokenRouting routing;
    uint32_t groups;
    join::GroupAssignment assignment = join::GroupAssignment::kRoundRobin;
  };
  std::vector<Row> rows{
      {"16 groups", join::TokenRouting::kGroupedTokens, 16},
      {"64 groups", join::TokenRouting::kGroupedTokens, 64},
      {"256 groups", join::TokenRouting::kGroupedTokens, 256},
      {"1024 groups", join::TokenRouting::kGroupedTokens, 1024},
      {"one-per-token", join::TokenRouting::kIndividualTokens, 0},
      // The paper picks round-robin assignment "to balance the sum of
      // token frequencies across groups"; contiguous ranges are the
      // unbalanced alternative.
      {"64 contiguous", join::TokenRouting::kGroupedTokens, 64,
       join::GroupAssignment::kContiguous},
  };

  std::printf("%-14s %10s %14s %14s %12s\n", "grouping", "stage2",
              "shuffle recs", "pk candidates", "pk verified");
  double individual_time = 0, best_grouped_time = 1e18;
  double rr64_time = 0, contiguous64_time = 0;
  for (const auto& row : rows) {
    auto config = bench::MakeConfig(bench::PaperCombos()[2], nodes);
    config.routing = row.routing;
    config.num_groups = row.groups;
    config.group_assignment = row.assignment;
    auto run = bench::RunSelfRepeated(&dfs, "dblp", "groups-" + row.label,
                                      config, cluster, reps);
    if (!run.ok()) {
      std::printf("%-14s FAILED: %s\n", row.label.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    const auto& kernel_job = run->last_run.stages[1].jobs[0];
    std::printf("%-14s %9.1fs %14llu %14lld %12lld\n", row.label.c_str(),
                run->times.stage2,
                static_cast<unsigned long long>(kernel_job.shuffle_records),
                static_cast<long long>(
                    kernel_job.counters.Get("stage2.pk.candidates")),
                static_cast<long long>(
                    kernel_job.counters.Get("stage2.pk.verified")));
    if (row.routing == join::TokenRouting::kIndividualTokens) {
      individual_time = run->times.stage2;
    } else if (row.assignment == join::GroupAssignment::kContiguous) {
      contiguous64_time = run->times.stage2;
    } else {
      best_grouped_time = std::min(best_grouped_time, run->times.stage2);
      if (row.groups == 64) rr64_time = run->times.stage2;
    }
  }

  std::printf("\npaper-shape checks:\n");
  std::printf("  one-group-per-token %.1fs vs best grouped %.1fs "
              "(paper: one group per token is best)\n",
              individual_time, best_grouped_time);
  std::printf("  64 groups: round-robin %.1fs vs contiguous %.1fs "
              "(paper: round-robin balances the frequency sum)\n",
              rr64_time, contiguous64_time);
  return 0;
}
