// Section 6.1.1, "Stage 3: Record Join" — the data-skew analysis.
//
// The paper explains BRJ's limited speedup by measuring (on DBLP×10):
//   * how often each RID appears in joining pairs: average 3.74,
//     standard deviation 14.85, maximum 187 — a long-tailed distribution
//     where one RID's pairs cannot be split across reducers;
//   * records processed per reduce instance (10 nodes): min 81,662 /
//     max 90,560 / avg 87,166.55 / stddev 2,519.30 — mild imbalance, but
//     "all the reducers had to wait for the slowest one to finish".
//
// This bench reproduces both measurements on the scaled-down workload.
#include <cmath>
#include <cstdio>
#include <map>

#include "bench_util.h"

namespace {

struct Distribution {
  double average = 0;
  double stddev = 0;
  int64_t min = 0;
  int64_t max = 0;
};

Distribution Describe(const std::vector<int64_t>& values) {
  Distribution d;
  if (values.empty()) return d;
  d.min = d.max = values[0];
  double sum = 0;
  for (int64_t v : values) {
    sum += static_cast<double>(v);
    d.min = std::min(d.min, v);
    d.max = std::max(d.max, v);
  }
  d.average = sum / static_cast<double>(values.size());
  double variance = 0;
  for (int64_t v : values) {
    double delta = static_cast<double>(v) - d.average;
    variance += delta * delta;
  }
  d.stddev = std::sqrt(variance / static_cast<double>(values.size()));
  return d;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);

  bench::PrintExperimentHeader(
      "Section 6.1.1 (stage-3 skew)",
      "RID-pair frequency distribution and reduce-task balance",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", " + std::to_string(nodes) + " nodes");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto config = bench::MakeConfig(bench::PaperCombos()[1], nodes);  // BRJ
  auto result = join::RunSelfJoin(&dfs, "dblp", "skew", config);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }

  // (a) RID -> number of joining pairs it appears in.
  std::map<uint64_t, int64_t> rid_frequency;
  auto pair_lines = dfs.ReadFile(result->rid_pairs_file).value();
  std::map<std::pair<uint64_t, uint64_t>, bool> seen;
  for (const auto& line : *pair_lines) {
    auto parsed = join::ParseRidPairLine(line);
    if (!parsed.ok()) continue;
    auto [rid1, rid2, sim] = parsed.value();
    (void)sim;
    if (!seen.emplace(std::make_pair(rid1, rid2), true).second) continue;
    rid_frequency[rid1]++;
    rid_frequency[rid2]++;
  }
  std::vector<int64_t> frequencies;
  frequencies.reserve(rid_frequency.size());
  for (const auto& [rid, count] : rid_frequency) {
    frequencies.push_back(count);
  }
  auto rid_dist = Describe(frequencies);
  std::printf("RID join-pair frequency (over %zu RIDs in >= 1 pair):\n",
              frequencies.size());
  std::printf("  average %.2f, stddev %.2f, max %lld\n", rid_dist.average,
              rid_dist.stddev, static_cast<long long>(rid_dist.max));
  std::printf("  (paper, DBLP x10: average 3.74, stddev 14.85, max 187 — a "
              "long-tailed distribution)\n\n");

  // (b) Records processed per reduce task in the BRJ phases.
  const auto& stage3 = result->stages[2];
  for (size_t phase = 0; phase < stage3.jobs.size(); ++phase) {
    std::vector<int64_t> inputs;
    for (const auto& task : stage3.jobs[phase].reduce_tasks) {
      inputs.push_back(static_cast<int64_t>(task.input_records));
    }
    auto d = Describe(inputs);
    std::printf("BRJ phase %zu reduce-task input records (%zu tasks):\n",
                phase + 1, inputs.size());
    std::printf("  min %lld, max %lld, avg %.2f, stddev %.2f  (max/avg "
                "%.2f)\n",
                static_cast<long long>(d.min),
                static_cast<long long>(d.max), d.average, d.stddev,
                d.average > 0 ? d.max / d.average : 0.0);
  }
  std::printf("  (paper, phase totals at 10 nodes: min 81662, max 90560, "
              "avg 87166.55, stddev 2519.30;\n   the slowest reducer gates "
              "the stage — the cause of BRJ's limited speedup)\n");
  return 0;
}
