// Figure 13: R-S join speedup.
//
// Paper setup: DBLP×10 ⋈ CITESEERX×10 fixed, nodes 2..10. Expected shape
// (paper): BTO-PK-OPRJ starts fastest but loses its lead by 10 nodes —
// every map task loads the full RID-pair list, a cost that does not
// shrink with the cluster — while the BRJ combinations speed up better.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t r_base = flags.GetInt("r_base", 1500);
  size_t s_base = flags.GetInt("s_base", 1200);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Figure 13", "R-S join speedup",
      "DBLP-like " + std::to_string(r_base) + " x" + std::to_string(factor) +
          "  JOIN  CITESEERX-like " + std::to_string(s_base) + " x" +
          std::to_string(factor) + " fixed, nodes 2..10");

  mr::Dfs dfs;
  bench::PrepareRSData(&dfs, "dblp", "citeseerx", r_base, s_base, factor, 42);

  const std::vector<size_t> node_counts{2, 4, 6, 8, 10};
  std::vector<std::vector<double>> totals(bench::PaperCombos().size());
  std::vector<std::vector<double>> measured(bench::PaperCombos().size());

  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");
  for (size_t nodes : node_counts) {
    auto cluster = bench::MakeCluster(nodes, work_scale);
    std::printf("%-7zu", nodes);
    for (size_t c = 0; c < bench::PaperCombos().size(); ++c) {
      const auto& combo = bench::PaperCombos()[c];
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunRSRepeated(
          &dfs, "dblp", "citeseerx",
          std::string("f13-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        std::printf(" %12s", "FAILED");
        totals[c].push_back(0);
        measured[c].push_back(0);
        continue;
      }
      totals[c].push_back(run->times.total());
      measured[c].push_back(run->measured.total());
      std::printf(" %11.1fs", run->times.total());
    }
    std::printf("\n");
  }

  std::printf("\n[measured] host wall-clock seconds (min of %zu reps)\n",
              reps);
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");
  for (size_t i = 0; i < node_counts.size(); ++i) {
    std::printf("%-7zu", node_counts[i]);
    for (size_t c = 0; c < measured.size(); ++c) {
      std::printf(" %11.3fs", measured[c][i]);
    }
    std::printf("\n");
  }

  std::printf("\nrelative speedup (2-node time / N-node time):\n");
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf(" %12s\n", "ideal");
  for (size_t i = 0; i < node_counts.size(); ++i) {
    std::printf("%-7zu", node_counts[i]);
    for (auto& series : totals) {
      std::printf(" %11.2fx",
                  series[i] > 0 ? series.front() / series[i] : 0.0);
    }
    std::printf(" %11.2fx\n", node_counts[i] / 2.0);
  }

  std::printf("\npaper-shape checks:\n");
  // BRJ combos should gain more speedup than the OPRJ combo.
  double brj_speedup = totals[1].front() / totals[1].back();
  double oprj_speedup = totals[2].front() / totals[2].back();
  std::printf("  speedup 2->10 nodes: BTO-PK-BRJ %.2fx vs BTO-PK-OPRJ %.2fx "
              "(paper: BRJ variants speed up better)\n",
              brj_speedup, oprj_speedup);
  return 0;
}
