// Footnote 2 ablation: prefix-token signatures vs length-range signatures
// for stage 2 (self-join, BK kernel).
//
// The paper: "An alternative would be to apply the length filter. We
// explored this alternative but the performance was not good because it
// suffered from the skewed distribution of string lengths." This bench
// reproduces that comparison: length-only routing concentrates whole
// length classes on single reducers and — with no prefix filter — must
// consider every same-class pair, so its candidate count and its slowest
// reducer blow up relative to token routing.
#include <algorithm>
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Footnote 2 ablation", "prefix-token vs length-range signatures (BK)",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", " + std::to_string(nodes) + " nodes");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  struct Row {
    std::string label;
    join::TokenRouting routing;
    uint32_t width;
  };
  std::vector<Row> rows{
      {"prefix tokens", join::TokenRouting::kIndividualTokens, 0},
      {"length w=1", join::TokenRouting::kLengthSignatures, 1},
      {"length w=2", join::TokenRouting::kLengthSignatures, 2},
      {"length w=4", join::TokenRouting::kLengthSignatures, 4},
  };

  std::printf("%-14s %9s %14s %14s %13s\n", "signatures", "stage2",
              "candidates", "slowest task", "max/avg task");
  for (const auto& row : rows) {
    auto config = bench::MakeConfig(bench::PaperCombos()[0], nodes);  // BK
    config.routing = row.routing;
    config.length_class_width = row.width == 0 ? 4 : row.width;
    auto run = bench::RunSelfRepeated(&dfs, "dblp", "sig-" + row.label,
                                      config, cluster, reps);
    if (!run.ok()) {
      std::printf("%-14s FAILED: %s\n", row.label.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    const auto& job = run->last_run.stages[1].jobs[0];
    double slowest = 0, total = 0;
    for (const auto& task : job.reduce_tasks) {
      slowest = std::max(slowest, task.seconds);
      total += task.seconds;
    }
    double avg = job.reduce_tasks.empty()
                     ? 0
                     : total / static_cast<double>(job.reduce_tasks.size());
    std::printf("%-14s %8.1fs %14lld %12.4fs %13.1f\n", row.label.c_str(),
                run->times.stage2,
                static_cast<long long>(
                    job.counters.Get("stage2.bk.pairs_considered")),
                slowest,
                avg > 0 ? slowest / avg : 0.0);
  }

  std::printf("\nexpected shape (paper): length signatures are much slower — "
              "no prefix filter, so\nfar more candidate pairs, and length "
              "skew concentrates work on few reducers\n(high max/avg task "
              "ratio).\n");
  return 0;
}
