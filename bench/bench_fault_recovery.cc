// Fault-recovery overhead sweep.
//
// Hadoop's selling point is transparent recovery: crashed tasks re-execute,
// stragglers get speculative backups, and the job finishes with the same
// result — at the cost of wasted slot time. This bench injects
// deterministic fault plans into the full self-join pipeline (BTO-PK-BRJ)
// and sweeps (a) per-attempt crash probability and (b) straggler slowdown
// with speculation on/off, reporting the simulated cluster running time and
// the wasted-work fraction next to the fault-free baseline. The join output
// is verified byte-identical to the fault-free run on every row.
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_fault.json at the repo root and smoke-tested by CI).
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"

namespace {

using namespace fj;

struct Row {
  std::string label;
  double crash_p = 0;
  double straggler_slowdown = 1;
  bool speculate = false;
  double total_seconds = 0;
  double wasted_seconds = 0;
  double committed_seconds = 0;
  uint64_t failed_attempts = 0;
  uint64_t speculative_launched = 0;
  uint64_t speculative_wins = 0;
  bool output_identical = true;
};

struct SweepResult {
  std::vector<Row> rows;
  size_t records = 0;
};

// Simulated pipeline seconds + fault totals for one finished run.
void Accumulate(const join::JoinRunResult& result,
                const mr::ClusterConfig& cluster, Row* row) {
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) {
      auto simulated = mr::SimulateJob(job, cluster);
      row->total_seconds += simulated.total();
      row->wasted_seconds += simulated.wasted_seconds;
      row->committed_seconds +=
          (job.TotalMapSeconds() + job.TotalReduceSeconds()) *
          cluster.work_scale;
      row->failed_attempts += job.failed_attempts;
      row->speculative_launched += job.speculative_launched;
      row->speculative_wins += job.speculative_wins;
    }
  }
}

Result<SweepResult> RunSweep(size_t base, size_t factor, size_t nodes,
                             double work_scale) {
  SweepResult sweep;
  mr::Dfs dfs;
  sweep.records = bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  int run_id = 0;
  const std::vector<std::string>* golden = nullptr;
  auto run_one = [&](const std::string& label, double crash_p,
                     double slowdown, bool speculate) -> Status {
    auto config = bench::MakeConfig(bench::PaperCombos()[1], nodes);
    if (crash_p > 0 || slowdown > 1) {
      auto plan = std::make_shared<mr::FaultPlan>();
      plan->seed = 7;
      plan->crash_probability = crash_p;
      plan->crash_after_records = 8;
      plan->crash_failing_attempts = 2;
      if (slowdown > 1) {
        plan->straggler_probability = 0.15;
        plan->straggler_slowdown = slowdown;
        // Local tasks run micro- to milliseconds; an absolute charge makes
        // the straggler visible to the detector and the cost model alike.
        plan->straggler_extra_seconds = 0.002 * slowdown;
      }
      if (!plan->RecoverableWith(config.max_task_attempts)) {
        return Status::InvalidArgument("unrecoverable sweep point");
      }
      config.fault_plan = std::move(plan);
    }
    config.speculative_execution = speculate;

    auto result = join::RunSelfJoin(&dfs, "dblp",
                                    "f" + std::to_string(run_id++), config);
    FJ_RETURN_IF_ERROR(result.status());

    Row row;
    row.label = label;
    row.crash_p = crash_p;
    row.straggler_slowdown = slowdown;
    row.speculate = speculate;
    Accumulate(*result, cluster, &row);

    FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines,
                        dfs.ReadFile(result->output_file));
    if (golden == nullptr) {
      golden = lines;  // the fault-free baseline runs first
    } else {
      row.output_identical = *lines == *golden;
    }
    sweep.rows.push_back(std::move(row));
    return Status::OK();
  };

  FJ_RETURN_IF_ERROR(run_one("baseline", 0.0, 1.0, false));
  for (double crash_p : {0.05, 0.15, 0.30, 0.50}) {
    FJ_RETURN_IF_ERROR(
        run_one("crash_p=" + std::to_string(crash_p).substr(0, 4), crash_p,
                1.0, false));
  }
  for (double slowdown : {2.0, 4.0, 8.0}) {
    const std::string suffix = std::to_string(static_cast<int>(slowdown));
    FJ_RETURN_IF_ERROR(
        run_one("straggle_x" + suffix, 0.0, slowdown, false));
    FJ_RETURN_IF_ERROR(
        run_one("straggle_x" + suffix + "+spec", 0.0, slowdown, true));
  }
  FJ_RETURN_IF_ERROR(run_one("combined+spec", 0.15, 4.0, true));
  return sweep;
}

void PrintTable(const SweepResult& sweep) {
  std::printf("%-18s %8s %8s %9s %7s %7s %6s %6s\n", "plan", "total",
              "wasted", "wasted %", "failed", "backup", "wins", "same");
  for (const Row& row : sweep.rows) {
    const double slot_seconds = row.committed_seconds + row.wasted_seconds;
    const double fraction =
        slot_seconds > 0 ? 100.0 * row.wasted_seconds / slot_seconds : 0.0;
    std::printf("%-18s %7.1fs %7.1fs %8.1f%% %7llu %7llu %6llu %6s\n",
                row.label.c_str(), row.total_seconds, row.wasted_seconds,
                fraction, static_cast<unsigned long long>(row.failed_attempts),
                static_cast<unsigned long long>(row.speculative_launched),
                static_cast<unsigned long long>(row.speculative_wins),
                row.output_identical ? "yes" : "NO");
  }
  std::printf(
      "\npaper-shape checks:\n"
      "  more crashes -> more retried attempts and wasted slot time, same\n"
      "  join output; speculation trades extra backup attempts for a\n"
      "  shorter straggler-bound makespan.\n");
}

int WriteJson(const SweepResult& sweep, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_fault_recovery\",\n"
      << "  \"records\": " << sweep.records << ",\n  \"plans\": [\n";
  bool first = true;
  for (const Row& row : sweep.rows) {
    if (!first) out << ",\n";
    first = false;
    const double slot_seconds = row.committed_seconds + row.wasted_seconds;
    const double fraction =
        slot_seconds > 0 ? row.wasted_seconds / slot_seconds : 0.0;
    out << "    {\"plan\": \"" << row.label << "\", \"crash_probability\": "
        << row.crash_p << ", \"straggler_slowdown\": "
        << row.straggler_slowdown << ", \"speculation\": "
        << (row.speculate ? "true" : "false") << ", \"simulated_seconds\": "
        << row.total_seconds << ", \"wasted_seconds\": " << row.wasted_seconds
        << ", \"wasted_fraction\": " << fraction << ", \"failed_attempts\": "
        << row.failed_attempts << ", \"speculative_launched\": "
        << row.speculative_launched << ", \"speculative_wins\": "
        << row.speculative_wins << ", \"output_identical\": "
        << (row.output_identical ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (%zu plans)\n", path.c_str(), sweep.rows.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "fault-recovery sweep",
      "self-join under injected crashes and stragglers",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO-PK-BRJ, " + std::to_string(nodes) +
          " nodes");

  auto sweep = RunSweep(base, factor, nodes, work_scale);
  if (!sweep.ok()) {
    std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
    return 1;
  }
  for (const Row& row : sweep->rows) {
    if (!row.output_identical) {
      std::fprintf(stderr, "FATAL: %s changed the join output\n",
                   row.label.c_str());
      return 1;
    }
  }
  PrintTable(*sweep);
  if (!json_path.empty()) return WriteJson(*sweep, json_path);
  return 0;
}
