// Socket-shuffle fault sweep: fault-rate x worker-count.
//
// The socket transport moves every committed map-output segment through
// loopback TCP shuffle workers, so this bench measures what that wire
// layer costs and what its fault tolerance buys: for each worker count it
// runs the full self-join pipeline (BTO-PK-BRJ) under a clean plan and
// under deterministic drop / corrupt / mixed-loss NetFaultPlans, then
// verifies the `.joined` output byte-identical to the inproc baseline on
// every row (a hard failure otherwise — retries and re-fetches must never
// change the join result).
//
// Two more contracts are enforced on top of the sweep:
//   - every corrupting plan must actually be *detected* on the wire
//     (net_corruption_detected > 0), otherwise the payload hash is dead;
//   - makespan inflation at ~1% loss is bounded: the mixed 1%-loss run
//     must finish within kMaxLossInflation x the clean socket run at the
//     same worker count (min-of-reps on both sides strips host noise).
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_net.json at the repo root and smoke-tested by CI).
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/latency_histogram.h"
#include "mapreduce/shuffle_transport.h"

namespace {

using namespace fj;

// Generous bound: at 1% loss the retry ladder adds a handful of
// backoff-paced re-fetches to thousands of clean ones, so even on a noisy
// CI host the makespan should stay well under 3x the clean socket run.
constexpr double kMaxLossInflation = 3.0;

struct PlanSpec {
  const char* label;
  double drop_p = 0;
  double corrupt_p = 0;
  double stall_p = 0;
};

const std::vector<PlanSpec>& Plans() {
  static const std::vector<PlanSpec> kPlans = {
      {"clean", 0.0, 0.0, 0.0},
      {"loss_1pct", 0.005, 0.005, 0.0},
      {"drop_5pct", 0.05, 0.0, 0.0},
      {"corrupt_5pct", 0.0, 0.05, 0.0},
      {"mixed_heavy", 0.05, 0.05, 0.02},
  };
  return kPlans;
}

struct Row {
  std::string label;
  size_t workers = 0;
  PlanSpec plan;
  double wall_seconds = 0;  // min across reps
  uint64_t fetches = 0;
  uint64_t retries = 0;
  uint64_t redundant = 0;
  uint64_t reruns = 0;
  uint64_t corruption_detected = 0;
  uint64_t bytes_fetched = 0;
  double fetch_p50_ms = 0;
  double fetch_p99_ms = 0;
  bool output_identical = true;
};

struct SweepResult {
  std::vector<Row> rows;
  size_t records = 0;
};

void Accumulate(const join::JoinRunResult& result, Row* row) {
  LatencyHistogram latency;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) {
      row->fetches += job.net_fetches;
      row->retries += job.net_fetch_retries;
      row->redundant += job.net_redundant_fetches;
      row->reruns += job.net_map_reruns;
      row->corruption_detected += job.net_corruption_detected;
      row->bytes_fetched += job.net_bytes_fetched;
      latency.Merge(job.net_fetch_latency);
    }
  }
  row->fetch_p50_ms = latency.Quantile(0.5) * 1e3;
  row->fetch_p99_ms = latency.Quantile(0.99) * 1e3;
}

double MeasuredWall(const join::JoinRunResult& result) {
  double wall = 0;
  for (const auto& stage : result.stages) {
    for (const auto& job : stage.jobs) wall += job.wall_seconds;
  }
  return wall;
}

Result<SweepResult> RunSweep(size_t base, size_t factor, size_t reps,
                             const std::vector<size_t>& worker_counts) {
  SweepResult sweep;
  mr::Dfs dfs;
  sweep.records = bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);

  // Inproc baseline: the golden output every socket run must reproduce.
  int run_id = 0;
  auto base_config = bench::MakeConfig(bench::PaperCombos()[1], /*nodes=*/4);
  base_config.local_threads = 4;
  auto baseline = join::RunSelfJoin(&dfs, "dblp", "net_base", base_config);
  FJ_RETURN_IF_ERROR(baseline.status());
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* golden,
                      dfs.ReadFile(baseline->output_file));

  auto run_point = [&](size_t workers, const PlanSpec& spec) -> Status {
    Row row;
    row.label = std::string(spec.label) + "_w" + std::to_string(workers);
    row.workers = workers;
    row.plan = spec;
    row.wall_seconds = 1e30;
    for (size_t rep = 0; rep < reps; ++rep) {
      auto config = base_config;
      config.transport = mr::TransportKind::kSocket;
      config.num_shuffle_workers = workers;
      if (spec.drop_p > 0 || spec.corrupt_p > 0 || spec.stall_p > 0) {
        auto plan = std::make_shared<mr::NetFaultPlan>();
        plan->seed = 7;
        plan->drop_probability = spec.drop_p;
        plan->corrupt_probability = spec.corrupt_p;
        plan->stall_probability = spec.stall_p;
        plan->stall_ms = 150;
        plan->fault_attempts = 2;
        config.net_fault_plan = std::move(plan);
      }
      auto result = join::RunSelfJoin(
          &dfs, "dblp", "net" + std::to_string(run_id++), config);
      FJ_RETURN_IF_ERROR(result.status());
      FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines,
                          dfs.ReadFile(result->output_file));
      row.output_identical = row.output_identical && (*lines == *golden);
      const double wall = MeasuredWall(*result);
      if (wall < row.wall_seconds) row.wall_seconds = wall;
      if (rep + 1 == reps) Accumulate(*result, &row);
    }
    sweep.rows.push_back(std::move(row));
    return Status::OK();
  };

  for (size_t workers : worker_counts) {
    for (const PlanSpec& spec : Plans()) {
      FJ_RETURN_IF_ERROR(run_point(workers, spec));
    }
  }
  return sweep;
}

void PrintTable(const SweepResult& sweep) {
  std::printf("%-18s %3s %8s %8s %7s %6s %7s %8s %8s %5s\n", "plan", "w",
              "wall", "fetches", "retries", "rerun", "corrupt", "p50 ms",
              "p99 ms", "same");
  for (const Row& row : sweep.rows) {
    std::printf("%-18s %3zu %7.3fs %8llu %7llu %6llu %7llu %8.3f %8.3f %5s\n",
                row.label.c_str(), row.workers, row.wall_seconds,
                static_cast<unsigned long long>(row.fetches),
                static_cast<unsigned long long>(row.retries),
                static_cast<unsigned long long>(row.reruns),
                static_cast<unsigned long long>(row.corruption_detected),
                row.fetch_p50_ms, row.fetch_p99_ms,
                row.output_identical ? "yes" : "NO");
  }
  std::printf(
      "\npaper-shape checks:\n"
      "  higher fault rates -> more retries / wire corruptions detected,\n"
      "  byte-identical join output throughout; ~1%% loss inflates the\n"
      "  makespan by a bounded factor over the clean socket run.\n");
}

int WriteJson(const SweepResult& sweep, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_shuffle_net\",\n"
      << "  \"records\": " << sweep.records << ",\n  \"plans\": [\n";
  bool first = true;
  for (const Row& row : sweep.rows) {
    if (!first) out << ",\n";
    first = false;
    out << "    {\"plan\": \"" << row.label << "\", \"workers\": "
        << row.workers << ", \"drop_p\": " << row.plan.drop_p
        << ", \"corrupt_p\": " << row.plan.corrupt_p << ", \"stall_p\": "
        << row.plan.stall_p << ", \"wall_seconds\": " << row.wall_seconds
        << ", \"fetches\": " << row.fetches << ", \"retries\": "
        << row.retries << ", \"redundant_fetches\": " << row.redundant
        << ", \"map_reruns\": " << row.reruns
        << ", \"corruption_detected\": " << row.corruption_detected
        << ", \"kb_fetched\": " << row.bytes_fetched / 1024
        << ", \"fetch_p50_ms\": " << row.fetch_p50_ms
        << ", \"fetch_p99_ms\": " << row.fetch_p99_ms
        << ", \"output_identical\": "
        << (row.output_identical ? "true" : "false") << "}";
  }
  out << "\n  ]\n}\n";
  std::printf("wrote %s (%zu plans)\n", path.c_str(), sweep.rows.size());
  return 0;
}

// Contract checks over the finished sweep; returns 0 iff all hold.
int Enforce(const SweepResult& sweep) {
  int failures = 0;
  for (const Row& row : sweep.rows) {
    if (!row.output_identical) {
      std::fprintf(stderr, "FATAL: %s changed the join output\n",
                   row.label.c_str());
      ++failures;
    }
    if (row.fetches == 0) {
      std::fprintf(stderr, "FATAL: %s moved no segments over the wire\n",
                   row.label.c_str());
      ++failures;
    }
    if (row.plan.corrupt_p > 0 && row.corruption_detected == 0) {
      std::fprintf(stderr,
                   "FATAL: %s injected wire corruption but none was "
                   "detected\n",
                   row.label.c_str());
      ++failures;
    }
  }
  // Bounded inflation: loss_1pct vs clean at the same worker count.
  for (const Row& loss : sweep.rows) {
    if (std::strncmp(loss.label.c_str(), "loss_1pct", 9) != 0) continue;
    for (const Row& clean : sweep.rows) {
      if (clean.workers != loss.workers ||
          std::strncmp(clean.label.c_str(), "clean", 5) != 0) {
        continue;
      }
      const double inflation =
          clean.wall_seconds > 0 ? loss.wall_seconds / clean.wall_seconds
                                 : 1.0;
      std::printf("makespan inflation @1%% loss, %zu workers: %.2fx\n",
                  loss.workers, inflation);
      if (inflation > kMaxLossInflation) {
        std::fprintf(stderr,
                     "FATAL: 1%% loss inflated the %zu-worker makespan "
                     "%.2fx (> %.1fx budget)\n",
                     loss.workers, inflation, kMaxLossInflation);
        ++failures;
      }
    }
  }
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = std::max<size_t>(1, flags.GetInt("reps", 3));
  std::string json_path = flags.GetString("bench_json", "");
  std::vector<size_t> worker_counts = {2, 4};
  if (size_t only = flags.GetInt("workers", 0)) worker_counts = {only};

  bench::PrintExperimentHeader(
      "socket-shuffle fault sweep",
      "self-join over loopback TCP shuffle workers under injected faults",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", BTO-PK-BRJ, workers x fault plans");

  auto sweep = RunSweep(base, factor, reps, worker_counts);
  if (!sweep.ok()) {
    std::fprintf(stderr, "%s\n", sweep.status().ToString().c_str());
    return 1;
  }
  PrintTable(*sweep);
  int rc = Enforce(*sweep);
  if (rc == 0 && !json_path.empty()) rc = WriteJson(*sweep, json_path);
  return rc;
}
