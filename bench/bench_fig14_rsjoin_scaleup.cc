// Figure 14: R-S join scaleup.
//
// Paper setup: DBLP×n ⋈ CITESEERX×n with the cluster grown in proportion
// (2 nodes/×5 ... 10 nodes/×25). Expected shape (paper): BTO-BK-BRJ and
// BTO-PK-BRJ scale up well, BTO-PK-BRJ best; BTO-PK-OPRJ is fastest until
// it runs out of memory loading the RID-pair list (at the 8-node/×20
// point in the paper).
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t r_base = flags.GetInt("r_base", 1500);
  size_t s_base = flags.GetInt("s_base", 1200);
  size_t reps = flags.GetInt("reps", 5);
  uint64_t oprj_limit = flags.GetInt("oprj_limit", 0);  // 0 = auto
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Figure 14", "R-S join scaleup (data and cluster grown together)",
      "DBLP-like " + std::to_string(r_base) + " x n  JOIN  CITESEERX-like " +
          std::to_string(s_base) +
          " x n, (nodes, n) = (2,1) (4,2) (6,3) (8,4) (10,5)");

  const std::vector<std::pair<size_t, size_t>> points{
      {2, 1}, {4, 2}, {6, 3}, {8, 4}, {10, 5}};
  if (oprj_limit == 0) {
    // Auto budget: binds from the 8-node/x4 point on, mirroring the
    // paper's OOM at its 8-node/x20 point.
    oprj_limit = 50 * r_base * 3;
  }

  std::printf("%-14s", "nodes/factor");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");

  std::vector<std::vector<double>> totals(bench::PaperCombos().size());
  std::vector<std::vector<double>> measured(bench::PaperCombos().size());
  bool oprj_oom_seen = false;
  for (const auto& [nodes, factor] : points) {
    mr::Dfs dfs;
    bench::PrepareRSData(&dfs, "dblp", "citeseerx", r_base, s_base, factor,
                         42);
    auto cluster = bench::MakeCluster(nodes, work_scale);
    std::printf("%2zu / x%-8zu", nodes, factor);
    for (size_t c = 0; c < bench::PaperCombos().size(); ++c) {
      const auto& combo = bench::PaperCombos()[c];
      auto config = bench::MakeConfig(combo, nodes);
      config.oprj_memory_limit_bytes = oprj_limit;
      auto run = bench::RunRSRepeated(
          &dfs, "dblp", "citeseerx",
          std::string("f14-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        if (run.status().code() == StatusCode::kResourceExhausted) {
          std::printf(" %12s", "OOM");
          oprj_oom_seen = true;
        } else {
          std::printf(" %12s", "FAILED");
        }
        totals[c].push_back(0);
        measured[c].push_back(0);
        continue;
      }
      totals[c].push_back(run->times.total());
      measured[c].push_back(run->measured.total());
      std::printf(" %11.1fs", run->times.total());
    }
    std::printf("\n");
  }

  std::printf("\n[measured] host wall-clock seconds (min of %zu reps; "
              "0 = OOM/failed)\n", reps);
  std::printf("%-14s", "nodes/factor");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");
  for (size_t i = 0; i < points.size(); ++i) {
    std::printf("%2zu / x%-8zu", points[i].first, points[i].second);
    for (size_t c = 0; c < measured.size(); ++c) {
      std::printf(" %11.3fs", measured[c][i]);
    }
    std::printf("\n");
  }

  std::printf("\npaper-shape checks:\n");
  for (size_t c = 0; c < 2; ++c) {  // the two BRJ combos complete everywhere
    std::printf("  %s scaleup ratio: %.2f (1.0 = perfect)\n",
                bench::PaperCombos()[c].name,
                totals[c].back() / totals[c].front());
  }
  std::printf("  BTO-PK-OPRJ ran out of memory at a later point: %s "
              "(paper: yes, 8 nodes/x20)\n",
              oprj_oom_seen ? "yes" : "NO");
  return 0;
}
