// Section 2.2 ablation: the one-stage, full-record alternative.
//
// The paper: "We implemented this alternative and noticed a much worse
// performance, so we do not consider this option in this paper." This
// bench reproduces that comparison — the three-stage projection pipeline
// vs the one-stage pipeline that shuffles complete records — reporting
// simulated time and kernel shuffle volume as the data grows.
#include <cstdio>

#include "bench_util.h"
#include "fuzzyjoin/one_stage.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t max_factor = flags.GetInt("max_factor", 3);
  size_t nodes = flags.GetInt("nodes", 10);
  size_t reps = flags.GetInt("reps", 3);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Section 2.2 ablation", "three-stage projections vs one-stage full records",
      "DBLP-like base " + std::to_string(base) + " x factor 1.." +
          std::to_string(max_factor) + ", " + std::to_string(nodes) +
          " nodes");

  auto cluster = bench::MakeCluster(nodes, work_scale);
  std::printf("%-7s %-12s %10s %16s\n", "factor", "pipeline", "total",
              "kernel shuffle");

  for (size_t factor = 1; factor <= max_factor; ++factor) {
    mr::Dfs dfs;
    bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);

    auto config = bench::MakeConfig(bench::PaperCombos()[2], nodes);

    auto three = bench::RunSelfRepeated(&dfs, "dblp",
                                        "3stage-" + std::to_string(factor),
                                        config, cluster, reps);
    if (three.ok()) {
      std::printf("%-7zu %-12s %9.1fs %13.1f KB\n", factor, "three-stage",
                  three->times.total(),
                  three->last_run.stages[1].jobs[0].shuffle_bytes / 1024.0);
    }

    // One-stage runs, best of reps.
    double best_total = 0;
    uint64_t kernel_bytes = 0;
    bool ok = false;
    for (size_t rep = 0; rep < reps; ++rep) {
      auto one = join::RunOneStageSelfJoin(
          &dfs, "dblp",
          "1stage-" + std::to_string(factor) + "-" + std::to_string(rep),
          config);
      if (!one.ok()) {
        std::printf("%-7zu %-12s FAILED: %s\n", factor, "one-stage",
                    one.status().ToString().c_str());
        break;
      }
      double total = one->SimulatedSeconds(cluster);
      if (!ok || total < best_total) {
        best_total = total;
        kernel_bytes = one->stages[1].jobs[0].shuffle_bytes;
      }
      ok = true;
    }
    if (ok) {
      std::printf("%-7zu %-12s %9.1fs %13.1f KB\n", factor, "one-stage",
                  best_total, kernel_bytes / 1024.0);
    }
  }

  std::printf("\nexpected shape (paper): the one-stage variant shuffles the "
              "full record payloads\nthrough the kernel and is much slower "
              "end to end.\n");
  return 0;
}
