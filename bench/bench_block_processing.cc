// Section 5 ablation: insufficient-memory block processing.
//
// Not a numbered paper figure — the paper describes the map-based and
// reduce-based strategies qualitatively. This bench quantifies the
// trade-off they imply: map-based replicates blocks through the shuffle
// (network cost grows with the block count) while reduce-based ships each
// projection once but re-reads blocks from the reducer's local disk; both
// cap reducer memory at roughly (group size / blocks).
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t nodes = flags.GetInt("nodes", 10);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Section 5 ablation", "block processing strategies (BK kernel)",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", " + std::to_string(nodes) + " nodes");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);
  auto cluster = bench::MakeCluster(nodes, work_scale);

  struct Row {
    std::string label;
    join::BlockProcessing strategy;
    uint32_t blocks;
  };
  std::vector<Row> rows{
      {"in-memory", join::BlockProcessing::kNone, 0},
      {"map-based/2", join::BlockProcessing::kMapBased, 2},
      {"map-based/4", join::BlockProcessing::kMapBased, 4},
      {"map-based/8", join::BlockProcessing::kMapBased, 8},
      {"reduce-based/2", join::BlockProcessing::kReduceBased, 2},
      {"reduce-based/4", join::BlockProcessing::kReduceBased, 4},
      {"reduce-based/8", join::BlockProcessing::kReduceBased, 8},
  };

  std::printf("%-15s %9s %13s %13s %13s %10s\n", "strategy", "stage2",
              "shuffle KB", "spill KB", "peak mem", "results");
  for (const auto& row : rows) {
    auto config = bench::MakeConfig(bench::PaperCombos()[0], nodes);  // BK
    config.block_processing = row.strategy;
    config.num_blocks = row.blocks;
    auto run = bench::RunSelfRepeated(&dfs, "dblp", "blocks-" + row.label,
                                      config, cluster, reps);
    if (!run.ok()) {
      std::printf("%-15s FAILED: %s\n", row.label.c_str(),
                  run.status().ToString().c_str());
      continue;
    }
    const auto& kernel_job = run->last_run.stages[1].jobs[0];
    int64_t spilled = kernel_job.counters.Get("scratch.bytes_written") +
                      kernel_job.counters.Get("scratch.bytes_read");
    int64_t peak =
        row.strategy == join::BlockProcessing::kNone
            ? kernel_job.counters.Get("stage2.peak_group_records")
            : kernel_job.counters.Get("stage2.block.peak_memory_records");
    std::printf("%-15s %8.1fs %12.1f %12.1f %10lld %10lld\n",
                row.label.c_str(), run->times.stage2,
                kernel_job.shuffle_bytes / 1024.0, spilled / 1024.0,
                static_cast<long long>(peak),
                static_cast<long long>(
                    kernel_job.counters.Get("stage2.bk.results")));
  }

  std::printf("\nexpected shape: more blocks -> lower peak memory; map-based "
              "pays in shuffle volume,\nreduce-based pays in local-disk "
              "traffic; all strategies produce the same result count.\n");
  return 0;
}
