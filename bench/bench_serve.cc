// Serving-path benchmark: QPS and latency quantiles of the QueryService
// over a seeded ServingIndex, swept over batch size x result cache, plus
// two enforced properties of the production trimmings:
//
//   * repeat-probe cache speedup: replaying a probe set against a warm
//     cache must beat the cold pass by >= 1.1x (the bench exits nonzero
//     otherwise — the cache earning its keep is part of the contract);
//   * admission control: with the drainer paused, a bounded queue must
//     shed excess load with ResourceExhausted instead of queueing
//     unboundedly (also enforced).
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_serve.json at the repo root).
#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "serve/query_service.h"
#include "serve/serving_index.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace {

using fj::serve::ProbeResult;
using fj::serve::QueryService;
using fj::serve::QueryServiceOptions;
using fj::serve::Request;
using fj::serve::RequestKind;
using fj::serve::ServingIndex;
using fj::serve::ServingIndexOptions;

constexpr uint64_t kQueryRid = ~uint64_t{0};

struct ServePoint {
  size_t batch = 0;
  bool cache = false;
  double qps = 0;
  double p50_us = 0;
  double p99_us = 0;
  double hit_rate = 0;
  double mean_batch = 0;
};

Request MakeProbe(const fj::ppjoin::TokenSetRecord& record, double tau) {
  Request request;
  request.kind = RequestKind::kProbeThreshold;
  request.record.rid = kQueryRid;
  request.record.tokens = record.tokens;
  request.threshold = tau;
  return request;
}

int WriteJson(const std::string& path, size_t records, size_t ops,
              double tau, double cache_speedup, size_t admission_submitted,
              size_t admission_accepted, size_t admission_rejected,
              const std::vector<ServePoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"bench_serve\",\n"
      << "  \"workload\": \"QueryService probes over a seeded "
         "ServingIndex\",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"ops\": " << ops << ",\n"
      << "  \"tau\": " << tau << ",\n"
      << "  \"cache_speedup_repeat_probe\": " << cache_speedup << ",\n"
      << "  \"admission\": {\"submitted\": " << admission_submitted
      << ", \"accepted\": " << admission_accepted
      << ", \"rejected\": " << admission_rejected << "},\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const ServePoint& p = points[i];
    out << "    {\"batch\": " << p.batch << ", \"cache\": "
        << (p.cache ? "true" : "false") << ", \"qps\": " << p.qps
        << ", \"p50_us\": " << p.p50_us << ", \"p99_us\": " << p.p99_us
        << ", \"cache_hit_rate\": " << p.hit_rate
        << ", \"mean_batch\": " << p.mean_batch << "}"
        << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t ops = flags.GetInt("ops", 20000);
  size_t threads = flags.GetInt("threads", 2);
  double tau = flags.GetDouble("tau", 0.8);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "Serving", "QueryService QPS x batch x cache",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", jaccard >= " + std::to_string(tau) +
          ", " + std::to_string(ops) + " probes");

  // Materialize token sets the way stage 2 would, then seed the index.
  auto records_raw = data::GenerateRecords(data::DblpLikeConfig(base));
  auto increased = data::IncreaseDataset(records_raw, factor);
  if (!increased.ok()) return 1;
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  for (const auto& r : *increased) {
    tokenized.push_back(tokenizer.Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<ppjoin::TokenSetRecord> sets;
  for (size_t i = 0; i < increased->size(); ++i) {
    ppjoin::TokenSetRecord record{(*increased)[i].rid,
                                  ordering.ToSortedIds(tokenized[i])};
    if (!record.tokens.empty()) sets.push_back(std::move(record));
  }

  ServingIndexOptions index_options;
  index_options.tau_floor = 0.5;
  ServingIndex index(index_options);
  for (const auto& record : sets) {
    if (!index.Insert(record).ok()) return 1;
  }
  std::printf("index: %zu records, %llu tokens\n\n", index.live_records(),
              static_cast<unsigned long long>(index.live_tokens()));

  Executor executor(threads);
  WallTimer timer;

  // --- QPS x batch x cache sweep. Probes cycle a 64-record working set,
  // so the cache-on points see genuine repeat traffic. ---
  const size_t kWorkingSet = std::min<size_t>(64, sets.size());
  std::vector<ServePoint> points;
  std::printf("%-7s %-6s %12s %10s %10s %9s %10s\n", "batch", "cache",
              "qps", "p50", "p99", "hit_rate", "mean_batch");
  for (size_t batch : {size_t{1}, size_t{8}, size_t{64}}) {
    for (bool cache : {false, true}) {
      QueryServiceOptions service_options;
      service_options.max_batch = batch;
      service_options.cache_capacity = cache ? 4096 : 0;
      service_options.max_queue_depth = ops + 1;
      service_options.max_bytes_in_flight = ~uint64_t{0};
      QueryService service(&index, &executor, service_options);
      timer.Restart();
      for (size_t i = 0; i < ops; ++i) {
        Status status = service.Enqueue(
            MakeProbe(sets[i % kWorkingSet], tau), [](serve::ServeResponse) {});
        if (!status.ok()) {
          std::fprintf(stderr, "unexpected reject: %s\n",
                       status.ToString().c_str());
          return 1;
        }
      }
      service.Flush();
      double seconds = timer.ElapsedMillis() / 1e3;
      auto stats = service.stats();
      ServePoint point;
      point.batch = batch;
      point.cache = cache;
      point.qps = static_cast<double>(ops) / seconds;
      point.p50_us = stats.probe_latency.Quantile(0.5) * 1e6;
      point.p99_us = stats.probe_latency.Quantile(0.99) * 1e6;
      point.hit_rate = static_cast<double>(stats.cache_hits) /
                       static_cast<double>(ops);
      point.mean_batch = stats.batch_size.mean_seconds() * 1e9;
      points.push_back(point);
      std::printf("%-7zu %-6s %12.0f %9.1fus %9.1fus %9.3f %10.1f\n", batch,
                  cache ? "on" : "off", point.qps, point.p50_us, point.p99_us,
                  point.hit_rate, point.mean_batch);
    }
  }

  // --- Enforced: warm-cache replay beats the cold pass by >= 1.1x. ---
  double cache_speedup = 0;
  {
    QueryServiceOptions service_options;
    service_options.cache_capacity = 65536;
    service_options.max_queue_depth = sets.size() + 1;
    service_options.max_bytes_in_flight = ~uint64_t{0};
    QueryService service(&index, &executor, service_options);
    // Pass 1 (cold): every probe distinct, all misses.
    timer.Restart();
    for (const auto& record : sets) {
      (void)service.Enqueue(MakeProbe(record, tau), [](serve::ServeResponse) {});
    }
    service.Flush();
    double cold_ms = timer.ElapsedMillis();
    // Pass 2 (warm): identical probes, all hits (no writes in between).
    timer.Restart();
    for (const auto& record : sets) {
      (void)service.Enqueue(MakeProbe(record, tau), [](serve::ServeResponse) {});
    }
    service.Flush();
    double warm_ms = timer.ElapsedMillis();
    auto stats = service.stats();
    cache_speedup = warm_ms > 0 ? cold_ms / warm_ms : 0;
    std::printf("\ncache replay: cold %.1fms -> warm %.1fms (%.2fx, %llu "
                "hits / %zu probes)\n",
                cold_ms, warm_ms, cache_speedup,
                static_cast<unsigned long long>(stats.cache_hits),
                2 * sets.size());
    if (cache_speedup < 1.1) {
      std::fprintf(stderr,
                   "FAIL: warm-cache replay speedup %.2fx < 1.1x target\n",
                   cache_speedup);
      return 1;
    }
  }

  // --- Enforced: a bounded queue sheds load with ResourceExhausted. ---
  size_t admission_submitted = 256, admission_accepted = 0,
         admission_rejected = 0;
  {
    QueryServiceOptions service_options;
    service_options.max_queue_depth = 32;
    service_options.auto_drain = false;  // hold the queue full
    QueryService service(&index, &executor, service_options);
    for (size_t i = 0; i < admission_submitted; ++i) {
      Status status = service.Enqueue(MakeProbe(sets[i % sets.size()], tau),
                                      [](serve::ServeResponse) {});
      if (status.ok()) {
        ++admission_accepted;
      } else if (status.code() == StatusCode::kResourceExhausted) {
        ++admission_rejected;
      } else {
        std::fprintf(stderr, "unexpected admission status: %s\n",
                     status.ToString().c_str());
        return 1;
      }
    }
    service.DrainAll();
    std::printf("admission: %zu submitted -> %zu accepted, %zu shed with "
                "ResourceExhausted\n",
                admission_submitted, admission_accepted, admission_rejected);
    if (admission_rejected == 0 || admission_accepted != 32) {
      std::fprintf(stderr, "FAIL: bounded queue did not shed load\n");
      return 1;
    }
  }

  std::printf("\nexpected shape: larger batches amortize queue locking "
              "(higher QPS, higher p50);\nthe cache turns repeat probes "
              "into O(1) lookups.\n");
  if (!json_path.empty()) {
    return WriteJson(json_path, index.live_records(), ops, tau,
                     cache_speedup, admission_submitted, admission_accepted,
                     admission_rejected, points);
  }
  return 0;
}
