// Related-work ablation: exact prefix-filter kernel (PPJoin+) vs the
// MinHash-LSH approximate formulation the paper cites ([12], "return
// partial answers, by using the idea of locality sensitive hashing").
//
// For a sweep of LSH parameter points this prints recall (precision is
// always 1 — candidates are verified exactly), candidate volume, and time,
// next to the exact kernel. Expected shape: more bands -> higher recall
// and more candidates; the exact kernel is both complete and competitive
// at the paper's threshold because prefix filtering exploits the token
// skew that LSH ignores.
//
// `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_lsh.json at the repo root).
#include <cstdio>
#include <fstream>
#include <map>
#include <vector>

#include "bench_util.h"
#include "common/timer.h"
#include "ppjoin/minhash_lsh.h"
#include "ppjoin/ppjoin.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace {

struct LshPoint {
  size_t bands = 0;
  size_t rows = 0;
  double p_at_tau = 0;
  size_t pairs = 0;
  double recall = 0;
  uint64_t candidates = 0;
  double time_ms = 0;
};

int WriteJson(const std::string& path, size_t records, double tau,
              size_t exact_pairs, double exact_ms,
              const std::vector<LshPoint>& points) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n"
      << "  \"benchmark\": \"bench_lsh\",\n"
      << "  \"workload\": \"exact PPJoin+ vs MinHash-LSH self-join\",\n"
      << "  \"records\": " << records << ",\n"
      << "  \"tau\": " << tau << ",\n"
      << "  \"exact\": {\"pairs\": " << exact_pairs
      << ", \"time_ms\": " << exact_ms << "},\n"
      << "  \"sweep\": [\n";
  for (size_t i = 0; i < points.size(); ++i) {
    const LshPoint& p = points[i];
    out << "    {\"bands\": " << p.bands << ", \"rows\": " << p.rows
        << ", \"p_at_tau\": " << p.p_at_tau << ", \"pairs\": " << p.pairs
        << ", \"recall\": " << p.recall
        << ", \"candidates\": " << p.candidates
        << ", \"time_ms\": " << p.time_ms << "}"
        << (i + 1 < points.size() ? ",\n" : "\n");
  }
  out << "  ]\n}\n";
  return out ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  double tau = flags.GetDouble("tau", 0.8);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "Related work [12]", "exact prefix filtering vs MinHash-LSH",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + ", jaccard >= " + std::to_string(tau));

  // Materialize token sets the way stage 2 would.
  auto records_raw = data::GenerateRecords(data::DblpLikeConfig(base));
  auto increased = data::IncreaseDataset(records_raw, factor);
  if (!increased.ok()) return 1;
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  for (const auto& r : *increased) {
    tokenized.push_back(tokenizer.Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<ppjoin::TokenSetRecord> sets;
  for (size_t i = 0; i < increased->size(); ++i) {
    sets.push_back(ppjoin::TokenSetRecord{
        (*increased)[i].rid, ordering.ToSortedIds(tokenized[i])});
  }

  sim::SimilaritySpec spec(sim::SimilarityFunction::kJaccard, tau);

  WallTimer timer;
  auto exact = ppjoin::PPJoinSelfJoin(sets, spec);
  double exact_ms = timer.ElapsedMillis();
  std::printf("%-22s %9s %9s %12s %10s\n", "method", "pairs", "recall",
              "candidates", "time");
  std::printf("%-22s %9zu %9s %12s %9.1fms\n", "PPJoin+ (exact)",
              exact.size(), "1.000", "-", exact_ms);

  struct Point {
    size_t bands;
    size_t rows;
  };
  std::vector<LshPoint> points;
  for (Point point : {Point{4, 8}, Point{8, 6}, Point{16, 4}, Point{24, 4},
                      Point{32, 3}}) {
    ppjoin::MinHashLshOptions options;
    options.num_bands = point.bands;
    options.rows_per_band = point.rows;
    ppjoin::MinHashLshStats stats;
    timer.Restart();
    auto approx = ppjoin::MinHashLshSelfJoin(sets, spec, options, &stats);
    double ms = timer.ElapsedMillis();
    double recall = exact.empty()
                        ? 1.0
                        : static_cast<double>(approx.size()) / exact.size();
    double p_at_tau = ppjoin::LshCandidateProbability(tau, options);
    char label[64];
    std::snprintf(label, sizeof(label), "LSH b=%zu r=%zu (P=%.2f)",
                  point.bands, point.rows, p_at_tau);
    std::printf("%-22s %9zu %9.3f %12llu %9.1fms\n", label, approx.size(),
                recall,
                static_cast<unsigned long long>(stats.candidate_pairs), ms);
    points.push_back({point.bands, point.rows, p_at_tau, approx.size(),
                      recall, stats.candidate_pairs, ms});
  }

  std::printf("\nexpected shape: recall rises toward 1 with the candidate "
              "probability P at tau;\nprecision is always 1 (candidates are "
              "verified); the exact kernel misses nothing.\n");
  if (!json_path.empty()) {
    return WriteJson(json_path, sets.size(), tau, exact.size(), exact_ms,
                     points);
  }
  return 0;
}
