// Table 1: per-stage self-join running time on different cluster sizes.
//
// Paper setup: DBLP×10, clusters of 2/4/8/10 nodes; each stage's
// alternatives timed separately — BTO vs OPTO (stage 1), BK vs PK
// (stage 2), BRJ vs OPRJ (stage 3).
//
// Expected shape (paper): OPTO competitive or faster on small clusters but
// BTO wins at 8-10 nodes (OPTO funnels everything through one reducer);
// PK beats BK everywhere; OPRJ beats BRJ at this data size, but its
// broadcast-load cost stays constant as nodes grow.
#include <cstdio>
#include <map>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Table 1", "running time of each stage on different cluster sizes",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + " fixed");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);

  const std::vector<size_t> node_counts{2, 4, 8, 10};

  // Two complementary combos cover all six per-stage algorithms.
  struct Variant {
    bench::Combo combo;
  };
  std::vector<bench::Combo> combos{
      {join::Stage1Algorithm::kBTO, join::Stage2Algorithm::kBK,
       join::Stage3Algorithm::kBRJ, "BTO-BK-BRJ"},
      {join::Stage1Algorithm::kOPTO, join::Stage2Algorithm::kPK,
       join::Stage3Algorithm::kOPRJ, "OPTO-PK-OPRJ"},
  };

  // row key: (stage, algorithm name) -> per-node-count seconds.
  std::map<std::pair<int, std::string>, std::vector<double>> rows;
  for (size_t nodes : node_counts) {
    auto cluster = bench::MakeCluster(nodes, work_scale);
    for (const auto& combo : combos) {
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunSelfRepeated(
          &dfs, "dblp",
          std::string("t1-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        std::fprintf(stderr, "%s failed: %s\n", combo.name,
                     run.status().ToString().c_str());
        return 1;
      }
      rows[{1, join::Stage1Name(combo.stage1)}].push_back(run->times.stage1);
      rows[{2, join::Stage2Name(combo.stage2)}].push_back(run->times.stage2);
      rows[{3, join::Stage3Name(combo.stage3)}].push_back(run->times.stage3);
    }
  }

  std::printf("%-6s %-6s", "stage", "alg");
  for (size_t nodes : node_counts) std::printf("  %5zu nodes", nodes);
  std::printf("\n");
  for (const auto& [key, times] : rows) {
    std::printf("%-6d %-6s", key.first, key.second.c_str());
    for (double t : times) std::printf("  %9.1fs", t);
    std::printf("\n");
  }

  std::printf("\npaper-shape checks:\n");
  auto last = [&](int stage, const std::string& alg) {
    return rows[{stage, alg}].back();
  };
  auto first = [&](int stage, const std::string& alg) {
    return rows[{stage, alg}].front();
  };
  std::printf("  stage 1 at 10 nodes: BTO %.1fs vs OPTO %.1fs (paper: BTO wins)\n",
              last(1, "BTO"), last(1, "OPTO"));
  std::printf("  stage 2 at 10 nodes: PK %.1fs vs BK %.1fs (paper: PK wins)\n",
              last(2, "PK"), last(2, "BK"));
  std::printf("  stage 3 at 10 nodes: OPRJ %.1fs vs BRJ %.1fs (paper: OPRJ wins at this size)\n",
              last(3, "OPRJ"), last(3, "BRJ"));
  std::printf("  kernel speedup 2->10 nodes: BK %.2fx, PK %.2fx (paper: both near-ideal)\n",
              first(2, "BK") / last(2, "BK"), first(2, "PK") / last(2, "PK"));
  std::printf("  OPRJ speedup 2->10 nodes: %.2fx (paper: limited, broadcast cost constant)\n",
              first(3, "OPRJ") / last(3, "OPRJ"));
  return 0;
}
