// Shared machinery of the experiment binaries (one per paper table or
// figure — see DESIGN.md §4): flag parsing, dataset preparation, pipeline
// execution with cluster-shaped task counts, simulated-time extraction,
// and aligned table printing.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/flags.h"
#include "data/generator.h"
#include "data/increase.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "mapreduce/cluster_model.h"
#include "mapreduce/dfs.h"

namespace fj::bench {

/// --key=value command-line flags (see common/flags.h).
using Flags = ::fj::Flags;

/// The three end-to-end combinations the paper evaluates.
struct Combo {
  join::Stage1Algorithm stage1;
  join::Stage2Algorithm stage2;
  join::Stage3Algorithm stage3;
  const char* name;
};

/// {BTO-BK-BRJ, BTO-PK-BRJ, BTO-PK-OPRJ}.
const std::vector<Combo>& PaperCombos();

/// Builds a JoinConfig for `combo` with task counts shaped like the
/// paper's Hadoop configuration on an `nodes`-node cluster (4 map + 4
/// reduce slots per node, ~2 map waves).
join::JoinConfig MakeConfig(const Combo& combo, size_t nodes);

/// Cluster model for `nodes` nodes with the experiment's work_scale.
mr::ClusterConfig MakeCluster(size_t nodes, double work_scale);

/// The default extrapolation from the local base dataset to the paper's
/// dataset sizes (see ClusterConfig::work_scale): the paper's DBLP×10 is
/// ~3000x the local base×2 dataset, and the C++ engine's per-record cost
/// is roughly an order of magnitude below Hadoop 0.20's.
inline constexpr double kDefaultWorkScale = 20000.0;

/// Writes a DBLP×factor-like dataset to `dfs` under `name`. Returns the
/// record count.
size_t PrepareSelfData(mr::Dfs* dfs, const std::string& name,
                       size_t base_records, size_t factor, uint64_t seed);

/// Writes DBLP×factor under `r_name` and CITESEERX×factor (with injected
/// cross-catalog overlap) under `s_name`.
void PrepareRSData(mr::Dfs* dfs, const std::string& r_name,
                   const std::string& s_name, size_t r_base, size_t s_base,
                   size_t factor, uint64_t seed);

/// Simulated per-stage + total seconds of a finished pipeline run.
struct StageTimes {
  double stage1 = 0;
  double stage2 = 0;
  double stage3 = 0;
  double total() const { return stage1 + stage2 + stage3; }
};

StageTimes Simulate(const join::JoinRunResult& result,
                    const mr::ClusterConfig& cluster);

/// MEASURED per-stage host wall seconds of a finished run (sums of the
/// jobs' wall_seconds) — the real-execution complement of Simulate.
StageTimes Measured(const join::JoinRunResult& result);

/// One repeated pipeline execution: per-stage element-wise minimum
/// simulated times across the repetitions (minimum-of-N strips scheduler /
/// allocator noise from the metered task costs — each local task runs only
/// micro- to milliseconds), plus the last run's full result for counters
/// and output files.
struct RepeatedRun {
  StageTimes times;              ///< element-wise min across reps
  StageTimes measured;           ///< measured host walls, min across reps
  join::JoinRunResult last_run;  ///< for counters / output inspection
};

/// Runs the self-join pipeline `reps` times (>= 1).
Result<RepeatedRun> RunSelfRepeated(mr::Dfs* dfs, const std::string& input,
                                    const std::string& prefix,
                                    const join::JoinConfig& config,
                                    const mr::ClusterConfig& cluster,
                                    size_t reps);

/// R-S variant of RunSelfRepeated.
Result<RepeatedRun> RunRSRepeated(mr::Dfs* dfs, const std::string& r,
                                  const std::string& s,
                                  const std::string& prefix,
                                  const join::JoinConfig& config,
                                  const mr::ClusterConfig& cluster,
                                  size_t reps);

/// Prints "== <figure/table id>: <title> ==" with the workload line.
void PrintExperimentHeader(const std::string& id, const std::string& title,
                           const std::string& workload);

}  // namespace fj::bench
