// Kernel microbenchmarks (google-benchmark): the single-node machinery
// under stage 2 — PPJoin+ vs PPJoin vs All-Pairs vs the naive joiner, the
// verification merge, the suffix filter, and the tokenizers. Supports the
// paper's claim hierarchy: filters cut candidates, candidates dominate
// kernel cost.
//
// Besides the interactive google-benchmark mode, `--bench_json=PATH`
// switches to a machine-readable mode that times the kernel variants and
// writes one JSON document (variant, records, threshold, seconds, and the
// full PPJoinStats counters) — the artifact checked in as
// BENCH_kernel.json and smoke-tested by CI. `--bench_json_records=N`
// overrides the default corpus size (8000).
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "common/random.h"
#include "common/timer.h"
#include "data/generator.h"
#include "ppjoin/allpairs.h"
#include "ppjoin/naive.h"
#include "ppjoin/ppjoin.h"
#include "similarity/filters.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace {

using fj::ppjoin::TokenSetRecord;
using fj::sim::SimilarityFunction;
using fj::sim::SimilaritySpec;

/// Token-set records derived from the synthetic DBLP-like generator, so
/// microbenchmarks see the same skew as the pipeline benches.
std::vector<TokenSetRecord> BenchRecords(size_t n) {
  auto records = fj::data::GenerateRecords(fj::data::DblpLikeConfig(n, 42));
  fj::text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  for (const auto& r : records) {
    tokenized.push_back(tokenizer.Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering =
      fj::text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<TokenSetRecord> sets;
  sets.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    sets.push_back(
        TokenSetRecord{records[i].rid, ordering.ToSortedIds(tokenized[i])});
  }
  return sets;
}

const SimilaritySpec kSpec(SimilarityFunction::kJaccard, 0.8);

void BM_SelfJoinPPJoinPlus(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pairs = fj::ppjoin::PPJoinSelfJoin(records, kSpec);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinPPJoinPlus)->Arg(500)->Arg(2000)->Arg(8000);

void BM_SelfJoinPPJoin(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  fj::ppjoin::PPJoinOptions options;
  options.use_suffix_filter = false;
  for (auto _ : state) {
    auto pairs = fj::ppjoin::PPJoinSelfJoin(records, kSpec, options);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinPPJoin)->Arg(500)->Arg(2000)->Arg(8000);

void BM_SelfJoinAllPairs(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pairs = fj::ppjoin::AllPairsSelfJoin(records, kSpec);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinAllPairs)->Arg(500)->Arg(2000)->Arg(8000);

void BM_SelfJoinNaive(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pairs = fj::ppjoin::NaiveSelfJoin(records, kSpec);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinNaive)->Arg(500)->Arg(2000);

void BM_VerifyOverlap(benchmark::State& state) {
  fj::Rng rng(7);
  std::vector<fj::sim::TokenId> x, y;
  for (fj::sim::TokenId t = 0; t < 64; ++t) {
    if (rng.NextBool(0.5)) x.push_back(t);
    if (rng.NextBool(0.5)) y.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fj::sim::VerifyOverlap(x, y, 0, 0, 0, 8));
  }
}
BENCHMARK(BM_VerifyOverlap);

void BM_SuffixFilter(benchmark::State& state) {
  fj::Rng rng(9);
  std::vector<fj::sim::TokenId> x, y;
  for (fj::sim::TokenId t = 0; t < 48; ++t) {
    if (rng.NextBool(0.5)) x.push_back(t);
    if (rng.NextBool(0.5)) y.push_back(t);
  }
  fj::sim::SuffixFilter filter(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayQualify(x, y, 12));
  }
}
BENCHMARK(BM_SuffixFilter);

void BM_WordTokenizer(benchmark::State& state) {
  fj::text::WordTokenizer tokenizer;
  std::string text =
      "Efficient Parallel Set-Similarity Joins Using MapReduce, "
      "Rares Vernica, Michael J. Carey, Chen Li";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_WordTokenizer);

void BM_QGramTokenizer(benchmark::State& state) {
  fj::text::QGramTokenizer tokenizer(3);
  std::string text = "Efficient Parallel Set-Similarity Joins Using MapReduce";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_QGramTokenizer);

/// One timed kernel variant for the JSON report: best-of-`reps` wall time
/// of a full PPJoinSelfJoin plus the stats of one run.
void AppendVariantJson(std::ostream& out, const char* name,
                       const std::vector<TokenSetRecord>& records,
                       fj::ppjoin::PPJoinOptions options, bool first) {
  fj::ppjoin::PPJoinStats stats;
  size_t pairs = fj::ppjoin::PPJoinSelfJoin(records, kSpec, options, &stats)
                     .size();  // warm-up + counters
  int reps = records.size() <= 2000 ? 20 : 5;
  double best = -1.0;
  for (int r = 0; r < reps; ++r) {
    fj::WallTimer timer;
    auto result = fj::ppjoin::PPJoinSelfJoin(records, kSpec, options);
    double seconds = timer.ElapsedSeconds();
    benchmark::DoNotOptimize(result);
    if (best < 0 || seconds < best) best = seconds;
  }
  if (!first) out << ",\n";
  out << "    {\"variant\": \"" << name << "\""
      << ", \"seconds\": " << best << ", \"pairs\": " << pairs
      << ", \"probes\": " << stats.probes
      << ", \"candidates\": " << stats.candidates
      << ", \"positional_pruned\": " << stats.positional_pruned
      << ", \"suffix_pruned\": " << stats.suffix_pruned
      << ", \"bitmap_pruned\": " << stats.bitmap_pruned
      << ", \"verified\": " << stats.verified
      << ", \"results\": " << stats.results
      << ", \"evicted_records\": " << stats.evicted_records
      << ", \"hash_lookups_avoided\": " << stats.hash_lookups_avoided
      << ", \"arena_bytes\": " << stats.arena_bytes
      << ", \"peak_resident_tokens\": " << stats.peak_resident_tokens
      << "}";
}

int RunJsonBench(const std::string& path, size_t n) {
  auto records = BenchRecords(n);
  std::ofstream out(path);
  if (!out) {
    fprintf(stderr, "cannot open %s for writing\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_kernel_micro\",\n"
      << "  \"records\": " << n << ",\n"
      << "  \"similarity\": \"jaccard\",\n"
      << "  \"threshold\": " << kSpec.tau() << ",\n  \"variants\": [\n";
  fj::ppjoin::PPJoinOptions plus;
  AppendVariantJson(out, "ppjoin_plus", records, plus, /*first=*/true);
  fj::ppjoin::PPJoinOptions plus_nobitmap;
  plus_nobitmap.use_bitmap_filter = false;
  AppendVariantJson(out, "ppjoin_plus_nobitmap", records, plus_nobitmap,
                    /*first=*/false);
  fj::ppjoin::PPJoinOptions ppjoin;
  ppjoin.use_suffix_filter = false;
  AppendVariantJson(out, "ppjoin", records, ppjoin, /*first=*/false);
  fj::ppjoin::PPJoinOptions allpairs;
  allpairs.use_suffix_filter = false;
  allpairs.use_positional_filter = false;
  AppendVariantJson(out, "allpairs", records, allpairs, /*first=*/false);
  out << "\n  ]\n}\n";
  printf("wrote %s (%zu records)\n", path.c_str(), n);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Strip our own flags before google-benchmark sees the command line.
  std::string json_path;
  size_t json_records = 8000;
  int kept = 0;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--bench_json=", 13) == 0) {
      json_path = argv[i] + 13;
    } else if (std::strncmp(argv[i], "--bench_json_records=", 21) == 0) {
      json_records = static_cast<size_t>(std::strtoull(argv[i] + 21,
                                                       nullptr, 10));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!json_path.empty()) return RunJsonBench(json_path, json_records);

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
