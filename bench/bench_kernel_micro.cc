// Kernel microbenchmarks (google-benchmark): the single-node machinery
// under stage 2 — PPJoin+ vs PPJoin vs All-Pairs vs the naive joiner, the
// verification merge, the suffix filter, and the tokenizers. Supports the
// paper's claim hierarchy: filters cut candidates, candidates dominate
// kernel cost.
#include <benchmark/benchmark.h>

#include "common/random.h"
#include "data/generator.h"
#include "ppjoin/allpairs.h"
#include "ppjoin/naive.h"
#include "ppjoin/ppjoin.h"
#include "similarity/filters.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace {

using fj::ppjoin::TokenSetRecord;
using fj::sim::SimilarityFunction;
using fj::sim::SimilaritySpec;

/// Token-set records derived from the synthetic DBLP-like generator, so
/// microbenchmarks see the same skew as the pipeline benches.
std::vector<TokenSetRecord> BenchRecords(size_t n) {
  auto records = fj::data::GenerateRecords(fj::data::DblpLikeConfig(n, 42));
  fj::text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  std::vector<std::vector<std::string>> tokenized;
  for (const auto& r : records) {
    tokenized.push_back(tokenizer.Tokenize(r.JoinAttribute()));
    for (const auto& t : tokenized.back()) counts[t]++;
  }
  auto ordering =
      fj::text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<TokenSetRecord> sets;
  sets.reserve(records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    sets.push_back(
        TokenSetRecord{records[i].rid, ordering.ToSortedIds(tokenized[i])});
  }
  return sets;
}

const SimilaritySpec kSpec(SimilarityFunction::kJaccard, 0.8);

void BM_SelfJoinPPJoinPlus(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pairs = fj::ppjoin::PPJoinSelfJoin(records, kSpec);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinPPJoinPlus)->Arg(500)->Arg(2000)->Arg(8000);

void BM_SelfJoinPPJoin(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  fj::ppjoin::PPJoinOptions options;
  options.use_suffix_filter = false;
  for (auto _ : state) {
    auto pairs = fj::ppjoin::PPJoinSelfJoin(records, kSpec, options);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinPPJoin)->Arg(500)->Arg(2000)->Arg(8000);

void BM_SelfJoinAllPairs(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pairs = fj::ppjoin::AllPairsSelfJoin(records, kSpec);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinAllPairs)->Arg(500)->Arg(2000)->Arg(8000);

void BM_SelfJoinNaive(benchmark::State& state) {
  auto records = BenchRecords(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto pairs = fj::ppjoin::NaiveSelfJoin(records, kSpec);
    benchmark::DoNotOptimize(pairs);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SelfJoinNaive)->Arg(500)->Arg(2000);

void BM_VerifyOverlap(benchmark::State& state) {
  fj::Rng rng(7);
  std::vector<fj::sim::TokenId> x, y;
  for (fj::sim::TokenId t = 0; t < 64; ++t) {
    if (rng.NextBool(0.5)) x.push_back(t);
    if (rng.NextBool(0.5)) y.push_back(t);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fj::sim::VerifyOverlap(x, y, 0, 0, 0, 8));
  }
}
BENCHMARK(BM_VerifyOverlap);

void BM_SuffixFilter(benchmark::State& state) {
  fj::Rng rng(9);
  std::vector<fj::sim::TokenId> x, y;
  for (fj::sim::TokenId t = 0; t < 48; ++t) {
    if (rng.NextBool(0.5)) x.push_back(t);
    if (rng.NextBool(0.5)) y.push_back(t);
  }
  fj::sim::SuffixFilter filter(2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter.MayQualify(x, y, 12));
  }
}
BENCHMARK(BM_SuffixFilter);

void BM_WordTokenizer(benchmark::State& state) {
  fj::text::WordTokenizer tokenizer;
  std::string text =
      "Efficient Parallel Set-Similarity Joins Using MapReduce, "
      "Rares Vernica, Michael J. Carey, Chen Li";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_WordTokenizer);

void BM_QGramTokenizer(benchmark::State& state) {
  fj::text::QGramTokenizer tokenizer(3);
  std::string text = "Efficient Parallel Set-Similarity Joins Using MapReduce";
  for (auto _ : state) {
    benchmark::DoNotOptimize(tokenizer.Tokenize(text));
  }
  state.SetBytesProcessed(state.iterations() * text.size());
}
BENCHMARK(BM_QGramTokenizer);

}  // namespace

BENCHMARK_MAIN();
