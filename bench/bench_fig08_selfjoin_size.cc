// Figure 8: self-join running time vs dataset size.
//
// Paper setup: DBLP×n (n = 5..25) on a 10-node cluster, Jaccard >= 0.80 on
// title+authors, three stage combinations (BTO-BK-BRJ, BTO-PK-BRJ,
// BTO-PK-OPRJ), reporting per-stage and total times.
//
// Here: DBLP-like base×factor (factor = 1..5 plays the role of ×5..×25),
// executed on the MapReduce simulator and timed on a simulated 10-node
// cluster. Expected shape (paper): stage 2 is the most expensive and grows
// fastest with size; BTO-PK-OPRJ is the fastest combination end to end.
#include <cstdio>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t max_factor = flags.GetInt("max_factor", 5);
  size_t nodes = flags.GetInt("nodes", 10);
  size_t reps = flags.GetInt("reps", 3);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Figure 8", "self-join running time vs dataset size",
      "DBLP-like base " + std::to_string(base) + " x factor 1.." +
          std::to_string(max_factor) + ", " + std::to_string(nodes) +
          " nodes, jaccard >= 0.80");

  std::printf("%-7s %-12s %9s %9s %9s %9s\n", "factor", "combo", "stage1",
              "stage2", "stage3", "total");

  auto cluster = bench::MakeCluster(nodes, work_scale);
  double best_total_largest = 0;
  std::string best_combo_largest;
  double stage2_first = 0, stage2_last = 0, stage1_first = 0, stage1_last = 0;

  for (size_t factor = 1; factor <= max_factor; ++factor) {
    mr::Dfs dfs;
    size_t records =
        bench::PrepareSelfData(&dfs, "dblp", base, factor, /*seed=*/42);
    for (const auto& combo : bench::PaperCombos()) {
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunSelfRepeated(&dfs, "dblp",
                                        std::string("f8-") + combo.name +
                                            "-" + std::to_string(factor),
                                        config, cluster, reps);
      if (!run.ok()) {
        std::printf("%-7zu %-12s FAILED: %s\n", factor, combo.name,
                    run.status().ToString().c_str());
        continue;
      }
      const auto& times = run->times;
      std::printf("%-7zu %-12s %8.1fs %8.1fs %8.1fs %8.1fs\n", factor,
                  combo.name, times.stage1, times.stage2, times.stage3,
                  times.total());
      if (std::string(combo.name) == "BTO-PK-BRJ") {
        if (factor == 1) {
          stage1_first = times.stage1;
          stage2_first = times.stage2;
        }
        if (factor == max_factor) {
          stage1_last = times.stage1;
          stage2_last = times.stage2;
        }
      }
      if (factor == max_factor &&
          (best_combo_largest.empty() || times.total() < best_total_largest)) {
        best_total_largest = times.total();
        best_combo_largest = combo.name;
      }
    }
    std::printf("        (%zu records)\n", records);
  }

  std::printf("\npaper-shape checks:\n");
  std::printf("  fastest combo at largest factor: %s (paper: BTO-PK-OPRJ)\n",
              best_combo_largest.c_str());
  std::printf(
      "  stage-2 growth %0.1fx vs stage-1 growth %0.1fx over the sweep "
      "(paper: stage 2 grows fastest)\n",
      stage2_first > 0 ? stage2_last / stage2_first : 0,
      stage1_first > 0 ? stage1_last / stage1_first : 0);
  return 0;
}
