// Figures 9 and 10: self-join speedup.
//
// Paper setup: DBLP×10 fixed, cluster grown from 2 to 10 nodes; Figure 9
// reports absolute times per combination (with ideal-speedup guide lines),
// Figure 10 the relative speedup (2-node time / N-node time).
//
// Here: fixed DBLP-like base×factor dataset; for each simulated node count
// the pipeline re-runs with Hadoop-shaped task counts (4+4 slots per node)
// and is timed on the matching simulated cluster. Expected shape (paper):
// all three combinations speed up sub-linearly (single-reducer stage-1
// phases and OPRJ's per-task broadcast load do not parallelize);
// BTO-PK-OPRJ is fastest in every setting.
//
// Besides the simulated curves, the experiment reports MEASURED host
// wall-clock: the same table with real seconds, plus a host thread sweep
// (--local_threads caps it) that runs the standard workload at 1..N
// executor workers, checks the join output is byte-identical at every
// thread count, and reports the real speedup of the work-stealing
// runtime. `--bench_json=PATH` writes the sweep as JSON (checked in as
// BENCH_parallel.json at the repo root and smoke-tested by CI).
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "bench_util.h"

namespace {

struct ThreadPoint {
  size_t threads = 0;
  double measured_seconds = 0;
  double speedup = 0;
  bool output_identical = false;
};

struct ThreadSweep {
  size_t hardware_concurrency = 0;
  size_t records = 0;
  size_t reps = 0;
  std::vector<ThreadPoint> points;
};

int WriteJson(const ThreadSweep& sweep, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << "{\n  \"benchmark\": \"bench_fig09_selfjoin_speedup\",\n";
  out << "  \"hardware_concurrency\": " << sweep.hardware_concurrency
      << ",\n";
  out << "  \"records\": " << sweep.records << ",\n";
  out << "  \"reps\": " << sweep.reps << ",\n";
  out << "  \"thread_sweep\": [\n";
  for (size_t i = 0; i < sweep.points.size(); ++i) {
    const ThreadPoint& p = sweep.points[i];
    out << "    {\"threads\": " << p.threads << ", \"measured_seconds\": "
        << p.measured_seconds << ", \"speedup\": " << p.speedup
        << ", \"output_identical\": "
        << (p.output_identical ? "true" : "false") << "}"
        << (i + 1 < sweep.points.size() ? "," : "") << "\n";
  }
  out << "  ]\n}\n";
  return out.good() ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);
  // Upper bound of the host thread sweep (0 = hardware concurrency).
  size_t max_threads = flags.GetInt("local_threads", 8);
  std::string json_path = flags.GetString("bench_json", "");

  bench::PrintExperimentHeader(
      "Figures 9 + 10", "self-join speedup (absolute and relative)",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + " fixed, nodes 2..10");

  mr::Dfs dfs;
  size_t records = bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);

  std::vector<size_t> node_counts{2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<std::vector<double>> totals(bench::PaperCombos().size());
  std::vector<std::vector<double>> measured(bench::PaperCombos().size());

  std::printf("[Figure 9] absolute running time (simulated cluster seconds)\n");
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf(" %12s\n", "ideal(PK-OPRJ)");

  for (size_t nodes : node_counts) {
    auto cluster = bench::MakeCluster(nodes, work_scale);
    std::printf("%-7zu", nodes);
    for (size_t c = 0; c < bench::PaperCombos().size(); ++c) {
      const auto& combo = bench::PaperCombos()[c];
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunSelfRepeated(
          &dfs, "dblp",
          std::string("f9-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        std::printf(" %12s", "FAILED");
        totals[c].push_back(0);
        measured[c].push_back(0);
        continue;
      }
      totals[c].push_back(run->times.total());
      measured[c].push_back(run->measured.total());
      std::printf(" %11.1fs", run->times.total());
    }
    // Ideal: the 2-node time of the last combo scaled by 2/nodes.
    double ideal = totals.back().front() * 2.0 / static_cast<double>(nodes);
    std::printf(" %11.1fs\n", ideal);
  }

  // The same grid in real host seconds. The node count only reshapes the
  // task counts here (execution concurrency is the executor's), so this
  // column shows what the task-shape change alone costs the host.
  std::printf("\n[Figure 9, measured] host wall-clock seconds (min of %zu)\n",
              reps);
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf("\n");
  for (size_t i = 0; i < node_counts.size(); ++i) {
    std::printf("%-7zu", node_counts[i]);
    for (size_t c = 0; c < measured.size(); ++c) {
      std::printf(" %11.3fs", measured[c][i]);
    }
    std::printf("\n");
  }

  std::printf("\n[Figure 10] relative speedup (time at 2 nodes / time at N)\n");
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf(" %12s\n", "ideal");
  for (size_t i = 0; i < node_counts.size(); ++i) {
    std::printf("%-7zu", node_counts[i]);
    for (size_t c = 0; c < totals.size(); ++c) {
      double speedup =
          totals[c][i] > 0 ? totals[c].front() / totals[c][i] : 0;
      std::printf(" %11.2fx", speedup);
    }
    std::printf(" %11.2fx\n", node_counts[i] / 2.0);
  }

  std::printf("\npaper-shape checks:\n");
  bool all_sublinear = true;
  for (size_t c = 0; c < totals.size(); ++c) {
    double final_speedup = totals[c].front() / totals[c].back();
    double ideal = node_counts.back() / 2.0;
    std::printf("  %s: %.2fx at %zu nodes (ideal %.1fx)\n",
                bench::PaperCombos()[c].name, final_speedup,
                node_counts.back(), ideal);
    if (final_speedup >= ideal) all_sublinear = false;
  }
  std::printf("  all combinations speed up sub-linearly: %s (paper: yes)\n",
              all_sublinear ? "yes" : "NO");

  // ---- Host thread sweep: MEASURED speedup of the parallel runtime ----
  // Standard workload: BTO-PK-BRJ with 10-node task shape (80 map + 40
  // reduce tasks per job — plenty of graph width), re-run at 1..N executor
  // workers. Output must be byte-identical at every thread count.
  const size_t hw = std::thread::hardware_concurrency();
  if (max_threads == 0) max_threads = hw > 0 ? hw : 1;
  std::vector<size_t> thread_counts;
  for (size_t t = 1; t <= max_threads; t *= 2) thread_counts.push_back(t);

  std::printf("\n[measured thread sweep] BTO-PK-BRJ, 10-node task shape, "
              "host concurrency %zu\n", hw);
  std::printf("%-9s %14s %9s %10s\n", "threads", "wall(min of N)", "speedup",
              "output");

  ThreadSweep sweep;
  sweep.hardware_concurrency = hw;
  sweep.records = records;
  sweep.reps = reps;
  auto sweep_cluster = bench::MakeCluster(10, work_scale);
  const std::vector<std::string>* baseline_output = nullptr;
  double baseline_seconds = 0;
  for (size_t threads : thread_counts) {
    auto config = bench::MakeConfig(bench::PaperCombos()[1], 10);
    config.local_threads = threads;
    auto run = bench::RunSelfRepeated(&dfs, "dblp",
                                      "sweep-t" + std::to_string(threads),
                                      config, sweep_cluster, reps);
    if (!run.ok()) {
      std::fprintf(stderr, "thread sweep failed at %zu threads: %s\n",
                   threads, run.status().ToString().c_str());
      return 1;
    }
    auto output = dfs.ReadFile(run->last_run.output_file);
    if (!output.ok()) {
      std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
      return 1;
    }
    ThreadPoint point;
    point.threads = threads;
    point.measured_seconds = run->measured.total();
    if (baseline_output == nullptr) {
      baseline_output = *output;
      baseline_seconds = point.measured_seconds;
      point.output_identical = true;
    } else {
      point.output_identical = (**output == *baseline_output);
    }
    point.speedup = point.measured_seconds > 0
                        ? baseline_seconds / point.measured_seconds
                        : 0;
    std::printf("%-9zu %13.3fs %8.2fx %10s\n", threads,
                point.measured_seconds, point.speedup,
                point.output_identical ? "identical" : "DIFFERS");
    if (!point.output_identical) {
      std::fprintf(stderr,
                   "FATAL: join output changed at %zu threads\n", threads);
      return 1;
    }
    sweep.points.push_back(point);
  }

  // Acceptance check: >=2x measured speedup at 4 threads. Enforced (exit
  // code 1 on FAIL) so the CI smoke step catches speedup regressions, not
  // just output drift. Only meaningful when the host actually has >=4
  // cores (CI does; small containers may not) — skipped, not failed,
  // elsewhere.
  int exit_code = 0;
  bool checked = false;
  for (const ThreadPoint& p : sweep.points) {
    if (p.threads != 4) continue;
    checked = true;
    if (hw >= 4) {
      const bool pass = p.speedup >= 2.0;
      std::printf("  measured speedup at 4 threads: %.2fx (target >=2x): %s\n",
                  p.speedup, pass ? "PASS" : "FAIL");
      if (!pass) exit_code = 1;
    } else {
      std::printf("  measured speedup at 4 threads: %.2fx — target check "
                  "skipped (host has only %zu core%s)\n",
                  p.speedup, hw, hw == 1 ? "" : "s");
    }
  }
  if (!checked) {
    std::printf("  4-thread point not in sweep (max_threads=%zu) — target "
                "check skipped\n", max_threads);
  }

  if (!json_path.empty()) {
    int json_rc = WriteJson(sweep, json_path);
    if (json_rc != 0) exit_code = json_rc;
  }
  return exit_code;
}
