// Figures 9 and 10: self-join speedup.
//
// Paper setup: DBLP×10 fixed, cluster grown from 2 to 10 nodes; Figure 9
// reports absolute times per combination (with ideal-speedup guide lines),
// Figure 10 the relative speedup (2-node time / N-node time).
//
// Here: fixed DBLP-like base×factor dataset; for each simulated node count
// the pipeline re-runs with Hadoop-shaped task counts (4+4 slots per node)
// and is timed on the matching simulated cluster. Expected shape (paper):
// all three combinations speed up sub-linearly (single-reducer stage-1
// phases and OPRJ's per-task broadcast load do not parallelize);
// BTO-PK-OPRJ is fastest in every setting.
#include <cstdio>
#include <vector>

#include "bench_util.h"

int main(int argc, char** argv) {
  using namespace fj;
  bench::Flags flags(argc, argv);
  size_t base = flags.GetInt("base", 2000);
  size_t factor = flags.GetInt("factor", 2);
  size_t reps = flags.GetInt("reps", 5);
  double work_scale = flags.GetDouble("work_scale", bench::kDefaultWorkScale);

  bench::PrintExperimentHeader(
      "Figures 9 + 10", "self-join speedup (absolute and relative)",
      "DBLP-like base " + std::to_string(base) + " x" +
          std::to_string(factor) + " fixed, nodes 2..10");

  mr::Dfs dfs;
  bench::PrepareSelfData(&dfs, "dblp", base, factor, 42);

  std::vector<size_t> node_counts{2, 3, 4, 5, 6, 7, 8, 9, 10};
  std::vector<std::vector<double>> totals(bench::PaperCombos().size());

  std::printf("[Figure 9] absolute running time (seconds)\n");
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf(" %12s\n", "ideal(PK-OPRJ)");

  for (size_t nodes : node_counts) {
    auto cluster = bench::MakeCluster(nodes, work_scale);
    std::printf("%-7zu", nodes);
    for (size_t c = 0; c < bench::PaperCombos().size(); ++c) {
      const auto& combo = bench::PaperCombos()[c];
      auto config = bench::MakeConfig(combo, nodes);
      auto run = bench::RunSelfRepeated(
          &dfs, "dblp",
          std::string("f9-") + combo.name + "-" + std::to_string(nodes),
          config, cluster, reps);
      if (!run.ok()) {
        std::printf(" %12s", "FAILED");
        totals[c].push_back(0);
        continue;
      }
      totals[c].push_back(run->times.total());
      std::printf(" %11.1fs", run->times.total());
    }
    // Ideal: the 2-node time of the last combo scaled by 2/nodes.
    double ideal = totals.back().front() * 2.0 / static_cast<double>(nodes);
    std::printf(" %11.1fs\n", ideal);
  }

  std::printf("\n[Figure 10] relative speedup (time at 2 nodes / time at N)\n");
  std::printf("%-7s", "nodes");
  for (const auto& combo : bench::PaperCombos()) {
    std::printf(" %12s", combo.name);
  }
  std::printf(" %12s\n", "ideal");
  for (size_t i = 0; i < node_counts.size(); ++i) {
    std::printf("%-7zu", node_counts[i]);
    for (size_t c = 0; c < totals.size(); ++c) {
      double speedup =
          totals[c][i] > 0 ? totals[c].front() / totals[c][i] : 0;
      std::printf(" %11.2fx", speedup);
    }
    std::printf(" %11.2fx\n", node_counts[i] / 2.0);
  }

  std::printf("\npaper-shape checks:\n");
  bool all_sublinear = true;
  for (size_t c = 0; c < totals.size(); ++c) {
    double final_speedup = totals[c].front() / totals[c].back();
    double ideal = node_counts.back() / 2.0;
    std::printf("  %s: %.2fx at %zu nodes (ideal %.1fx)\n",
                bench::PaperCombos()[c].name, final_speedup,
                node_counts.back(), ideal);
    if (final_speedup >= ideal) all_sublinear = false;
  }
  std::printf("  all combinations speed up sub-linearly: %s (paper: yes)\n",
              all_sublinear ? "yes" : "NO");
  return 0;
}
