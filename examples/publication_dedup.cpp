// Near-duplicate detection in a bibliographic corpus — the paper's DBLP
// scenario at a laptop-friendly scale.
//
// Generates a synthetic DBLP-like dataset with injected near-duplicates,
// optionally increases it n-fold with the paper's token-shift technique,
// self-joins it (Jaccard >= 0.8 on title+authors), and reports per-stage
// timing, filter counters, and simulated 10-node cluster time.
//
//   $ ./examples/publication_dedup [num_records] [increase_factor]
#include <cstdio>
#include <cstdlib>

#include "data/generator.h"
#include "data/increase.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "mapreduce/cluster_model.h"

int main(int argc, char** argv) {
  size_t num_records = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 2000;
  size_t factor = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1;

  // Synthesize a corpus with ~15% near-duplicate records.
  auto records =
      fj::data::GenerateRecords(fj::data::DblpLikeConfig(num_records));
  if (factor > 1) {
    auto increased = fj::data::IncreaseDataset(records, factor);
    if (!increased.ok()) {
      std::fprintf(stderr, "%s\n", increased.status().ToString().c_str());
      return 1;
    }
    records = std::move(increased).value();
  }
  std::printf("dataset: %zu records (~%zu KB)\n", records.size(),
              records.size() * 260 / 1024);

  fj::mr::Dfs dfs;
  if (auto s = dfs.WriteFile("dblp", fj::data::RecordsToLines(records));
      !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // The paper's recommended robust combination: BTO-PK-BRJ.
  fj::join::JoinConfig config;
  config.stage1 = fj::join::Stage1Algorithm::kBTO;
  config.stage2 = fj::join::Stage2Algorithm::kPK;
  config.stage3 = fj::join::Stage3Algorithm::kBRJ;
  config.num_map_tasks = 16;
  config.num_reduce_tasks = 40;  // 10 nodes x 4 reduce slots
  // Hadoop-style bounded map-side sort buffer (io.sort.mb): map output
  // beyond this spills to task-local disk as sorted runs that the reduce
  // side merges. The join result is identical; only memory/disk shift.
  config.sort_buffer_bytes = 64 << 10;

  auto result = fj::join::RunSelfJoin(&dfs, "dblp", "dedup", config);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto pairs = fj::join::ReadJoinedPairs(dfs, result->output_file);
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }

  std::printf("\nnear-duplicate pairs found: %zu\n", pairs->size());
  size_t shown = 0;
  for (const auto& jp : *pairs) {
    if (shown++ >= 3) break;
    std::printf("  %.3f  \"%s\"  ~  \"%s\"\n", jp.similarity,
                jp.first.title.c_str(), jp.second.title.c_str());
  }
  if (pairs->size() > shown) std::printf("  ... and %zu more\n",
                                         pairs->size() - shown);

  // Per-stage breakdown, local and simulated on the paper's 10-node rig.
  fj::mr::ClusterConfig cluster;  // 10 nodes, 4+4 slots
  std::printf("\n%-10s %8s %14s\n", "stage", "local", "10-node (sim)");
  for (size_t i = 0; i < result->stages.size(); ++i) {
    const auto& stage = result->stages[i];
    double local = 0;
    for (const auto& job : stage.jobs) local += job.wall_seconds;
    std::printf("%-10s %7.2fs %13.2fs\n", stage.stage_name.c_str(), local,
                result->SimulatedStageSeconds(i, cluster));
  }
  std::printf("%-10s %7.2fs %13.2fs\n", "total", result->TotalWallSeconds(),
              result->SimulatedSeconds(cluster));

  // Kernel filter effectiveness.
  const auto& kernel_counters = result->stages[1].jobs[0].counters;
  std::printf("\nkernel counters:\n");
  for (const auto& [name, value] : kernel_counters.Snapshot()) {
    std::printf("  %-36s %lld\n", name.c_str(),
                static_cast<long long>(value));
  }
  return 0;
}
