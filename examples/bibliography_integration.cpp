// Cross-catalog bibliography integration — the paper's DBLP ⋈ CITESEERX
// R-S join at laptop scale.
//
// Two catalogs describe overlapping sets of publications with different
// metadata quality (CITESEERX-like records are ~5x larger: abstracts and
// reference URLs). The R-S join links records describing the same paper so
// the catalogs can be merged. Demonstrates: R-S pipeline, stage 1 on the
// smaller relation, the length-class interleaving of Section 4, and the
// OPRJ out-of-memory fallback to BRJ.
//
//   $ ./examples/bibliography_integration [r_records] [s_records]
#include <cstdio>
#include <cstdlib>

#include "data/generator.h"
#include "fuzzyjoin/fuzzyjoin.h"

int main(int argc, char** argv) {
  size_t nr = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  size_t ns = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 1200;

  auto dblp = fj::data::GenerateRecords(fj::data::DblpLikeConfig(nr));
  auto citeseer =
      fj::data::GenerateRecords(fj::data::CiteseerxLikeConfig(ns));
  // ~30% of CITESEERX-like records describe publications that also exist
  // in the DBLP-like catalog, with small metadata differences.
  fj::data::InjectOverlap(dblp, 0.30, /*max_edits=*/1, /*seed=*/77,
                          &citeseer);

  fj::mr::Dfs dfs;
  if (!dfs.WriteFile("dblp", fj::data::RecordsToLines(dblp)).ok() ||
      !dfs.WriteFile("citeseerx", fj::data::RecordsToLines(citeseer)).ok()) {
    std::fprintf(stderr, "dfs write failed\n");
    return 1;
  }
  std::printf("R = dblp-like (%zu records), S = citeseerx-like (%zu records)\n",
              dblp.size(), citeseer.size());

  fj::join::JoinConfig config;
  config.tau = 0.80;
  config.stage2 = fj::join::Stage2Algorithm::kPK;
  // Try the one-phase record join first, with a deliberately small memory
  // budget, and fall back to BRJ when it cannot hold the RID-pair list —
  // exactly the failure mode the paper hit at increase factor 25.
  config.stage3 = fj::join::Stage3Algorithm::kOPRJ;
  config.oprj_memory_limit_bytes = 16 * 1024;

  auto result = fj::join::RunRSJoin(&dfs, "dblp", "citeseerx", "link", config);
  if (!result.ok() &&
      result.status().code() == fj::StatusCode::kResourceExhausted) {
    std::printf("OPRJ hit its memory budget (%s)\n",
                result.status().message().c_str());
    std::printf("-> falling back to the two-phase BRJ record join\n\n");
    config.stage3 = fj::join::Stage3Algorithm::kBRJ;
    result = fj::join::RunRSJoin(&dfs, "dblp", "citeseerx", "link2", config);
  }
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  auto pairs = fj::join::ReadJoinedPairs(dfs, result->output_file);
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }

  std::printf("catalog links found: %zu\n\n", pairs->size());
  size_t shown = 0;
  for (const auto& jp : *pairs) {
    if (shown++ >= 3) break;
    std::printf("  sim %.3f\n    dblp      [%llu] %s\n    citeseerx [%llu] %s\n",
                jp.similarity,
                static_cast<unsigned long long>(jp.first.rid),
                jp.first.title.c_str(),
                static_cast<unsigned long long>(jp.second.rid),
                jp.second.title.c_str());
  }
  if (pairs->size() > shown) {
    std::printf("  ... and %zu more\n", pairs->size() - shown);
  }

  std::printf("\nstage breakdown (local):\n");
  for (const auto& stage : result->stages) {
    double seconds = 0;
    uint64_t shuffled = 0;
    for (const auto& job : stage.jobs) {
      seconds += job.wall_seconds;
      shuffled += job.shuffle_bytes;
    }
    std::printf("  %-8s %6.2fs  %8.1f KB shuffled\n",
                stage.stage_name.c_str(), seconds, shuffled / 1024.0);
  }
  return 0;
}
