// Approximate string matching with edit distance — the paper's footnote 1
// ("the techniques described in this paper can also be used for
// approximate string search using the edit or Levenshtein distance") and
// its master-data-management motivation: detecting that "John W. Smith",
// "Jon W. Smith", and "John W Smith" may refer to the same person.
//
// Shows both layers of edit-distance support:
//   1. EditDistanceSelfJoin — q-gram prefix filter + banded verification;
//   2. the MapReduce pipeline with a q-gram tokenizer and Jaccard, whose
//      candidates over-approximate an edit-distance predicate.
//
//   $ ./examples/approximate_name_matching
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/record.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "similarity/edit_distance.h"
#include "text/tokenizer.h"

namespace {

std::vector<std::string> CustomerNames() {
  std::vector<std::string> names{
      "john w smith",     "jon w smith",      "john w smyth",
      "maria garcia",     "maria garzia",     "mariah garcia",
      "wei zhang",        "wei zang",         "rares vernica",
      "rares vernika",    "michael carey",    "michael carrey",
      "chen li",          "chen lee",         "grace hopper",
      "alan turing",      "ada lovelace",     "edsger dijkstra",
      "barbara liskov",   "donald knuth",
  };
  // Add machine-generated account names with typos.
  fj::Rng rng(99);
  size_t base = names.size();
  for (size_t i = 0; i < 200; ++i) {
    std::string name = names[rng.NextBelow(base)];
    if (rng.NextBool(0.5) && !name.empty()) {
      size_t pos = rng.NextBelow(name.size());
      name[pos] = static_cast<char>('a' + rng.NextBelow(26));
    }
    names.push_back(name);
  }
  return names;
}

}  // namespace

int main() {
  auto names = CustomerNames();
  std::printf("customer records: %zu names\n\n", names.size());

  // --- Layer 1: exact edit-distance join ------------------------------
  const size_t max_distance = 2;
  auto pairs = fj::sim::EditDistanceSelfJoin(names, max_distance, /*q=*/3);
  std::printf("[edit distance <= %zu] %zu matching pairs, e.g.:\n",
              max_distance, pairs.size());
  size_t shown = 0;
  for (const auto& pair : pairs) {
    if (pair.distance == 0) continue;  // exact duplicates are boring
    if (shown++ >= 5) break;
    std::printf("  d=%zu  \"%s\"  ~  \"%s\"\n", pair.distance,
                names[pair.index1].c_str(), names[pair.index2].c_str());
  }

  // --- Layer 2: the MapReduce pipeline with q-gram tokens -------------
  // Edit distance d on strings of length ~L implies Jaccard similarity of
  // their q-gram sets of roughly (L - qd) / (L + qd); tau = 0.6 with q = 3
  // over-approximates d <= 2 for these name lengths.
  std::vector<fj::data::Record> records;
  records.reserve(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    records.push_back(
        fj::data::Record{i + 1, names[i], /*authors=*/"", /*payload=*/""});
  }
  fj::mr::Dfs dfs;
  if (!dfs.WriteFile("names", fj::data::RecordsToLines(records)).ok()) {
    std::fprintf(stderr, "dfs write failed\n");
    return 1;
  }
  fj::join::JoinConfig config;
  config.tokenizer = std::make_shared<fj::text::QGramTokenizer>(3);
  config.function = fj::sim::SimilarityFunction::kJaccard;
  config.tau = 0.6;
  auto result = fj::join::RunSelfJoin(&dfs, "names", "qgram", config);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto joined = fj::join::ReadJoinedPairs(dfs, result->output_file);
  if (!joined.ok()) {
    std::fprintf(stderr, "%s\n", joined.status().ToString().c_str());
    return 1;
  }

  // Confirm candidates with the exact predicate.
  size_t confirmed = 0;
  for (const auto& jp : *joined) {
    if (fj::sim::WithinEditDistance(jp.first.title, jp.second.title,
                                    max_distance)) {
      ++confirmed;
    }
  }
  std::printf(
      "\n[pipeline, qgram3 jaccard >= %.2f] %zu candidate pairs, %zu "
      "confirmed at edit distance <= %zu\n",
      config.tau, joined->size(), confirmed, max_distance);
  std::printf("(the pipeline candidates are a superset; the banded DP "
              "verification is exact)\n");
  return 0;
}
