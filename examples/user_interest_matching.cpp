// Social-network user matching — the paper's Section 1 bit-vector example.
//
// Users carry interest preference vectors ("a '1' bit means interest in a
// certain domain"). Interests become tokens of the join attribute, so two
// users with mostly-overlapping interests form a set-similar pair. The
// example builds user records, runs an R-S join of "new users" against the
// existing user base (cosine >= 0.8), and prints match recommendations.
//
//   $ ./examples/user_interest_matching
#include <cstdio>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/record.h"
#include "fuzzyjoin/fuzzyjoin.h"

namespace {

constexpr const char* kDomains[] = {
    "music",   "cinema",  "hiking",    "cooking",  "databases", "chess",
    "travel",  "gaming",  "photography", "running", "painting",  "sailing",
    "history", "robotics", "astronomy", "gardening"};
constexpr size_t kNumDomains = sizeof(kDomains) / sizeof(kDomains[0]);

/// Encodes a preference bit vector as a record whose join attribute lists
/// the set bits' domain names.
fj::data::Record UserRecord(uint64_t uid, const std::vector<bool>& bits) {
  std::string interests;
  std::string vector_string;
  for (size_t d = 0; d < kNumDomains; ++d) {
    vector_string += bits[d] ? '1' : '0';
    if (bits[d]) {
      if (!interests.empty()) interests += ' ';
      interests += kDomains[d];
    }
  }
  // Title = interest set (the join attribute); payload keeps the raw bits.
  return fj::data::Record{uid, interests, "", vector_string};
}

std::vector<bool> RandomBits(fj::Rng* rng, double density) {
  std::vector<bool> bits(kNumDomains);
  for (size_t d = 0; d < kNumDomains; ++d) bits[d] = rng->NextBool(density);
  return bits;
}

}  // namespace

int main() {
  fj::Rng rng(2026);

  // Existing user base.
  std::vector<fj::data::Record> base;
  for (uint64_t uid = 1; uid <= 500; ++uid) {
    base.push_back(UserRecord(uid, RandomBits(&rng, 0.4)));
  }
  // New sign-ups: some genuinely new tastes, some near-clones of existing
  // users (friends inviting friends).
  std::vector<fj::data::Record> newcomers;
  for (uint64_t uid = 10001; uid <= 10100; ++uid) {
    std::vector<bool> bits;
    if (rng.NextBool(0.5)) {
      auto parsed = base[rng.NextBelow(base.size())].payload;
      bits.resize(kNumDomains);
      for (size_t d = 0; d < kNumDomains; ++d) bits[d] = parsed[d] == '1';
      bits[rng.NextBelow(kNumDomains)] = rng.NextBool();  // one flip
    } else {
      bits = RandomBits(&rng, 0.4);
    }
    newcomers.push_back(UserRecord(uid, bits));
  }

  fj::mr::Dfs dfs;
  if (!dfs.WriteFile("users", fj::data::RecordsToLines(base)).ok() ||
      !dfs.WriteFile("newcomers", fj::data::RecordsToLines(newcomers)).ok()) {
    std::fprintf(stderr, "dfs write failed\n");
    return 1;
  }

  // Cosine similarity suits preference vectors; the R-S join matches the
  // (smaller) user base against the newcomer stream.
  fj::join::JoinConfig config;
  config.function = fj::sim::SimilarityFunction::kCosine;
  config.tau = 0.80;
  config.stage2 = fj::join::Stage2Algorithm::kPK;
  config.stage3 = fj::join::Stage3Algorithm::kBRJ;

  auto result = fj::join::RunRSJoin(&dfs, "users", "newcomers", "match",
                                    config);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }
  auto pairs = fj::join::ReadJoinedPairs(dfs, result->output_file);
  if (!pairs.ok()) {
    std::fprintf(stderr, "%s\n", pairs.status().ToString().c_str());
    return 1;
  }

  std::printf("user-interest matches (cosine >= %.2f): %zu\n\n", config.tau,
              pairs->size());
  size_t shown = 0;
  for (const auto& jp : *pairs) {
    if (shown++ >= 5) break;
    std::printf("  new user %llu ~ user %llu (sim %.3f)\n",
                static_cast<unsigned long long>(jp.second.rid),
                static_cast<unsigned long long>(jp.first.rid), jp.similarity);
    std::printf("    shared tastes: %s | %s\n", jp.first.title.c_str(),
                jp.second.title.c_str());
  }
  if (pairs->size() > shown) {
    std::printf("  ... and %zu more\n", pairs->size() - shown);
  }
  return 0;
}
