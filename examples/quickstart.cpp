// Quickstart: the smallest end-to-end use of the library.
//
// Loads a handful of publication records, runs the full three-stage
// MapReduce set-similarity self-join (Jaccard >= 0.75 on title+authors),
// and prints every pair of similar records.
//
//   $ ./examples/quickstart
#include <cstdio>

#include "data/record.h"
#include "fuzzyjoin/fuzzyjoin.h"

int main() {
  using fj::data::Record;

  // A mini "master data management" scenario: the same people and papers
  // spelled slightly differently (the paper's Section 1 motivation).
  std::vector<Record> records{
      {1, "efficient parallel set similarity joins", "vernica carey li", ""},
      {2, "efficient parallel set similarity join", "vernica carey li", ""},
      {3, "a survey of approximate string matching", "navarro", ""},
      {4, "survey of approximate string matching", "navarro g", ""},
      {5, "mapreduce simplified data processing", "dean ghemawat", ""},
      {6, "the anatomy of a search engine", "brin page", ""},
  };

  // 1. Put the records into the (simulated) distributed file system.
  fj::mr::Dfs dfs;
  if (auto s = dfs.WriteFile("pubs", fj::data::RecordsToLines(records));
      !s.ok()) {
    std::fprintf(stderr, "write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // 2. Configure the pipeline: BTO token ordering, PPJoin+ kernel, and
  //    one-phase record join — the paper's fastest combination.
  fj::join::JoinConfig config;
  config.function = fj::sim::SimilarityFunction::kJaccard;
  config.tau = 0.75;
  config.stage1 = fj::join::Stage1Algorithm::kBTO;
  config.stage2 = fj::join::Stage2Algorithm::kPK;
  config.stage3 = fj::join::Stage3Algorithm::kOPRJ;

  // 3. Run the three stages.
  auto result = fj::join::RunSelfJoin(&dfs, "pubs", "quickstart", config);
  if (!result.ok()) {
    std::fprintf(stderr, "join failed: %s\n",
                 result.status().ToString().c_str());
    return 1;
  }

  // 4. Read back the joined record pairs.
  auto pairs = fj::join::ReadJoinedPairs(dfs, result->output_file);
  if (!pairs.ok()) {
    std::fprintf(stderr, "read failed: %s\n",
                 pairs.status().ToString().c_str());
    return 1;
  }

  std::printf("similar publication pairs (jaccard >= %.2f):\n\n", config.tau);
  for (const auto& jp : *pairs) {
    std::printf("  sim=%.3f\n", jp.similarity);
    std::printf("    [%llu] %s — %s\n",
                static_cast<unsigned long long>(jp.first.rid),
                jp.first.title.c_str(), jp.first.authors.c_str());
    std::printf("    [%llu] %s — %s\n\n",
                static_cast<unsigned long long>(jp.second.rid),
                jp.second.title.c_str(), jp.second.authors.c_str());
  }
  std::printf("found %zu pairs in %zu MapReduce jobs (%.1f ms local)\n",
              pairs->size(),
              result->stages[0].jobs.size() + result->stages[1].jobs.size() +
                  result->stages[2].jobs.size(),
              result->TotalWallSeconds() * 1e3);
  return 0;
}
