// fuzzyjoin — command-line front end to the library.
//
// Subcommands:
//   generate  --out=FILE --records=N [--kind=dblp|citeseerx] [--seed=S]
//             [--increase=n]                 synthesize a record file
//   selfjoin  --input=FILE --out=FILE [--tau=0.8] [--function=jaccard]
//             [--stage1=bto|opto] [--stage2=bk|pk] [--stage3=brj|oprj]
//             [--routing=individual|grouped] [--groups=N] [--qgram=Q]
//             [--threads=N (0 = auto-detect)] [--sort_buffer=BYTES]
//             [--merge_factor=N]
//             [--max_attempts=4] [--speculate] [--speculation_factor=3]
//             [--fault_seed=S] [--fault_crash_p=P] [--fault_straggler_p=P]
//             [--fault_slowdown=F] [--fault_corrupt_p=P]
//             [--fault_corrupt_attempts=N]
//             [--verify_integrity] [--max_skipped=N]
//             [--check_contracts[=0|1]] [--contract_sample_every=N]
//             [--record_format=text|binary] [--codec=none|fjlz]
//             [--transport=inproc|socket] [--shuffle_workers=N]
//             [--spawn_worker_processes]
//             [--net_fault_seed=S] [--net_drop_p=P] [--net_truncate_p=P]
//             [--net_corrupt_p=P] [--net_stall_p=P] [--net_delay_p=P]
//             [--net_refuse_p=P] [--net_delay_ms=MS] [--net_stall_ms=MS]
//             [--net_fault_attempts=N] [--net_local_fallback=0|1]
//             [--resume] [--dfs_dir=PATH]
//             [--stats]                      set-similarity self-join
//   rsjoin    --r=FILE --s=FILE --out=FILE [same tuning flags]
//   editjoin  --input=FILE --out=FILE --distance=D [--qgram=3]
//             edit-distance join over the join attribute strings
//
// Record files are tab-separated "rid<TAB>title<TAB>authors<TAB>payload"
// lines (see data/record.h); join output files are JoinedPair lines (see
// fuzzyjoin/stage3.h).
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>

#include "common/flags.h"
#include "common/latency_histogram.h"
#include "common/varint.h"
#include "data/generator.h"
#include "data/increase.h"
#include "fuzzyjoin/fuzzyjoin.h"
#include "mapreduce/worker_net.h"
#include "similarity/edit_distance.h"
#include "text/tokenizer.h"

namespace {

using fj::Flags;
using fj::Result;
using fj::Status;

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  return lines;
}

Status WriteLines(const std::string& path,
                  const std::vector<std::string>& lines) {
  std::ofstream out(path);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  for (const auto& line : lines) out << line << '\n';
  return Status::OK();
}

Result<fj::join::JoinConfig> ConfigFromFlags(const Flags& flags) {
  fj::join::JoinConfig config;
  config.tau = flags.GetDouble("tau", 0.8);
  FJ_ASSIGN_OR_RETURN(config.function,
                      fj::sim::SimilarityFunctionFromName(
                          flags.GetString("function", "jaccard")));
  std::string stage1 = flags.GetString("stage1", "bto");
  if (stage1 == "bto") {
    config.stage1 = fj::join::Stage1Algorithm::kBTO;
  } else if (stage1 == "opto") {
    config.stage1 = fj::join::Stage1Algorithm::kOPTO;
  } else {
    return Status::InvalidArgument("unknown --stage1: " + stage1);
  }
  std::string stage2 = flags.GetString("stage2", "pk");
  if (stage2 == "bk") {
    config.stage2 = fj::join::Stage2Algorithm::kBK;
  } else if (stage2 == "pk") {
    config.stage2 = fj::join::Stage2Algorithm::kPK;
  } else {
    return Status::InvalidArgument("unknown --stage2: " + stage2);
  }
  std::string stage3 = flags.GetString("stage3", "brj");
  if (stage3 == "brj") {
    config.stage3 = fj::join::Stage3Algorithm::kBRJ;
  } else if (stage3 == "oprj") {
    config.stage3 = fj::join::Stage3Algorithm::kOPRJ;
  } else {
    return Status::InvalidArgument("unknown --stage3: " + stage3);
  }
  std::string routing = flags.GetString("routing", "individual");
  if (routing == "individual") {
    config.routing = fj::join::TokenRouting::kIndividualTokens;
  } else if (routing == "grouped") {
    config.routing = fj::join::TokenRouting::kGroupedTokens;
  } else {
    return Status::InvalidArgument("unknown --routing: " + routing);
  }
  config.num_groups = static_cast<uint32_t>(flags.GetInt("groups", 64));
  config.num_map_tasks = static_cast<size_t>(flags.GetInt("map_tasks", 8));
  config.num_reduce_tasks =
      static_cast<size_t>(flags.GetInt("reduce_tasks", 8));
  config.local_threads = static_cast<size_t>(flags.GetInt("threads", 1));
  config.sort_buffer_bytes =
      static_cast<uint64_t>(flags.GetInt("sort_buffer", 0));
  config.merge_factor = static_cast<size_t>(flags.GetInt("merge_factor", 16));
  config.max_task_attempts =
      static_cast<uint32_t>(flags.GetInt("max_attempts", 4));
  config.speculative_execution = flags.Has("speculate");
  config.speculation_slowdown_factor =
      flags.GetDouble("speculation_factor", 3.0);
  config.verify_integrity = flags.Has("verify_integrity");
  // --check_contracts / --check_contracts=0 override the build-type
  // default (on in debug builds, off under NDEBUG).
  if (flags.Has("check_contracts")) {
    config.check_contracts = flags.GetInt("check_contracts", 1) != 0;
  }
  config.contract_sample_every =
      static_cast<uint32_t>(flags.GetInt("contract_sample_every", 16));
  std::string record_format = flags.GetString("record_format", "text");
  if (!fj::mr::ParseRecordFormat(record_format, &config.record_format)) {
    return Status::InvalidArgument("unknown --record_format: " +
                                   record_format);
  }
  std::string codec = flags.GetString("codec", "none");
  if (!fj::mr::ParseBlockCodec(codec, &config.block_codec)) {
    return Status::InvalidArgument("unknown --codec: " + codec);
  }
  config.resume = flags.Has("resume");
  if (flags.Has("max_skipped")) {
    config.max_skipped_records =
        static_cast<uint64_t>(flags.GetInt("max_skipped", 0));
  }
  // Deterministic fault injection: any non-zero probability builds a
  // FaultPlan shared by every job of the pipeline. Joins still produce
  // byte-identical output as long as the plan is recoverable.
  const double crash_p = flags.GetDouble("fault_crash_p", 0.0);
  const double straggler_p = flags.GetDouble("fault_straggler_p", 0.0);
  const double corrupt_p = flags.GetDouble("fault_corrupt_p", 0.0);
  if (crash_p > 0.0 || straggler_p > 0.0 || corrupt_p > 0.0) {
    auto plan = std::make_shared<fj::mr::FaultPlan>();
    plan->seed = static_cast<uint64_t>(flags.GetInt("fault_seed", 1));
    plan->crash_probability = crash_p;
    plan->straggler_probability = straggler_p;
    plan->straggler_slowdown = flags.GetDouble("fault_slowdown", 4.0);
    plan->corrupt_probability = corrupt_p;
    plan->corrupt_failing_attempts =
        static_cast<uint32_t>(flags.GetInt("fault_corrupt_attempts", 2));
    if (!plan->RecoverableWith(config.max_task_attempts,
                               config.verify_integrity)) {
      return Status::InvalidArgument(
          corrupt_p > 0.0 && !config.verify_integrity
              ? "corruption injection without --verify_integrity is never "
                "recoverable (nothing detects the flipped bytes)"
              : "fault plan is not recoverable with --max_attempts=" +
                    std::to_string(config.max_task_attempts));
    }
    config.fault_plan = std::move(plan);
  }
  // Shuffle transport: --transport=socket moves every map-output segment
  // over loopback TCP through N shuffle workers; the --net_* flags build a
  // deterministic wire-fault plan applied by those workers.
  std::string transport = flags.GetString("transport", "inproc");
  if (!fj::mr::ParseTransportKind(transport, &config.transport)) {
    return Status::InvalidArgument("unknown --transport: " + transport);
  }
  config.num_shuffle_workers =
      static_cast<size_t>(flags.GetInt("shuffle_workers", 2));
  config.spawn_worker_processes = flags.Has("spawn_worker_processes");
  config.net_fetch_local_fallback =
      flags.GetInt("net_local_fallback", 1) != 0;
  {
    fj::mr::NetFaultPlan plan;
    plan.seed = static_cast<uint64_t>(flags.GetInt("net_fault_seed", 1));
    plan.drop_probability = flags.GetDouble("net_drop_p", 0.0);
    plan.truncate_probability = flags.GetDouble("net_truncate_p", 0.0);
    plan.corrupt_probability = flags.GetDouble("net_corrupt_p", 0.0);
    plan.stall_probability = flags.GetDouble("net_stall_p", 0.0);
    plan.delay_probability = flags.GetDouble("net_delay_p", 0.0);
    plan.refuse_connect_probability = flags.GetDouble("net_refuse_p", 0.0);
    plan.delay_ms = static_cast<uint32_t>(flags.GetInt("net_delay_ms", 20));
    plan.stall_ms = static_cast<uint32_t>(flags.GetInt("net_stall_ms", 400));
    plan.fault_attempts =
        static_cast<uint32_t>(flags.GetInt("net_fault_attempts", 2));
    if (!plan.Empty()) {
      config.net_fault_plan =
          std::make_shared<const fj::mr::NetFaultPlan>(plan);
    }
  }
  if (flags.Has("qgram")) {
    config.tokenizer = std::make_shared<fj::text::QGramTokenizer>(
        static_cast<size_t>(flags.GetInt("qgram", 3)));
  }
  FJ_RETURN_IF_ERROR(config.Validate());
  return config;
}

void PrintStats(const fj::join::JoinRunResult& result) {
  // Simulated seconds (incl. wasted slot time) use the paper's default
  // 10-node cluster shape.
  const fj::mr::ClusterConfig cluster;
  std::fprintf(stderr, "stages:\n");
  for (const auto& stage : result.stages) {
    if (stage.resumed_from_checkpoint) {
      std::fprintf(stderr, "  %-12s resumed from checkpoint (0 jobs)\n",
                   stage.stage_name.c_str());
      continue;
    }
    double seconds = 0;
    uint64_t shuffle = 0;
    for (const auto& job : stage.jobs) {
      seconds += job.wall_seconds;
      shuffle += job.shuffle_bytes;
    }
    std::fprintf(stderr, "  %-12s %7.3fs  %9.1f KB shuffled  (%zu job%s)\n",
                 stage.stage_name.c_str(), seconds, shuffle / 1024.0,
                 stage.jobs.size(), stage.jobs.size() == 1 ? "" : "s");
    // Measured host-executor activity (the simulated cluster charges are
    // reported separately below).
    {
      fj::ExecutorStats rt;
      double map_wall = 0, reduce_wall = 0;
      for (const auto& job : stage.jobs) {
        rt.tasks_executed += job.runtime.tasks_executed;
        rt.tasks_stolen += job.runtime.tasks_stolen;
        rt.busy_seconds += job.runtime.busy_seconds;
        rt.queue_delay_seconds += job.runtime.queue_delay_seconds;
        rt.workers = std::max(rt.workers, job.runtime.workers);
        map_wall += job.map_phase_wall_seconds;
        reduce_wall += job.reduce_phase_wall_seconds;
      }
      const double capacity = seconds * static_cast<double>(rt.workers);
      const double utilization =
          capacity > 0 ? 100.0 * rt.busy_seconds / capacity : 0.0;
      std::fprintf(stderr,
                   "    runtime: %zu worker%s, map %.3fs / reduce %.3fs "
                   "measured, %llu tasks (%llu stolen), %.0f%% utilized, "
                   "%.3fs queue delay\n",
                   rt.workers, rt.workers == 1 ? "" : "s", map_wall,
                   reduce_wall,
                   static_cast<unsigned long long>(rt.tasks_executed),
                   static_cast<unsigned long long>(rt.tasks_stolen),
                   utilization, rt.queue_delay_seconds);
    }
    // Per-task wall-time distribution: skew between p50 and max is the
    // straggler signal the paper's Stage 1 ordering is meant to shrink.
    {
      fj::LatencyHistogram map_tasks, reduce_tasks;
      for (const auto& job : stage.jobs) {
        for (const auto& task : job.map_tasks) map_tasks.Record(task.seconds);
        for (const auto& task : job.reduce_tasks) {
          reduce_tasks.Record(task.seconds);
        }
      }
      if (map_tasks.count() > 0) {
        std::fprintf(stderr, "    map tasks:    %s\n",
                     map_tasks.Summary().c_str());
      }
      if (reduce_tasks.count() > 0) {
        std::fprintf(stderr, "    reduce tasks: %s\n",
                     reduce_tasks.Summary().c_str());
      }
    }
    uint64_t attempts = 0, tasks = 0;
    uint64_t failed = 0, spec_launched = 0, spec_wins = 0;
    uint64_t corrupt = 0, skipped = 0, contract_checks = 0;
    double wasted = 0, sim_wasted = 0, sim_contract = 0;
    for (const auto& job : stage.jobs) {
      for (const auto& task : job.map_tasks) attempts += task.attempts;
      for (const auto& task : job.reduce_tasks) attempts += task.attempts;
      tasks += job.map_tasks.size() + job.reduce_tasks.size();
      failed += job.failed_attempts;
      spec_launched += job.speculative_launched;
      spec_wins += job.speculative_wins;
      corrupt += job.corruption_detected;
      skipped += job.records_skipped;
      contract_checks += job.contract_checks;
      wasted += job.wasted_task_seconds;
      const auto sim = fj::mr::SimulateJob(job, cluster);
      sim_wasted += sim.wasted_seconds;
      sim_contract += sim.contract_seconds;
    }
    if (attempts > tasks || spec_launched > 0) {
      std::fprintf(stderr,
                   "    fault tolerance: %llu attempts for %llu tasks "
                   "(%llu failed), %llu backup%s (%llu won), %.3fs wasted "
                   "(%.1fs simulated on the cluster)\n",
                   static_cast<unsigned long long>(attempts),
                   static_cast<unsigned long long>(tasks),
                   static_cast<unsigned long long>(failed),
                   static_cast<unsigned long long>(spec_launched),
                   spec_launched == 1 ? "" : "s",
                   static_cast<unsigned long long>(spec_wins), wasted,
                   sim_wasted);
    }
    if (corrupt > 0) {
      std::fprintf(stderr,
                   "    integrity: %llu corrupted attempt%s detected and "
                   "re-run\n",
                   static_cast<unsigned long long>(corrupt),
                   corrupt == 1 ? "" : "s");
    }
    if (skipped > 0) {
      std::fprintf(stderr,
                   "    %llu malformed input record%s quarantined to "
                   "<output>.bad\n",
                   static_cast<unsigned long long>(skipped),
                   skipped == 1 ? "" : "s");
    }
    if (contract_checks > 0) {
      std::fprintf(stderr,
                   "    contracts: %llu checks, clean (%.3fs simulated on "
                   "the cluster)\n",
                   static_cast<unsigned long long>(contract_checks),
                   sim_contract);
    }
    uint64_t codec_logical = 0, codec_encoded = 0;
    double sim_codec = 0, sim_spill = 0;
    for (const auto& job : stage.jobs) {
      codec_logical += job.codec_logical_bytes;
      codec_encoded += job.codec_encoded_bytes;
      const auto sim = fj::mr::SimulateJob(job, cluster);
      sim_codec += sim.codec_seconds;
      sim_spill += sim.spill_seconds;
    }
    if (codec_encoded > 0) {
      std::fprintf(stderr,
                   "    format: %.1f KB logical -> %.1f KB encoded (%.2fx), "
                   "%.3fs codec / %.3fs spill simulated on the cluster\n",
                   codec_logical / 1024.0, codec_encoded / 1024.0,
                   static_cast<double>(codec_logical) /
                       static_cast<double>(codec_encoded),
                   sim_codec, sim_spill);
    }
    // Shuffle-transport wire activity (socket transport only: the inproc
    // hand-off never touches these counters).
    {
      uint64_t fetches = 0, retries = 0, redundant = 0, reruns = 0;
      uint64_t losses = 0, pushed = 0, fetched = 0, wire_corrupt = 0;
      double sim_net = 0;
      fj::LatencyHistogram fetch_latency;
      for (const auto& job : stage.jobs) {
        fetches += job.net_fetches;
        retries += job.net_fetch_retries;
        redundant += job.net_redundant_fetches;
        reruns += job.net_map_reruns;
        losses += job.net_worker_losses;
        pushed += job.net_bytes_pushed;
        fetched += job.net_bytes_fetched;
        wire_corrupt += job.net_corruption_detected;
        fetch_latency.Merge(job.net_fetch_latency);
        sim_net += fj::mr::SimulateJob(job, cluster).network_seconds;
      }
      if (fetches > 0) {
        std::fprintf(
            stderr,
            "    network: %llu fetches (%llu retries, %llu redundant), "
            "%llu wire corruption%s detected, %llu map re-run%s, "
            "%llu worker loss%s, %.1f KB pushed / %.1f KB fetched "
            "(%.3fs simulated on the cluster)\n",
            static_cast<unsigned long long>(fetches),
            static_cast<unsigned long long>(retries),
            static_cast<unsigned long long>(redundant),
            static_cast<unsigned long long>(wire_corrupt),
            wire_corrupt == 1 ? "" : "s",
            static_cast<unsigned long long>(reruns), reruns == 1 ? "" : "s",
            static_cast<unsigned long long>(losses),
            losses == 1 ? "" : "es", pushed / 1024.0, fetched / 1024.0,
            sim_net);
        std::fprintf(stderr, "    fetch latency: %s\n",
                     fetch_latency.Summary().c_str());
      }
    }
    for (const auto& job : stage.jobs) {
      for (const auto& [name, value] : job.counters.Snapshot()) {
        std::fprintf(stderr, "    %-40s %lld\n", name.c_str(),
                     static_cast<long long>(value));
      }
    }
  }
}

// --- optional on-disk Dfs state (--dfs_dir=PATH) ------------------------
//
// The Dfs is in-memory, so by default every CLI invocation starts from an
// empty file system and --resume has nothing to resume from. --dfs_dir
// persists the Dfs across invocations: each Dfs file becomes one regular
// file inside the directory. The directory is owned by the tool — saving
// replaces its contents with the Dfs's current files.

// Binary Dfs files (those written through Dfs::WriteFileBlocks — encoded
// stage intermediates under --record_format=binary) persist as real binary
// files: a 4-byte magic header followed by varint-length-prefixed blocks,
// the same framing the Dfs charges them for. Text files stay plain
// newline-terminated lines, so state directories from text runs remain
// directly inspectable.
constexpr char kBinaryDfsMagic[4] = {'F', 'J', 'B', '1'};

Result<std::vector<std::string>> ReadBlocks(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  std::vector<std::string> blocks;
  size_t pos = sizeof(kBinaryDfsMagic);
  while (pos < bytes.size()) {
    uint64_t len = 0;
    if (!fj::DecodeVarint(bytes, &pos, &len) || len > bytes.size() - pos) {
      return Status::DataLoss("corrupt binary dfs file: " + path);
    }
    blocks.push_back(bytes.substr(pos, static_cast<size_t>(len)));
    pos += static_cast<size_t>(len);
  }
  return blocks;
}

Status WriteBlocks(const std::string& path,
                   const std::vector<std::string>& blocks) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kBinaryDfsMagic, sizeof(kBinaryDfsMagic));
  std::string frame;
  for (const auto& block : blocks) {
    frame.clear();
    fj::AppendVarint(&frame, block.size());
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

bool HasBinaryDfsMagic(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  char header[sizeof(kBinaryDfsMagic)] = {};
  in.read(header, sizeof(header));
  return in.gcount() == sizeof(header) &&
         std::equal(header, header + sizeof(header), kBinaryDfsMagic);
}

Status LoadDfsDir(const std::string& dir, fj::mr::Dfs* dfs) {
  namespace fsys = std::filesystem;
  std::error_code ec;
  if (!fsys::exists(dir, ec)) return Status::OK();  // first invocation
  for (const auto& entry : fsys::directory_iterator(dir, ec)) {
    if (!entry.is_regular_file()) continue;
    const std::string name = entry.path().filename().string();
    if (HasBinaryDfsMagic(entry.path().string())) {
      FJ_ASSIGN_OR_RETURN(std::vector<std::string> blocks,
                          ReadBlocks(entry.path().string()));
      FJ_RETURN_IF_ERROR(dfs->WriteFileBlocks(name, std::move(blocks)));
      continue;
    }
    FJ_ASSIGN_OR_RETURN(std::vector<std::string> lines,
                        ReadLines(entry.path().string()));
    FJ_RETURN_IF_ERROR(dfs->WriteFile(name, std::move(lines)));
  }
  if (ec) return Status::IOError("cannot list " + dir + ": " + ec.message());
  return Status::OK();
}

Status SaveDfsDir(const std::string& dir, const fj::mr::Dfs& dfs) {
  namespace fsys = std::filesystem;
  std::error_code ec;
  fsys::create_directories(dir, ec);
  if (ec) return Status::IOError("cannot create " + dir + ": " + ec.message());
  // Drop files deleted from the Dfs (e.g. stale outputs cleared before a
  // stage re-ran) so the next load does not resurrect them.
  for (const auto& entry : fsys::directory_iterator(dir, ec)) {
    if (entry.is_regular_file() &&
        !dfs.Exists(entry.path().filename().string())) {
      fsys::remove(entry.path(), ec);
    }
  }
  for (const std::string& name : dfs.ListFiles()) {
    auto lines = dfs.ReadFile(name);
    if (!lines.ok()) return lines.status();
    if (dfs.IsBinary(name)) {
      FJ_RETURN_IF_ERROR(WriteBlocks(dir + "/" + name, *lines.value()));
    } else {
      FJ_RETURN_IF_ERROR(WriteLines(dir + "/" + name, *lines.value()));
    }
  }
  return Status::OK();
}

int Generate(const Flags& flags) {
  std::string out = flags.GetString("out", "");
  if (out.empty()) {
    std::fprintf(stderr, "generate: --out=FILE is required\n");
    return 2;
  }
  uint64_t records = flags.GetInt("records", 10000);
  uint64_t seed = flags.GetInt("seed", 42);
  std::string kind = flags.GetString("kind", "dblp");
  fj::data::GeneratorConfig config;
  if (kind == "dblp") {
    config = fj::data::DblpLikeConfig(records, seed);
  } else if (kind == "citeseerx") {
    config = fj::data::CiteseerxLikeConfig(records, seed);
  } else {
    std::fprintf(stderr, "generate: unknown --kind=%s\n", kind.c_str());
    return 2;
  }
  auto dataset = fj::data::GenerateRecords(config);
  size_t factor = flags.GetInt("increase", 1);
  if (factor > 1) {
    auto increased = fj::data::IncreaseDataset(dataset, factor);
    if (!increased.ok()) {
      std::fprintf(stderr, "%s\n", increased.status().ToString().c_str());
      return 1;
    }
    dataset = std::move(increased).value();
  }
  auto status = WriteLines(out, fj::data::RecordsToLines(dataset));
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote %zu records to %s\n", dataset.size(),
               out.c_str());
  return 0;
}

int SelfJoin(const Flags& flags) {
  std::string input = flags.GetString("input", "");
  std::string out = flags.GetString("out", "");
  if (input.empty() || out.empty()) {
    std::fprintf(stderr, "selfjoin: --input=FILE and --out=FILE required\n");
    return 2;
  }
  auto config = ConfigFromFlags(flags);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  auto lines = ReadLines(input);
  if (!lines.ok()) {
    std::fprintf(stderr, "%s\n", lines.status().ToString().c_str());
    return 1;
  }
  fj::mr::Dfs dfs;
  const std::string dfs_dir = flags.GetString("dfs_dir", "");
  if (!dfs_dir.empty()) {
    if (auto status = LoadDfsDir(dfs_dir, &dfs); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    // The local file is authoritative for the input; a stale copy loaded
    // from the state directory would shadow it.
    if (dfs.Exists("input")) (void)dfs.DeleteFile("input");
  }
  (void)dfs.WriteFile("input", std::move(lines).value());
  auto result = fj::join::RunSelfJoin(&dfs, "input", "join", *config);
  // Persist the Dfs even when the pipeline failed: the checkpoint manifest
  // of the committed stages is exactly what --resume needs next time.
  if (!dfs_dir.empty()) {
    if (auto status = SaveDfsDir(dfs_dir, dfs); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  auto output = dfs.ReadFile(result->output_file);
  if (!output.ok()) {
    std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
    return 1;
  }
  if (auto status = WriteLines(out, *output.value()); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu joined pairs -> %s\n", output.value()->size(),
               out.c_str());
  if (flags.Has("stats")) PrintStats(*result);
  return 0;
}

int RSJoin(const Flags& flags) {
  std::string r_path = flags.GetString("r", "");
  std::string s_path = flags.GetString("s", "");
  std::string out = flags.GetString("out", "");
  if (r_path.empty() || s_path.empty() || out.empty()) {
    std::fprintf(stderr, "rsjoin: --r=FILE --s=FILE --out=FILE required\n");
    return 2;
  }
  auto config = ConfigFromFlags(flags);
  if (!config.ok()) {
    std::fprintf(stderr, "%s\n", config.status().ToString().c_str());
    return 2;
  }
  auto r_lines = ReadLines(r_path);
  auto s_lines = ReadLines(s_path);
  if (!r_lines.ok() || !s_lines.ok()) {
    std::fprintf(stderr, "cannot read inputs\n");
    return 1;
  }
  fj::mr::Dfs dfs;
  const std::string dfs_dir = flags.GetString("dfs_dir", "");
  if (!dfs_dir.empty()) {
    if (auto status = LoadDfsDir(dfs_dir, &dfs); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    if (dfs.Exists("r")) (void)dfs.DeleteFile("r");
    if (dfs.Exists("s")) (void)dfs.DeleteFile("s");
  }
  (void)dfs.WriteFile("r", std::move(r_lines).value());
  (void)dfs.WriteFile("s", std::move(s_lines).value());
  auto result = fj::join::RunRSJoin(&dfs, "r", "s", "join", *config);
  if (!dfs_dir.empty()) {
    if (auto status = SaveDfsDir(dfs_dir, dfs); !status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  auto output = dfs.ReadFile(result->output_file);
  if (!output.ok()) {
    std::fprintf(stderr, "%s\n", output.status().ToString().c_str());
    return 1;
  }
  if (auto status = WriteLines(out, *output.value()); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu joined pairs -> %s\n", output.value()->size(),
               out.c_str());
  if (flags.Has("stats")) PrintStats(*result);
  return 0;
}

int EditJoin(const Flags& flags) {
  std::string input = flags.GetString("input", "");
  std::string out = flags.GetString("out", "");
  if (input.empty() || out.empty()) {
    std::fprintf(stderr, "editjoin: --input=FILE and --out=FILE required\n");
    return 2;
  }
  size_t distance = flags.GetInt("distance", 2);
  size_t q = flags.GetInt("qgram", 3);
  auto lines = ReadLines(input);
  if (!lines.ok()) {
    std::fprintf(stderr, "%s\n", lines.status().ToString().c_str());
    return 1;
  }
  auto records = fj::data::RecordsFromLines(*lines);
  if (!records.ok()) {
    std::fprintf(stderr, "%s\n", records.status().ToString().c_str());
    return 1;
  }
  std::vector<std::string> strings;
  strings.reserve(records->size());
  for (const auto& record : *records) {
    strings.push_back(record.JoinAttribute());
  }
  auto pairs = fj::sim::EditDistanceSelfJoin(strings, distance, q);
  std::vector<std::string> output;
  output.reserve(pairs.size());
  for (const auto& pair : pairs) {
    std::ostringstream line;
    line << (*records)[pair.index1].rid << '\t'
         << (*records)[pair.index2].rid << '\t' << pair.distance;
    output.push_back(line.str());
  }
  if (auto status = WriteLines(out, output); !status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%zu pairs within edit distance %zu -> %s\n",
               pairs.size(), distance, out.c_str());
  return 0;
}

void Usage() {
  std::fprintf(stderr,
               "usage: fuzzyjoin <generate|selfjoin|rsjoin|editjoin> "
               "[--flags]\n(see the header of tools/fuzzyjoin_cli.cc)\n");
}

}  // namespace

int main(int argc, char** argv) {
  // Shuffle-worker mode: under --spawn_worker_processes the coordinator
  // re-execs this binary with the worker sentinel as argv[1]; the process
  // then serves shuffle segments until the coordinator goes away.
  if (auto rc = fj::mr::net::MaybeRunShuffleWorker(argc, argv)) return *rc;
  Flags flags(argc, argv);
  if (flags.positional().empty()) {
    Usage();
    return 2;
  }
  const std::string& command = flags.positional()[0];
  if (command == "generate") return Generate(flags);
  if (command == "selfjoin") return SelfJoin(flags);
  if (command == "rsjoin") return RSJoin(flags);
  if (command == "editjoin") return EditJoin(flags);
  Usage();
  return 2;
}
