#!/usr/bin/env python3
"""Repo-local lint: mechanical hygiene rules clang-tidy doesn't cover.

Run from anywhere: paths resolve relative to the repo root (this file's
parent directory) unless --root points elsewhere (the self-test corpus
uses that). Exits non-zero with one `path:line: [rule] message` per
violation. Stdlib only — runs in CI before the clang-tidy job and
locally as `python3 tools/lint.py`.

Every run ends with a per-rule activity summary (sites the rule's
pattern matched, before waivers and exemptions) so a rule that matches
zero files — a dead rule whose pattern rotted — is visible in CI logs.

Rules:
  pragma-once      every header under src/tools/bench/tests/examples uses
                   #pragma once (the tree's include-guard idiom).
  banned-rand      libc rand() is banned everywhere: it is a process-global
                   PRNG, so two interleaved tasks perturb each other's
                   streams and break the engine's determinism contract.
                   Use common/hash.h's HashInt64 / a seeded <random> engine.
  no-unordered-ppjoin
                   std::unordered_map/set are banned in src/ppjoin (the
                   kernel hot path): iteration order is unspecified (feeds
                   nondeterminism into candidate order) and probes chase
                   cache-hostile buckets — use the dense_index_ idiom.
                   Cold paths may waive with a trailing or preceding
                   `lint: allow-unordered (<reason>)` comment.
  no-raw-thread    spawning std::thread directly is banned outside
                   src/common/executor.{h,cc}: ad-hoc threads bypass the
                   work-stealing executor (no stats, no per-worker scratch
                   identity, unbounded oversubscription). Querying
                   std::thread::hardware_concurrency and std::this_thread
                   are fine. Waive deliberate uses (e.g. a test that needs
                   a bare thread) with a trailing or preceding
                   `lint: allow-thread (<reason>)` comment.
  no-raw-file-io   std::ifstream/std::ofstream/std::fstream/fopen are
                   banned in src/ and tests/ outside src/mapreduce/dfs.cc:
                   every byte the engine reads or writes must flow through
                   the Dfs so checksums, byte meters, and the binary block
                   framing see it (a raw stream bypasses all three).
                   bench/ and tools/ are exempt (host-side artifact I/O).
                   Waive deliberate uses with a trailing or preceding
                   `lint: allow-file-io (<reason>)` comment.
  no-raw-socket    raw POSIX socket calls (socket/connect/bind/listen/
                   accept/recv/send/setsockopt/...) are banned outside
                   src/mapreduce/worker_net.cc: the shuffle's wire layer
                   owns framing, deadlines, EINTR loops, and the payload
                   hash, and a second ad-hoc socket path would bypass all
                   of them (plus the NetFaultPlan chaos hooks CI relies
                   on). Talk to mapreduce/worker_net.h's helpers instead.
                   Waive deliberate uses with a trailing or preceding
                   `lint: allow-socket (<reason>)` comment.
  no-naked-mutex   std::mutex / std::condition_variable / std::lock_guard
                   (and friends) are banned outside src/common/sync.h:
                   fj::Mutex carries the Clang thread-safety capability
                   annotations and the debug lock-rank deadlock detector,
                   and a naked std primitive is invisible to both. Use
                   fj::Mutex / fj::MutexLock / fj::CondVar (common/sync.h)
                   or waive deliberate uses with a trailing or preceding
                   `lint: allow-naked-mutex (<reason>)` comment.
  nodiscard-status Status and Result must stay class-level [[nodiscard]]
                   so dropped errors are compile errors under -Werror.
  iwyu-lite        a file that names selected std:: symbols must include
                   the owning header itself, not lean on transitive
                   includes (the symbols below broke builds on libstdc++
                   upgrades before; the list is deliberately small).
"""

import argparse
import os
import re
import sys

DEFAULT_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SOURCE_DIRS = ("src", "tools", "bench", "tests", "examples")

RULES = (
    "pragma-once",
    "banned-rand",
    "no-unordered-ppjoin",
    "no-raw-thread",
    "no-raw-file-io",
    "no-raw-socket",
    "no-naked-mutex",
    "nodiscard-status",
    "iwyu-lite",
)

# iwyu-lite: std symbol pattern -> required include. Only symbols whose
# home header is unambiguous and commonly reached transitively.
IWYU_SYMBOLS = [
    (re.compile(r"\bstd::(?:stable_)?sort\b"), "<algorithm>"),
    (re.compile(r"\bstd::nth_element\b"), "<algorithm>"),
    (re.compile(r"\bstd::unordered_map\b"), "<unordered_map>"),
    (re.compile(r"\bstd::unordered_set\b"), "<unordered_set>"),
    (re.compile(r"\bstd::optional\b"), "<optional>"),
    (re.compile(r"\bstd::variant\b"), "<variant>"),
    (re.compile(r"\bstd::mutex\b"), "<mutex>"),
    (re.compile(r"\bstd::thread\b"), "<thread>"),
    (re.compile(r"\bstd::function\b"), "<functional>"),
    (re.compile(r"\bstd::snprintf\b"), "<cstdio>"),
]

RAND_RE = re.compile(r"(?<![\w.])rand\s*\(")
UNORDERED_RE = re.compile(r"\bstd::unordered_(?:map|set|multimap|multiset)\b")
WAIVER = "lint: allow-unordered"

# no-raw-thread: a std::thread being constructed or declared (spawning /
# owning), as opposed to static queries like hardware_concurrency or the
# std::this_thread namespace.
RAW_THREAD_RE = re.compile(r"\bstd::thread\b(?!\s*::)")
THREAD_WAIVER = "lint: allow-thread"
EXECUTOR_FILES = (
    os.path.join("src", "common", "executor.h"),
    os.path.join("src", "common", "executor.cc"),
)

# no-raw-socket: raw POSIX socket syscalls. Only the shuffle's wire layer
# may dial, listen, or push bytes directly — everything else goes through
# worker_net.h so deadlines, EINTR handling, frame hashing, and fault
# injection stay in one place. The pattern requires a call (trailing "(")
# and rejects qualified/member names (transport->send, net::connect).
RAW_SOCKET_RE = re.compile(
    r"(?<![\w.:>])(?:socket|socketpair|connect|bind|listen|accept4?|"
    r"recv(?:from|msg)?|send(?:to|msg)?|[gs]etsockopt|getsockname|"
    r"getpeername|shutdown)\s*\(")
SOCKET_WAIVER = "lint: allow-socket"
SOCKET_EXEMPT_FILES = (os.path.join("src", "mapreduce", "worker_net.cc"),)

# no-raw-file-io: direct file streams / FILE* opens. Only the Dfs (and the
# host-side bench/ and tools/ trees) may touch real files.
RAW_FILE_IO_RE = re.compile(r"\bstd::[io]?fstream\b|(?<![\w.])fopen\s*\(")
FILE_IO_WAIVER = "lint: allow-file-io"
FILE_IO_EXEMPT_FILES = (os.path.join("src", "mapreduce", "dfs.cc"),)
FILE_IO_EXEMPT_DIRS = (
    os.sep + "bench" + os.sep,
    os.sep + "tools" + os.sep,
)

# no-naked-mutex: std synchronization primitives outside the annotated
# capability layer. fj::Mutex (common/sync.h) is the only place allowed to
# name them — it wraps them with thread-safety annotations and the debug
# lock-rank detector, both of which a naked primitive bypasses.
NAKED_MUTEX_RE = re.compile(
    r"\bstd::(?:mutex|timed_mutex|recursive_(?:timed_)?mutex|shared_mutex|"
    r"shared_timed_mutex|condition_variable(?:_any)?|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock)\b")
MUTEX_WAIVER = "lint: allow-naked-mutex"
MUTEX_EXEMPT_FILES = (os.path.join("src", "common", "sync.h"),)


def source_files(root):
    for d in SOURCE_DIRS:
        for dirpath, _, names in os.walk(os.path.join(root, d)):
            for name in sorted(names):
                if name.endswith((".h", ".cc")):
                    yield os.path.join(dirpath, name)


def strip_comments_and_strings(line):
    """Coarse: drop // comments and the contents of "..." literals."""
    line = re.sub(r'"(?:\\.|[^"\\])*"', '""', line)
    return line.split("//", 1)[0]


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--root", default=DEFAULT_ROOT,
        help="tree to lint (default: the repo root; the lint self-test "
             "points this at snippet corpora)")
    args = parser.parse_args()
    root = os.path.abspath(args.root)

    problems = []
    # rule -> sites its pattern matched, counted BEFORE waivers and
    # exemptions: a live rule shows nonzero here even on a clean tree.
    activity = {rule: 0 for rule in RULES}

    def report(path, lineno, rule, msg):
        rel = os.path.relpath(path, root)
        problems.append(f"{rel}:{lineno}: [{rule}] {msg}")

    for path in source_files(root):
        with open(path, encoding="utf-8") as f:
            lines = f.read().splitlines()
        is_header = path.endswith(".h")
        in_ppjoin = os.sep + os.path.join("src", "ppjoin") + os.sep in path

        if is_header:
            activity["pragma-once"] += 1  # headers checked
            if not any(l.startswith("#pragma once") for l in lines):
                report(path, 1, "pragma-once", "header missing '#pragma once'")

        needed = {}  # include -> first (lineno, symbol) needing it
        includes = set()
        for lineno, raw in enumerate(lines, 1):
            stripped = raw.strip()
            if stripped.startswith("#include"):
                m = re.search(r"[<\"]([^>\"]+)[>\"]", stripped)
                if m:
                    includes.add("<%s>" % m.group(1))
                continue
            code = strip_comments_and_strings(raw)
            prev = lines[lineno - 2] if lineno >= 2 else ""

            if RAND_RE.search(code):
                activity["banned-rand"] += 1
                report(path, lineno, "banned-rand",
                       "libc rand() breaks task determinism; use "
                       "common/hash.h or a seeded <random> engine")

            if RAW_THREAD_RE.search(code):
                activity["no-raw-thread"] += 1
                if not path.endswith(EXECUTOR_FILES) and \
                        THREAD_WAIVER not in raw and THREAD_WAIVER not in prev:
                    report(path, lineno, "no-raw-thread",
                           "spawn tasks on the common/executor.h Executor "
                           "instead of a raw std::thread; waive deliberate "
                           "uses with '// %s (<reason>)'" % THREAD_WAIVER)

            if RAW_SOCKET_RE.search(code):
                activity["no-raw-socket"] += 1
                if not path.endswith(SOCKET_EXEMPT_FILES) and \
                        SOCKET_WAIVER not in raw and SOCKET_WAIVER not in prev:
                    report(path, lineno, "no-raw-socket",
                           "raw sockets bypass the shuffle wire layer "
                           "(framing, deadlines, payload hashes, fault "
                           "injection); use mapreduce/worker_net.h or "
                           "waive with '// %s (<reason>)'" % SOCKET_WAIVER)

            if RAW_FILE_IO_RE.search(code):
                activity["no-raw-file-io"] += 1
                file_io_exempt = (path.endswith(FILE_IO_EXEMPT_FILES) or
                                  any(d in path for d in FILE_IO_EXEMPT_DIRS))
                if not file_io_exempt and \
                        FILE_IO_WAIVER not in raw and FILE_IO_WAIVER not in prev:
                    report(path, lineno, "no-raw-file-io",
                           "raw file I/O bypasses the Dfs (checksums, byte "
                           "meters, block framing); route through "
                           "mapreduce/dfs.h or waive with "
                           "'// %s (<reason>)'" % FILE_IO_WAIVER)

            if NAKED_MUTEX_RE.search(code):
                activity["no-naked-mutex"] += 1
                if not path.endswith(MUTEX_EXEMPT_FILES) and \
                        MUTEX_WAIVER not in raw and MUTEX_WAIVER not in prev:
                    report(path, lineno, "no-naked-mutex",
                           "naked std sync primitives bypass the thread-"
                           "safety annotations and the lock-rank detector; "
                           "use fj::Mutex / fj::MutexLock / fj::CondVar "
                           "(common/sync.h) or waive with "
                           "'// %s (<reason>)'" % MUTEX_WAIVER)

            if UNORDERED_RE.search(code):
                activity["no-unordered-ppjoin"] += 1
                if in_ppjoin and WAIVER not in raw and WAIVER not in prev:
                    report(path, lineno, "no-unordered-ppjoin",
                           "unordered containers are banned in the ppjoin "
                           "hot path; waive cold paths with "
                           "'// %s (<reason>)'" % WAIVER)

            for pattern, include in IWYU_SYMBOLS:
                m = pattern.search(code)
                if m and include not in needed:
                    needed[include] = (lineno, m.group(0))
        activity["iwyu-lite"] += len(needed)
        for include, (lineno, symbol) in sorted(needed.items()):
            if include not in includes:
                report(path, lineno, "iwyu-lite",
                       f"uses {symbol} but does not include {include}")

    for rel, cls in (("src/common/status.h", "class [[nodiscard]] Status"),
                     ("src/common/result.h", "class [[nodiscard]] Result")):
        path = os.path.join(root, rel)
        # Snippet corpora (--root) don't carry status.h/result.h; the rule
        # only applies to trees that do.
        if not os.path.exists(path):
            continue
        activity["nodiscard-status"] += 1
        with open(path, encoding="utf-8") as f:
            if cls not in f.read():
                report(path, 1, "nodiscard-status",
                       f"expected '{cls}' — dropped errors must not compile")

    if problems:
        print("\n".join(problems))
    print("lint.py rule activity (matches before waivers/exemptions):")
    for rule in RULES:
        flag = "" if activity[rule] else "   <-- DEAD RULE? zero matches"
        print(f"  {rule:<20} {activity[rule]:>5}{flag}")
    if problems:
        print(f"\nlint.py: {len(problems)} problem(s)", file=sys.stderr)
        return 1
    print("lint.py: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
