// fuzzyjoin_serve — line-protocol server driver for the serving subsystem.
//
//   fuzzyjoin_serve [--load=RECORDS [--ordering=TOKENS]]
//                   [--snapshot_in=FILE] [--snapshot_out=FILE]
//                   [--tau_floor=0.5] [--function=jaccard]
//                   [--compact_fraction=0.25]
//                   [--lsh] [--bands=16] [--rows=4]
//                   [--threads=2] [--queue_depth=1024] [--batch=64]
//                   [--cache=4096] [--stats]
//
// Reads one request per line from stdin, answers one line per request on
// stdout (diagnostics go to stderr). Requests run through the full
// QueryService path — bounded queue, batching on the executor, result
// cache — exactly like production traffic:
//
//   insert <rid> <text...>    index the tokenized text under rid
//   remove <rid>              tombstone rid
//   probe <tau> <text...>     all records with sim >= tau (rid asc)
//   topk <k> <text...>        k most similar records (sim desc, rid asc)
//   compact                   flush + compact the index now
//   stats                     dump index/service stats to stderr
//   quit                      exit (EOF also exits)
//
// Responses: "OK insert <rid>", "OK probe <n> rid:sim ...",
// "ERR <CodeName> <message>". Similarities print with 4 decimals.
//
// --load seeds the index from a data::Record file (the offline corpus);
// --ordering supplies the stage-1 "token<TAB>count" ranking so online
// tokenization matches the batch pipeline (derived from the corpus when
// omitted). --snapshot_in/--snapshot_out round-trip the seeded index
// through the binary snapshot format instead.
#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>
#include <vector>

#include "common/flags.h"
#include "common/varint.h"
#include "mapreduce/worker_net.h"
#include "serve/query_service.h"
#include "serve/serving_index.h"
#include "text/tokenizer.h"

namespace {

using fj::Flags;
using fj::Result;
using fj::Status;

// Responses go to stdout through the EINTR/EAGAIN-safe fd writer rather
// than std::cout: when the client is a pipe that closes mid-probe (head,
// a killed client), a buffered stream would either die on SIGPIPE or
// silently lose the error. Returns false when the client went away —
// a normal way for a serving session to end, not an error.
bool EmitLine(std::string line) {
  line.push_back('\n');
  return fj::mr::net::WriteAllFd(1, line).ok();
}

// Probes carry a rid no real record uses so self-exclusion never triggers.
constexpr uint64_t kQueryRid = ~uint64_t{0};

// Snapshot files: 4-byte magic, then varint-length-framed blocks (the same
// framing the CLI uses for binary Dfs state).
constexpr char kSnapshotMagic[4] = {'F', 'J', 'S', 'N'};

Result<std::vector<std::string>> ReadLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open " + path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(std::move(line));
  return lines;
}

Result<std::vector<std::string>> ReadSnapshotFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open " + path);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  if (bytes.size() < sizeof(kSnapshotMagic) ||
      !std::equal(kSnapshotMagic, kSnapshotMagic + sizeof(kSnapshotMagic),
                  bytes.begin())) {
    return Status::DataLoss("not a snapshot file: " + path);
  }
  std::vector<std::string> blocks;
  size_t pos = sizeof(kSnapshotMagic);
  while (pos < bytes.size()) {
    uint64_t len = 0;
    if (!fj::DecodeVarint(bytes, &pos, &len) || len > bytes.size() - pos) {
      return Status::DataLoss("corrupt snapshot file: " + path);
    }
    blocks.push_back(bytes.substr(pos, static_cast<size_t>(len)));
    pos += static_cast<size_t>(len);
  }
  return blocks;
}

Status WriteSnapshotFile(const std::string& path,
                         const std::vector<std::string>& blocks) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::IOError("cannot open " + path + " for writing");
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  std::string frame;
  for (const auto& block : blocks) {
    frame.clear();
    fj::AppendVarint(&frame, block.size());
    out.write(frame.data(), static_cast<std::streamsize>(frame.size()));
    out.write(block.data(), static_cast<std::streamsize>(block.size()));
  }
  if (!out) return Status::IOError("write failed: " + path);
  return Status::OK();
}

std::string FormatResults(const char* verb,
                          const std::vector<fj::serve::ProbeResult>& results) {
  std::ostringstream line;
  line << "OK " << verb << ' ' << results.size();
  char sim[16];
  for (const auto& r : results) {
    std::snprintf(sim, sizeof(sim), "%.4f", r.similarity);
    line << ' ' << r.rid << ':' << sim;
  }
  return line.str();
}

void PrintServeStats(const fj::serve::ServingIndex& index,
                     const fj::serve::QueryService& service) {
  const auto& is = index.stats();
  std::fprintf(stderr,
               "index: %zu live, %zu tombstones, %llu/%llu live/arena "
               "tokens, epoch %llu\n",
               index.live_records(), index.tombstones(),
               static_cast<unsigned long long>(index.live_tokens()),
               static_cast<unsigned long long>(index.arena_tokens()),
               static_cast<unsigned long long>(index.write_epoch()));
  std::fprintf(stderr,
               "  writes: %llu inserts, %llu removes, %llu compactions "
               "(%llu tombstones purged)\n",
               static_cast<unsigned long long>(is.inserts),
               static_cast<unsigned long long>(is.removes),
               static_cast<unsigned long long>(is.compactions),
               static_cast<unsigned long long>(is.tombstones_purged));
  std::fprintf(stderr,
               "  probes: %llu probes, %llu candidates, %llu positional / "
               "%llu bitmap pruned, %llu verified, %llu results\n",
               static_cast<unsigned long long>(is.probes),
               static_cast<unsigned long long>(is.candidates),
               static_cast<unsigned long long>(is.positional_pruned),
               static_cast<unsigned long long>(is.bitmap_pruned),
               static_cast<unsigned long long>(is.verified),
               static_cast<unsigned long long>(is.results));
  const auto ss = service.stats();
  std::fprintf(stderr,
               "service: %llu accepted, %llu rejected (%llu depth, %llu "
               "bytes), %llu completed in %llu batches\n",
               static_cast<unsigned long long>(ss.accepted),
               static_cast<unsigned long long>(ss.rejected()),
               static_cast<unsigned long long>(ss.rejected_queue_depth),
               static_cast<unsigned long long>(ss.rejected_bytes),
               static_cast<unsigned long long>(ss.completed),
               static_cast<unsigned long long>(ss.batches));
  std::fprintf(stderr,
               "  cache: %llu hits, %llu stale, %llu misses\n",
               static_cast<unsigned long long>(ss.cache_hits),
               static_cast<unsigned long long>(ss.cache_stale),
               static_cast<unsigned long long>(ss.cache_misses));
  std::fprintf(stderr, "  probe latency: %s\n",
               ss.probe_latency.Summary().c_str());
  std::fprintf(stderr, "  write latency: %s\n",
               ss.write_latency.Summary().c_str());
  // batch_size counts requests in the histogram's integer domain; print
  // it as counts, not durations.
  std::fprintf(stderr,
               "  batch size:    n=%llu mean=%.1f p50=%.0f max=%.0f\n",
               static_cast<unsigned long long>(ss.batch_size.count()),
               ss.batch_size.mean_seconds() * 1e9,
               ss.batch_size.Quantile(0.5) * 1e9,
               ss.batch_size.max_seconds() * 1e9);
}

int Run(const Flags& flags) {
  fj::serve::ServingIndexOptions index_options;
  index_options.tau_floor = flags.GetDouble("tau_floor", 0.5);
  index_options.compact_tombstone_fraction =
      flags.GetDouble("compact_fraction", 0.25);
  index_options.lsh_preroute = flags.Has("lsh");
  index_options.lsh.num_bands =
      static_cast<size_t>(flags.GetInt("bands", 16));
  index_options.lsh.rows_per_band =
      static_cast<size_t>(flags.GetInt("rows", 4));
  auto function = fj::sim::SimilarityFunctionFromName(
      flags.GetString("function", "jaccard"));
  if (!function.ok()) {
    std::fprintf(stderr, "%s\n", function.status().ToString().c_str());
    return 2;
  }
  index_options.function = *function;

  // --- Seed the index: snapshot beats corpus beats empty. ---
  fj::serve::SeededIndex seeded;
  const fj::text::WordTokenizer tokenizer;
  const std::string snapshot_in = flags.GetString("snapshot_in", "");
  const std::string load = flags.GetString("load", "");
  if (!snapshot_in.empty()) {
    auto blocks = ReadSnapshotFile(snapshot_in);
    if (!blocks.ok()) {
      std::fprintf(stderr, "%s\n", blocks.status().ToString().c_str());
      return 1;
    }
    auto loaded = fj::serve::LoadSnapshot(*blocks);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    seeded = std::move(loaded).value();
  } else {
    std::vector<std::string> record_lines;
    std::vector<std::string> ordering_lines;
    if (!load.empty()) {
      auto lines = ReadLines(load);
      if (!lines.ok()) {
        std::fprintf(stderr, "%s\n", lines.status().ToString().c_str());
        return 1;
      }
      record_lines = std::move(lines).value();
    }
    const std::string ordering_path = flags.GetString("ordering", "");
    if (!ordering_path.empty()) {
      auto lines = ReadLines(ordering_path);
      if (!lines.ok()) {
        std::fprintf(stderr, "%s\n", lines.status().ToString().c_str());
        return 1;
      }
      ordering_lines = std::move(lines).value();
    }
    auto built = fj::serve::BuildFromJoinOutput(ordering_lines, record_lines,
                                                tokenizer, index_options);
    if (!built.ok()) {
      std::fprintf(stderr, "%s\n", built.status().ToString().c_str());
      return 1;
    }
    seeded = std::move(built).value();
  }
  std::fprintf(stderr, "serving %zu records (tau_floor=%.2f, %s)\n",
               seeded.index->live_records(), index_options.tau_floor,
               fj::sim::SimilarityFunctionName(index_options.function));

  fj::Executor executor(
      static_cast<size_t>(flags.GetInt("threads", 2)));
  fj::serve::QueryServiceOptions service_options;
  service_options.max_queue_depth =
      static_cast<size_t>(flags.GetInt("queue_depth", 1024));
  service_options.max_batch = static_cast<size_t>(flags.GetInt("batch", 64));
  service_options.cache_capacity =
      static_cast<size_t>(flags.GetInt("cache", 4096));
  service_options.lsh_preroute = index_options.lsh_preroute;
  fj::serve::QueryService service(seeded.index.get(), &executor,
                                  service_options);

  // --- Request loop. ---
  std::string line;
  while (std::getline(std::cin, line)) {
    std::istringstream in(line);
    std::string verb;
    in >> verb;
    if (verb.empty()) continue;
    if (verb == "quit") break;
    if (verb == "compact") {
      service.Flush();  // nothing in flight while the index rewrites itself
      seeded.index->CompactNow();
      if (!EmitLine("OK compact")) break;
      continue;
    }
    if (verb == "stats") {
      service.Flush();
      PrintServeStats(*seeded.index, service);
      if (!EmitLine("OK stats")) break;
      continue;
    }
    fj::serve::Request request;
    std::string error;
    if (verb == "insert") {
      request.kind = fj::serve::RequestKind::kInsert;
      if (!(in >> request.record.rid)) error = "insert needs: rid text...";
    } else if (verb == "remove") {
      request.kind = fj::serve::RequestKind::kRemove;
      if (!(in >> request.rid)) error = "remove needs: rid";
    } else if (verb == "probe") {
      request.kind = fj::serve::RequestKind::kProbeThreshold;
      request.record.rid = kQueryRid;
      if (!(in >> request.threshold)) error = "probe needs: tau text...";
    } else if (verb == "topk") {
      request.kind = fj::serve::RequestKind::kProbeTopK;
      request.record.rid = kQueryRid;
      if (!(in >> request.top_k)) error = "topk needs: k text...";
    } else {
      error = "unknown request: " + verb;
    }
    if (error.empty() && verb != "remove") {
      std::string text;
      std::getline(in, text);
      request.record.tokens =
          seeded.ordering.ToSortedIds(tokenizer.Tokenize(text));
      if (request.record.tokens.empty()) error = "empty token set";
    }
    if (!error.empty()) {
      if (!EmitLine("ERR InvalidArgument " + error)) break;
      continue;
    }
    const uint64_t echo_rid =
        verb == "remove" ? request.rid : request.record.rid;
    fj::serve::ServeResponse response = service.ExecuteSync(request);
    if (!response.status.ok()) {
      if (!EmitLine(std::string("ERR ") +
                    fj::StatusCodeName(response.status.code()) + ' ' +
                    std::string(response.status.message()))) {
        break;
      }
      continue;
    }
    if (verb == "insert" || verb == "remove") {
      if (!EmitLine("OK " + verb + ' ' + std::to_string(echo_rid))) break;
    } else {
      if (!EmitLine(FormatResults(verb.c_str(), response.results))) break;
    }
  }

  service.Flush();
  if (flags.Has("stats")) PrintServeStats(*seeded.index, service);
  const std::string snapshot_out = flags.GetString("snapshot_out", "");
  if (!snapshot_out.empty()) {
    auto status = WriteSnapshotFile(
        snapshot_out, fj::serve::SaveSnapshot(*seeded.index, seeded.ordering));
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "snapshot -> %s\n", snapshot_out.c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-response (closed pipe, killed reader)
  // must not kill the server with SIGPIPE; the write path reports the
  // broken pipe as a status and the session winds down normally.
  fj::mr::net::IgnoreSigpipe();
  Flags flags(argc, argv);
  return Run(flags);
}
