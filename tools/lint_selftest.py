#!/usr/bin/env python3
"""Self-test for tools/lint.py: seeded good/bad snippets per rule.

For each rule we materialize a tiny source tree in a temp directory, run
`lint.py --root <tree>`, and assert the rule fires on the bad snippet
(with the right rule tag) and stays quiet on the good one — including
the waiver-comment escape hatches. This is what keeps a new rule or a
waiver-syntax change from silently rotting: a regex edit that stops
matching fails here, in ctest, not months later in review.

Stdlib only; registered as the LintSelfTest ctest target.
"""

import os
import subprocess
import sys
import tempfile

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)), "lint.py")

# Each case: (name, {relative path: contents}, expected rule tag or None).
# Paths are relative to the corpus root; lint.py scans the same
# src/tools/bench/tests/examples roots it scans in the real repo.
CASES = [
    # pragma-once
    ("pragma_once_bad",
     {"src/x.h": "int F();\n"},
     "pragma-once"),
    ("pragma_once_good",
     {"src/x.h": "#pragma once\nint F();\n"},
     None),

    # banned-rand
    ("banned_rand_bad",
     {"src/x.cc": "int G() { return rand(); }\n"},
     "banned-rand"),
    ("banned_rand_good",
     {"src/x.cc": "int G(int r) { return my_rand(r); }\n"},
     None),

    # no-unordered-ppjoin (only bites under src/ppjoin/)
    ("unordered_ppjoin_bad",
     {"src/ppjoin/x.cc": "std::unordered_map<int, int> m;\n"},
     "no-unordered-ppjoin"),
    ("unordered_ppjoin_waived",
     {"src/ppjoin/x.cc":
      "#include <unordered_map>\n"
      "// lint: allow-unordered (cold path)\n"
      "std::unordered_map<int, int> m;\n"},
     None),
    ("unordered_outside_ppjoin_good",
     {"src/common/x.cc": "std::unordered_map<int, int> m;\n"
      "#include <unordered_map>\n"},
     None),

    # no-raw-thread
    ("raw_thread_bad",
     {"src/x.cc": "#include <thread>\nstd::thread t;\n"},
     "no-raw-thread"),
    ("raw_thread_waived",
     {"src/x.cc": "#include <thread>\n"
      "std::thread t;  // lint: allow-thread (test needs a bare thread)\n"},
     None),
    ("raw_thread_query_good",
     {"src/x.cc": "#include <thread>\n"
      "unsigned n = std::thread::hardware_concurrency();\n"},
     None),
    ("raw_thread_executor_exempt",
     {"src/common/executor.cc": "#include <thread>\nstd::thread t;\n"},
     None),

    # no-raw-file-io
    ("raw_file_io_bad",
     {"tests/x.cc": "std::ifstream in;\n"},
     "no-raw-file-io"),
    ("raw_file_io_waived",
     {"tests/x.cc":
      "// lint: allow-file-io (golden file fixture)\nstd::ifstream in;\n"},
     None),
    ("raw_file_io_dfs_exempt",
     {"src/mapreduce/dfs.cc": "std::ifstream in;\n"},
     None),
    ("raw_file_io_tools_exempt",
     {"tools/x.cc": "std::ifstream in;\n"},
     None),

    # no-raw-socket
    ("raw_socket_bad",
     {"src/x.cc": "int fd = socket(2, 1, 0);\n"},
     "no-raw-socket"),
    ("raw_socket_waived",
     {"src/x.cc":
      "int fd = socket(2, 1, 0);  // lint: allow-socket (probe)\n"},
     None),
    ("raw_socket_worker_net_exempt",
     {"src/mapreduce/worker_net.cc": "int fd = socket(2, 1, 0);\n"},
     None),
    ("raw_socket_member_call_good",
     {"src/x.cc": "transport->send(frame);\n"},
     None),

    # no-naked-mutex
    ("naked_mutex_bad",
     {"src/x.cc": "#include <mutex>\nstd::mutex mu;\n"},
     "no-naked-mutex"),
    ("naked_condvar_bad",
     {"src/x.cc": "std::condition_variable cv;\n"},
     "no-naked-mutex"),
    ("naked_lock_guard_bad",
     {"src/x.cc":
      "#include <mutex>\nvoid F() { std::lock_guard<std::mutex> l(mu); }\n"},
     "no-naked-mutex"),
    ("naked_mutex_waived",
     {"src/x.cc": "#include <mutex>\n"
      "std::mutex mu;  // lint: allow-naked-mutex (ffi boundary)\n"},
     None),
    ("naked_mutex_preceding_waiver",
     {"src/x.cc": "#include <mutex>\n"
      "// lint: allow-naked-mutex (ffi boundary)\nstd::mutex mu;\n"},
     None),
    ("naked_mutex_sync_h_exempt",
     {"src/common/sync.h": "#pragma once\n#include <mutex>\n"
      "class Mutex { std::mutex mu_; };\n"},
     None),
    ("fj_mutex_good",
     {"src/x.cc": "fj::Mutex mu{\"x\"};\nvoid F() { fj::MutexLock l(&mu); }\n"},
     None),

    # iwyu-lite
    ("iwyu_bad",
     {"src/x.cc": "std::optional<int> v;\n"},
     "iwyu-lite"),
    ("iwyu_good",
     {"src/x.cc": "#include <optional>\nstd::optional<int> v;\n"},
     None),

    # nodiscard-status (only applies to trees carrying status.h/result.h)
    ("nodiscard_bad",
     {"src/common/status.h": "#pragma once\nclass Status {};\n",
      "src/common/result.h":
      "#pragma once\ntemplate <class T> class [[nodiscard]] Result {};\n"},
     "nodiscard-status"),
    ("nodiscard_good",
     {"src/common/status.h": "#pragma once\nclass [[nodiscard]] Status {};\n",
      "src/common/result.h":
      "#pragma once\ntemplate <class T> class [[nodiscard]] Result {};\n"},
     None),
]


def run_case(name, files, expected_rule):
    with tempfile.TemporaryDirectory(prefix=f"lint_selftest_{name}_") as root:
        for rel, contents in files.items():
            path = os.path.join(root, rel)
            os.makedirs(os.path.dirname(path), exist_ok=True)
            with open(path, "w", encoding="utf-8") as f:
                f.write(contents)
        proc = subprocess.run(
            [sys.executable, LINT, "--root", root],
            capture_output=True, text=True, check=False)
        out = proc.stdout + proc.stderr
        if expected_rule is None:
            if proc.returncode != 0:
                return f"{name}: expected clean, got rc={proc.returncode}:\n{out}"
        else:
            if proc.returncode == 0:
                return f"{name}: expected [{expected_rule}] violation, got OK"
            if f"[{expected_rule}]" not in out:
                return (f"{name}: violation fired but not as "
                        f"[{expected_rule}]:\n{out}")
    return None


def main():
    failures = [f for f in (run_case(*case) for case in CASES) if f]
    for f in failures:
        print(f"FAIL {f}")
    print(f"lint_selftest: {len(CASES) - len(failures)}/{len(CASES)} cases "
          f"passed")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
