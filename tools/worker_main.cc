// fuzzyjoin_worker — standalone shuffle-worker process.
//
//   fuzzyjoin_worker [--port_fd=FD] [--life_fd=FD] [--net_faults=PLAN]
//
// Serves the worker_net.h frame protocol (PUT/GET/PING/DROPJOB) on an
// OS-assigned loopback port. The port is written as "<port>\n" to
// --port_fd (default stdout); the process exits when --life_fd (default
// stdin) reaches EOF, so a dead coordinator can never leak workers.
// --net_faults takes a NetFaultPlan::Serialize string and turns the
// worker into a deterministic chaos server.
//
// The coordinator normally spawns workers by re-execing its own binary
// in worker mode (WorkerPool::SpawnProcesses); this standalone binary
// exists for manual experiments and cross-binary setups, e.g.:
//
//   mkfifo life && fuzzyjoin_worker < life &
#include "mapreduce/worker_net.h"

int main(int argc, char** argv) {
  return fj::mr::net::RunShuffleWorkerMain(argc, argv);
}
