#include "ppjoin/ppjoin.h"

#include <algorithm>
#include <cassert>

namespace fj::ppjoin {

using sim::kOverlapFailed;
using sim::PassesPositionalFilter;
using sim::SimilarityFromOverlap;
using sim::VerifyOverlap;

PPJoinStream::PPJoinStream(sim::SimilaritySpec spec, PPJoinOptions options)
    : spec_(spec),
      options_(options),
      suffix_filter_(options.suffix_filter_depth) {}

void PPJoinStream::ProbeAndInsert(const TokenSetRecord& record,
                                  std::vector<SimilarPair>* out) {
  ProbeInternal(record, /*self_join=*/true, out);

  // Self-join index prefix: every future probe x has |x| >= |record|, and
  // MinOverlap is non-decreasing in the partner length, so the tightest
  // overlap requirement is at |x| == |record|. This gives a *shorter*
  // prefix than the probe prefix — fewer postings, less memory.
  size_t l = record.tokens.size();
  if (l == 0) return;
  size_t alpha_equal = spec_.MinOverlap(l, l);
  size_t index_prefix = l >= alpha_equal ? l - alpha_equal + 1 : 0;
  InsertWithPrefix(record, index_prefix);
}

void PPJoinStream::InsertRS(const TokenSetRecord& record) {
  // R-S index prefix: S partners may be *shorter* than this R record, so
  // the tightest requirement is at the length lower bound — the full probe
  // prefix.
  InsertWithPrefix(record, spec_.PrefixLength(record.tokens.size()));
}

void PPJoinStream::Probe(const TokenSetRecord& record,
                         std::vector<SimilarPair>* out) {
  ProbeInternal(record, /*self_join=*/false, out);
}

void PPJoinStream::InsertWithPrefix(const TokenSetRecord& record,
                                    size_t index_prefix) {
  size_t l = record.tokens.size();
  if (l == 0) return;
  assert(lengths_.empty() || l >= lengths_.back());

  uint32_t idx = static_cast<uint32_t>(store_.size());
  store_.push_back(record);
  lengths_.push_back(static_cast<uint32_t>(l));
  resident_tokens_ += l;
  stats_.peak_resident_tokens =
      std::max(stats_.peak_resident_tokens, resident_tokens_);

  index_prefix = std::min(index_prefix, l);
  for (size_t pos = 0; pos < index_prefix; ++pos) {
    index_[record.tokens[pos]].entries.push_back(
        Posting{idx, static_cast<uint32_t>(pos)});
  }
}

void PPJoinStream::EvictShorterThan(size_t min_len) {
  while (live_from_ < store_.size() && lengths_[live_from_] < min_len) {
    resident_tokens_ -= store_[live_from_].tokens.size();
    store_[live_from_].tokens.clear();
    store_[live_from_].tokens.shrink_to_fit();
    ++live_from_;
    ++stats_.evicted_records;
  }
}

void PPJoinStream::ProbeInternal(const TokenSetRecord& record, bool self_join,
                                 std::vector<SimilarPair>* out) {
  ++stats_.probes;
  size_t l = record.tokens.size();
  if (l == 0) return;

  EvictShorterThan(spec_.LengthLowerBound(l));
  size_t upper = spec_.LengthUpperBound(l);
  size_t probe_prefix = spec_.PrefixLength(l);

  candidates_.clear();
  std::vector<uint32_t> candidate_order;  // deterministic verify order

  TokenIdSpan x(record.tokens);
  for (size_t i = 0; i < probe_prefix; ++i) {
    auto it = index_.find(x[i]);
    if (it == index_.end()) continue;
    PostingList& list = it->second;
    // Advance past postings of evicted (too short) records.
    while (list.head < list.entries.size() &&
           list.entries[list.head].record_index < live_from_) {
      ++list.head;
    }
    for (size_t k = list.head; k < list.entries.size(); ++k) {
      const Posting& posting = list.entries[k];
      uint32_t y_idx = posting.record_index;
      size_t ly = lengths_[y_idx];
      // In the R-S case the index may already hold R records longer than
      // this probe's upper bound (they were streamed by length class);
      // the length filter skips them.
      if (ly > upper) continue;

      CandidateState& state = candidates_[y_idx];
      if (state.pruned) continue;
      bool first = state.overlap == 0;

      size_t alpha = spec_.MinOverlap(l, ly);
      size_t j = posting.position;
      if (options_.use_positional_filter &&
          !PassesPositionalFilter(l, ly, i, j, state.overlap, alpha)) {
        state.pruned = true;
        ++stats_.positional_pruned;
        continue;
      }
      if (first) {
        ++stats_.candidates;
        candidate_order.push_back(y_idx);
        if (options_.use_suffix_filter) {
          // Tokens at positions <= i in x and <= j in y can contribute at
          // most 1 + min(i, j) to the overlap; the suffixes must supply
          // the rest.
          size_t covered = 1 + std::min(i, j);
          size_t required = alpha > covered ? alpha - covered : 0;
          TokenIdSpan x_s = x.subspan(i + 1);
          TokenIdSpan y_s =
              TokenIdSpan(store_[y_idx].tokens).subspan(j + 1);
          if (!suffix_filter_.MayQualify(x_s, y_s, required)) {
            state.pruned = true;
            ++stats_.suffix_pruned;
            continue;
          }
        }
      }
      ++state.overlap;
    }
  }

  for (uint32_t y_idx : candidate_order) {
    const CandidateState& state = candidates_[y_idx];
    if (state.pruned || state.overlap == 0) continue;
    const TokenSetRecord& y = store_[y_idx];
    size_t ly = lengths_[y_idx];
    size_t alpha = spec_.MinOverlap(l, ly);
    ++stats_.verified;
    size_t overlap = VerifyOverlap(x, y.tokens, 0, 0, 0, alpha);
    if (overlap == kOverlapFailed) continue;
    double similarity =
        SimilarityFromOverlap(spec_.function(), overlap, l, ly);
    if (self_join) {
      out->push_back(MakeSelfJoinPair(y.rid, record.rid, similarity));
    } else {
      out->push_back(SimilarPair{y.rid, record.rid, similarity});
    }
    ++stats_.results;
  }
}

std::vector<SimilarPair> PPJoinSelfJoin(std::vector<TokenSetRecord> records,
                                        const sim::SimilaritySpec& spec,
                                        PPJoinOptions options,
                                        PPJoinStats* stats) {
  SortByLength(&records);
  PPJoinStream stream(spec, options);
  std::vector<SimilarPair> out;
  for (const auto& record : records) stream.ProbeAndInsert(record, &out);
  if (stats != nullptr) *stats = stream.stats();
  SortAndDedupePairs(&out);
  return out;
}

std::vector<SimilarPair> PPJoinRSJoin(std::vector<TokenSetRecord> r_records,
                                      std::vector<TokenSetRecord> s_records,
                                      const sim::SimilaritySpec& spec,
                                      PPJoinOptions options,
                                      PPJoinStats* stats) {
  SortByLength(&r_records);
  SortByLength(&s_records);
  PPJoinStream stream(spec, options);
  std::vector<SimilarPair> out;

  // Interleave by the Section 4 rule: before probing an S record of length
  // l, insert every R record of length <= LengthUpperBound(l).
  size_t r_pos = 0;
  for (const auto& s : s_records) {
    size_t upper = spec.LengthUpperBound(s.tokens.size());
    while (r_pos < r_records.size() &&
           r_records[r_pos].tokens.size() <= upper) {
      stream.InsertRS(r_records[r_pos]);
      ++r_pos;
    }
    stream.Probe(s, &out);
  }
  if (stats != nullptr) *stats = stream.stats();
  SortAndDedupePairs(&out);
  return out;
}

}  // namespace fj::ppjoin
