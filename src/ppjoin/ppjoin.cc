#include "ppjoin/ppjoin.h"

#include <algorithm>
#include <cassert>

#include "text/token_ordering.h"

namespace fj::ppjoin {

using sim::kOverlapFailed;
using sim::PassesPositionalFilter;
using sim::SimilarityFromOverlap;
using sim::VerifyOverlap;

namespace {

/// Compacting below this many dead tokens is not worth the memmove.
constexpr size_t kMinCompactTokens = 1024;

}  // namespace

PPJoinStream::PPJoinStream(sim::SimilaritySpec spec, PPJoinOptions options)
    : spec_(spec),
      options_(options),
      suffix_filter_(options.suffix_filter_depth) {}

void PPJoinStream::ProbeAndInsert(const TokenSetRecord& record,
                                  std::vector<SimilarPair>* out) {
  // One signature build serves both the probe and the insert below.
  sim::BitmapSignature sig;
  if (options_.use_bitmap_filter && !record.tokens.empty()) {
    sig = sim::BuildBitmapSignature(record.tokens);
  }
  ProbeInternal(record, /*self_join=*/true, &sig, out);

  // Self-join index prefix: every future probe x has |x| >= |record|, and
  // MinOverlap is non-decreasing in the partner length, so the tightest
  // overlap requirement is at |x| == |record|. This gives a *shorter*
  // prefix than the probe prefix — fewer postings, less memory.
  size_t l = record.tokens.size();
  if (l == 0) return;
  if (l != insert_alpha_len_) {
    insert_alpha_len_ = l;
    insert_alpha_ = spec_.MinOverlap(l, l);
  }
  size_t alpha_equal = insert_alpha_;
  size_t index_prefix = l >= alpha_equal ? l - alpha_equal + 1 : 0;
  InsertWithPrefix(record, index_prefix, &sig);
}

void PPJoinStream::InsertRS(const TokenSetRecord& record) {
  // R-S index prefix: S partners may be *shorter* than this R record, so
  // the tightest requirement is at the length lower bound — the full probe
  // prefix.
  InsertWithPrefix(record, spec_.PrefixLength(record.tokens.size()));
}

void PPJoinStream::Probe(const TokenSetRecord& record,
                         std::vector<SimilarPair>* out) {
  ProbeInternal(record, /*self_join=*/false, /*sig=*/nullptr, out);
}

PPJoinStream::PostingList* PPJoinStream::FindPostingList(TokenId id) {
  if (id < text::kUnknownTokenBase) {
    ++stats_.hash_lookups_avoided;
    if (id >= dense_index_.size()) return nullptr;
    PostingList& list = dense_index_[id];
    return list.entries.empty() ? nullptr : &list;
  }
  auto it = unknown_index_.find(id);
  return it == unknown_index_.end() ? nullptr : &it->second;
}

PPJoinStream::PostingList& PPJoinStream::PostingListFor(TokenId id) {
  if (id < text::kUnknownTokenBase) {
    ++stats_.hash_lookups_avoided;
    if (id >= dense_index_.size()) {
      // Grow geometrically: ranks arrive roughly densely, but a resize per
      // new id would be quadratic on adversarial orders.
      dense_index_.resize(std::max<size_t>(id + 1, dense_index_.size() * 2));
    }
    return dense_index_[id];
  }
  return unknown_index_[id];
}

void PPJoinStream::InsertWithPrefix(const TokenSetRecord& record,
                                    size_t index_prefix,
                                    const sim::BitmapSignature* sig) {
  size_t l = record.tokens.size();
  if (l == 0) return;
  assert(store_.empty() || l >= store_.back().length);

  uint32_t idx = static_cast<uint32_t>(store_.size());
  IndexedRecord rec;
  rec.rid = record.rid;
  if (options_.use_bitmap_filter) {
    rec.signature = sig != nullptr ? *sig
                                   : sim::BuildBitmapSignature(record.tokens);
  }
  rec.arena_begin = arena_.size();
  rec.length = static_cast<uint32_t>(l);
  arena_.insert(arena_.end(), record.tokens.begin(), record.tokens.end());
  store_.push_back(rec);
  candidate_slots_.emplace_back();

  resident_tokens_ += l;
  stats_.peak_resident_tokens =
      std::max(stats_.peak_resident_tokens, resident_tokens_);
  stats_.arena_bytes = std::max<uint64_t>(
      stats_.arena_bytes, arena_.capacity() * sizeof(TokenId));

  index_prefix = std::min(index_prefix, l);
  for (size_t pos = 0; pos < index_prefix; ++pos) {
    PostingListFor(record.tokens[pos])
        .entries.push_back(
            Posting{idx, static_cast<uint32_t>(pos), rec.length});
  }
}

void PPJoinStream::EvictShorterThan(size_t min_len) {
  while (live_from_ < store_.size() && store_[live_from_].length < min_len) {
    resident_tokens_ -= store_[live_from_].length;
    ++live_from_;
    ++stats_.evicted_records;
  }
  arena_live_begin_ = live_from_ < store_.size()
                          ? store_[live_from_].arena_begin
                          : arena_.size();
  MaybeCompactArena();
}

void PPJoinStream::MaybeCompactArena() {
  // Compact when the dead prefix outweighs the live suffix: every live
  // token moves at most once per halving, so the memmove cost is O(1)
  // amortised per inserted token.
  if (arena_live_begin_ < kMinCompactTokens ||
      arena_live_begin_ * 2 < arena_.size()) {
    return;
  }
  arena_.erase(arena_.begin(),
               arena_.begin() + static_cast<ptrdiff_t>(arena_live_begin_));
  for (size_t i = live_from_; i < store_.size(); ++i) {
    store_[i].arena_begin -= arena_live_begin_;
  }
  arena_live_begin_ = 0;
}

void PPJoinStream::ProbeInternal(const TokenSetRecord& record, bool self_join,
                                 const sim::BitmapSignature* sig,
                                 std::vector<SimilarPair>* out) {
  ++stats_.probes;
  size_t l = record.tokens.size();
  if (l == 0) return;

  EvictShorterThan(spec_.LengthLowerBound(l));
  size_t upper = spec_.LengthUpperBound(l);
  size_t probe_prefix = spec_.PrefixLength(l);

  // Candidate lengths never exceed the longest indexed record, so the
  // epoch-stamped MinOverlap memo only needs that many slots. Its version
  // advances only when the probe length changes, so entries survive
  // across consecutive probes of the same length.
  size_t max_len = live_from_ < store_.size() ? store_.back().length : 0;
  if (alpha_cache_.size() <= max_len) alpha_cache_.resize(max_len + 1);
  if (l != alpha_probe_len_) {
    alpha_probe_len_ = l;
    ++alpha_epoch_;
  }

  ++probe_epoch_;
  candidate_order_.clear();

  const uint64_t epoch = probe_epoch_;
  const uint64_t alpha_epoch = alpha_epoch_;
  const IndexedRecord* const store = store_.data();
  CandidateSlot* const slots = candidate_slots_.data();
  AlphaCacheEntry* const alphas = alpha_cache_.data();
  const bool use_positional = options_.use_positional_filter;
  const bool use_suffix = options_.use_suffix_filter;
  const bool use_bitmap = options_.use_bitmap_filter;

  TokenIdSpan x(record.tokens);
  sim::BitmapSignature x_sig;
  if (use_bitmap) {
    x_sig = sig != nullptr ? *sig : sim::BuildBitmapSignature(x);
  }
  for (size_t i = 0; i < probe_prefix; ++i) {
    PostingList* list = FindPostingList(x[i]);
    if (list == nullptr) continue;
    // Advance past postings of evicted (too short) records.
    while (list->head < list->entries.size() &&
           list->entries[list->head].record_index < live_from_) {
      ++list->head;
    }
    const Posting* p = list->entries.data() + list->head;
    const Posting* const end = list->entries.data() + list->entries.size();
    for (; p != end; ++p) {
      size_t ly = p->length;
      // In the R-S case the index may already hold R records longer than
      // this probe's upper bound (they were streamed by length class);
      // the length filter skips them.
      if (ly > upper) continue;
      uint32_t y_idx = p->record_index;

      CandidateSlot& slot = slots[y_idx];
      if (slot.epoch != epoch) {
        slot.epoch = epoch;
        slot.overlap = 0;
        slot.pruned = false;
      }
      if (slot.pruned) continue;
      bool first = slot.overlap == 0;

      AlphaCacheEntry& memo = alphas[ly];
      if (memo.epoch != alpha_epoch) {
        memo.epoch = alpha_epoch;
        memo.alpha = spec_.MinOverlap(l, ly);
      }
      size_t alpha = memo.alpha;
      size_t j = p->position;
      if (use_positional &&
          !PassesPositionalFilter(l, ly, i, j, slot.overlap, alpha)) {
        slot.pruned = true;
        ++stats_.positional_pruned;
        continue;
      }
      if (first) {
        ++stats_.candidates;
        candidate_order_.push_back(y_idx);
        // Bitmap pre-verification filter, cheapest first: two XORs and two
        // popcounts bound the overlap; a hopeless candidate skips both the
        // suffix filter and the verification merge. Output-preserving —
        // the bound only ever rejects pairs the merge would reject.
        if (use_bitmap &&
            sim::BitmapOverlapUpperBound(x_sig, store[y_idx].signature, l,
                                         ly) < alpha) {
          slot.pruned = true;
          ++stats_.bitmap_pruned;
          continue;
        }
        if (use_suffix) {
          // Tokens at positions <= i in x and <= j in y can contribute at
          // most 1 + min(i, j) to the overlap; the suffixes must supply
          // the rest.
          size_t covered = 1 + std::min(i, j);
          size_t required = alpha > covered ? alpha - covered : 0;
          TokenIdSpan x_s = x.subspan(i + 1);
          TokenIdSpan y_s = TokensOf(store[y_idx]).subspan(j + 1);
          if (!suffix_filter_.MayQualify(x_s, y_s, required)) {
            slot.pruned = true;
            ++stats_.suffix_pruned;
            continue;
          }
        }
      }
      ++slot.overlap;
    }
  }

  for (uint32_t y_idx : candidate_order_) {
    const CandidateSlot& slot = slots[y_idx];
    if (slot.pruned || slot.overlap == 0) continue;
    const IndexedRecord& y = store[y_idx];
    size_t ly = y.length;
    size_t alpha = alphas[ly].alpha;  // stamped during the scan above
    ++stats_.verified;
    size_t overlap = VerifyOverlap(x, TokensOf(y), 0, 0, 0, alpha);
    if (overlap == kOverlapFailed) continue;
    double similarity =
        SimilarityFromOverlap(spec_.function(), overlap, l, ly);
    if (self_join) {
      out->push_back(MakeSelfJoinPair(y.rid, record.rid, similarity));
    } else {
      out->push_back(SimilarPair{y.rid, record.rid, similarity});
    }
    ++stats_.results;
  }
}

std::vector<SimilarPair> PPJoinSelfJoin(std::vector<TokenSetRecord> records,
                                        const sim::SimilaritySpec& spec,
                                        PPJoinOptions options,
                                        PPJoinStats* stats) {
  SortByLength(&records);
  PPJoinStream stream(spec, options);
  std::vector<SimilarPair> out;
  for (const auto& record : records) stream.ProbeAndInsert(record, &out);
  if (stats != nullptr) *stats = stream.stats();
  SortAndDedupePairs(&out);
  return out;
}

std::vector<SimilarPair> PPJoinRSJoin(std::vector<TokenSetRecord> r_records,
                                      std::vector<TokenSetRecord> s_records,
                                      const sim::SimilaritySpec& spec,
                                      PPJoinOptions options,
                                      PPJoinStats* stats) {
  SortByLength(&r_records);
  SortByLength(&s_records);
  PPJoinStream stream(spec, options);
  std::vector<SimilarPair> out;

  // Interleave by the Section 4 rule: before probing an S record of length
  // l, insert every R record of length <= LengthUpperBound(l).
  size_t r_pos = 0;
  for (const auto& s : s_records) {
    size_t upper = spec.LengthUpperBound(s.tokens.size());
    while (r_pos < r_records.size() &&
           r_records[r_pos].tokens.size() <= upper) {
      stream.InsertRS(r_records[r_pos]);
      ++r_pos;
    }
    stream.Probe(s, &out);
  }
  if (stats != nullptr) *stats = stream.stats();
  SortAndDedupePairs(&out);
  return out;
}

}  // namespace fj::ppjoin
