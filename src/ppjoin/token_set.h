// The record representation shared by every set-similarity kernel: a record
// id plus its token set as an ascending array of TokenId (ascending id order
// is the global increasing-frequency order from stage 1).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "similarity/similarity.h"

namespace fj::ppjoin {

using sim::TokenId;
using sim::TokenIdSpan;

/// A record projected onto (RID, join-attribute token set).
struct TokenSetRecord {
  uint64_t rid = 0;
  std::vector<TokenId> tokens;  ///< ascending, duplicate-free

  size_t size() const { return tokens.size(); }
};

/// One join result: a pair of RIDs and their similarity.
struct SimilarPair {
  uint64_t rid1 = 0;
  uint64_t rid2 = 0;
  double similarity = 0;

  /// Orders by (rid1, rid2); similarity is determined by the pair.
  friend bool operator<(const SimilarPair& a, const SimilarPair& b) {
    if (a.rid1 != b.rid1) return a.rid1 < b.rid1;
    return a.rid2 < b.rid2;
  }
  friend bool operator==(const SimilarPair& a, const SimilarPair& b) {
    return a.rid1 == b.rid1 && a.rid2 == b.rid2;
  }
};

/// Canonical self-join pair: smaller RID first.
inline SimilarPair MakeSelfJoinPair(uint64_t a, uint64_t b, double similarity) {
  if (a > b) std::swap(a, b);
  return SimilarPair{a, b, similarity};
}

/// Sorts records by ascending token-set size (ties by RID, so the order is
/// total and runs are deterministic). The streaming kernels require this
/// arrival order.
void SortByLength(std::vector<TokenSetRecord>* records);

/// Sorts and deduplicates a result list.
void SortAndDedupePairs(std::vector<SimilarPair>* pairs);

}  // namespace fj::ppjoin
