#include "ppjoin/token_set.h"

#include <algorithm>

namespace fj::ppjoin {

void SortByLength(std::vector<TokenSetRecord>* records) {
  // Sort compact (length, rid, index) keys instead of the records
  // themselves: the comparator then never chases the token-vector pointer
  // and the records move exactly once, via the permutation.
  struct Key {
    size_t len;
    uint64_t rid;
    uint32_t idx;
  };
  std::vector<Key> keys;
  keys.reserve(records->size());
  for (uint32_t i = 0; i < records->size(); ++i) {
    keys.push_back(Key{(*records)[i].tokens.size(), (*records)[i].rid, i});
  }
  std::sort(keys.begin(), keys.end(), [](const Key& a, const Key& b) {
    if (a.len != b.len) return a.len < b.len;
    return a.rid < b.rid;
  });
  std::vector<TokenSetRecord> sorted;
  sorted.reserve(records->size());
  for (const Key& key : keys) {
    sorted.push_back(std::move((*records)[key.idx]));
  }
  *records = std::move(sorted);
}

void SortAndDedupePairs(std::vector<SimilarPair>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

}  // namespace fj::ppjoin
