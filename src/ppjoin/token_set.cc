#include "ppjoin/token_set.h"

#include <algorithm>

namespace fj::ppjoin {

void SortByLength(std::vector<TokenSetRecord>* records) {
  std::sort(records->begin(), records->end(),
            [](const TokenSetRecord& a, const TokenSetRecord& b) {
              if (a.tokens.size() != b.tokens.size()) {
                return a.tokens.size() < b.tokens.size();
              }
              return a.rid < b.rid;
            });
}

void SortAndDedupePairs(std::vector<SimilarPair>* pairs) {
  std::sort(pairs->begin(), pairs->end());
  pairs->erase(std::unique(pairs->begin(), pairs->end()), pairs->end());
}

}  // namespace fj::ppjoin
