// Brute-force O(n^2) set-similarity join. The ground truth every other
// kernel and the end-to-end pipelines are validated against.
#pragma once

#include <vector>

#include "ppjoin/token_set.h"
#include "similarity/similarity.h"

namespace fj::ppjoin {

/// All pairs (i < j) with sim(records[i], records[j]) >= tau. Self-join
/// pairs are canonical (smaller RID first), sorted, duplicate-free.
std::vector<SimilarPair> NaiveSelfJoin(const std::vector<TokenSetRecord>& records,
                                       const sim::SimilaritySpec& spec);

/// All (r, s) pairs with sim >= tau; rid1 is from `r_records`, rid2 from
/// `s_records`. Sorted, duplicate-free.
std::vector<SimilarPair> NaiveRSJoin(const std::vector<TokenSetRecord>& r_records,
                                     const std::vector<TokenSetRecord>& s_records,
                                     const sim::SimilaritySpec& spec);

}  // namespace fj::ppjoin
