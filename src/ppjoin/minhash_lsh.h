// MinHash + LSH approximate set-similarity self-join.
//
// The paper's related work (Gionis, Indyk, Motwani [12]) frames an
// alternative formulation: "return partial answers, by using the idea of
// locality sensitive hashing". This module implements that alternative so
// the exact/approximate trade-off can be reproduced:
//
//   * each record gets a MinHash signature of num_bands * rows_per_band
//     independent permutation minima (E[signature agreement] = Jaccard);
//   * signatures are cut into bands; records agreeing on all rows of any
//     band land in the same bucket and become a candidate pair;
//   * candidates are verified exactly, so precision is 1 — only RECALL is
//     approximate. P(candidate | jaccard = s) = 1 - (1 - s^rows)^bands.
//
// Compared with the prefix-filter kernels this trades a recall guarantee
// for insensitivity to token-frequency skew; bench_lsh measures the
// trade-off against PPJoin+ on the same data.
#pragma once

#include <cstdint>
#include <vector>

#include "ppjoin/token_set.h"
#include "similarity/similarity.h"

namespace fj::ppjoin {

struct MinHashLshOptions {
  size_t num_bands = 16;
  size_t rows_per_band = 4;
  uint64_t seed = 0x5eed;
};

/// Statistics of one LSH join run.
struct MinHashLshStats {
  uint64_t candidate_pairs = 0;  ///< distinct pairs sharing >= 1 bucket
  uint64_t verified = 0;
  uint64_t results = 0;
};

/// Probability that a pair with the given Jaccard similarity becomes a
/// candidate: 1 - (1 - s^rows)^bands. Useful for picking parameters.
double LshCandidateProbability(double jaccard, const MinHashLshOptions& opts);

/// Approximate self-join: returns verified pairs with sim(x,y) >= tau
/// (Jaccard only — MinHash estimates Jaccard). Output is exact-precision
/// but may MISS pairs (recall < 1); sorted, duplicate-free, canonical.
std::vector<SimilarPair> MinHashLshSelfJoin(
    const std::vector<TokenSetRecord>& records,
    const sim::SimilaritySpec& spec, const MinHashLshOptions& options = {},
    MinHashLshStats* stats = nullptr);

/// Computes the MinHash signature of one token set (exposed for tests).
std::vector<uint64_t> MinHashSignature(const TokenSetRecord& record,
                                       size_t hashes, uint64_t seed);

/// One bucket key per band: the combined hash of the band's signature
/// rows. `signature` must hold num_bands * rows_per_band slots. This is
/// the bucket identity shared by the batch LSH join and the serving
/// index's incremental LSH tier — both sides MUST agree, and the keys are
/// deterministic functions of (signature, options) with no per-process
/// state, so they are stable across runs and machines.
std::vector<uint64_t> BandKeys(const std::vector<uint64_t>& signature,
                               const MinHashLshOptions& options);

}  // namespace fj::ppjoin
