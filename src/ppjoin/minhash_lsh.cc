#include "ppjoin/minhash_lsh.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_map>
#include <unordered_set>

#include "common/hash.h"

namespace fj::ppjoin {

double LshCandidateProbability(double jaccard,
                               const MinHashLshOptions& opts) {
  double band_match = std::pow(jaccard, static_cast<double>(opts.rows_per_band));
  return 1.0 - std::pow(1.0 - band_match, static_cast<double>(opts.num_bands));
}

std::vector<uint64_t> MinHashSignature(const TokenSetRecord& record,
                                       size_t hashes, uint64_t seed) {
  // One universal-style hash per signature slot: h_k(t) = fmix(t ^ salt_k).
  // The minimum over the set is a consistent sample of its elements, so
  // P(min_k(A) == min_k(B)) = |A ∩ B| / |A ∪ B|.
  std::vector<uint64_t> signature(hashes,
                                  std::numeric_limits<uint64_t>::max());
  for (size_t k = 0; k < hashes; ++k) {
    uint64_t salt = HashInt64(seed + 0x9e3779b97f4a7c15ULL * (k + 1));
    for (TokenId token : record.tokens) {
      uint64_t h = HashInt64(token ^ salt);
      if (h < signature[k]) signature[k] = h;
    }
  }
  return signature;
}

std::vector<uint64_t> BandKeys(const std::vector<uint64_t>& signature,
                               const MinHashLshOptions& options) {
  std::vector<uint64_t> keys;
  keys.reserve(options.num_bands);
  for (size_t band = 0; band < options.num_bands; ++band) {
    uint64_t key = kFnvOffsetBasis;
    for (size_t row = 0; row < options.rows_per_band; ++row) {
      key = HashCombine(key, signature[band * options.rows_per_band + row]);
    }
    keys.push_back(key);
  }
  return keys;
}

std::vector<SimilarPair> MinHashLshSelfJoin(
    const std::vector<TokenSetRecord>& records,
    const sim::SimilaritySpec& spec, const MinHashLshOptions& options,
    MinHashLshStats* stats) {
  MinHashLshStats local_stats;
  const size_t hashes = options.num_bands * options.rows_per_band;

  std::vector<std::vector<uint64_t>> signatures;
  signatures.reserve(records.size());
  for (const auto& record : records) {
    signatures.push_back(MinHashSignature(record, hashes, options.seed));
  }

  // Band buckets: hash of the band's rows -> record indices.
  // Approximate baseline, not the PPJoin kernel; candidates are sorted
  // before use, so bucket order never leaks out.
  // lint: allow-unordered (LSH baseline, order never observable)
  std::unordered_set<uint64_t> seen_pairs;  // packed (i, j) dedupe
  std::vector<std::pair<size_t, size_t>> candidates;
  std::vector<std::vector<uint64_t>> band_keys;
  band_keys.reserve(records.size());
  for (const auto& signature : signatures) {
    band_keys.push_back(BandKeys(signature, options));
  }
  for (size_t band = 0; band < options.num_bands; ++band) {
    // lint: allow-unordered (same waiver as seen_pairs above)
    std::unordered_map<uint64_t, std::vector<size_t>> buckets;
    buckets.reserve(records.size());
    for (size_t i = 0; i < records.size(); ++i) {
      if (records[i].tokens.empty()) continue;
      auto& bucket = buckets[band_keys[i][band]];
      for (size_t j : bucket) {
        uint64_t packed = (static_cast<uint64_t>(j) << 32) |
                          static_cast<uint64_t>(i);
        if (seen_pairs.insert(packed).second) {
          candidates.emplace_back(j, i);
        }
      }
      bucket.push_back(i);
    }
  }
  local_stats.candidate_pairs = candidates.size();

  std::vector<SimilarPair> out;
  for (const auto& [i, j] : candidates) {
    const auto& x = records[i];
    const auto& y = records[j];
    size_t alpha = spec.MinOverlap(x.tokens.size(), y.tokens.size());
    ++local_stats.verified;
    size_t overlap = sim::VerifyOverlap(x.tokens, y.tokens, 0, 0, 0, alpha);
    if (overlap == sim::kOverlapFailed) continue;
    double similarity = sim::SimilarityFromOverlap(
        spec.function(), overlap, x.tokens.size(), y.tokens.size());
    out.push_back(MakeSelfJoinPair(x.rid, y.rid, similarity));
    ++local_stats.results;
  }
  SortAndDedupePairs(&out);
  if (stats != nullptr) *stats = local_stats;
  return out;
}

}  // namespace fj::ppjoin
