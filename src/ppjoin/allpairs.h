// All-Pairs (Bayardo, Ma, Srikant — WWW'07): prefix + length filtering
// without the positional and suffix filters. One of the single-node
// baselines the paper cites ([4]); here it is the PPJoin stream with those
// filters disabled, which makes filter-ablation comparisons exact (same
// index, same verify, different pruning).
#pragma once

#include <vector>

#include "ppjoin/ppjoin.h"
#include "ppjoin/token_set.h"

namespace fj::ppjoin {

inline PPJoinOptions AllPairsOptions() {
  PPJoinOptions options;
  options.use_positional_filter = false;
  options.use_suffix_filter = false;
  return options;
}

inline std::vector<SimilarPair> AllPairsSelfJoin(
    std::vector<TokenSetRecord> records, const sim::SimilaritySpec& spec,
    PPJoinStats* stats = nullptr) {
  return PPJoinSelfJoin(std::move(records), spec, AllPairsOptions(), stats);
}

inline std::vector<SimilarPair> AllPairsRSJoin(
    std::vector<TokenSetRecord> r_records,
    std::vector<TokenSetRecord> s_records, const sim::SimilaritySpec& spec,
    PPJoinStats* stats = nullptr) {
  return PPJoinRSJoin(std::move(r_records), std::move(s_records), spec,
                      AllPairsOptions(), stats);
}

}  // namespace fj::ppjoin
