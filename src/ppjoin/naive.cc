#include "ppjoin/naive.h"

namespace fj::ppjoin {

std::vector<SimilarPair> NaiveSelfJoin(const std::vector<TokenSetRecord>& records,
                                       const sim::SimilaritySpec& spec) {
  std::vector<SimilarPair> out;
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      const auto& x = records[i];
      const auto& y = records[j];
      if (x.tokens.empty() || y.tokens.empty()) continue;
      double s = spec.Similarity(x.tokens, y.tokens);
      if (s >= spec.tau() - 1e-12) {
        out.push_back(MakeSelfJoinPair(x.rid, y.rid, s));
      }
    }
  }
  SortAndDedupePairs(&out);
  return out;
}

std::vector<SimilarPair> NaiveRSJoin(const std::vector<TokenSetRecord>& r_records,
                                     const std::vector<TokenSetRecord>& s_records,
                                     const sim::SimilaritySpec& spec) {
  std::vector<SimilarPair> out;
  for (const auto& r : r_records) {
    for (const auto& s : s_records) {
      if (r.tokens.empty() || s.tokens.empty()) continue;
      double v = spec.Similarity(r.tokens, s.tokens);
      if (v >= spec.tau() - 1e-12) {
        out.push_back(SimilarPair{r.rid, s.rid, v});
      }
    }
  }
  SortAndDedupePairs(&out);
  return out;
}

}  // namespace fj::ppjoin
