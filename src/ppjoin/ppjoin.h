// PPJoin / PPJoin+ (Xiao, Wang, Lin, Yu — WWW'08), the state-of-the-art
// single-node kernel the paper plugs into its second stage (the "PK"
// kernel). Reimplemented from the published algorithm:
//
//   * records are consumed in non-decreasing token-set-size order;
//   * each record's *prefix* tokens are looked up in an inverted index to
//     accumulate per-candidate prefix overlaps;
//   * the length filter evicts index entries below the current minimum
//     qualifying length (the memory-footprint optimisation Section 3.2.2
//     of the paper relies on — evicted token ranges are released from the
//     arena and the class reports its peak resident size);
//   * the positional filter bounds the best-possible overlap at each match;
//   * a 128-bit hashed bitmap signature bounds the possible overlap at a
//     candidate's first match — two XORs and two popcounts — and discards
//     hopeless candidates before the costlier checks (bitwise
//     pre-verification, after arXiv:1711.07295);
//   * PPJoin+ additionally applies the suffix filter at a candidate's first
//     match;
//   * remaining candidates are confirmed with an early-terminating merge.
//
// Cache-conscious memory layout (see DESIGN.md, "Kernel memory layout"):
//
//   * the inverted index is a direct-indexed std::vector<PostingList> —
//     known TokenIds are dense stage-1 ranks, so the id IS the slot; a
//     small fallback hash map serves out-of-dictionary ids
//     (>= text::kUnknownTokenBase) only;
//   * per-candidate accumulation uses a flat array indexed by record
//     index, versioned with a probe epoch so it is never cleared, plus a
//     compact touched-list for deterministic verify order;
//   * indexed token arrays live in one contiguous arena; verification
//     merges walk sequential memory, and eviction releases arena ranges
//     (compacted amortised-O(1)) while the resident_tokens /
//     peak_resident_tokens accounting stays exact.
//
// The class is deliberately *streaming* (probe/insert split) so the
// MapReduce PK reducer can drive it with records arriving in the composite
// (group, length) key order, for both the self-join and the R-S join cases
// (Sections 3.2.2 and 4 of the paper). Join output is byte-identical
// across all filter configurations (the filters only remove pairs that
// verification would reject anyway).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ppjoin/token_set.h"
#include "similarity/filters.h"
#include "similarity/similarity.h"

namespace fj::ppjoin {

struct PPJoinOptions {
  /// Apply the positional filter. Disabling it (together with the suffix
  /// filter) degrades the kernel to All-Pairs (Bayardo et al., WWW'07):
  /// prefix + length filtering only.
  bool use_positional_filter = true;
  /// Apply the suffix filter (true = PPJoin+, false = plain PPJoin).
  bool use_suffix_filter = true;
  /// Suffix-filter recursion depth (the PPJoin+ paper uses 2).
  size_t suffix_filter_depth = 2;
  /// Apply the 128-bit hashed-signature pre-verification filter at a
  /// candidate's first match: discard the candidate when popcount
  /// arithmetic proves the overlap cannot reach the threshold, before the
  /// suffix filter and the merge. Output-preserving; only the
  /// `suffix_pruned` / `verified` / `bitmap_pruned` split changes.
  bool use_bitmap_filter = true;
};

/// Counters describing one kernel run.
struct PPJoinStats {
  uint64_t probes = 0;
  uint64_t candidates = 0;          ///< distinct (probe, indexed) pairs seen
  uint64_t positional_pruned = 0;
  uint64_t suffix_pruned = 0;
  uint64_t bitmap_pruned = 0;       ///< candidates cut by the bitmap bound
  uint64_t verified = 0;            ///< pairs reaching the merge
  uint64_t results = 0;
  uint64_t evicted_records = 0;     ///< index entries freed by length filter

  /// Posting-list accesses served by the dense direct-indexed array (each
  /// one is a hash lookup the flat layout made unnecessary).
  uint64_t hash_lookups_avoided = 0;

  /// Peak physical size of the token arena, in bytes.
  uint64_t arena_bytes = 0;

  /// Peak number of tokens simultaneously resident in the index (the
  /// memory-footprint metric of Section 3.2.2 / Figure 6).
  uint64_t peak_resident_tokens = 0;
};

class PPJoinStream {
 public:
  PPJoinStream(sim::SimilaritySpec spec, PPJoinOptions options = {});

  /// Self-join step: probe `record` against everything inserted so far,
  /// then insert it (with the shorter self-join index prefix). Records must
  /// arrive in non-decreasing token-count order. Results append to `out` as
  /// canonical (min RID, max RID) pairs.
  void ProbeAndInsert(const TokenSetRecord& record,
                      std::vector<SimilarPair>* out);

  /// R-S join, index side: insert an R record (full probe-prefix indexing,
  /// since S partners may be shorter or longer). Non-decreasing length
  /// order required.
  void InsertRS(const TokenSetRecord& record);

  /// R-S join, probe side: probe an S record against the inserted R
  /// records. Every R record of length <= LengthUpperBound(|s|) must have
  /// been inserted already (the length-class key order of Section 4
  /// guarantees this). Results append as (R rid, S rid) pairs.
  void Probe(const TokenSetRecord& record, std::vector<SimilarPair>* out);

  const PPJoinStats& stats() const { return stats_; }

  /// Tokens currently resident in the index (live, non-evicted records).
  uint64_t resident_tokens() const { return resident_tokens_; }

  size_t indexed_records() const { return store_.size(); }

 private:
  struct Posting {
    uint32_t record_index;
    uint32_t position;  ///< token position within the record
    /// Record length, duplicated from the store so the probe scan's length
    /// and positional filters read sequential posting memory instead of a
    /// random store slot per match.
    uint32_t length;
  };

  struct PostingList {
    std::vector<Posting> entries;
    size_t head = 0;  ///< entries before head are evicted (too short)
  };

  /// An indexed record: its tokens are the arena range
  /// [arena_begin, arena_begin + length). `length` survives eviction (the
  /// length filter needs it); the arena range does not.
  struct IndexedRecord {
    uint64_t rid = 0;
    sim::BitmapSignature signature;
    size_t arena_begin = 0;
    uint32_t length = 0;
  };

  /// Per-candidate accumulation state, indexed by record index. A slot is
  /// live for the current probe iff `epoch == probe_epoch_`; stale slots
  /// are reset lazily on first touch, so the array is never cleared.
  struct CandidateSlot {
    uint64_t epoch = 0;
    uint32_t overlap = 0;
    bool pruned = false;
  };

  /// Memoised MinOverlap(l, ly), indexed by partner length ly and
  /// versioned by alpha_epoch_, which only advances when the probe length
  /// l changes — probes arrive in non-decreasing length order, so entries
  /// survive across every probe of the same length. MinOverlap does robust
  /// floating-point ceiling arithmetic; computing it per posting match
  /// dominates the probe loop otherwise.
  struct AlphaCacheEntry {
    uint64_t epoch = 0;
    size_t alpha = 0;
  };

  /// Token span of a live indexed record (a view into the arena).
  TokenIdSpan TokensOf(const IndexedRecord& rec) const {
    return TokenIdSpan(arena_.data() + rec.arena_begin, rec.length);
  }

  /// Posting list for `id` on the probe path; nullptr when no postings
  /// exist. Dense ranks index the flat array directly; only unknown ids
  /// (>= text::kUnknownTokenBase) hit the fallback hash map.
  PostingList* FindPostingList(TokenId id);

  /// Posting list for `id` on the insert path (created if absent).
  PostingList& PostingListFor(TokenId id);

  /// Inserts `record` with the first `index_prefix` tokens into the index.
  /// `sig` is the record's precomputed bitmap signature, or nullptr to
  /// build it here (only done when the bitmap filter is enabled).
  void InsertWithPrefix(const TokenSetRecord& record, size_t index_prefix,
                        const sim::BitmapSignature* sig = nullptr);

  /// Shared probe logic. `self_join` canonicalizes emitted pairs. `sig` is
  /// the probe record's precomputed bitmap signature (the self-join path
  /// shares one build between probe and insert), or nullptr to build it
  /// lazily when candidates survive to verification.
  void ProbeInternal(const TokenSetRecord& record, bool self_join,
                     const sim::BitmapSignature* sig,
                     std::vector<SimilarPair>* out);

  /// Evicts store entries with fewer than `min_len` tokens (they can never
  /// match any future probe). Releases their arena ranges.
  void EvictShorterThan(size_t min_len);

  /// Drops the dead arena prefix once it outweighs the live suffix
  /// (amortised O(1) per inserted token).
  void MaybeCompactArena();

  sim::SimilaritySpec spec_;
  PPJoinOptions options_;
  sim::SuffixFilter suffix_filter_;

  std::vector<IndexedRecord> store_;    ///< insertion order = length order
  std::vector<TokenId> arena_;          ///< all indexed tokens, contiguous
  size_t arena_live_begin_ = 0;         ///< arena_[0..here) is evicted
  size_t live_from_ = 0;                ///< store_[0..live_from_) is evicted
  uint64_t resident_tokens_ = 0;

  std::vector<PostingList> dense_index_;  ///< slot = stage-1 token rank
  // lint: allow-unordered (cold path: only tokens with no stage-1 rank)
  std::unordered_map<TokenId, PostingList> unknown_index_;

  std::vector<CandidateSlot> candidate_slots_;  ///< one per indexed record
  uint64_t probe_epoch_ = 0;
  std::vector<uint32_t> candidate_order_;  ///< touched list (verify order)
  std::vector<AlphaCacheEntry> alpha_cache_;  ///< slot = partner length
  size_t alpha_probe_len_ = SIZE_MAX;  ///< probe length the cache is for
  uint64_t alpha_epoch_ = 0;
  size_t insert_alpha_len_ = SIZE_MAX;  ///< memoised MinOverlap(l, l)
  size_t insert_alpha_ = 0;

  PPJoinStats stats_;
};

/// Convenience: full PPJoin(+) self-join of a record collection (sorted
/// internally). Sorted, duplicate-free canonical pairs.
std::vector<SimilarPair> PPJoinSelfJoin(std::vector<TokenSetRecord> records,
                                        const sim::SimilaritySpec& spec,
                                        PPJoinOptions options = {},
                                        PPJoinStats* stats = nullptr);

/// Convenience: full PPJoin(+) R-S join. Sorted, duplicate-free
/// (R rid, S rid) pairs.
std::vector<SimilarPair> PPJoinRSJoin(std::vector<TokenSetRecord> r_records,
                                      std::vector<TokenSetRecord> s_records,
                                      const sim::SimilaritySpec& spec,
                                      PPJoinOptions options = {},
                                      PPJoinStats* stats = nullptr);

}  // namespace fj::ppjoin
