// PPJoin / PPJoin+ (Xiao, Wang, Lin, Yu — WWW'08), the state-of-the-art
// single-node kernel the paper plugs into its second stage (the "PK"
// kernel). Reimplemented from the published algorithm:
//
//   * records are consumed in non-decreasing token-set-size order;
//   * each record's *prefix* tokens are looked up in an inverted index to
//     accumulate per-candidate prefix overlaps;
//   * the length filter evicts index entries below the current minimum
//     qualifying length (the memory-footprint optimisation Section 3.2.2
//     of the paper relies on — evicted token arrays are actually freed and
//     the class reports its peak resident size);
//   * the positional filter bounds the best-possible overlap at each match;
//   * PPJoin+ additionally applies the suffix filter at a candidate's first
//     match;
//   * surviving candidates are confirmed with an early-terminating merge.
//
// The class is deliberately *streaming* (probe/insert split) so the
// MapReduce PK reducer can drive it with records arriving in the composite
// (group, length) key order, for both the self-join and the R-S join cases
// (Sections 3.2.2 and 4 of the paper).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "ppjoin/token_set.h"
#include "similarity/filters.h"
#include "similarity/similarity.h"

namespace fj::ppjoin {

struct PPJoinOptions {
  /// Apply the positional filter. Disabling it (together with the suffix
  /// filter) degrades the kernel to All-Pairs (Bayardo et al., WWW'07):
  /// prefix + length filtering only.
  bool use_positional_filter = true;
  /// Apply the suffix filter (true = PPJoin+, false = plain PPJoin).
  bool use_suffix_filter = true;
  /// Suffix-filter recursion depth (the PPJoin+ paper uses 2).
  size_t suffix_filter_depth = 2;
};

/// Counters describing one kernel run.
struct PPJoinStats {
  uint64_t probes = 0;
  uint64_t candidates = 0;          ///< distinct (probe, indexed) pairs seen
  uint64_t positional_pruned = 0;
  uint64_t suffix_pruned = 0;
  uint64_t verified = 0;            ///< pairs reaching the merge
  uint64_t results = 0;
  uint64_t evicted_records = 0;     ///< index entries freed by length filter

  /// Peak number of tokens simultaneously resident in the index (the
  /// memory-footprint metric of Section 3.2.2 / Figure 6).
  uint64_t peak_resident_tokens = 0;
};

class PPJoinStream {
 public:
  PPJoinStream(sim::SimilaritySpec spec, PPJoinOptions options = {});

  /// Self-join step: probe `record` against everything inserted so far,
  /// then insert it (with the shorter self-join index prefix). Records must
  /// arrive in non-decreasing token-count order. Results append to `out` as
  /// canonical (min RID, max RID) pairs.
  void ProbeAndInsert(const TokenSetRecord& record,
                      std::vector<SimilarPair>* out);

  /// R-S join, index side: insert an R record (full probe-prefix indexing,
  /// since S partners may be shorter or longer). Non-decreasing length
  /// order required.
  void InsertRS(const TokenSetRecord& record);

  /// R-S join, probe side: probe an S record against the inserted R
  /// records. Every R record of length <= LengthUpperBound(|s|) must have
  /// been inserted already (the length-class key order of Section 4
  /// guarantees this). Results append as (R rid, S rid) pairs.
  void Probe(const TokenSetRecord& record, std::vector<SimilarPair>* out);

  const PPJoinStats& stats() const { return stats_; }

  /// Tokens currently resident in the index (live, non-evicted records).
  uint64_t resident_tokens() const { return resident_tokens_; }

  size_t indexed_records() const { return store_.size(); }

 private:
  struct Posting {
    uint32_t record_index;
    uint32_t position;  ///< token position within the record
  };

  struct PostingList {
    std::vector<Posting> entries;
    size_t head = 0;  ///< entries before head are evicted (too short)
  };

  // Per-candidate accumulation state during one probe.
  struct CandidateState {
    size_t overlap = 0;
    bool pruned = false;
  };

  /// Inserts `record` with the first `index_prefix` tokens into the index.
  void InsertWithPrefix(const TokenSetRecord& record, size_t index_prefix);

  /// Shared probe logic. `allow_equal_rid` guards against self-pairing.
  void ProbeInternal(const TokenSetRecord& record, bool probe_is_second,
                     std::vector<SimilarPair>* out);

  /// Evicts store entries with fewer than `min_len` tokens (they can never
  /// match any future probe). Frees their token arrays.
  void EvictShorterThan(size_t min_len);

  sim::SimilaritySpec spec_;
  PPJoinOptions options_;
  sim::SuffixFilter suffix_filter_;

  std::vector<TokenSetRecord> store_;   ///< insertion order = length order
  std::vector<uint32_t> lengths_;       ///< original sizes (survive eviction)
  size_t live_from_ = 0;                ///< store_[0..live_from_) is evicted
  uint64_t resident_tokens_ = 0;

  std::unordered_map<TokenId, PostingList> index_;

  // Scratch for ProbeInternal (avoids per-probe allocation).
  std::unordered_map<uint32_t, CandidateState> candidates_;

  PPJoinStats stats_;
};

/// Convenience: full PPJoin(+) self-join of a record collection (sorted
/// internally). Sorted, duplicate-free canonical pairs.
std::vector<SimilarPair> PPJoinSelfJoin(std::vector<TokenSetRecord> records,
                                        const sim::SimilaritySpec& spec,
                                        PPJoinOptions options = {},
                                        PPJoinStats* stats = nullptr);

/// Convenience: full PPJoin(+) R-S join. Sorted, duplicate-free
/// (R rid, S rid) pairs.
std::vector<SimilarPair> PPJoinRSJoin(std::vector<TokenSetRecord> r_records,
                                      std::vector<TokenSetRecord> s_records,
                                      const sim::SimilaritySpec& spec,
                                      PPJoinOptions options = {},
                                      PPJoinStats* stats = nullptr);

}  // namespace fj::ppjoin
