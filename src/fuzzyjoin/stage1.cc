#include "fuzzyjoin/stage1.h"

#include "fuzzyjoin/engine_knobs.h"

#include <algorithm>
#include <cstdint>
#include <memory>
#include <utility>

#include "common/string_util.h"
#include "data/record.h"
#include "mapreduce/job.h"
#include "mapreduce/record_format.h"

namespace fj::join {

namespace {

using mr::Emitter;
using mr::InputRecord;
using mr::Job;
using mr::JobSpec;
using mr::OutputEmitter;
using mr::TaskContext;

/// Tokenizes each record's join attribute and emits (token, 1).
class TokenCountMapper : public mr::Mapper<std::string, uint64_t> {
 public:
  explicit TokenCountMapper(std::shared_ptr<const text::Tokenizer> tokenizer)
      : tokenizer_(std::move(tokenizer)) {}

  void Map(const InputRecord& record, Emitter<std::string, uint64_t>* out,
           TaskContext* ctx) override {
    auto parsed = data::Record::FromLine(*record.line);
    if (!parsed.ok()) {
      ctx->counters().Add("stage1.bad_records", 1);
      ctx->QuarantineRecord(*record.line);
      return;
    }
    for (auto& token : tokenizer_->Tokenize(parsed->JoinAttribute())) {
      out->Emit(std::move(token), 1);
    }
  }

 private:
  std::shared_ptr<const text::Tokenizer> tokenizer_;
};

void SumCombiner(const std::string& token, std::vector<uint64_t>&& counts,
                 Emitter<std::string, uint64_t>* out) {
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  out->Emit(token, total);
}

/// Renders one (token, count) entry in the configured representation:
/// "token<TAB>count" text or a binary token-count wire record.
std::string FormatCountEntry(mr::RecordFormat format, const std::string& token,
                             uint64_t count) {
  if (format == mr::RecordFormat::kBinary) {
    std::string record;
    mr::FormatTokenCountRecord(token, count, &record);
    return record;
  }
  return token + "\t" + std::to_string(count);
}

/// BTO phase-1 reducer: total count per token.
class TokenCountReducer : public mr::Reducer<std::string, uint64_t> {
 public:
  explicit TokenCountReducer(mr::RecordFormat format) : format_(format) {}

  void Reduce(const std::string& token,
              std::span<const std::pair<std::string, uint64_t>> group,
              OutputEmitter* out, TaskContext*) override {
    uint64_t total = 0;
    for (const auto& [key, count] : group) total += count;
    out->Emit(FormatCountEntry(format_, token, total));
  }

 private:
  mr::RecordFormat format_;
};

/// OPTO reducer: accumulates all (token, count) pairs and emits the sorted
/// ordering from Teardown (the paper's tear-down trick).
class OptoReducer : public mr::Reducer<std::string, uint64_t> {
 public:
  explicit OptoReducer(mr::RecordFormat format) : format_(format) {}

  void Reduce(const std::string& token,
              std::span<const std::pair<std::string, uint64_t>> group,
              OutputEmitter*, TaskContext*) override {
    uint64_t total = 0;
    for (const auto& [key, count] : group) total += count;
    totals_.emplace_back(token, total);
  }

  void Teardown(OutputEmitter* out, TaskContext*) override {
    std::sort(totals_.begin(), totals_.end(),
              [](const auto& a, const auto& b) {
                if (a.second != b.second) return a.second < b.second;
                return a.first < b.first;
              });
    for (const auto& [token, count] : totals_) {
      out->Emit(FormatCountEntry(format_, token, count));
    }
  }

 private:
  mr::RecordFormat format_;
  std::vector<std::pair<std::string, uint64_t>> totals_;
};

using SortKey = std::pair<uint64_t, std::string>;  // (count, token)

/// BTO phase-2 mapper: swap (token, count) into a (count, token) sort key,
/// exactly the paper's "map function swaps the input keys and values".
/// Sniffs the phase-1 representation per record, so it reads both text
/// count lines and binary token-count records.
class SwapMapper : public mr::Mapper<SortKey, uint8_t> {
 public:
  void Map(const InputRecord& record, Emitter<SortKey, uint8_t>* out,
           TaskContext* ctx) override {
    if (mr::IsBinaryRecord(*record.line)) {
      std::string token;
      uint64_t count = 0;
      if (!mr::ParseTokenCountRecord(*record.line, &token, &count)) {
        ctx->counters().Add("stage1.bad_count_lines", 1);
        return;
      }
      out->Emit(SortKey(count, std::move(token)), 0);
      return;
    }
    std::vector<std::string> fields = fj::Split(*record.line, '\t');
    if (fields.size() != 2) {
      ctx->counters().Add("stage1.bad_count_lines", 1);
      return;
    }
    auto count = fj::ParseUint64(fields[1]);
    if (!count.ok()) {
      ctx->counters().Add("stage1.bad_count_lines", 1);
      return;
    }
    out->Emit(SortKey(count.value(), std::move(fields[0])), 0);
  }
};

class EmitOrderingReducer : public mr::Reducer<SortKey, uint8_t> {
 public:
  explicit EmitOrderingReducer(mr::RecordFormat format) : format_(format) {}

  void Reduce(const SortKey& key, std::span<const std::pair<SortKey, uint8_t>>,
              OutputEmitter* out, TaskContext*) override {
    out->Emit(FormatCountEntry(format_, key.second, key.first));
  }

 private:
  mr::RecordFormat format_;
};

}  // namespace

Result<Stage1Result> RunStage1(mr::Dfs* dfs, const std::string& input_file,
                               const std::string& output_file,
                               const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  Stage1Result result;
  result.ordering_file = output_file;
  const mr::RecordFormat format = config.record_format;
  const bool binary = format == mr::RecordFormat::kBinary;

  if (config.stage1 == Stage1Algorithm::kBTO) {
    // Phase 1: count token frequencies (combiner cuts shuffle traffic).
    JobSpec<std::string, uint64_t> count_spec;
    count_spec.name = "stage1-bto-count";
    count_spec.input_files = {input_file};
    count_spec.output_file = output_file + ".counts";
    count_spec.num_map_tasks = config.num_map_tasks;
    count_spec.num_reduce_tasks = config.num_reduce_tasks;
    ApplyEngineKnobs(config, &count_spec);
    count_spec.binary_output = binary;
    auto tokenizer = config.tokenizer;
    count_spec.mapper_factory = [tokenizer] {
      return std::make_unique<TokenCountMapper>(tokenizer);
    };
    count_spec.reducer_factory = [format] {
      return std::make_unique<TokenCountReducer>(format);
    };
    if (config.use_stage1_combiner) count_spec.combiner = SumCombiner;
    Job<std::string, uint64_t> count_job(dfs, std::move(count_spec));
    FJ_ASSIGN_OR_RETURN(mr::JobMetrics count_metrics, count_job.Run());
    result.jobs.push_back(std::move(count_metrics));

    // Phase 2: total sort by (count, token) through a single reducer.
    JobSpec<SortKey, uint8_t> sort_spec;
    sort_spec.name = "stage1-bto-sort";
    sort_spec.input_files = {output_file + ".counts"};
    sort_spec.output_file = output_file;
    sort_spec.num_map_tasks = config.num_map_tasks;
    sort_spec.num_reduce_tasks = 1;  // total order requires one reducer
    ApplyEngineKnobs(config, &sort_spec);
    sort_spec.binary_output = binary;
    sort_spec.mapper_factory = [] { return std::make_unique<SwapMapper>(); };
    sort_spec.reducer_factory = [format] {
      return std::make_unique<EmitOrderingReducer>(format);
    };
    Job<SortKey, uint8_t> sort_job(dfs, std::move(sort_spec));
    FJ_ASSIGN_OR_RETURN(mr::JobMetrics sort_metrics, sort_job.Run());
    result.jobs.push_back(std::move(sort_metrics));
    return result;
  }

  // OPTO: one phase, one reducer, sort in Teardown.
  JobSpec<std::string, uint64_t> spec;
  spec.name = "stage1-opto";
  spec.input_files = {input_file};
  spec.output_file = output_file;
  spec.num_map_tasks = config.num_map_tasks;
  spec.num_reduce_tasks = 1;
  ApplyEngineKnobs(config, &spec);
  spec.binary_output = binary;
  auto tokenizer = config.tokenizer;
  spec.mapper_factory = [tokenizer] {
    return std::make_unique<TokenCountMapper>(tokenizer);
  };
  spec.reducer_factory = [format] {
    return std::make_unique<OptoReducer>(format);
  };
  if (config.use_stage1_combiner) spec.combiner = SumCombiner;
  Job<std::string, uint64_t> job(dfs, std::move(spec));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics, job.Run());
  result.jobs.push_back(std::move(metrics));
  return result;
}

Result<std::vector<std::string>> ReadOrderingLines(
    const mr::Dfs& dfs, const std::string& ordering_file) {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* stored,
                      dfs.ReadFile(ordering_file));
  if (!dfs.IsBinary(ordering_file)) return *stored;
  std::vector<std::string> lines;
  lines.reserve(stored->size());
  std::string token;
  for (size_t i = 0; i < stored->size(); ++i) {
    uint64_t count = 0;
    if (!mr::ParseTokenCountRecord((*stored)[i], &token, &count)) {
      return Status::DataLoss("ordering file " + ordering_file + ": record " +
                              std::to_string(i) +
                              " is not a token-count record");
    }
    lines.push_back(token + "\t" + std::to_string(count));
  }
  return lines;
}

}  // namespace fj::join
