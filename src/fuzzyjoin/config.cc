#include "fuzzyjoin/config.h"

namespace fj::join {

const char* Stage1Name(Stage1Algorithm a) {
  switch (a) {
    case Stage1Algorithm::kBTO:
      return "BTO";
    case Stage1Algorithm::kOPTO:
      return "OPTO";
  }
  return "?";
}

const char* Stage2Name(Stage2Algorithm a) {
  switch (a) {
    case Stage2Algorithm::kBK:
      return "BK";
    case Stage2Algorithm::kPK:
      return "PK";
  }
  return "?";
}

const char* Stage3Name(Stage3Algorithm a) {
  switch (a) {
    case Stage3Algorithm::kBRJ:
      return "BRJ";
    case Stage3Algorithm::kOPRJ:
      return "OPRJ";
  }
  return "?";
}

Status JoinConfig::Validate() const {
  if (tau <= 0.0 || tau > 1.0) {
    return Status::InvalidArgument("tau must be in (0, 1]");
  }
  if (routing == TokenRouting::kGroupedTokens && num_groups == 0) {
    return Status::InvalidArgument("num_groups must be >= 1");
  }
  if (block_processing != BlockProcessing::kNone) {
    if (stage2 != Stage2Algorithm::kBK) {
      return Status::InvalidArgument(
          "block processing applies to the BK kernel (PK bounds its memory "
          "via the length filter)");
    }
    if (num_blocks == 0) {
      return Status::InvalidArgument("num_blocks must be >= 1");
    }
  }
  if (routing == TokenRouting::kLengthSignatures) {
    if (stage2 != Stage2Algorithm::kBK) {
      return Status::InvalidArgument(
          "length-signature routing has no prefix tokens; only the BK "
          "kernel applies");
    }
    if (block_processing != BlockProcessing::kNone) {
      return Status::InvalidArgument(
          "length-signature routing does not compose with block "
          "processing");
    }
    if (length_class_width == 0) {
      return Status::InvalidArgument("length_class_width must be >= 1");
    }
  }
  if (bk_length_routing) {
    if (stage2 != Stage2Algorithm::kBK) {
      return Status::InvalidArgument(
          "length-based secondary routing applies to the BK kernel");
    }
    if (block_processing != BlockProcessing::kNone) {
      return Status::InvalidArgument(
          "length routing and block processing are alternative "
          "memory-reduction strategies; enable one");
    }
    if (length_class_width == 0) {
      return Status::InvalidArgument("length_class_width must be >= 1");
    }
  }
  if (num_reduce_tasks == 0) {
    return Status::InvalidArgument("num_reduce_tasks must be >= 1");
  }
  if (merge_factor < 2) {
    return Status::InvalidArgument("merge_factor must be >= 2");
  }
  if (max_task_attempts < 1) {
    return Status::InvalidArgument("max_task_attempts must be >= 1");
  }
  if (speculative_execution && speculation_slowdown_factor <= 1.0) {
    return Status::InvalidArgument(
        "speculation_slowdown_factor must be > 1");
  }
  if (check_contracts && contract_sample_every < 1) {
    return Status::InvalidArgument("contract_sample_every must be >= 1");
  }
  if (tokenizer == nullptr) {
    return Status::InvalidArgument("tokenizer must be set");
  }
  if (block_codec != mr::BlockCodec::kNone &&
      record_format != mr::RecordFormat::kBinary) {
    return Status::InvalidArgument(
        "a block codec compresses binary run blocks; set record_format = "
        "binary to use one");
  }
  if (transport == mr::TransportKind::kSocket && num_shuffle_workers < 1) {
    return Status::InvalidArgument(
        "the socket transport needs num_shuffle_workers >= 1");
  }
  if (net_fault_plan != nullptr &&
      transport != mr::TransportKind::kSocket && !shuffle_transport) {
    return Status::InvalidArgument(
        "a network fault plan needs the socket transport (--transport="
        "socket); the in-process hand-off has no wire to fault");
  }
  return Status::OK();
}

}  // namespace fj::join
