// Configuration of the three-stage parallel set-similarity join pipeline.
// Every algorithm choice evaluated in the paper is a knob here:
//
//   stage 1: BTO (two MapReduce phases) or OPTO (one phase, in-memory sort)
//   stage 2: BK (nested-loop kernel) or PK (PPJoin+ kernel), with
//            individual-token or grouped-token routing
//   stage 3: BRJ (two phases) or OPRJ (one phase, broadcast RID pairs)
//
// plus the Section 5 insufficient-memory block-processing strategies.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/executor.h"
#include "common/result.h"
#include "mapreduce/fault.h"
#include "mapreduce/record_format.h"
#include "mapreduce/shuffle_transport.h"
#include "similarity/similarity.h"
#include "text/tokenizer.h"

namespace fj::mr {
// Default for check_contracts (defined in mapreduce/contract.cc): on in
// debug builds and under FJ_CHECK_CONTRACTS=1, off under NDEBUG.
bool ContractChecksDefaultOn();
}  // namespace fj::mr

namespace fj::join {

enum class Stage1Algorithm {
  kBTO,   ///< Basic Token Ordering: count job + sort job
  kOPTO,  ///< One-Phase Token Ordering: count job with in-reducer sort
};

enum class Stage2Algorithm {
  kBK,  ///< Basic Kernel: nested loop with filters in the reducer
  kPK,  ///< PPJoin+ Kernel: indexed, length-sorted streaming reducer
};

enum class Stage3Algorithm {
  kBRJ,   ///< Basic Record Join: two phases through the shuffle
  kOPRJ,  ///< One-Phase Record Join: RID pairs broadcast to every mapper
};

enum class TokenRouting {
  kIndividualTokens,  ///< each prefix token is its own routing key
  kGroupedTokens,     ///< tokens assigned round-robin to num_groups keys
  /// Footnote 2 / Section 2.2's other signature example: route by "ranges
  /// of similar string lengths" INSTEAD of prefix tokens. The paper
  /// explored this and rejected it — "the performance was not good because
  /// it suffered from the skewed distribution of string lengths" — kept
  /// here (BK self-join only) so that finding can be reproduced
  /// (bench_length_signatures).
  kLengthSignatures,
};

/// How tokens are assigned to groups under kGroupedTokens. The paper
/// assigns tokens "to groups in a Round-Robin order" over the frequency
/// ordering, "balanc[ing] the sum of token frequencies across groups";
/// contiguous range assignment is the natural strawman that does NOT
/// balance (one group gets all the rare tokens, another all the frequent
/// ones) — kept for the ablation benchmark.
enum class GroupAssignment {
  kRoundRobin,  ///< group = rank % num_groups (the paper's choice)
  kContiguous,  ///< group = rank / ceil(dictionary / num_groups)
};

enum class BlockProcessing {
  kNone,         ///< whole reducer group held in memory
  kMapBased,     ///< mapper replicates/interleaves blocks (Section 5)
  kReduceBased,  ///< reducer spills blocks to local disk (Section 5)
};

const char* Stage1Name(Stage1Algorithm a);
const char* Stage2Name(Stage2Algorithm a);
const char* Stage3Name(Stage3Algorithm a);

struct JoinConfig {
  // --- similarity predicate (paper default: Jaccard, tau = 0.80) ---
  sim::SimilarityFunction function = sim::SimilarityFunction::kJaccard;
  double tau = 0.80;

  // --- algorithm selection ---
  Stage1Algorithm stage1 = Stage1Algorithm::kBTO;
  Stage2Algorithm stage2 = Stage2Algorithm::kPK;
  Stage3Algorithm stage3 = Stage3Algorithm::kOPRJ;

  TokenRouting routing = TokenRouting::kIndividualTokens;
  /// Token-group count under kGroupedTokens (ignored for individual
  /// tokens). The paper's best setting is "one group per token", i.e.
  /// individual routing.
  uint32_t num_groups = 64;
  /// Token-to-group assignment under kGroupedTokens.
  GroupAssignment group_assignment = GroupAssignment::kRoundRobin;

  /// Stage 1 aggregates per-task token counts with a combiner before the
  /// shuffle (Section 3.1.1). Disable only for the ablation benchmark.
  bool use_stage1_combiner = true;

  // --- Section 5: insufficient-memory handling (BK kernel) ---
  BlockProcessing block_processing = BlockProcessing::kNone;
  /// Number of sub-blocks per reducer group when block processing is on.
  uint32_t num_blocks = 4;

  /// Section 5, first paragraph: "we can exploit the length filter even in
  /// the BK algorithm, by using the length filter as a secondary
  /// record-routing criterion". When enabled (BK self-join), records are
  /// additionally routed by length class — partitioning each token group
  /// further and shrinking reducer memory at the cost of extra replicas.
  bool bk_length_routing = false;
  /// Lengths l in [k*width, (k+1)*width) share length class k.
  uint32_t length_class_width = 4;

  // --- MapReduce shape (mirrors the Hadoop job configuration) ---
  /// Map tasks per job; 0 = one per input file.
  size_t num_map_tasks = 8;
  /// Reduce tasks per job (the paper runs 4 per node).
  size_t num_reduce_tasks = 8;
  /// Host threads executing tasks (physical concurrency only). 0 = auto:
  /// use std::thread::hardware_concurrency(). Excluded from the resume
  /// fingerprint — join output is byte-identical at any thread count.
  size_t local_threads = 1;

  /// Host executor shared by every job of the pipeline, so workers
  /// persist across stage boundaries (no per-phase pool construction,
  /// warm caches). nullptr = the driver creates one with local_threads
  /// workers at pipeline entry. Callers running several pipelines can
  /// pass their own to share it across runs (bench sweeps do).
  std::shared_ptr<Executor> executor;

  /// Per-map-task sort buffer budget in bytes, applied to every job in the
  /// pipeline (JobSpec::sort_buffer_bytes — the analogue of Hadoop's
  /// io.sort.mb). When a task's intermediate output exceeds the budget it
  /// is sorted and spilled to task-local disk as sorted runs, and the
  /// reduce side k-way merges them; the cluster model charges the spill
  /// I/O. 0 = unbounded (no spilling). Join results are identical either
  /// way.
  uint64_t sort_buffer_bytes = 0;

  /// Maximum sorted runs merged per reduce-side pass when spilling is on
  /// (JobSpec::merge_factor, Hadoop's io.sort.factor).
  size_t merge_factor = 16;

  // --- fault tolerance (applied to every job in the pipeline) ---
  /// Attempts per task before a job — and the pipeline — fails
  /// (JobSpec::max_task_attempts, Hadoop's mapred.*.max.attempts).
  uint32_t max_task_attempts = 4;
  /// Launch speculative backup attempts for straggling tasks
  /// (JobSpec::speculative_execution).
  bool speculative_execution = false;
  /// Straggler threshold as a multiple of the phase median task cost;
  /// must be > 1 (JobSpec::speculation_slowdown_factor).
  double speculation_slowdown_factor = 3.0;
  /// Deterministic fault plan injected into every job of the pipeline;
  /// nullptr = fault-free. With a recoverable plan the join output is
  /// byte-identical to the fault-free run (see mapreduce/fault.h).
  std::shared_ptr<const mr::FaultPlan> fault_plan;

  // --- data integrity and checkpoint/resume ---
  /// Verify Dfs checksums at every job boundary
  /// (JobSpec::verify_integrity): input files before the map phase, sorted
  /// runs at map commit and at the reduce side's merge read, output lines
  /// at reduce commit. A detected mismatch fails the attempt and the
  /// engine re-runs it under max_task_attempts, so recoverable corruption
  /// still yields byte-identical join output. Off by default; the cluster
  /// model prices the checksum passes separately
  /// (SimulatedJobTime::integrity_seconds).
  bool verify_integrity = false;

  /// Verify the user-hook contract of every job in the pipeline
  /// (JobSpec::check_contracts): sort/group comparators against the
  /// strict-weak-ordering axioms, partitioner against the group
  /// comparator, combiner algebra on sampled key groups, key immutability
  /// across reduce calls. A violation fails the pipeline with a structured
  /// FailedPrecondition Status naming the offending key pair — never a
  /// wrong join result. Default: on in debug builds and CI
  /// (FJ_CHECK_CONTRACTS=1), off in optimized builds; the cluster model
  /// prices the checks separately (SimulatedJobTime::contract_seconds).
  bool check_contracts = mr::ContractChecksDefaultOn();

  /// Every kth emitted key enters the contract checker's sampled axiom
  /// pool (1 = check every key). Must be >= 1 when check_contracts is on.
  uint32_t contract_sample_every = 16;

  /// Resume a previous run of the same pipeline from its stage manifest
  /// ("<output_prefix>.manifest"): stages whose manifest entry validates
  /// (outputs present, checksums clean) are skipped, and execution
  /// restarts at the first incomplete stage. A manifest written under a
  /// different configuration or different inputs (fingerprint mismatch)
  /// is refused with FailedPrecondition — resuming it would splice
  /// incompatible intermediate files into the pipeline.
  bool resume = false;

  /// Per-job cap on malformed input lines. Jobs quarantine bad lines to
  /// "<output>.bad" instead of failing; when a single job skips more than
  /// this many records it fails with DataLoss
  /// (JobSpec::max_skipped_records). ~0 = unlimited.
  uint64_t max_skipped_records = ~0ULL;

  // --- intermediate-data representation (applied to every job) ---
  /// Representation of spill runs, shuffle segments, and stage
  /// intermediate files (JobSpec::record_format). Text (the default)
  /// shuffles tab-separated lines and meters size estimates; binary
  /// serializes every run with the varint record codec
  /// (mapreduce/record_format.h), stores stage-1 token lists and stage-2
  /// RID pairs as binary wire records, and meters the actual encoded
  /// bytes. The final ".joined" output is text either way, and join
  /// results are byte-identical across formats. Part of the resume
  /// fingerprint — a manifest written under one format cannot be resumed
  /// under the other.
  mr::RecordFormat record_format = mr::RecordFormat::kText;

  /// Block codec applied to every spill-run/shuffle block in binary
  /// format (JobSpec::block_codec). Requires record_format = binary when
  /// not kNone; codec CPU is metered and priced by the cluster model.
  mr::BlockCodec block_codec = mr::BlockCodec::kNone;

  // --- shuffle transport (applied to every job; see shuffle_transport.h) ---
  /// How committed map-output segments reach the reduce side. Inproc (the
  /// default) is the classic in-process hand-off. Socket moves every
  /// segment over length-framed loopback TCP through num_shuffle_workers
  /// shuffle-worker endpoints, with per-fetch deadlines, bounded retries
  /// with backoff + jitter, heartbeat liveness, and the escalation ladder
  /// (local committed spill, then deterministic map re-run). The ".joined"
  /// output is byte-identical across transports, worker counts, and
  /// recoverable fault plans; excluded from the resume fingerprint like
  /// local_threads.
  mr::TransportKind transport = mr::TransportKind::kInproc;

  /// Shuffle-worker endpoints under the socket transport (>= 1).
  size_t num_shuffle_workers = 2;

  /// Deterministic network fault plan under the socket transport
  /// (drop/delay/truncate/bit-flip/stall/refuse-connect per RPC);
  /// nullptr = clean wire. Applied server-side by the workers the driver
  /// spawns, plus the client-side refuse-connect draw.
  std::shared_ptr<const mr::NetFaultPlan> net_fault_plan;

  /// Caller-supplied transport (tests, multi-process runs where the
  /// worker endpoints already exist). When set, `transport`,
  /// num_shuffle_workers, and net_fault_plan are ignored and every job
  /// uses this instance.
  std::shared_ptr<mr::ShuffleTransport> shuffle_transport;

  /// Escalation rung 2 switch (JobSpec::net_fetch_local_fallback): serve
  /// permanently unfetchable segments from the map task's committed local
  /// output before re-running the attempt. Disable to force rung 3.
  bool net_fetch_local_fallback = true;

  /// Socket transport only: run the shuffle workers as real forked
  /// subprocesses of this binary (the coordinator re-execs itself in
  /// worker mode, see worker_net.h) instead of in-process server threads.
  /// The host binary's main() must call net::MaybeRunShuffleWorker first.
  bool spawn_worker_processes = false;

  /// OPRJ loads the whole RID-pair list in every mapper. If the estimated
  /// in-memory size exceeds this budget, stage 3 fails with
  /// ResourceExhausted — reproducing the paper's OPRJ out-of-memory
  /// behaviour at large scale factors. 0 = unlimited.
  uint64_t oprj_memory_limit_bytes = 0;

  /// Tokenizer for the join attribute (defaults to word tokens, as in the
  /// paper's evaluation).
  std::shared_ptr<const text::Tokenizer> tokenizer =
      std::make_shared<text::WordTokenizer>();

  sim::SimilaritySpec MakeSpec() const {
    return sim::SimilaritySpec(function, tau);
  }

  /// Validates knob combinations (e.g. block processing requires BK).
  Status Validate() const;
};

}  // namespace fj::join
