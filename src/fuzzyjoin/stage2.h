// Stage 2 — RID-Pair Generation, the "Kernel" (Sections 3.2, 4, 5).
//
// Mappers project each record onto (RID, token ids), extract its prefix
// under the stage-1 global ordering, and route one copy of the projection
// per prefix token (individual routing) or per prefix-token *group*
// (grouped routing). Reducers verify the candidates that share a routing
// key and output "rid1<TAB>rid2<TAB>similarity" lines:
//
//   BK — nested-loop verification with the length filter (plus block
//        processing when the group exceeds memory, Section 5);
//   PK — the PPJoin+ kernel: the composite key carries the projection
//        length, the partitioner ignores it, and the secondary sort hands
//        the reducer a length-ordered stream (Section 3.2.2) — for R-S
//        joins a length-*class* ordering that interleaves R before the S
//        records they may join (Section 4, Figure 6).
//
// The same pair may be produced by several reducers (records can share
// more than one prefix token); stage 3 deduplicates.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/hash.h"
#include "common/result.h"
#include "common/varint.h"
#include "fuzzyjoin/config.h"
#include "mapreduce/dfs.h"
#include "mapreduce/metrics.h"
#include "mapreduce/record_format.h"

namespace fj::join {

/// The composite routing key of stage 2. The partitioner hashes `group`
/// only; the sort comparator orders lexicographically on
/// (group, s1, s2, s3) — the paper's "custom partitioning function"
/// technique. Field meaning by variant:
///
///   self-join kernel:            s1 = projection length
///   R-S kernel:                  s1 = length class (R: lower bound of its
///                                length; S: its length), s2 = relation
///                                (0 = R, 1 = S), s3 = length
///   map-based block processing:  s1 = round, s2 = block (self) /
///                                relation then block (R-S: s2 = relation,
///                                s3 = block)
///   reduce-based blocks:         s1 = block (self); s1 = relation,
///                                s2 = block (R-S)
struct Stage2Key {
  uint32_t group = 0;
  uint32_t s1 = 0;
  uint32_t s2 = 0;
  uint32_t s3 = 0;

  auto Tie() const { return std::tie(group, s1, s2, s3); }
  friend bool operator<(const Stage2Key& a, const Stage2Key& b) {
    return a.Tie() < b.Tie();
  }
  friend bool operator==(const Stage2Key& a, const Stage2Key& b) {
    return a.Tie() == b.Tie();
  }
};

inline uint64_t FjKeyHash(const Stage2Key& k) { return HashInt64(k.group); }
inline size_t FjByteSize(const Stage2Key&) { return 10; }
/// Contract-checker debug rendering (mapreduce/contract.h): violations
/// involving Stage2Keys name the concrete fields, not an opaque hash.
inline std::string FjDebugString(const Stage2Key& k) {
  return "Stage2Key{group=" + std::to_string(k.group) +
         ", s1=" + std::to_string(k.s1) + ", s2=" + std::to_string(k.s2) +
         ", s3=" + std::to_string(k.s3) + "}";
}
/// Integrity hash (integrity.h): unlike the partition hash above this
/// covers every field, so a flipped secondary-sort field is detected too.
inline uint64_t FjContentHash(const Stage2Key& k) {
  return HashCombine(HashCombine(HashInt64(k.group), HashInt64(k.s1)),
                     HashCombine(HashInt64(k.s2), HashInt64(k.s3)));
}
/// Binary run encoding (mapreduce/record_format.h): four varints. The
/// secondary-sort fields are small (lengths, rounds, 0/1 relation flags),
/// so most keys encode in 4-6 bytes against 16 raw.
inline void FjEncodeContent(const Stage2Key& k, std::string* out) {
  AppendVarint(out, k.group);
  AppendVarint(out, k.s1);
  AppendVarint(out, k.s2);
  AppendVarint(out, k.s3);
}
inline bool FjDecodeContent(std::string_view buf, size_t* pos, Stage2Key* k) {
  size_t at = *pos;
  uint64_t f[4];
  for (uint64_t& v : f) {
    if (!DecodeVarint(buf, &at, &v)) return false;
    if (v > UINT32_MAX) return false;
  }
  k->group = static_cast<uint32_t>(f[0]);
  k->s1 = static_cast<uint32_t>(f[1]);
  k->s2 = static_cast<uint32_t>(f[2]);
  k->s3 = static_cast<uint32_t>(f[3]);
  *pos = at;
  return true;
}

/// Formats one kernel output line ("rid1<TAB>rid2<TAB>sim") into `*out`
/// (overwritten); fixed-width similarity so duplicated pairs serialize
/// identically and stage 3 can deduplicate by string equality. The emit
/// paths reuse one buffer per reduce call so formatting allocates nothing
/// after the first pair.
void FormatRidPairLine(uint64_t rid1, uint64_t rid2, double similarity,
                       std::string* out);

/// Allocating convenience overload (tests, one-off formatting).
std::string FormatRidPairLine(uint64_t rid1, uint64_t rid2, double similarity);

/// Formats one kernel output record in the configured representation: the
/// text line above, or (binary) a rid-pair wire record carrying the exact
/// double bits (mapreduce/record_format.h). Both are deterministic byte
/// strings, so stage 3's string-equality deduplication works unchanged.
void FormatRidPairOut(mr::RecordFormat format, uint64_t rid1, uint64_t rid2,
                      double similarity, std::string* out);

/// Parses a kernel output record, sniffing the representation per record:
/// binary rid-pair wire records by their magic byte, text lines otherwise.
Result<std::tuple<uint64_t, uint64_t, double>> ParseRidPairLine(
    const std::string& line);

struct Stage2Result {
  /// Dfs file of RID-pair lines (possibly with duplicates).
  std::string pairs_file;
  std::vector<mr::JobMetrics> jobs;
};

/// Self-join kernel over `input_file`, using the stage-1 ordering in
/// `ordering_file`.
Result<Stage2Result> RunStage2SelfJoin(mr::Dfs* dfs,
                                       const std::string& input_file,
                                       const std::string& ordering_file,
                                       const std::string& output_file,
                                       const JoinConfig& config);

/// R-S kernel. The ordering must come from relation R (stage 1 runs on the
/// smaller relation); S tokens absent from it are dropped from routing but
/// kept in the token sets, so similarity values stay exact.
Result<Stage2Result> RunStage2RSJoin(mr::Dfs* dfs, const std::string& r_file,
                                     const std::string& s_file,
                                     const std::string& ordering_file,
                                     const std::string& output_file,
                                     const JoinConfig& config);

}  // namespace fj::join
