// Stage 1 — Token Ordering (Section 3.1).
//
// Scans the records, counts the frequency of every join-attribute token,
// and produces the global token ordering (increasing frequency) that the
// prefix filter in stage 2 depends on. Two variants:
//
//   BTO  (Basic Token Ordering)    — two MapReduce phases: a counting job
//        with a combiner, then a sort job with a single reducer.
//   OPTO (One-Phase Token Ordering) — one phase: the single reducer keeps
//        (token, count) pairs locally and sorts them in its tear-down,
//        exploiting the fact that the token dictionary is much smaller
//        than the data.
//
// Output: a Dfs file of "token<TAB>count" lines in rank order, parseable by
// text::TokenOrdering::FromLines. Under JoinConfig::record_format = binary
// the file holds token-count wire records instead
// (mapreduce/record_format.h); ReadOrderingLines decodes either
// representation back to the text form.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzyjoin/config.h"
#include "mapreduce/dfs.h"
#include "mapreduce/metrics.h"

namespace fj::join {

struct Stage1Result {
  /// Dfs file holding the ordering ("token<TAB>count", rank order).
  std::string ordering_file;
  /// Metrics of the 1 (OPTO) or 2 (BTO) jobs executed.
  std::vector<mr::JobMetrics> jobs;
};

/// Runs the configured stage-1 algorithm over `input_file` (record lines),
/// writing the ordering to `output_file`.
Result<Stage1Result> RunStage1(mr::Dfs* dfs, const std::string& input_file,
                               const std::string& output_file,
                               const JoinConfig& config);

/// Reads a stage-1 ordering file back as owned "token<TAB>count" text
/// lines: text files are copied as stored, binary ordering files are
/// decoded from their token-count wire records (DataLoss on a malformed
/// record). Callers keep the vector alive for as long as mappers hold a
/// pointer to it — the stage drivers hold it as a local across their
/// synchronous job runs.
Result<std::vector<std::string>> ReadOrderingLines(
    const mr::Dfs& dfs, const std::string& ordering_file);

}  // namespace fj::join
