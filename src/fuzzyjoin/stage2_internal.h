// Shared machinery of the stage-2 kernels (self-join and R-S variants):
// the projection mapper base, BK pair verification, and projection
// (de)serialization for local-disk spills. Internal to the fuzzyjoin
// library; not part of the public API.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/counters.h"
#include "data/record.h"
#include "fuzzyjoin/config.h"
#include "fuzzyjoin/projection.h"
#include "fuzzyjoin/stage2.h"
#include "mapreduce/job.h"
#include "ppjoin/ppjoin.h"
#include "text/token_ordering.h"

namespace fj::join::internal {

/// Immutable per-job inputs captured by mapper factories.
struct Stage2Context {
  std::shared_ptr<const text::Tokenizer> tokenizer;
  /// Raw stage-1 output; every map task parses it in Setup (really, so the
  /// broadcast-loading cost the paper discusses is metered, not modeled).
  const std::vector<std::string>* ordering_lines = nullptr;
  sim::SimilaritySpec spec{sim::SimilarityFunction::kJaccard, 0.8};
  TokenRouting routing = TokenRouting::kIndividualTokens;
  uint32_t num_groups = 1;
  GroupAssignment group_assignment = GroupAssignment::kRoundRobin;
  uint32_t num_blocks = 1;
};

/// Base for stage-2 mappers: parses records, tokenizes the join attribute,
/// converts to sorted token ids under the stage-1 ordering, and computes
/// prefix routing groups.
class ProjectionMapperBase : public mr::Mapper<Stage2Key, TokenSetRecord> {
 public:
  explicit ProjectionMapperBase(Stage2Context ctx) : ctx_(std::move(ctx)) {}

  void Setup(mr::TaskContext* ctx) override {
    // Each map task loads the broadcast token ordering — the per-task cost
    // the paper attributes to distributing stage-1 output.
    auto parsed = text::TokenOrdering::FromLines(*ctx_.ordering_lines);
    if (!parsed.ok()) {
      ctx->counters().Add("stage2.bad_ordering", 1);
      ordering_.emplace();  // empty ordering: everything becomes unknown
      return;
    }
    ordering_.emplace(std::move(parsed).value());
  }

 protected:
  /// Projects one input line. Returns false (and counts why) when the line
  /// is unparsable or the token set is empty.
  bool ProjectRecord(const mr::InputRecord& record, mr::TaskContext* ctx,
                     TokenSetRecord* projection) {
    auto parsed = data::Record::FromLine(*record.line);
    if (!parsed.ok()) {
      ctx->counters().Add("stage2.bad_records", 1);
      ctx->QuarantineRecord(*record.line);
      return false;
    }
    projection->rid = parsed->rid;
    projection->tokens =
        ordering_->ToSortedIds(ctx_.tokenizer->Tokenize(parsed->JoinAttribute()));
    if (projection->tokens.empty()) {
      ctx->counters().Add("stage2.empty_records", 1);
      return false;
    }
    return true;
  }

  uint32_t RouteToken(TokenId id) const {
    // Individual routing: the token rank itself is the key. Grouped
    // routing: round-robin over the frequency order, which balances the
    // sum of token frequencies across groups (Section 3.2) — or contiguous
    // ranges, the unbalanced strawman kept for ablation.
    if (ctx_.routing == TokenRouting::kIndividualTokens) {
      return static_cast<uint32_t>(id);
    }
    if (ctx_.group_assignment == GroupAssignment::kRoundRobin) {
      return static_cast<uint32_t>(id % ctx_.num_groups);
    }
    size_t dictionary = std::max<size_t>(1, ordering_->size());
    size_t width = (dictionary + ctx_.num_groups - 1) / ctx_.num_groups;
    return static_cast<uint32_t>(std::min<TokenId>(
        id / width, ctx_.num_groups - 1));
  }

  /// Distinct routing groups of the projection's prefix, in first-seen
  /// order. Unknown (out-of-ordering) tokens are skipped: they can never
  /// match the indexed relation (paper, Section 4, stage 1). Under
  /// length-signature routing there are no token groups at all — the
  /// length class (handled by the length-routing mapper) is the only
  /// signature.
  std::vector<uint32_t> PrefixGroups(const TokenSetRecord& projection) const {
    if (ctx_.routing == TokenRouting::kLengthSignatures) return {0};
    size_t prefix = ctx_.spec.PrefixLength(projection.tokens.size());
    std::vector<uint32_t> groups;
    groups.reserve(prefix);
    for (size_t i = 0; i < prefix; ++i) {
      TokenId id = projection.tokens[i];
      if (text::IsUnknownToken(id)) continue;
      uint32_t g = RouteToken(id);
      bool seen = false;
      for (uint32_t existing : groups) {
        if (existing == g) {
          seen = true;
          break;
        }
      }
      if (!seen) groups.push_back(g);
    }
    return groups;
  }

  uint32_t BlockOf(uint64_t rid) const {
    return static_cast<uint32_t>(HashInt64(rid) % ctx_.num_blocks);
  }

  Stage2Context ctx_;
  std::optional<text::TokenOrdering> ordering_;
};

/// BK verification of one candidate pair: length filter, then the
/// early-terminating overlap merge. Emits a pair record (text line or
/// binary wire record per `format`) when it qualifies. `self_canonical`
/// orders the RIDs (min, max) for self-joins; for R-S the caller passes
/// x = R record, y = S record. `line_buf` is a scratch string the caller
/// reuses across pairs so the emit path does not construct a fresh
/// std::string per verification.
inline void BkVerifyPair(const sim::SimilaritySpec& spec,
                         mr::RecordFormat format, const TokenSetRecord& x,
                         const TokenSetRecord& y, bool self_canonical,
                         std::string* line_buf, mr::OutputEmitter* out,
                         mr::TaskContext* ctx) {
  ctx->counters().Add("stage2.bk.pairs_considered", 1);
  size_t lx = x.tokens.size();
  size_t ly = y.tokens.size();
  if (lx == 0 || ly == 0) return;
  if (ly < spec.LengthLowerBound(lx) || ly > spec.LengthUpperBound(lx)) {
    ctx->counters().Add("stage2.bk.length_filtered", 1);
    return;
  }
  size_t alpha = spec.MinOverlap(lx, ly);
  ctx->counters().Add("stage2.bk.verified", 1);
  size_t overlap = sim::VerifyOverlap(x.tokens, y.tokens, 0, 0, 0, alpha);
  if (overlap == sim::kOverlapFailed) return;
  double similarity =
      sim::SimilarityFromOverlap(spec.function(), overlap, lx, ly);
  ctx->counters().Add("stage2.bk.results", 1);
  uint64_t rid1 = x.rid;
  uint64_t rid2 = y.rid;
  if (self_canonical && rid1 > rid2) std::swap(rid1, rid2);
  FormatRidPairOut(format, rid1, rid2, similarity, line_buf);
  out->Emit(*line_buf);
}

/// Serialization for block spills to a reducer's local disk
/// (reduce-based block processing, Section 5).
std::string SerializeProjection(const TokenSetRecord& projection);
Result<TokenSetRecord> ParseProjection(const std::string& line);

/// Merges PPJoin kernel statistics into job counters.
void MergePPJoinStats(const ppjoin::PPJoinStats& stats, mr::TaskContext* ctx);

}  // namespace fj::join::internal
