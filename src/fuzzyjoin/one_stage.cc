#include "fuzzyjoin/one_stage.h"

#include <map>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/string_util.h"
#include "data/record.h"
#include "fuzzyjoin/engine_knobs.h"
#include "fuzzyjoin/stage1.h"
#include "fuzzyjoin/stage2.h"
#include "fuzzyjoin/stage2_internal.h"
#include "fuzzyjoin/stage3.h"
#include "mapreduce/job.h"
#include "ppjoin/ppjoin.h"
#include "text/token_ordering.h"

namespace fj::join {

namespace {

using mr::Emitter;
using mr::InputRecord;
using mr::OutputEmitter;
using mr::TaskContext;

/// Routes FULL RECORD LINES by prefix-token group — the fat-value variant
/// of the stage-2 mapper.
class FullRecordMapper : public mr::Mapper<Stage2Key, std::string> {
 public:
  FullRecordMapper(std::shared_ptr<const text::Tokenizer> tokenizer,
                   const std::vector<std::string>* ordering_lines,
                   sim::SimilaritySpec spec, TokenRouting routing,
                   uint32_t num_groups)
      : tokenizer_(std::move(tokenizer)),
        ordering_lines_(ordering_lines),
        spec_(spec),
        routing_(routing),
        num_groups_(num_groups) {}

  void Setup(TaskContext* ctx) override {
    auto parsed = text::TokenOrdering::FromLines(*ordering_lines_);
    if (!parsed.ok()) {
      ctx->counters().Add("onestage.bad_ordering", 1);
      ordering_.emplace();
      return;
    }
    ordering_.emplace(std::move(parsed).value());
  }

  void Map(const InputRecord& record, Emitter<Stage2Key, std::string>* out,
           TaskContext* ctx) override {
    auto parsed = data::Record::FromLine(*record.line);
    if (!parsed.ok()) {
      ctx->counters().Add("onestage.bad_records", 1);
      ctx->QuarantineRecord(*record.line);
      return;
    }
    auto ids =
        ordering_->ToSortedIds(tokenizer_->Tokenize(parsed->JoinAttribute()));
    if (ids.empty()) return;
    uint32_t length = static_cast<uint32_t>(ids.size());
    size_t prefix = spec_.PrefixLength(ids.size());
    std::vector<uint32_t> groups;
    for (size_t i = 0; i < prefix; ++i) {
      if (text::IsUnknownToken(ids[i])) continue;
      uint32_t g = routing_ == TokenRouting::kIndividualTokens
                       ? static_cast<uint32_t>(ids[i])
                       : static_cast<uint32_t>(ids[i] % num_groups_);
      bool seen = false;
      for (uint32_t existing : groups) seen = seen || existing == g;
      if (seen) continue;
      groups.push_back(g);
      out->Emit(Stage2Key{g, length, 0, 0}, *record.line);
    }
  }

 private:
  std::shared_ptr<const text::Tokenizer> tokenizer_;
  const std::vector<std::string>* ordering_lines_;
  std::optional<text::TokenOrdering> ordering_;
  sim::SimilaritySpec spec_;
  TokenRouting routing_;
  uint32_t num_groups_;
};

/// Re-parses and re-tokenizes every record in the group (full records
/// arrive, not projections), runs the PPJoin+ kernel, and emits complete
/// joined pairs directly.
class FullRecordReducer : public mr::Reducer<Stage2Key, std::string> {
 public:
  FullRecordReducer(std::shared_ptr<const text::Tokenizer> tokenizer,
                    const std::vector<std::string>* ordering_lines,
                    sim::SimilaritySpec spec)
      : tokenizer_(std::move(tokenizer)),
        ordering_lines_(ordering_lines),
        spec_(spec) {}

  void Setup(TaskContext* ctx) override {
    auto parsed = text::TokenOrdering::FromLines(*ordering_lines_);
    if (!parsed.ok()) {
      ctx->counters().Add("onestage.bad_ordering", 1);
      ordering_.emplace();
      return;
    }
    ordering_.emplace(std::move(parsed).value());
  }

  void Reduce(const Stage2Key&,
              std::span<const std::pair<Stage2Key, std::string>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    std::vector<data::Record> records;
    std::vector<ppjoin::TokenSetRecord> sets;
    records.reserve(group.size());
    sets.reserve(group.size());
    std::map<uint64_t, size_t> by_rid;
    for (const auto& [key, line] : group) {
      auto parsed = data::Record::FromLine(line);
      if (!parsed.ok()) {
        ctx->counters().Add("onestage.bad_records", 1);
        continue;
      }
      auto ids = ordering_->ToSortedIds(
          tokenizer_->Tokenize(parsed->JoinAttribute()));
      by_rid[parsed->rid] = records.size();
      sets.push_back(ppjoin::TokenSetRecord{parsed->rid, std::move(ids)});
      records.push_back(std::move(parsed).value());
    }
    // Group arrives length-sorted via the composite key.
    ppjoin::PPJoinStream stream(spec_);
    std::vector<ppjoin::SimilarPair> pairs;
    for (const auto& set : sets) stream.ProbeAndInsert(set, &pairs);
    for (const auto& pair : pairs) {
      JoinedPair joined;
      joined.similarity = pair.similarity;
      joined.first = records[by_rid[pair.rid1]];
      joined.second = records[by_rid[pair.rid2]];
      out->Emit(joined.ToLine());
      ctx->counters().Add("onestage.pairs_emitted", 1);
    }
    internal::MergePPJoinStats(stream.stats(), ctx);
    ctx->counters().Max(
        "stage2.pk.peak_resident_tokens",
        static_cast<int64_t>(stream.stats().peak_resident_tokens));
  }

 private:
  std::shared_ptr<const text::Tokenizer> tokenizer_;
  const std::vector<std::string>* ordering_lines_;
  std::optional<text::TokenOrdering> ordering_;
  sim::SimilaritySpec spec_;
};

/// Deduplicates joined-pair lines (the same pair may be produced by every
/// reducer whose group the two records share).
class DedupMapper
    : public mr::Mapper<std::pair<uint64_t, uint64_t>, std::string> {
 public:
  void Map(const InputRecord& record,
           Emitter<std::pair<uint64_t, uint64_t>, std::string>* out,
           TaskContext* ctx) override {
    auto fields = fj::SplitN(*record.line, '\t', 3);
    if (fields.size() != 3) {
      ctx->counters().Add("onestage.bad_joined_lines", 1);
      return;
    }
    auto rid1 = fj::ParseUint64(fields[0]);
    auto rid2 = fj::ParseUint64(fields[1]);
    if (!rid1.ok() || !rid2.ok()) {
      ctx->counters().Add("onestage.bad_joined_lines", 1);
      return;
    }
    out->Emit({rid1.value(), rid2.value()}, *record.line);
  }
};

class DedupReducer
    : public mr::Reducer<std::pair<uint64_t, uint64_t>, std::string> {
 public:
  void Reduce(const std::pair<uint64_t, uint64_t>&,
              std::span<const std::pair<std::pair<uint64_t, uint64_t>,
                                        std::string>>
                  group,
              OutputEmitter* out, TaskContext*) override {
    out->Emit(group.front().second);
  }
};

}  // namespace

Result<JoinRunResult> RunOneStageSelfJoin(mr::Dfs* dfs,
                                          const std::string& input_file,
                                          const std::string& output_prefix,
                                          const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  // One-stage pipelines share a pipeline-wide executor too (see
  // driver.cc); both jobs below run on it via ApplyEngineKnobs.
  JoinConfig cfg = config;
  if (!cfg.executor) {
    cfg.executor = std::make_shared<Executor>(cfg.local_threads);
  }
  JoinRunResult result;
  result.ordering_file = output_prefix + ".ordering";
  result.rid_pairs_file = "";  // no projection stage exists
  result.output_file = output_prefix + ".joined";

  FJ_ASSIGN_OR_RETURN(
      Stage1Result stage1,
      RunStage1(dfs, input_file, result.ordering_file, cfg));
  result.stages.push_back(StageMetrics{
      std::string("1-") + Stage1Name(cfg.stage1), std::move(stage1.jobs)});

  // Owned decode of the (possibly binary) stage-1 ordering; both jobs
  // below run synchronously, so the local outlives every mapper/reducer
  // holding a pointer to it.
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string> ordering_owned,
                      ReadOrderingLines(*dfs, result.ordering_file));
  const std::vector<std::string>* ordering_lines = &ordering_owned;

  // The fat-value kernel job.
  sim::SimilaritySpec spec = cfg.MakeSpec();
  auto tokenizer = cfg.tokenizer;
  auto routing = cfg.routing;
  auto num_groups = cfg.num_groups;

  mr::JobSpec<Stage2Key, std::string> kernel;
  kernel.name = "onestage-kernel";
  kernel.input_files = {input_file};
  kernel.output_file = output_prefix + ".withdups";
  kernel.num_map_tasks = cfg.num_map_tasks;
  kernel.num_reduce_tasks = cfg.num_reduce_tasks;
  ApplyEngineKnobs(cfg, &kernel);
  kernel.group_equal = [](const Stage2Key& a, const Stage2Key& b) {
    return a.group == b.group;
  };
  kernel.mapper_factory = [tokenizer, ordering_lines, spec, routing,
                           num_groups] {
    return std::make_unique<FullRecordMapper>(tokenizer, ordering_lines, spec,
                                              routing, num_groups);
  };
  kernel.reducer_factory = [tokenizer, ordering_lines, spec] {
    return std::make_unique<FullRecordReducer>(tokenizer, ordering_lines,
                                               spec);
  };
  mr::Job<Stage2Key, std::string> kernel_job(dfs, std::move(kernel));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics kernel_metrics, kernel_job.Run());
  result.stages.push_back(
      StageMetrics{"2-ONESTAGE", {std::move(kernel_metrics)}});

  // Deduplication job.
  mr::JobSpec<std::pair<uint64_t, uint64_t>, std::string> dedup;
  dedup.name = "onestage-dedup";
  dedup.input_files = {output_prefix + ".withdups"};
  dedup.output_file = result.output_file;
  dedup.num_map_tasks = cfg.num_map_tasks;
  dedup.num_reduce_tasks = cfg.num_reduce_tasks;
  ApplyEngineKnobs(cfg, &dedup);
  dedup.mapper_factory = [] { return std::make_unique<DedupMapper>(); };
  dedup.reducer_factory = [] { return std::make_unique<DedupReducer>(); };
  mr::Job<std::pair<uint64_t, uint64_t>, std::string> dedup_job(
      dfs, std::move(dedup));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics dedup_metrics, dedup_job.Run());
  result.stages.push_back(
      StageMetrics{"3-DEDUP", {std::move(dedup_metrics)}});

  return result;
}

}  // namespace fj::join
