// End-to-end drivers: the paper's full three-stage pipelines for the
// self-join (Section 3) and R-S join (Section 4) cases, from complete
// records to complete joined record pairs.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzyjoin/config.h"
#include "fuzzyjoin/stage3.h"
#include "mapreduce/cluster_model.h"
#include "mapreduce/dfs.h"
#include "mapreduce/metrics.h"

namespace fj::join {

/// Per-stage execution record of one pipeline run.
struct StageMetrics {
  std::string stage_name;  ///< "1-BTO", "2-PK", "3-BRJ", ...
  std::vector<mr::JobMetrics> jobs;
  /// True when JoinConfig::resume skipped this stage because its manifest
  /// entry validated — no jobs ran, so `jobs` is empty.
  bool resumed_from_checkpoint = false;
};

struct JoinRunResult {
  /// Dfs file of JoinedPair lines (see stage3.h).
  std::string output_file;
  /// Intermediate artifacts, kept for inspection.
  std::string ordering_file;
  std::string rid_pairs_file;

  std::vector<StageMetrics> stages;

  /// Real wall time summed over every executed job.
  double TotalWallSeconds() const;

  /// Simulated running time of the whole pipeline on `cluster`.
  double SimulatedSeconds(const mr::ClusterConfig& cluster) const;

  /// Simulated running time of one stage (index 0..2).
  double SimulatedStageSeconds(size_t stage_index,
                               const mr::ClusterConfig& cluster) const;
};

/// Runs the full self-join pipeline over `input_file` (record lines in the
/// Dfs). Intermediate and final files are named `output_prefix` + suffix.
Result<JoinRunResult> RunSelfJoin(mr::Dfs* dfs, const std::string& input_file,
                                  const std::string& output_prefix,
                                  const JoinConfig& config);

/// Runs the full R-S join pipeline. Stage 1 (token ordering) runs on
/// relation R only — pass the smaller relation as R, as the paper does
/// (DBLP ⋈ CITESEERX with R = DBLP).
Result<JoinRunResult> RunRSJoin(mr::Dfs* dfs, const std::string& r_file,
                                const std::string& s_file,
                                const std::string& output_prefix,
                                const JoinConfig& config);

}  // namespace fj::join
