#include "fuzzyjoin/manifest.h"

#include <cstdio>
#include <cstring>

#include "common/hash.h"

namespace fj::join {
namespace {

constexpr char kHeaderTag[] = "fuzzyjoin-manifest";
constexpr char kVersion[] = "v1";

std::string HexOf(uint64_t v) {
  char buf[20];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(v));
  return std::string(buf);
}

bool ParseHex(const std::string& s, uint64_t* out) {
  if (s.empty() || s.size() > 16) return false;
  uint64_t v = 0;
  for (char c : s) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  *out = v;
  return true;
}

std::vector<std::string> SplitTabs(const std::string& line) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (true) {
    size_t tab = line.find('\t', start);
    if (tab == std::string::npos) {
      fields.push_back(line.substr(start));
      return fields;
    }
    fields.push_back(line.substr(start, tab - start));
    start = tab + 1;
  }
}

uint64_t FoldInt(uint64_t h, uint64_t v) {
  return HashCombine(h, HashInt64(v));
}

}  // namespace

Result<uint64_t> PipelineFingerprint(const JoinConfig& config,
                                     const mr::Dfs& dfs,
                                     const std::vector<std::string>& inputs) {
  uint64_t h = HashString(kHeaderTag);
  h = FoldInt(h, static_cast<uint64_t>(config.function));
  uint64_t tau_bits = 0;
  static_assert(sizeof(tau_bits) == sizeof(config.tau));
  std::memcpy(&tau_bits, &config.tau, sizeof(tau_bits));
  h = FoldInt(h, tau_bits);
  h = FoldInt(h, static_cast<uint64_t>(config.stage1));
  h = FoldInt(h, static_cast<uint64_t>(config.stage2));
  h = FoldInt(h, static_cast<uint64_t>(config.stage3));
  h = FoldInt(h, static_cast<uint64_t>(config.routing));
  h = FoldInt(h, config.num_groups);
  h = FoldInt(h, static_cast<uint64_t>(config.group_assignment));
  h = FoldInt(h, config.use_stage1_combiner ? 1 : 0);
  h = FoldInt(h, static_cast<uint64_t>(config.block_processing));
  h = FoldInt(h, config.num_blocks);
  h = FoldInt(h, config.bk_length_routing ? 1 : 0);
  h = FoldInt(h, config.length_class_width);
  // Task counts shape which reduce task emits which lines, and therefore
  // the byte order of every stage output — a resumed run must match them.
  h = FoldInt(h, config.num_map_tasks);
  h = FoldInt(h, config.num_reduce_tasks);
  // The record format decides the REPRESENTATION of stage intermediate
  // files (text lines vs binary wire records); resuming a text manifest
  // under binary would splice unreadable files into the pipeline. The
  // codec only affects transient run blocks, but is folded too so a
  // resumed run reproduces the original's metered byte counts.
  h = FoldInt(h, static_cast<uint64_t>(config.record_format));
  h = FoldInt(h, static_cast<uint64_t>(config.block_codec));
  if (config.tokenizer != nullptr) {
    h = HashCombine(h, HashString(config.tokenizer->Name()));
  }
  for (const std::string& input : inputs) {
    h = HashCombine(h, HashString(input));
    FJ_ASSIGN_OR_RETURN(uint64_t checksum, dfs.FileChecksum(input));
    h = FoldInt(h, checksum);
  }
  return h;
}

Result<Manifest> LoadManifest(const mr::Dfs& dfs, const std::string& file) {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines,
                      dfs.ReadFile(file));
  auto malformed = [&file](const std::string& why) {
    return Status::DataLoss("manifest '" + file + "': " + why);
  };
  if (lines->empty()) return malformed("empty file");

  Manifest manifest;
  std::vector<std::string> header = SplitTabs((*lines)[0]);
  if (header.size() != 3 || header[0] != kHeaderTag ||
      header[1] != kVersion) {
    return malformed("unrecognized header '" + (*lines)[0] + "'");
  }
  if (!ParseHex(header[2], &manifest.fingerprint)) {
    return malformed("bad fingerprint '" + header[2] + "'");
  }

  for (size_t i = 1; i < lines->size(); ++i) {
    std::vector<std::string> fields = SplitTabs((*lines)[i]);
    if (fields.size() < 4 || fields[0] != "stage") {
      return malformed("bad stage line " + std::to_string(i));
    }
    if (fields[1] != std::to_string(manifest.stages.size())) {
      return malformed("stage index '" + fields[1] + "' out of order");
    }
    ManifestStage stage;
    stage.stage_name = fields[2];
    for (size_t f = 3; f < fields.size(); ++f) {
      size_t eq = fields[f].rfind('=');
      uint64_t checksum = 0;
      if (eq == std::string::npos || eq == 0 ||
          !ParseHex(fields[f].substr(eq + 1), &checksum)) {
        return malformed("bad output entry '" + fields[f] + "'");
      }
      stage.outputs.emplace_back(fields[f].substr(0, eq), checksum);
    }
    manifest.stages.push_back(std::move(stage));
  }
  return manifest;
}

Status SaveManifest(mr::Dfs* dfs, const std::string& file,
                    const Manifest& manifest) {
  std::vector<std::string> lines;
  lines.reserve(manifest.stages.size() + 1);
  lines.push_back(std::string(kHeaderTag) + "\t" + kVersion + "\t" +
                  HexOf(manifest.fingerprint));
  for (size_t i = 0; i < manifest.stages.size(); ++i) {
    const ManifestStage& stage = manifest.stages[i];
    std::string line = "stage\t" + std::to_string(i) + "\t" + stage.stage_name;
    for (const auto& [name, checksum] : stage.outputs) {
      line += "\t" + name + "=" + HexOf(checksum);
    }
    lines.push_back(std::move(line));
  }

  const std::string tmp = file + ".__commit";
  if (dfs->Exists(tmp)) FJ_RETURN_IF_ERROR(dfs->DeleteFile(tmp));
  FJ_RETURN_IF_ERROR(dfs->WriteFile(tmp, std::move(lines)));
  if (dfs->Exists(file)) {
    Status deleted = dfs->DeleteFile(file);
    if (!deleted.ok()) {
      (void)dfs->DeleteFile(tmp);
      return deleted;
    }
  }
  return dfs->RenameFile(tmp, file);
}

}  // namespace fj::join
