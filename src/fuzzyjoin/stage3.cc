// Stage 3 — Record Join (BRJ and OPRJ, self-join and R-S cases).
#include "fuzzyjoin/stage3.h"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "fuzzyjoin/engine_knobs.h"
#include "fuzzyjoin/stage2.h"
#include "mapreduce/job.h"
#include "mapreduce/record_format.h"

namespace fj::join {

namespace {

using mr::Emitter;
using mr::InputRecord;
using mr::OutputEmitter;
using mr::TaskContext;

std::string SanitizeTabs(std::string s) {
  for (char& c : s) {
    if (c == '\t') c = ' ';
  }
  return s;
}

std::string FormatSim(double sim) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", sim);
  return buf;
}

// ------------------------------------------------------------ phase-1 types

/// Phase-1 key: (relation, rid). Self-joins use relation 0 for everything;
/// R-S joins distinguish the two RID spaces.
using RidKey = std::pair<uint32_t, uint64_t>;

/// Phase-1 value: either an original record line or a RID-pair line.
struct TaggedLine {
  uint8_t kind = 0;  ///< 0 = record, 1 = RID pair
  std::string line;
};

inline size_t FjByteSize(const TaggedLine& v) { return 5 + v.line.size(); }
inline uint64_t FjContentHash(const TaggedLine& v) {
  return HashCombine(HashInt64(v.kind), HashString(v.line));
}
// CorruptRecord hook: flip a byte of the carried line — a corrupted record
// line either reaches the join output or trips the bad-line counters, a
// corrupted RID-pair line stops matching; either way, real bit rot.
inline bool FjCorruptContent(TaggedLine& v, uint64_t salt) {
  return mr::CorruptInPlace(v.line, salt);
}
// Binary run encoding (mapreduce/record_format.h): kind byte + varint-
// length-prefixed line.
inline void FjEncodeContent(const TaggedLine& v, std::string* out) {
  mr::EncodeContent(v.kind, out);
  mr::EncodeContent(v.line, out);
}
inline bool FjDecodeContent(std::string_view buf, size_t* pos, TaggedLine* v) {
  size_t at = *pos;
  if (!mr::DecodeContent(buf, &at, &v->kind)) return false;
  if (!mr::DecodeContent(buf, &at, &v->line)) return false;
  *pos = at;
  return true;
}

// ------------------------------------------------------------ phase-2 types

/// Phase-2 key: the RID pair itself.
using PairKey = std::pair<uint64_t, uint64_t>;

/// Phase-2 value: one half of the joined pair.
struct HalfPair {
  uint8_t side = 0;  ///< 0 = first/R record, 1 = second/S record
  double similarity = 0;
  std::string record_line;
};

inline size_t FjByteSize(const HalfPair& v) { return 13 + v.record_line.size(); }
inline uint64_t FjContentHash(const HalfPair& v) {
  uint64_t sim_bits = 0;
  static_assert(sizeof(sim_bits) == sizeof(v.similarity));
  std::memcpy(&sim_bits, &v.similarity, sizeof(sim_bits));
  return HashCombine(HashCombine(HashInt64(v.side), HashInt64(sim_bits)),
                     HashString(v.record_line));
}
inline bool FjCorruptContent(HalfPair& v, uint64_t salt) {
  return mr::CorruptInPlace(v.record_line, salt);
}
// Binary run encoding: side byte + similarity as raw fixed64 bits (exact
// double roundtrip) + varint-length-prefixed record line.
inline void FjEncodeContent(const HalfPair& v, std::string* out) {
  mr::EncodeContent(v.side, out);
  mr::EncodeContent(v.similarity, out);
  mr::EncodeContent(v.record_line, out);
}
inline bool FjDecodeContent(std::string_view buf, size_t* pos, HalfPair* v) {
  size_t at = *pos;
  if (!mr::DecodeContent(buf, &at, &v->side)) return false;
  if (!mr::DecodeContent(buf, &at, &v->similarity)) return false;
  if (!mr::DecodeContent(buf, &at, &v->record_line)) return false;
  *pos = at;
  return true;
}

/// Formats the phase-1 output / phase-2 input line:
/// "rid1 TAB rid2 TAB sim TAB side TAB <record line (4 fields)>".
std::string FormatHalfLine(uint64_t rid1, uint64_t rid2, double sim,
                           uint8_t side, const std::string& record_line) {
  return std::to_string(rid1) + "\t" + std::to_string(rid2) + "\t" +
         FormatSim(sim) + "\t" + std::to_string(side) + "\t" + record_line;
}

struct ParsedHalfLine {
  uint64_t rid1 = 0;
  uint64_t rid2 = 0;
  double similarity = 0;
  uint8_t side = 0;
  std::string record_line;
};

Result<ParsedHalfLine> ParseHalfLine(const std::string& line) {
  std::vector<std::string> fields = fj::SplitN(line, '\t', 5);
  if (fields.size() != 5) {
    return Status::InvalidArgument("bad half-pair line: " + line);
  }
  ParsedHalfLine out;
  FJ_ASSIGN_OR_RETURN(out.rid1, fj::ParseUint64(fields[0]));
  FJ_ASSIGN_OR_RETURN(out.rid2, fj::ParseUint64(fields[1]));
  FJ_ASSIGN_OR_RETURN(out.similarity, fj::ParseDouble(fields[2]));
  FJ_ASSIGN_OR_RETURN(uint64_t side, fj::ParseUint64(fields[3]));
  if (side > 1) return Status::InvalidArgument("bad side: " + line);
  out.side = static_cast<uint8_t>(side);
  out.record_line = std::move(fields[4]);
  return out;
}

// --------------------------------------------------------- phase-1 mapper

/// Routes record lines by their RID and RID-pair lines by both RIDs.
/// `pairs_file_index` identifies the RID-pair input; record inputs carry
/// their relation tag (file 0 = R/self, file 1 = S).
class Phase1Mapper : public mr::Mapper<RidKey, TaggedLine> {
 public:
  Phase1Mapper(size_t pairs_file_index, bool is_rs)
      : pairs_file_index_(pairs_file_index), is_rs_(is_rs) {}

  void Map(const InputRecord& record, Emitter<RidKey, TaggedLine>* out,
           TaskContext* ctx) override {
    if (record.file_index == pairs_file_index_) {
      auto parsed = ParseRidPairLine(*record.line);
      if (!parsed.ok()) {
        ctx->counters().Add("stage3.bad_pair_lines", 1);
        ctx->QuarantineRecord(*record.line);
        return;
      }
      auto [rid1, rid2, sim] = parsed.value();
      (void)sim;
      out->Emit(RidKey(0, rid1), TaggedLine{1, *record.line});
      out->Emit(RidKey(is_rs_ ? 1 : 0, rid2), TaggedLine{1, *record.line});
    } else {
      auto parsed = data::Record::FromLine(*record.line);
      if (!parsed.ok()) {
        ctx->counters().Add("stage3.bad_records", 1);
        ctx->QuarantineRecord(*record.line);
        return;
      }
      uint32_t relation =
          is_rs_ ? static_cast<uint32_t>(record.file_index) : 0;
      out->Emit(RidKey(relation, parsed->rid), TaggedLine{0, *record.line});
    }
  }

 private:
  size_t pairs_file_index_;
  bool is_rs_;
};

// --------------------------------------------------------- phase-1 reducer

/// Joins one record with all RID pairs referencing it, emitting one
/// half-filled pair per (deduplicated) RID pair.
class Phase1Reducer : public mr::Reducer<RidKey, TaggedLine> {
 public:
  explicit Phase1Reducer(bool is_rs) : is_rs_(is_rs) {}

  void Reduce(const RidKey& key,
              std::span<const std::pair<RidKey, TaggedLine>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    const std::string* record_line = nullptr;
    std::vector<std::string> pair_lines;
    for (const auto& [k, value] : group) {
      if (value.kind == 0) {
        if (record_line != nullptr) {
          ctx->counters().Add("stage3.duplicate_rids", 1);
        }
        record_line = &value.line;
      } else {
        pair_lines.push_back(value.line);
      }
    }
    if (pair_lines.empty()) return;  // record participates in no pair
    if (record_line == nullptr) {
      ctx->counters().Add("stage3.missing_records", 1);
      return;
    }
    // Stage 2 may emit the same pair from several reducers; both halves
    // deduplicate identically because duplicate lines are byte-identical.
    std::sort(pair_lines.begin(), pair_lines.end());
    pair_lines.erase(std::unique(pair_lines.begin(), pair_lines.end()),
                     pair_lines.end());
    for (const std::string& line : pair_lines) {
      auto parsed = ParseRidPairLine(line);
      if (!parsed.ok()) continue;  // counted at map time
      auto [rid1, rid2, sim] = parsed.value();
      uint8_t side;
      if (is_rs_) {
        side = static_cast<uint8_t>(key.first);
      } else {
        side = key.second == rid1 ? 0 : 1;
      }
      out->Emit(FormatHalfLine(rid1, rid2, sim, side, *record_line));
    }
  }

 private:
  bool is_rs_;
};

// ----------------------------------------------------- phase-2 map/reduce

/// Phase 2 mapper: parse half-pair lines into (pair key, half) — the
/// paper's "identity map" plus input parsing.
class Phase2Mapper : public mr::Mapper<PairKey, HalfPair> {
 public:
  void Map(const InputRecord& record, Emitter<PairKey, HalfPair>* out,
           TaskContext* ctx) override {
    auto parsed = ParseHalfLine(*record.line);
    if (!parsed.ok()) {
      ctx->counters().Add("stage3.bad_half_lines", 1);
      return;
    }
    out->Emit(PairKey(parsed->rid1, parsed->rid2),
              HalfPair{parsed->side, parsed->similarity,
                       std::move(parsed->record_line)});
  }
};

/// Phase 2 reducer: the two halves of a pair meet; output the joined pair.
class Phase2Reducer : public mr::Reducer<PairKey, HalfPair> {
 public:
  void Reduce(const PairKey& key,
              std::span<const std::pair<PairKey, HalfPair>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    const HalfPair* first = nullptr;
    const HalfPair* second = nullptr;
    for (const auto& [k, half] : group) {
      if (half.side == 0 && first == nullptr) {
        first = &half;
      } else if (half.side == 1 && second == nullptr) {
        second = &half;
      } else {
        ctx->counters().Add("stage3.unexpected_halves", 1);
      }
    }
    if (first == nullptr || second == nullptr) {
      ctx->counters().Add("stage3.incomplete_pairs", 1);
      return;
    }
    auto rec1 = data::Record::FromLine(first->record_line);
    auto rec2 = data::Record::FromLine(second->record_line);
    if (!rec1.ok() || !rec2.ok()) {
      ctx->counters().Add("stage3.bad_records", 1);
      return;
    }
    JoinedPair joined;
    joined.similarity = first->similarity;
    joined.first = std::move(rec1).value();
    joined.second = std::move(rec2).value();
    out->Emit(joined.ToLine());
    (void)key;
  }
};

// ----------------------------------------------------------- OPRJ mapper

struct RidPairEntry {
  uint64_t rid1;
  uint64_t rid2;
  double similarity;
};

/// OPRJ mapper: loads and indexes the broadcast RID-pair list in Setup
/// (per map task — the constant-cost step the paper identifies as OPRJ's
/// scalability limit), then joins records map-side.
class OprjMapper : public mr::Mapper<PairKey, HalfPair> {
 public:
  OprjMapper(const std::vector<std::string>* pair_lines, bool is_rs)
      : pair_lines_(pair_lines), is_rs_(is_rs) {}

  void Setup(TaskContext* ctx) override {
    std::vector<RidPairEntry> parsed;
    parsed.reserve(pair_lines_->size());
    for (const std::string& line : *pair_lines_) {
      auto pair = ParseRidPairLine(line);
      if (!pair.ok()) {
        ctx->counters().Add("stage3.bad_pair_lines", 1);
        continue;
      }
      auto [rid1, rid2, sim] = pair.value();
      parsed.push_back(RidPairEntry{rid1, rid2, sim});
    }
    std::sort(parsed.begin(), parsed.end(),
              [](const RidPairEntry& a, const RidPairEntry& b) {
                return std::tie(a.rid1, a.rid2) < std::tie(b.rid1, b.rid2);
              });
    parsed.erase(std::unique(parsed.begin(), parsed.end(),
                             [](const RidPairEntry& a, const RidPairEntry& b) {
                               return a.rid1 == b.rid1 && a.rid2 == b.rid2;
                             }),
                 parsed.end());
    pairs_ = std::move(parsed);
    for (size_t i = 0; i < pairs_.size(); ++i) {
      by_first_[pairs_[i].rid1].push_back(i);
      by_second_[pairs_[i].rid2].push_back(i);
    }
  }

  void Map(const InputRecord& record, Emitter<PairKey, HalfPair>* out,
           TaskContext* ctx) override {
    auto parsed = data::Record::FromLine(*record.line);
    if (!parsed.ok()) {
      ctx->counters().Add("stage3.bad_records", 1);
      ctx->QuarantineRecord(*record.line);
      return;
    }
    uint64_t rid = parsed->rid;
    // Self-join records match on either side; R-S records only on the side
    // their relation owns (file 0 = R = side 0).
    bool emit_first = !is_rs_ || record.file_index == 0;
    bool emit_second = !is_rs_ || record.file_index == 1;
    if (emit_first) {
      auto it = by_first_.find(rid);
      if (it != by_first_.end()) {
        for (size_t i : it->second) {
          const RidPairEntry& p = pairs_[i];
          out->Emit(PairKey(p.rid1, p.rid2),
                    HalfPair{0, p.similarity, *record.line});
        }
      }
    }
    if (emit_second) {
      auto it = by_second_.find(rid);
      if (it != by_second_.end()) {
        for (size_t i : it->second) {
          const RidPairEntry& p = pairs_[i];
          out->Emit(PairKey(p.rid1, p.rid2),
                    HalfPair{1, p.similarity, *record.line});
        }
      }
    }
  }

 private:
  const std::vector<std::string>* pair_lines_;
  bool is_rs_;
  std::vector<RidPairEntry> pairs_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_first_;
  std::unordered_map<uint64_t, std::vector<size_t>> by_second_;
};

// ------------------------------------------------------------ job drivers

Result<Stage3Result> RunBrj(mr::Dfs* dfs,
                            const std::vector<std::string>& record_files,
                            const std::string& pairs_file,
                            const std::string& output_file, bool is_rs,
                            const JoinConfig& config) {
  Stage3Result result;
  result.output_file = output_file;

  // Phase 1: fill each half of every pair with its record.
  mr::JobSpec<RidKey, TaggedLine> phase1;
  phase1.name = "stage3-brj-1";
  phase1.input_files = record_files;
  phase1.input_files.push_back(pairs_file);
  size_t pairs_file_index = record_files.size();
  phase1.output_file = output_file + ".halves";
  phase1.num_map_tasks = config.num_map_tasks;
  phase1.num_reduce_tasks = config.num_reduce_tasks;
  ApplyEngineKnobs(config, &phase1);
  phase1.mapper_factory = [pairs_file_index, is_rs] {
    return std::make_unique<Phase1Mapper>(pairs_file_index, is_rs);
  };
  phase1.reducer_factory = [is_rs] {
    return std::make_unique<Phase1Reducer>(is_rs);
  };
  mr::Job<RidKey, TaggedLine> job1(dfs, std::move(phase1));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics1, job1.Run());
  result.jobs.push_back(std::move(metrics1));

  // Phase 2: bring the two halves of each pair together.
  mr::JobSpec<PairKey, HalfPair> phase2;
  phase2.name = "stage3-brj-2";
  phase2.input_files = {output_file + ".halves"};
  phase2.output_file = output_file;
  phase2.num_map_tasks = config.num_map_tasks;
  phase2.num_reduce_tasks = config.num_reduce_tasks;
  ApplyEngineKnobs(config, &phase2);
  phase2.mapper_factory = [] { return std::make_unique<Phase2Mapper>(); };
  phase2.reducer_factory = [] { return std::make_unique<Phase2Reducer>(); };
  mr::Job<PairKey, HalfPair> job2(dfs, std::move(phase2));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics2, job2.Run());
  result.jobs.push_back(std::move(metrics2));
  return result;
}

Result<Stage3Result> RunOprj(mr::Dfs* dfs,
                             const std::vector<std::string>& record_files,
                             const std::string& pairs_file,
                             const std::string& output_file, bool is_rs,
                             const JoinConfig& config) {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* pair_lines,
                      dfs->ReadFile(pairs_file));

  // Every map task must hold the indexed RID-pair list in memory; model
  // the paper's out-of-memory failure against the configured budget.
  if (config.oprj_memory_limit_bytes > 0) {
    uint64_t estimated = 0;
    for (const auto& line : *pair_lines) estimated += 40 + line.size();
    if (estimated > config.oprj_memory_limit_bytes) {
      return Status::ResourceExhausted(
          "OPRJ: RID-pair list (~" + std::to_string(estimated) +
          " bytes indexed) exceeds the per-task memory budget of " +
          std::to_string(config.oprj_memory_limit_bytes) +
          " bytes; use BRJ for this scale");
    }
  }

  Stage3Result result;
  result.output_file = output_file;

  mr::JobSpec<PairKey, HalfPair> spec;
  spec.name = "stage3-oprj";
  spec.input_files = record_files;
  spec.output_file = output_file;
  spec.num_map_tasks = config.num_map_tasks;
  spec.num_reduce_tasks = config.num_reduce_tasks;
  ApplyEngineKnobs(config, &spec);
  spec.mapper_factory = [pair_lines, is_rs] {
    return std::make_unique<OprjMapper>(pair_lines, is_rs);
  };
  spec.reducer_factory = [] { return std::make_unique<Phase2Reducer>(); };
  mr::Job<PairKey, HalfPair> job(dfs, std::move(spec));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics, job.Run());
  result.jobs.push_back(std::move(metrics));
  return result;
}

}  // namespace

// --------------------------------------------------------------- JoinedPair

std::string JoinedPair::ToLine() const {
  std::string line;
  line += std::to_string(first.rid);
  line += '\t';
  line += std::to_string(second.rid);
  line += '\t';
  line += FormatSim(similarity);
  line += '\t';
  line += SanitizeTabs(first.title);
  line += '\t';
  line += SanitizeTabs(first.authors);
  line += '\t';
  line += SanitizeTabs(first.payload);
  line += '\t';
  line += SanitizeTabs(second.title);
  line += '\t';
  line += SanitizeTabs(second.authors);
  line += '\t';
  line += SanitizeTabs(second.payload);
  return line;
}

Result<JoinedPair> JoinedPair::FromLine(const std::string& line) {
  std::vector<std::string> fields = fj::Split(line, '\t');
  if (fields.size() != 9) {
    return Status::InvalidArgument("bad joined-pair line: " + line);
  }
  JoinedPair out;
  FJ_ASSIGN_OR_RETURN(out.first.rid, fj::ParseUint64(fields[0]));
  FJ_ASSIGN_OR_RETURN(out.second.rid, fj::ParseUint64(fields[1]));
  FJ_ASSIGN_OR_RETURN(out.similarity, fj::ParseDouble(fields[2]));
  out.first.title = std::move(fields[3]);
  out.first.authors = std::move(fields[4]);
  out.first.payload = std::move(fields[5]);
  out.second.title = std::move(fields[6]);
  out.second.authors = std::move(fields[7]);
  out.second.payload = std::move(fields[8]);
  return out;
}

Result<std::vector<JoinedPair>> ReadJoinedPairs(const mr::Dfs& dfs,
                                                const std::string& file) {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines,
                      dfs.ReadFile(file));
  std::vector<JoinedPair> out;
  out.reserve(lines->size());
  for (const auto& line : *lines) {
    FJ_ASSIGN_OR_RETURN(JoinedPair pair, JoinedPair::FromLine(line));
    out.push_back(std::move(pair));
  }
  return out;
}

// ------------------------------------------------------------- public API

Result<Stage3Result> RunStage3SelfJoin(mr::Dfs* dfs,
                                       const std::string& records_file,
                                       const std::string& pairs_file,
                                       const std::string& output_file,
                                       const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  if (config.stage3 == Stage3Algorithm::kBRJ) {
    return RunBrj(dfs, {records_file}, pairs_file, output_file,
                  /*is_rs=*/false, config);
  }
  return RunOprj(dfs, {records_file}, pairs_file, output_file,
                 /*is_rs=*/false, config);
}

Result<Stage3Result> RunStage3RSJoin(mr::Dfs* dfs, const std::string& r_file,
                                     const std::string& s_file,
                                     const std::string& pairs_file,
                                     const std::string& output_file,
                                     const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  if (config.stage3 == Stage3Algorithm::kBRJ) {
    return RunBrj(dfs, {r_file, s_file}, pairs_file, output_file,
                  /*is_rs=*/true, config);
  }
  return RunOprj(dfs, {r_file, s_file}, pairs_file, output_file,
                 /*is_rs=*/true, config);
}

}  // namespace fj::join
