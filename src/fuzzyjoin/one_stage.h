// The one-stage, full-record alternative (Section 2.2).
//
// The paper considers replacing stages 2 and 3 with a single stage whose
// key-value pairs carry COMPLETE RECORDS instead of (RID, token-set)
// projections: reducers verify candidates and emit joined record pairs
// directly, and a small follow-up job deduplicates pairs produced by
// multiple reducers. The authors implemented it, found it much slower, and
// dropped it — we implement it so that comparison can be reproduced
// (bench_one_stage): replicating whole records through the shuffle
// multiplies the network volume by the record payload, which projections
// never pay.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "fuzzyjoin/config.h"
#include "fuzzyjoin/driver.h"
#include "mapreduce/dfs.h"

namespace fj::join {

/// Runs: stage 1 (token ordering) exactly as the normal pipeline, then the
/// full-record kernel job, then the deduplication job. Produces the same
/// JoinedPair output file as RunSelfJoin. Honors config.stage1, routing,
/// and the similarity predicate; stage2/stage3 selections are ignored (the
/// whole point is that there is no stage 2/3 split).
Result<JoinRunResult> RunOneStageSelfJoin(mr::Dfs* dfs,
                                          const std::string& input_file,
                                          const std::string& output_prefix,
                                          const JoinConfig& config);

}  // namespace fj::join
