// Stage 3 — Record Join (Sections 3.3 and 4).
//
// Combines the stage-2 RID pairs with the original records to produce
// pairs of complete records. Duplicate RID pairs from stage 2 are
// eliminated here. Two variants:
//
//   BRJ  (Basic Record Join) — two phases. Phase 1 reads both the record
//        file(s) and the RID-pair file (mappers tell them apart by input
//        file), routes records and pairs by RID, and emits one half-filled
//        pair per (record, pair) meeting. Phase 2 groups the two halves of
//        each pair and outputs the joined record pair.
//   OPRJ (One-Phase Record Join) — the RID-pair list is broadcast: every
//        map task loads and indexes it, then streams the record file(s),
//        emitting halves directly; one reduce phase assembles them. Fails
//        with ResourceExhausted when the list exceeds the configured
//        memory budget — the paper's observed OPRJ out-of-memory point.
#pragma once

#include <string>
#include <vector>

#include "common/result.h"
#include "data/record.h"
#include "fuzzyjoin/config.h"
#include "mapreduce/dfs.h"
#include "mapreduce/metrics.h"

namespace fj::join {

/// One final join result: two complete records and their similarity.
struct JoinedPair {
  double similarity = 0;
  data::Record first;   ///< self-join: smaller RID; R-S join: the R record
  data::Record second;  ///< self-join: larger RID; R-S join: the S record

  /// "rid1<TAB>rid2<TAB>sim<TAB>title1<TAB>authors1<TAB>payload1<TAB>
  ///  title2<TAB>authors2<TAB>payload2" (payload tabs sanitized to spaces).
  std::string ToLine() const;
  static Result<JoinedPair> FromLine(const std::string& line);
};

/// Parses a whole stage-3 output file.
Result<std::vector<JoinedPair>> ReadJoinedPairs(const mr::Dfs& dfs,
                                                const std::string& file);

struct Stage3Result {
  std::string output_file;
  std::vector<mr::JobMetrics> jobs;
};

/// Self-join record join: `records_file` + `pairs_file` -> joined pairs.
Result<Stage3Result> RunStage3SelfJoin(mr::Dfs* dfs,
                                       const std::string& records_file,
                                       const std::string& pairs_file,
                                       const std::string& output_file,
                                       const JoinConfig& config);

/// R-S record join; `pairs_file` holds (R rid, S rid, sim) lines.
Result<Stage3Result> RunStage3RSJoin(mr::Dfs* dfs, const std::string& r_file,
                                     const std::string& s_file,
                                     const std::string& pairs_file,
                                     const std::string& output_file,
                                     const JoinConfig& config);

}  // namespace fj::join
