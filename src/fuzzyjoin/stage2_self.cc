// Stage 2, self-join case (Sections 3.2 and 5).
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fuzzyjoin/engine_knobs.h"
#include "fuzzyjoin/stage1.h"
#include "fuzzyjoin/stage2.h"
#include "fuzzyjoin/stage2_internal.h"
#include "ppjoin/ppjoin.h"

namespace fj::join {

namespace {

using internal::BkVerifyPair;
using internal::ProjectionMapperBase;
using internal::Stage2Context;
using mr::OutputEmitter;
using mr::TaskContext;

using Pair = std::pair<Stage2Key, TokenSetRecord>;
using PairSpan = std::span<const Pair>;

// ---------------------------------------------------------------- mappers

/// Plain kernel mapper: one (key, projection) per distinct prefix routing
/// group, key = (group, length) so PK reducers see a length-sorted stream.
class SelfKernelMapper : public ProjectionMapperBase {
 public:
  using ProjectionMapperBase::ProjectionMapperBase;

  void Map(const mr::InputRecord& record,
           mr::Emitter<Stage2Key, TokenSetRecord>* out,
           TaskContext* ctx) override {
    TokenSetRecord projection;
    if (!ProjectRecord(record, ctx, &projection)) return;
    uint32_t length = static_cast<uint32_t>(projection.tokens.size());
    for (uint32_t g : PrefixGroups(projection)) {
      out->Emit(Stage2Key{g, length, 0, 0}, projection);
    }
    ctx->counters().Add("stage2.projections", 1);
  }
};

/// Map-based block processing (Section 5, Figure 7a): a projection in
/// block b is replicated to every round r <= b; within round r, block r is
/// the loaded block and later blocks stream against it. Key = (group,
/// round, block).
class SelfMapBlockMapper : public ProjectionMapperBase {
 public:
  using ProjectionMapperBase::ProjectionMapperBase;

  void Map(const mr::InputRecord& record,
           mr::Emitter<Stage2Key, TokenSetRecord>* out,
           TaskContext* ctx) override {
    TokenSetRecord projection;
    if (!ProjectRecord(record, ctx, &projection)) return;
    uint32_t block = BlockOf(projection.rid);
    for (uint32_t g : PrefixGroups(projection)) {
      for (uint32_t round = 0; round <= block; ++round) {
        out->Emit(Stage2Key{g, round, block, 0}, projection);
      }
    }
    ctx->counters().Add("stage2.projections", 1);
  }
};

/// Reduce-based block processing (Section 5, Figure 7b): each projection
/// is sent exactly once with key = (group, block); the reducer spills
/// non-resident blocks to its local disk.
class SelfReduceBlockMapper : public ProjectionMapperBase {
 public:
  using ProjectionMapperBase::ProjectionMapperBase;

  void Map(const mr::InputRecord& record,
           mr::Emitter<Stage2Key, TokenSetRecord>* out,
           TaskContext* ctx) override {
    TokenSetRecord projection;
    if (!ProjectRecord(record, ctx, &projection)) return;
    uint32_t block = BlockOf(projection.rid);
    for (uint32_t g : PrefixGroups(projection)) {
      out->Emit(Stage2Key{g, block, 0, 0}, projection);
    }
    ctx->counters().Add("stage2.projections", 1);
  }
};

/// Length-based secondary routing (Section 5, first paragraph): each
/// projection is routed to its own length class AND to every class a
/// shorter qualifying partner could live in. Key = (group, class,
/// own-class); the partitioner hashes (group, class), so a token group is
/// split across reducers by length — the data is "partitioned even
/// further" and reducer memory shrinks.
class BkLengthRoutingMapper : public ProjectionMapperBase {
 public:
  BkLengthRoutingMapper(Stage2Context ctx, uint32_t class_width)
      : ProjectionMapperBase(std::move(ctx)), class_width_(class_width) {}

  void Map(const mr::InputRecord& record,
           mr::Emitter<Stage2Key, TokenSetRecord>* out,
           TaskContext* ctx) override {
    TokenSetRecord projection;
    if (!ProjectRecord(record, ctx, &projection)) return;
    size_t length = projection.tokens.size();
    uint32_t own_class = static_cast<uint32_t>(length / class_width_);
    uint32_t low_class = static_cast<uint32_t>(
        ctx_.spec.LengthLowerBound(length) / class_width_);
    for (uint32_t g : PrefixGroups(projection)) {
      for (uint32_t c = low_class; c <= own_class; ++c) {
        out->Emit(Stage2Key{g, c, own_class, 0}, projection);
      }
    }
    ctx->counters().Add("stage2.projections", 1);
  }

 private:
  uint32_t class_width_;
};

// --------------------------------------------------------------- reducers

/// BK: nested-loop verification of the whole group (Section 3.2.1).
class BkSelfReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkSelfReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key&, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    ctx->counters().Max("stage2.peak_group_records",
                        static_cast<int64_t>(group.size()));
    for (size_t i = 0; i < group.size(); ++i) {
      for (size_t j = i + 1; j < group.size(); ++j) {
        BkVerifyPair(spec_, format_, group[i].second, group[j].second,
                     /*self_canonical=*/true, &line_buf, out, ctx);
      }
    }
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// PK: the PPJoin+ streaming kernel; the group arrives length-sorted via
/// the composite key, so the index can evict short records as it goes
/// (Section 3.2.2).
class PkSelfReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  PkSelfReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key&, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    ppjoin::PPJoinStream stream(spec_);
    std::vector<ppjoin::SimilarPair> pairs;
    for (const auto& [key, projection] : group) {
      stream.ProbeAndInsert(projection, &pairs);
    }
    std::string line_buf;  // reused across emitted pairs
    for (const auto& p : pairs) {
      FormatRidPairOut(format_, p.rid1, p.rid2, p.similarity, &line_buf);
      out->Emit(line_buf);
    }
    internal::MergePPJoinStats(stream.stats(), ctx);
    ctx->counters().Max(
        "stage2.pk.peak_resident_tokens",
        static_cast<int64_t>(stream.stats().peak_resident_tokens));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// Reducer for length-routed BK groups: a group holds the class's native
/// projections (own class == the group's class) plus visiting replicas of
/// longer records. A pair is verified exactly once — in the class of its
/// shorter member: native x native by index order, visitor x native
/// always, visitor x visitor never (that pair's shorter member is native
/// in a higher class).
class BkLengthRoutingReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkLengthRoutingReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key& key, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    std::vector<const TokenSetRecord*> natives;
    std::vector<const TokenSetRecord*> visitors;
    for (const auto& [k, projection] : group) {
      (k.s2 == key.s1 ? natives : visitors).push_back(&projection);
    }
    ctx->counters().Max("stage2.peak_group_records",
                        static_cast<int64_t>(group.size()));
    for (size_t i = 0; i < natives.size(); ++i) {
      for (size_t j = i + 1; j < natives.size(); ++j) {
        BkVerifyPair(spec_, format_, *natives[i], *natives[j],
                     /*self_canonical=*/true, &line_buf, out, ctx);
      }
      for (const TokenSetRecord* visitor : visitors) {
        BkVerifyPair(spec_, format_, *natives[i], *visitor, /*self_canonical=*/true,
                     &line_buf, out, ctx);
      }
    }
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// BK + map-based blocks: walk the (round, block)-ordered stream; block r
/// of round r loads into memory (self-joining as it loads), later blocks
/// stream against it.
class BkSelfMapBlockReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkSelfMapBlockReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key&, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    std::vector<const TokenSetRecord*> memory;
    uint32_t current_round = UINT32_MAX;
    size_t peak = 0;
    for (const auto& [key, projection] : group) {
      if (key.s1 != current_round) {
        memory.clear();
        current_round = key.s1;
      }
      for (const TokenSetRecord* resident : memory) {
        BkVerifyPair(spec_, format_, *resident, projection, /*self_canonical=*/true,
                     &line_buf, out, ctx);
      }
      if (key.s2 == current_round) {  // this value belongs to the loaded block
        memory.push_back(&projection);
        peak = std::max(peak, memory.size());
      }
    }
    ctx->counters().Max("stage2.block.peak_memory_records",
                        static_cast<int64_t>(peak));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// BK + reduce-based blocks: the first block stays in memory; later blocks
/// are verified as they stream AND spilled to local disk, then reloaded
/// pairwise (Figure 7b). Spill I/O is metered through the task scratch.
class BkSelfReduceBlockReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkSelfReduceBlockReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key& key, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    // Present blocks in ascending id order (the sort guarantees s1 order).
    std::map<uint32_t, std::vector<const TokenSetRecord*>> blocks;
    for (const auto& [k, projection] : group) {
      blocks[k.s1].push_back(&projection);
    }
    if (blocks.empty()) return;

    auto scratch_name = [&key](uint32_t block) {
      return "g" + std::to_string(key.group) + ".b" + std::to_string(block);
    };

    std::vector<uint32_t> order;
    order.reserve(blocks.size());
    for (const auto& [id, members] : blocks) order.push_back(id);

    size_t peak = 0;
    std::vector<TokenSetRecord> memory;

    // Pass 1: load the first block; stream the rest against it while
    // spilling them to disk.
    {
      const auto& first = blocks[order[0]];
      memory.reserve(first.size());
      for (const TokenSetRecord* p : first) {
        for (const TokenSetRecord& resident : memory) {
          BkVerifyPair(spec_, format_, resident, *p, /*self_canonical=*/true, &line_buf, out, ctx);
        }
        memory.push_back(*p);
      }
      peak = std::max(peak, memory.size());
      for (size_t t = 1; t < order.size(); ++t) {
        std::vector<std::string> spill;
        spill.reserve(blocks[order[t]].size());
        for (const TokenSetRecord* p : blocks[order[t]]) {
          for (const TokenSetRecord& resident : memory) {
            BkVerifyPair(spec_, format_, resident, *p, /*self_canonical=*/true, &line_buf, out,
                         ctx);
          }
          spill.push_back(internal::SerializeProjection(*p));
        }
        ctx->scratch().Put(scratch_name(order[t]), std::move(spill));
      }
    }

    // Passes 2..B: reload each later block from disk, self-join it, then
    // stream the blocks after it (also from disk).
    for (size_t t = 1; t < order.size(); ++t) {
      auto loaded = ctx->scratch().Get(scratch_name(order[t]));
      if (!loaded.ok()) continue;
      memory.clear();
      for (const std::string& line : *loaded.value()) {
        auto projection = internal::ParseProjection(line);
        if (!projection.ok()) {
          ctx->counters().Add("stage2.block.bad_spill_lines", 1);
          continue;
        }
        for (const TokenSetRecord& resident : memory) {
          BkVerifyPair(spec_, format_, resident, projection.value(),
                       /*self_canonical=*/true, &line_buf, out, ctx);
        }
        memory.push_back(std::move(projection).value());
      }
      peak = std::max(peak, memory.size());
      for (size_t u = t + 1; u < order.size(); ++u) {
        auto streamed = ctx->scratch().Get(scratch_name(order[u]));
        if (!streamed.ok()) continue;
        for (const std::string& line : *streamed.value()) {
          auto projection = internal::ParseProjection(line);
          if (!projection.ok()) {
            ctx->counters().Add("stage2.block.bad_spill_lines", 1);
            continue;
          }
          for (const TokenSetRecord& resident : memory) {
            BkVerifyPair(spec_, format_, resident, projection.value(),
                         /*self_canonical=*/true, &line_buf, out, ctx);
          }
        }
      }
    }
    // The spill blocks belong to this group only.
    for (size_t t = 1; t < order.size(); ++t) {
      ctx->scratch().Erase(scratch_name(order[t]));
    }
    ctx->counters().Max("stage2.block.peak_memory_records",
                        static_cast<int64_t>(peak));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

}  // namespace

Result<Stage2Result> RunStage2SelfJoin(mr::Dfs* dfs,
                                       const std::string& input_file,
                                       const std::string& ordering_file,
                                       const std::string& output_file,
                                       const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  const mr::RecordFormat format = config.record_format;
  // Owned decode of the (possibly binary) stage-1 ordering; the jobs below
  // run synchronously, so holding it as a local outlives every mapper.
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string> ordering_lines,
                      ReadOrderingLines(*dfs, ordering_file));

  Stage2Context ctx;
  ctx.tokenizer = config.tokenizer;
  ctx.ordering_lines = &ordering_lines;
  ctx.spec = config.MakeSpec();
  ctx.routing = config.routing;
  ctx.num_groups = config.num_groups;
  ctx.group_assignment = config.group_assignment;
  ctx.num_blocks = config.num_blocks;

  mr::JobSpec<Stage2Key, TokenSetRecord> spec;
  spec.name = std::string("stage2-") + Stage2Name(config.stage2) + "-self";
  spec.input_files = {input_file};
  spec.output_file = output_file;
  spec.num_map_tasks = config.num_map_tasks;
  spec.num_reduce_tasks = config.num_reduce_tasks;
  ApplyEngineKnobs(config, &spec);
  spec.binary_output = format == mr::RecordFormat::kBinary;
  spec.group_equal = [](const Stage2Key& a, const Stage2Key& b) {
    return a.group == b.group;
  };
  // Default partitioner hashes the group only (FjKeyHash on Stage2Key);
  // the full key still drives the secondary sort.

  sim::SimilaritySpec sim_spec = config.MakeSpec();
  // Length classes as routing keys serve two configurations: the Section 5
  // secondary criterion (token group x length class) and the footnote-2
  // pure length-signature alternative (single token group).
  if (config.bk_length_routing ||
      config.routing == TokenRouting::kLengthSignatures) {
    // Partition and group on (token group, length class); the class is a
    // genuine routing dimension here, not just a sort field.
    uint32_t width = config.length_class_width;
    spec.partitioner = [](const Stage2Key& key, size_t partitions) {
      return HashCombine(HashInt64(key.group), HashInt64(key.s1)) % partitions;
    };
    spec.group_equal = [](const Stage2Key& a, const Stage2Key& b) {
      return a.group == b.group && a.s1 == b.s1;
    };
    spec.mapper_factory = [ctx, width] {
      return std::make_unique<BkLengthRoutingMapper>(ctx, width);
    };
    spec.reducer_factory = [sim_spec, format] {
      return std::make_unique<BkLengthRoutingReducer>(sim_spec, format);
    };
    mr::Job<Stage2Key, TokenSetRecord> job(dfs, std::move(spec));
    FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics, job.Run());
    Stage2Result result;
    result.pairs_file = output_file;
    result.jobs.push_back(std::move(metrics));
    return result;
  }

  switch (config.block_processing) {
    case BlockProcessing::kNone:
      spec.mapper_factory = [ctx] {
        return std::make_unique<SelfKernelMapper>(ctx);
      };
      if (config.stage2 == Stage2Algorithm::kPK) {
        spec.reducer_factory = [sim_spec, format] {
          return std::make_unique<PkSelfReducer>(sim_spec, format);
        };
      } else {
        spec.reducer_factory = [sim_spec, format] {
          return std::make_unique<BkSelfReducer>(sim_spec, format);
        };
      }
      break;
    case BlockProcessing::kMapBased:
      spec.mapper_factory = [ctx] {
        return std::make_unique<SelfMapBlockMapper>(ctx);
      };
      spec.reducer_factory = [sim_spec, format] {
        return std::make_unique<BkSelfMapBlockReducer>(sim_spec, format);
      };
      break;
    case BlockProcessing::kReduceBased:
      spec.mapper_factory = [ctx] {
        return std::make_unique<SelfReduceBlockMapper>(ctx);
      };
      spec.reducer_factory = [sim_spec, format] {
        return std::make_unique<BkSelfReduceBlockReducer>(sim_spec, format);
      };
      break;
  }

  mr::Job<Stage2Key, TokenSetRecord> job(dfs, std::move(spec));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics, job.Run());

  Stage2Result result;
  result.pairs_file = output_file;
  result.jobs.push_back(std::move(metrics));
  return result;
}

}  // namespace fj::join
