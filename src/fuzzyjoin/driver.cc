#include "fuzzyjoin/driver.h"

#include <memory>
#include <utility>

#include "common/executor.h"
#include "fuzzyjoin/manifest.h"
#include "fuzzyjoin/stage1.h"
#include "fuzzyjoin/stage2.h"
#include "mapreduce/shuffle_transport.h"
#include "mapreduce/worker_net.h"

namespace fj::join {
namespace {

// Resolves the shuffle transport for one pipeline run, mirroring the
// executor policy: one instance serves every job of the pipeline. Inproc
// (the default) resolves to nullptr — the engine's classic direct
// hand-off, zero transport overhead. Socket starts a worker pool and a
// client transport whose lifetimes are tied together: the returned
// shared_ptr aliases a holder that destroys the transport (and its
// heartbeat thread) before tearing the workers down.
Result<std::shared_ptr<mr::ShuffleTransport>> MakeRunTransport(
    const JoinConfig& cfg) {
  if (cfg.shuffle_transport || cfg.transport == mr::TransportKind::kInproc) {
    return cfg.shuffle_transport;
  }
  struct SocketShuffle {
    // Declaration order is the teardown contract: members destroy in
    // reverse order, so the transport goes first, then the pool.
    std::unique_ptr<mr::net::WorkerPool> pool;
    std::unique_ptr<mr::ShuffleTransport> transport;
  };
  auto holder = std::make_shared<SocketShuffle>();
  const mr::NetFaultPlan faults =
      cfg.net_fault_plan ? *cfg.net_fault_plan : mr::NetFaultPlan{};
  FJ_ASSIGN_OR_RETURN(
      holder->pool,
      cfg.spawn_worker_processes
          ? mr::net::WorkerPool::SpawnProcesses(cfg.num_shuffle_workers,
                                                faults)
          : mr::net::WorkerPool::StartInProcess(cfg.num_shuffle_workers,
                                                faults));
  holder->transport =
      mr::MakeSocketTransport(holder->pool->ports(), cfg.net_fault_plan);
  return std::shared_ptr<mr::ShuffleTransport>(holder,
                                               holder->transport.get());
}

// Stage-level checkpoint bookkeeping for one pipeline run.
//
// A run always *writes* the manifest — after every committed stage, so a
// later `resume` run can pick up wherever this one stops. Reading happens
// only in resume mode: Init loads the previous manifest, refuses a
// fingerprint mismatch, and re-validates the recorded stages in order
// against the Dfs (a stage whose outputs vanished or fail their checksum
// invalidates itself and everything after it — later stages were derived
// from the now-untrusted files). AlreadyDone then hands stages back in
// order; the first stage that does not match the validated prefix re-runs,
// as do all stages after it.
class StageCheckpointer {
 public:
  StageCheckpointer(mr::Dfs* dfs, std::string manifest_file,
                    uint64_t fingerprint, bool resume)
      : dfs_(dfs),
        manifest_file_(std::move(manifest_file)),
        fingerprint_(fingerprint),
        resume_(resume) {}

  Status Init() {
    committed_.fingerprint = fingerprint_;
    if (!resume_) {
      // Fresh run: a leftover manifest describes outputs this run is about
      // to replace — drop it so a crash before the first commit cannot
      // leave a stale checkpoint behind.
      if (dfs_->Exists(manifest_file_)) {
        return dfs_->DeleteFile(manifest_file_);
      }
      return Status::OK();
    }
    if (!dfs_->Exists(manifest_file_)) return Status::OK();
    FJ_ASSIGN_OR_RETURN(Manifest previous,
                        LoadManifest(*dfs_, manifest_file_));
    if (previous.fingerprint != fingerprint_) {
      return Status::FailedPrecondition(
          "cannot resume from '" + manifest_file_ +
          "': it was written by a different pipeline configuration or "
          "different inputs (fingerprint mismatch)");
    }
    for (const ManifestStage& stage : previous.stages) {
      if (!StageOutputsValid(stage)) break;
      valid_.push_back(stage);
    }
    return Status::OK();
  }

  /// True when the next validated manifest entry matches this stage; the
  /// entry is consumed and re-recorded so the rewritten manifest keeps it.
  bool AlreadyDone(const std::string& stage_name,
                   const std::vector<std::string>& outputs) {
    if (!resume_ || next_ >= valid_.size()) return false;
    const ManifestStage& entry = valid_[next_];
    if (entry.stage_name != stage_name ||
        entry.outputs.size() != outputs.size()) {
      // Mismatch: the remaining entries describe a different pipeline
      // tail; everything from here on re-runs.
      next_ = valid_.size();
      return false;
    }
    for (size_t i = 0; i < outputs.size(); ++i) {
      if (entry.outputs[i].first != outputs[i]) {
        next_ = valid_.size();
        return false;
      }
    }
    committed_.stages.push_back(entry);
    ++next_;
    return true;
  }

  /// Deletes a re-running stage's stale outputs and their derived files
  /// ("<output>.counts", "<output>.halves", "<output>.bad", leftover
  /// "<output>.__commit" temps) so the jobs can recreate them. Only needed
  /// in resume mode — a fresh run over existing outputs keeps the
  /// long-standing AlreadyExists failure.
  void DeleteStaleOutputs(const std::vector<std::string>& outputs) {
    if (!resume_) return;
    for (const std::string& f : outputs) {
      for (const std::string& name : dfs_->ListFiles()) {
        if (name == f || name.rfind(f + ".", 0) == 0) {
          (void)dfs_->DeleteFile(name);
        }
      }
    }
  }

  /// Records a freshly committed stage and rewrites the manifest.
  Status Commit(const std::string& stage_name,
                const std::vector<std::string>& outputs) {
    ManifestStage stage;
    stage.stage_name = stage_name;
    for (const std::string& f : outputs) {
      FJ_ASSIGN_OR_RETURN(uint64_t checksum, dfs_->FileChecksum(f));
      stage.outputs.emplace_back(f, checksum);
    }
    committed_.stages.push_back(std::move(stage));
    return SaveManifest(dfs_, manifest_file_, committed_);
  }

 private:
  bool StageOutputsValid(const ManifestStage& stage) const {
    for (const auto& [name, checksum] : stage.outputs) {
      Result<uint64_t> current = dfs_->FileChecksum(name);
      if (!current.ok() || current.value() != checksum) return false;
      // The recorded checksum matches the *metadata*; make sure the bytes
      // still match the metadata too, so a corrupted-on-disk checkpoint
      // re-runs its stage instead of feeding bad data forward.
      if (!dfs_->VerifyFile(name).ok()) return false;
    }
    return true;
  }

  mr::Dfs* dfs_;
  std::string manifest_file_;
  uint64_t fingerprint_;
  bool resume_;
  Manifest committed_;                 // what this run rewrites
  std::vector<ManifestStage> valid_;   // validated prefix of the old run
  size_t next_ = 0;                    // next entry AlreadyDone may consume
};

// Runs one pipeline stage under the checkpointer: skip if the manifest
// says it is done, otherwise clear stale outputs, execute, record metrics,
// and commit the manifest entry.
template <typename RunFn>
Status RunStage(StageCheckpointer* ckpt, JoinRunResult* result,
                const std::string& stage_name,
                const std::vector<std::string>& outputs, RunFn&& run) {
  if (ckpt->AlreadyDone(stage_name, outputs)) {
    result->stages.push_back(StageMetrics{stage_name, {}, true});
    return Status::OK();
  }
  ckpt->DeleteStaleOutputs(outputs);
  FJ_ASSIGN_OR_RETURN(std::vector<mr::JobMetrics> jobs, run());
  result->stages.push_back(StageMetrics{stage_name, std::move(jobs)});
  return ckpt->Commit(stage_name, outputs);
}

}  // namespace

double JoinRunResult::TotalWallSeconds() const {
  double total = 0;
  for (const auto& stage : stages) {
    for (const auto& job : stage.jobs) total += job.wall_seconds;
  }
  return total;
}

double JoinRunResult::SimulatedSeconds(const mr::ClusterConfig& cluster) const {
  double total = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    total += SimulatedStageSeconds(i, cluster);
  }
  return total;
}

double JoinRunResult::SimulatedStageSeconds(
    size_t stage_index, const mr::ClusterConfig& cluster) const {
  if (stage_index >= stages.size()) return 0;
  return mr::SimulatePipelineSeconds(stages[stage_index].jobs, cluster);
}

Result<JoinRunResult> RunSelfJoin(mr::Dfs* dfs, const std::string& input_file,
                                  const std::string& output_prefix,
                                  const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  // One executor serves every job of the pipeline: workers persist across
  // stage boundaries instead of being rebuilt per phase. Callers that set
  // config.executor share theirs (bench sweeps reuse one across runs).
  JoinConfig cfg = config;
  if (!cfg.executor) {
    cfg.executor = std::make_shared<Executor>(cfg.local_threads);
  }
  // Same policy for the shuffle transport: the socket worker pool (when
  // any) persists across stage boundaries instead of being respawned per
  // job. Like local_threads, the transport is a how-it-runs knob — it is
  // excluded from the resume fingerprint.
  FJ_ASSIGN_OR_RETURN(cfg.shuffle_transport, MakeRunTransport(cfg));
  JoinRunResult result;
  result.ordering_file = output_prefix + ".ordering";
  result.rid_pairs_file = output_prefix + ".ridpairs";
  result.output_file = output_prefix + ".joined";

  FJ_ASSIGN_OR_RETURN(uint64_t fingerprint,
                      PipelineFingerprint(cfg, *dfs, {input_file}));
  StageCheckpointer ckpt(dfs, output_prefix + ".manifest", fingerprint,
                         config.resume);
  FJ_RETURN_IF_ERROR(ckpt.Init());

  FJ_RETURN_IF_ERROR(RunStage(
      &ckpt, &result, std::string("1-") + Stage1Name(cfg.stage1),
      {result.ordering_file}, [&]() -> Result<std::vector<mr::JobMetrics>> {
        FJ_ASSIGN_OR_RETURN(
            Stage1Result stage1,
            RunStage1(dfs, input_file, result.ordering_file, cfg));
        return std::move(stage1.jobs);
      }));

  FJ_RETURN_IF_ERROR(RunStage(
      &ckpt, &result, std::string("2-") + Stage2Name(cfg.stage2),
      {result.rid_pairs_file}, [&]() -> Result<std::vector<mr::JobMetrics>> {
        FJ_ASSIGN_OR_RETURN(
            Stage2Result stage2,
            RunStage2SelfJoin(dfs, input_file, result.ordering_file,
                              result.rid_pairs_file, cfg));
        return std::move(stage2.jobs);
      }));

  FJ_RETURN_IF_ERROR(RunStage(
      &ckpt, &result, std::string("3-") + Stage3Name(cfg.stage3),
      {result.output_file}, [&]() -> Result<std::vector<mr::JobMetrics>> {
        FJ_ASSIGN_OR_RETURN(
            Stage3Result stage3,
            RunStage3SelfJoin(dfs, input_file, result.rid_pairs_file,
                              result.output_file, cfg));
        return std::move(stage3.jobs);
      }));

  return result;
}

Result<JoinRunResult> RunRSJoin(mr::Dfs* dfs, const std::string& r_file,
                                const std::string& s_file,
                                const std::string& output_prefix,
                                const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  // Same pipeline-wide executor and transport policy as RunSelfJoin.
  JoinConfig cfg = config;
  if (!cfg.executor) {
    cfg.executor = std::make_shared<Executor>(cfg.local_threads);
  }
  FJ_ASSIGN_OR_RETURN(cfg.shuffle_transport, MakeRunTransport(cfg));
  JoinRunResult result;
  result.ordering_file = output_prefix + ".ordering";
  result.rid_pairs_file = output_prefix + ".ridpairs";
  result.output_file = output_prefix + ".joined";

  FJ_ASSIGN_OR_RETURN(uint64_t fingerprint,
                      PipelineFingerprint(cfg, *dfs, {r_file, s_file}));
  StageCheckpointer ckpt(dfs, output_prefix + ".manifest", fingerprint,
                         config.resume);
  FJ_RETURN_IF_ERROR(ckpt.Init());

  // Stage 1 runs on relation R only (Section 4).
  FJ_RETURN_IF_ERROR(RunStage(
      &ckpt, &result, std::string("1-") + Stage1Name(cfg.stage1),
      {result.ordering_file}, [&]() -> Result<std::vector<mr::JobMetrics>> {
        FJ_ASSIGN_OR_RETURN(
            Stage1Result stage1,
            RunStage1(dfs, r_file, result.ordering_file, cfg));
        return std::move(stage1.jobs);
      }));

  FJ_RETURN_IF_ERROR(RunStage(
      &ckpt, &result, std::string("2-") + Stage2Name(cfg.stage2),
      {result.rid_pairs_file}, [&]() -> Result<std::vector<mr::JobMetrics>> {
        FJ_ASSIGN_OR_RETURN(
            Stage2Result stage2,
            RunStage2RSJoin(dfs, r_file, s_file, result.ordering_file,
                            result.rid_pairs_file, cfg));
        return std::move(stage2.jobs);
      }));

  FJ_RETURN_IF_ERROR(RunStage(
      &ckpt, &result, std::string("3-") + Stage3Name(cfg.stage3),
      {result.output_file}, [&]() -> Result<std::vector<mr::JobMetrics>> {
        FJ_ASSIGN_OR_RETURN(
            Stage3Result stage3,
            RunStage3RSJoin(dfs, r_file, s_file, result.rid_pairs_file,
                            result.output_file, cfg));
        return std::move(stage3.jobs);
      }));

  return result;
}

}  // namespace fj::join
