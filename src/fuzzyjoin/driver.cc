#include "fuzzyjoin/driver.h"

#include "fuzzyjoin/stage1.h"
#include "fuzzyjoin/stage2.h"

namespace fj::join {

double JoinRunResult::TotalWallSeconds() const {
  double total = 0;
  for (const auto& stage : stages) {
    for (const auto& job : stage.jobs) total += job.wall_seconds;
  }
  return total;
}

double JoinRunResult::SimulatedSeconds(const mr::ClusterConfig& cluster) const {
  double total = 0;
  for (size_t i = 0; i < stages.size(); ++i) {
    total += SimulatedStageSeconds(i, cluster);
  }
  return total;
}

double JoinRunResult::SimulatedStageSeconds(
    size_t stage_index, const mr::ClusterConfig& cluster) const {
  if (stage_index >= stages.size()) return 0;
  return mr::SimulatePipelineSeconds(stages[stage_index].jobs, cluster);
}

Result<JoinRunResult> RunSelfJoin(mr::Dfs* dfs, const std::string& input_file,
                                  const std::string& output_prefix,
                                  const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  JoinRunResult result;
  result.ordering_file = output_prefix + ".ordering";
  result.rid_pairs_file = output_prefix + ".ridpairs";
  result.output_file = output_prefix + ".joined";

  FJ_ASSIGN_OR_RETURN(
      Stage1Result stage1,
      RunStage1(dfs, input_file, result.ordering_file, config));
  result.stages.push_back(StageMetrics{
      std::string("1-") + Stage1Name(config.stage1), std::move(stage1.jobs)});

  FJ_ASSIGN_OR_RETURN(
      Stage2Result stage2,
      RunStage2SelfJoin(dfs, input_file, result.ordering_file,
                        result.rid_pairs_file, config));
  result.stages.push_back(StageMetrics{
      std::string("2-") + Stage2Name(config.stage2), std::move(stage2.jobs)});

  FJ_ASSIGN_OR_RETURN(
      Stage3Result stage3,
      RunStage3SelfJoin(dfs, input_file, result.rid_pairs_file,
                        result.output_file, config));
  result.stages.push_back(StageMetrics{
      std::string("3-") + Stage3Name(config.stage3), std::move(stage3.jobs)});

  return result;
}

Result<JoinRunResult> RunRSJoin(mr::Dfs* dfs, const std::string& r_file,
                                const std::string& s_file,
                                const std::string& output_prefix,
                                const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  JoinRunResult result;
  result.ordering_file = output_prefix + ".ordering";
  result.rid_pairs_file = output_prefix + ".ridpairs";
  result.output_file = output_prefix + ".joined";

  // Stage 1 runs on relation R only (Section 4).
  FJ_ASSIGN_OR_RETURN(Stage1Result stage1,
                      RunStage1(dfs, r_file, result.ordering_file, config));
  result.stages.push_back(StageMetrics{
      std::string("1-") + Stage1Name(config.stage1), std::move(stage1.jobs)});

  FJ_ASSIGN_OR_RETURN(
      Stage2Result stage2,
      RunStage2RSJoin(dfs, r_file, s_file, result.ordering_file,
                      result.rid_pairs_file, config));
  result.stages.push_back(StageMetrics{
      std::string("2-") + Stage2Name(config.stage2), std::move(stage2.jobs)});

  FJ_ASSIGN_OR_RETURN(
      Stage3Result stage3,
      RunStage3RSJoin(dfs, r_file, s_file, result.rid_pairs_file,
                      result.output_file, config));
  result.stages.push_back(StageMetrics{
      std::string("3-") + Stage3Name(config.stage3), std::move(stage3.jobs)});

  return result;
}

}  // namespace fj::join
