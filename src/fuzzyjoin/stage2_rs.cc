// Stage 2, R-S join case (Sections 4 and 5).
//
// Mappers tag each projection with its relation (taken from which input
// file the split came from); the partitioner ignores the tag while the
// secondary sort uses it — the paper's recipe for binary joins in
// MapReduce. For PK, keys carry the length *class* of Figure 6: R records
// sort by the lower bound of their length, S records by their actual
// length, R before S within a class, so every R record that could join an
// S record is indexed before that record probes.
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "fuzzyjoin/engine_knobs.h"
#include "fuzzyjoin/stage1.h"
#include "fuzzyjoin/stage2.h"
#include "fuzzyjoin/stage2_internal.h"
#include "ppjoin/ppjoin.h"

namespace fj::join {

namespace {

using internal::BkVerifyPair;
using internal::ProjectionMapperBase;
using internal::Stage2Context;
using mr::OutputEmitter;
using mr::TaskContext;

using Pair = std::pair<Stage2Key, TokenSetRecord>;
using PairSpan = std::span<const Pair>;

constexpr uint32_t kRelationR = 0;
constexpr uint32_t kRelationS = 1;

/// Key layout selector for the R-S mappers.
enum class RSLayout {
  kPK,            ///< (group, length class, relation, length)
  kBK,            ///< (group, relation, length) — R arrives first, whole
  kMapBlocks,     ///< (group, round, relation) — R block r in round r,
                  ///< S replicated to every round
  kReduceBlocks,  ///< (group, relation, block) — R blocks spilled by reducer
};

class RSKernelMapper : public ProjectionMapperBase {
 public:
  RSKernelMapper(Stage2Context ctx, RSLayout layout)
      : ProjectionMapperBase(std::move(ctx)), layout_(layout) {}

  void Map(const mr::InputRecord& record,
           mr::Emitter<Stage2Key, TokenSetRecord>* out,
           TaskContext* task_ctx) override {
    TokenSetRecord projection;
    if (!ProjectRecord(record, task_ctx, &projection)) return;
    uint32_t relation =
        record.file_index == 0 ? kRelationR : kRelationS;  // inputs: {R, S}
    uint32_t length = static_cast<uint32_t>(projection.tokens.size());

    for (uint32_t g : PrefixGroups(projection)) {
      switch (layout_) {
        case RSLayout::kPK: {
          // Figure 6: R's class is the lower bound of its length, S's
          // class is its length; R sorts before S within a class.
          uint32_t length_class =
              relation == kRelationR
                  ? static_cast<uint32_t>(ctx_.spec.LengthLowerBound(length))
                  : length;
          out->Emit(Stage2Key{g, length_class, relation, length}, projection);
          break;
        }
        case RSLayout::kBK:
          out->Emit(Stage2Key{g, relation, length, 0}, projection);
          break;
        case RSLayout::kMapBlocks:
          if (relation == kRelationR) {
            uint32_t block = BlockOf(projection.rid);
            out->Emit(Stage2Key{g, block, kRelationR, 0}, projection);
          } else {
            // The whole S partition streams against every R block.
            for (uint32_t round = 0; round < ctx_.num_blocks; ++round) {
              out->Emit(Stage2Key{g, round, kRelationS, 0}, projection);
            }
          }
          break;
        case RSLayout::kReduceBlocks:
          if (relation == kRelationR) {
            out->Emit(Stage2Key{g, kRelationR, BlockOf(projection.rid), 0},
                      projection);
          } else {
            out->Emit(Stage2Key{g, kRelationS, 0, 0}, projection);
          }
          break;
      }
    }
    task_ctx->counters().Add("stage2.projections", 1);
  }

 private:
  RSLayout layout_;
};

/// BK: store the R partition (it arrives first), stream S against it.
class BkRSReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkRSReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key&, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    std::vector<const TokenSetRecord*> r_records;
    for (const auto& [key, projection] : group) {
      if (key.s1 == kRelationR) {
        r_records.push_back(&projection);
      } else {
        for (const TokenSetRecord* r : r_records) {
          BkVerifyPair(spec_, format_, *r, projection, /*self_canonical=*/false, &line_buf, out,
                       ctx);
        }
      }
    }
    ctx->counters().Max("stage2.peak_group_records",
                        static_cast<int64_t>(r_records.size()));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// PK: index R projections, probe with S projections, in length-class
/// order so the index can evict R records that are too short for every
/// remaining probe.
class PkRSReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  PkRSReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key&, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    ppjoin::PPJoinStream stream(spec_);
    std::vector<ppjoin::SimilarPair> pairs;
    for (const auto& [key, projection] : group) {
      if (key.s2 == kRelationR) {
        stream.InsertRS(projection);
      } else {
        stream.Probe(projection, &pairs);
      }
    }
    std::string line_buf;  // reused across emitted pairs
    for (const auto& p : pairs) {
      FormatRidPairOut(format_, p.rid1, p.rid2, p.similarity, &line_buf);
      out->Emit(line_buf);
    }
    internal::MergePPJoinStats(stream.stats(), ctx);
    ctx->counters().Max(
        "stage2.pk.peak_resident_tokens",
        static_cast<int64_t>(stream.stats().peak_resident_tokens));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// BK + map-based blocks: round r holds R block r followed by the full S
/// partition (replicated by the mapper).
class BkRSMapBlockReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkRSMapBlockReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key&, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    std::vector<const TokenSetRecord*> memory;  // the round's R block
    uint32_t current_round = UINT32_MAX;
    size_t peak = 0;
    for (const auto& [key, projection] : group) {
      if (key.s1 != current_round) {
        memory.clear();
        current_round = key.s1;
      }
      if (key.s2 == kRelationR) {
        memory.push_back(&projection);
        peak = std::max(peak, memory.size());
      } else {
        for (const TokenSetRecord* r : memory) {
          BkVerifyPair(spec_, format_, *r, projection, /*self_canonical=*/false, &line_buf, out,
                       ctx);
        }
      }
    }
    ctx->counters().Max("stage2.block.peak_memory_records",
                        static_cast<int64_t>(peak));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

/// BK + reduce-based blocks: R block 0 stays in memory; later R blocks and
/// the whole S partition are spilled to local disk and re-streamed for
/// each R block (Section 5, "Handling R-S Joins").
class BkRSReduceBlockReducer : public mr::Reducer<Stage2Key, TokenSetRecord> {
 public:
  BkRSReduceBlockReducer(sim::SimilaritySpec spec, mr::RecordFormat format)
      : spec_(spec), format_(format) {}

  void Reduce(const Stage2Key& key, PairSpan group, OutputEmitter* out,
              TaskContext* ctx) override {
    std::string line_buf;  // reused across emitted pairs
    auto scratch_name = [&key](const std::string& what) {
      return "g" + std::to_string(key.group) + "." + what;
    };

    // Split the sorted group: R blocks (s1 == 0, ordered by block id in
    // s2), then S (s1 == 1).
    std::map<uint32_t, std::vector<const TokenSetRecord*>> r_blocks;
    std::vector<const TokenSetRecord*> s_stream;
    for (const auto& [k, projection] : group) {
      if (k.s1 == kRelationR) {
        r_blocks[k.s2].push_back(&projection);
      } else {
        s_stream.push_back(&projection);
      }
    }
    if (r_blocks.empty() || s_stream.empty()) return;

    std::vector<uint32_t> order;
    order.reserve(r_blocks.size());
    for (const auto& [id, members] : r_blocks) order.push_back(id);

    // Load R block 0; spill the other R blocks.
    std::vector<const TokenSetRecord*>& memory = r_blocks[order[0]];
    size_t peak = memory.size();
    for (size_t t = 1; t < order.size(); ++t) {
      std::vector<std::string> spill;
      spill.reserve(r_blocks[order[t]].size());
      for (const TokenSetRecord* p : r_blocks[order[t]]) {
        spill.push_back(internal::SerializeProjection(*p));
      }
      ctx->scratch().Put(scratch_name("r" + std::to_string(order[t])),
                         std::move(spill));
    }

    // Stream S against block 0, spilling S as it streams.
    std::vector<std::string> s_spill;
    s_spill.reserve(s_stream.size());
    for (const TokenSetRecord* s : s_stream) {
      for (const TokenSetRecord* r : memory) {
        BkVerifyPair(spec_, format_, *r, *s, /*self_canonical=*/false, &line_buf, out, ctx);
      }
      s_spill.push_back(internal::SerializeProjection(*s));
    }
    ctx->scratch().Put(scratch_name("s"), std::move(s_spill));

    // For each later R block: reload it, re-stream S from disk.
    for (size_t t = 1; t < order.size(); ++t) {
      auto r_lines = ctx->scratch().Get(scratch_name("r" + std::to_string(order[t])));
      if (!r_lines.ok()) continue;
      std::vector<TokenSetRecord> resident;
      resident.reserve(r_lines.value()->size());
      for (const std::string& line : *r_lines.value()) {
        auto projection = internal::ParseProjection(line);
        if (!projection.ok()) {
          ctx->counters().Add("stage2.block.bad_spill_lines", 1);
          continue;
        }
        resident.push_back(std::move(projection).value());
      }
      peak = std::max(peak, resident.size());
      auto s_lines = ctx->scratch().Get(scratch_name("s"));
      if (!s_lines.ok()) continue;
      for (const std::string& line : *s_lines.value()) {
        auto s = internal::ParseProjection(line);
        if (!s.ok()) {
          ctx->counters().Add("stage2.block.bad_spill_lines", 1);
          continue;
        }
        for (const TokenSetRecord& r : resident) {
          BkVerifyPair(spec_, format_, r, s.value(), /*self_canonical=*/false, &line_buf, out,
                       ctx);
        }
      }
      ctx->scratch().Erase(scratch_name("r" + std::to_string(order[t])));
    }
    ctx->scratch().Erase(scratch_name("s"));
    ctx->counters().Max("stage2.block.peak_memory_records",
                        static_cast<int64_t>(peak));
  }

 private:
  sim::SimilaritySpec spec_;
  mr::RecordFormat format_;
};

}  // namespace

Result<Stage2Result> RunStage2RSJoin(mr::Dfs* dfs, const std::string& r_file,
                                     const std::string& s_file,
                                     const std::string& ordering_file,
                                     const std::string& output_file,
                                     const JoinConfig& config) {
  FJ_RETURN_IF_ERROR(config.Validate());
  if (config.routing == TokenRouting::kLengthSignatures) {
    return Status::InvalidArgument(
        "length-signature routing is implemented for the self-join case "
        "only (the paper's footnote-2 exploration)");
  }
  const mr::RecordFormat format = config.record_format;
  // Owned decode of the (possibly binary) stage-1 ordering; the job below
  // runs synchronously, so holding it as a local outlives every mapper.
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string> ordering_lines,
                      ReadOrderingLines(*dfs, ordering_file));

  Stage2Context ctx;
  ctx.tokenizer = config.tokenizer;
  ctx.ordering_lines = &ordering_lines;
  ctx.spec = config.MakeSpec();
  ctx.routing = config.routing;
  ctx.num_groups = config.num_groups;
  ctx.group_assignment = config.group_assignment;
  ctx.num_blocks = config.num_blocks;

  RSLayout layout = RSLayout::kPK;
  if (config.block_processing == BlockProcessing::kMapBased) {
    layout = RSLayout::kMapBlocks;
  } else if (config.block_processing == BlockProcessing::kReduceBased) {
    layout = RSLayout::kReduceBlocks;
  } else if (config.stage2 == Stage2Algorithm::kBK) {
    layout = RSLayout::kBK;
  }

  mr::JobSpec<Stage2Key, TokenSetRecord> spec;
  spec.name = std::string("stage2-") + Stage2Name(config.stage2) + "-rs";
  spec.input_files = {r_file, s_file};
  spec.output_file = output_file;
  spec.num_map_tasks = config.num_map_tasks;
  spec.num_reduce_tasks = config.num_reduce_tasks;
  ApplyEngineKnobs(config, &spec);
  spec.binary_output = format == mr::RecordFormat::kBinary;
  spec.group_equal = [](const Stage2Key& a, const Stage2Key& b) {
    return a.group == b.group;
  };

  sim::SimilaritySpec sim_spec = config.MakeSpec();
  spec.mapper_factory = [ctx, layout] {
    return std::make_unique<RSKernelMapper>(ctx, layout);
  };
  switch (layout) {
    case RSLayout::kPK:
      spec.reducer_factory = [sim_spec, format] {
        return std::make_unique<PkRSReducer>(sim_spec, format);
      };
      break;
    case RSLayout::kBK:
      spec.reducer_factory = [sim_spec, format] {
        return std::make_unique<BkRSReducer>(sim_spec, format);
      };
      break;
    case RSLayout::kMapBlocks:
      spec.reducer_factory = [sim_spec, format] {
        return std::make_unique<BkRSMapBlockReducer>(sim_spec, format);
      };
      break;
    case RSLayout::kReduceBlocks:
      spec.reducer_factory = [sim_spec, format] {
        return std::make_unique<BkRSReduceBlockReducer>(sim_spec, format);
      };
      break;
  }

  mr::Job<Stage2Key, TokenSetRecord> job(dfs, std::move(spec));
  FJ_ASSIGN_OR_RETURN(mr::JobMetrics metrics, job.Run());

  Stage2Result result;
  result.pairs_file = output_file;
  result.jobs.push_back(std::move(metrics));
  return result;
}

}  // namespace fj::join
