// Pipeline run manifest: the checkpoint record behind JoinConfig::resume.
//
// After each stage of RunSelfJoin / RunRSJoin commits its output, the
// driver appends a stage entry — stage name plus (file, checksum) for every
// output — to "<output_prefix>.manifest" and rewrites the manifest
// atomically. A later run with `resume` set reloads the manifest, checks
// that it was written by the *same* pipeline (configuration + input
// fingerprint), re-validates each entry against the Dfs in stage order,
// and skips every stage whose entry still holds; execution restarts at the
// first stage whose outputs are missing, corrupted, or unrecorded.
//
// The fingerprint folds every knob that affects the bytes of the join
// output (algorithm selection, routing, tau, tokenizer, task counts — task
// counts change output line order) together with the input files' content
// checksums. Knobs proven byte-transparent (sort_buffer_bytes,
// merge_factor, fault_plan, verify_integrity, local_threads) are excluded
// on purpose: a run that crashed under fault injection may be resumed with
// the faults turned off, and a run executed without verification may be
// resumed with it on.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "fuzzyjoin/config.h"
#include "mapreduce/dfs.h"

namespace fj::join {

/// One committed stage: its display name and every output file it wrote,
/// paired with the file's whole-file checksum at commit time.
struct ManifestStage {
  std::string stage_name;
  std::vector<std::pair<std::string, uint64_t>> outputs;
};

struct Manifest {
  uint64_t fingerprint = 0;
  std::vector<ManifestStage> stages;
};

/// Fingerprint of (result-affecting configuration) x (input contents).
/// Reads each input's checksum from the Dfs; fails if an input is missing.
Result<uint64_t> PipelineFingerprint(const JoinConfig& config,
                                     const mr::Dfs& dfs,
                                     const std::vector<std::string>& inputs);

/// Parses a manifest file from the Dfs. Fails with NotFound when the file
/// does not exist and DataLoss when it exists but does not parse — a
/// half-written or hand-edited manifest must refuse cleanly, never resume
/// wrongly.
Result<Manifest> LoadManifest(const mr::Dfs& dfs, const std::string& file);

/// Atomically (re)writes `file` from `manifest`: the new content lands
/// under a temp name first and is renamed over the old manifest, so a
/// crash mid-save leaves either the previous manifest or the new one,
/// never a torn mix.
Status SaveManifest(mr::Dfs* dfs, const std::string& file,
                    const Manifest& manifest);

}  // namespace fj::join
