// The record projection shuffled in stage 2: (RID, join-attribute token
// ids). Projecting records down to this pair — instead of carrying whole
// records through the kernel — is one of the paper's key design decisions
// (Section 2.2; the full-record alternative performed much worse).
#pragma once

#include <cstdint>
#include <vector>

#include "common/hash.h"
#include "ppjoin/token_set.h"
#include "text/token_ordering.h"

namespace fj::ppjoin {

/// Shuffle-size estimate: RID + varint-ish token encoding. Lives in
/// fj::ppjoin so the engine's ByteSizeOf finds it via ADL on
/// TokenSetRecord.
inline size_t FjByteSize(const TokenSetRecord& p) {
  return 8 + 4 * p.tokens.size();
}

/// Integrity hash over RID and every token (see mapreduce/integrity.h).
inline uint64_t FjContentHash(const TokenSetRecord& p) {
  uint64_t h = HashInt64(p.rid);
  for (TokenId t : p.tokens) h = HashCombine(h, HashInt64(t));
  return h;
}

/// CorruptRecord hook: flips one bit of the RID. The token array is left
/// alone on purpose — the kernels rely on tokens being ascending and
/// duplicate-free, so a token flip would violate a *structural* invariant
/// rather than model silent bit rot in record data; a flipped RID flows
/// through every kernel and simply joins the wrong records.
inline bool FjCorruptContent(TokenSetRecord& p, uint64_t salt) {
  p.rid ^= uint64_t{1} << (salt % 64);
  return true;
}

}  // namespace fj::ppjoin

namespace fj::join {

using ppjoin::TokenSetRecord;
using text::TokenId;

}  // namespace fj::join
