// The record projection shuffled in stage 2: (RID, join-attribute token
// ids). Projecting records down to this pair — instead of carrying whole
// records through the kernel — is one of the paper's key design decisions
// (Section 2.2; the full-record alternative performed much worse).
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/hash.h"
#include "common/varint.h"
#include "ppjoin/token_set.h"
#include "text/token_ordering.h"

namespace fj::ppjoin {

/// Shuffle-size estimate: RID + varint-ish token encoding. Lives in
/// fj::ppjoin so the engine's ByteSizeOf finds it via ADL on
/// TokenSetRecord.
inline size_t FjByteSize(const TokenSetRecord& p) {
  return 8 + 4 * p.tokens.size();
}

/// Integrity hash over RID and every token (see mapreduce/integrity.h).
inline uint64_t FjContentHash(const TokenSetRecord& p) {
  uint64_t h = HashInt64(p.rid);
  for (TokenId t : p.tokens) h = HashCombine(h, HashInt64(t));
  return h;
}

/// CorruptRecord hook: flips one bit of the RID. The token array is left
/// alone on purpose — the kernels rely on tokens being ascending and
/// duplicate-free, so a token flip would violate a *structural* invariant
/// rather than model silent bit rot in record data; a flipped RID flows
/// through every kernel and simply joins the wrong records.
inline bool FjCorruptContent(TokenSetRecord& p, uint64_t salt) {
  p.rid ^= uint64_t{1} << (salt % 64);
  return true;
}

/// Binary wire encoding (mapreduce/record_format.h): varint RID, varint
/// token count, then delta-varint token ids. Every kernel keeps tokens
/// ascending, so deltas are small and most encode in one byte — the
/// projection shrinks from the 8 + 4n text estimate to roughly 2 + n
/// bytes. Deltas use wrapping uint64 subtraction, which stays bijective
/// even on non-ascending inputs.
inline void FjEncodeContent(const TokenSetRecord& p, std::string* out) {
  AppendVarint(out, p.rid);
  AppendVarint(out, p.tokens.size());
  uint64_t prev = 0;
  for (TokenId t : p.tokens) {
    AppendVarint(out, static_cast<uint64_t>(t) - prev);
    prev = t;
  }
}

inline bool FjDecodeContent(std::string_view buf, size_t* pos,
                            TokenSetRecord* p) {
  size_t at = *pos;
  uint64_t rid = 0;
  uint64_t count = 0;
  if (!DecodeVarint(buf, &at, &rid)) return false;
  if (!DecodeVarint(buf, &at, &count)) return false;
  // Every delta occupies at least one byte, so a count beyond the
  // remaining bytes is corrupt — reject before reserving.
  if (count > buf.size() - at) return false;
  p->rid = rid;
  p->tokens.clear();
  p->tokens.reserve(count);
  uint64_t prev = 0;
  for (uint64_t i = 0; i < count; ++i) {
    uint64_t delta = 0;
    if (!DecodeVarint(buf, &at, &delta)) return false;
    prev += delta;
    p->tokens.push_back(static_cast<TokenId>(prev));
  }
  *pos = at;
  return true;
}

}  // namespace fj::ppjoin

namespace fj::join {

using ppjoin::TokenSetRecord;
using text::TokenId;

}  // namespace fj::join
