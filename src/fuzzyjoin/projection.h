// The record projection shuffled in stage 2: (RID, join-attribute token
// ids). Projecting records down to this pair — instead of carrying whole
// records through the kernel — is one of the paper's key design decisions
// (Section 2.2; the full-record alternative performed much worse).
#pragma once

#include <cstdint>
#include <vector>

#include "ppjoin/token_set.h"
#include "text/token_ordering.h"

namespace fj::ppjoin {

/// Shuffle-size estimate: RID + varint-ish token encoding. Lives in
/// fj::ppjoin so the engine's ByteSizeOf finds it via ADL on
/// TokenSetRecord.
inline size_t FjByteSize(const TokenSetRecord& p) {
  return 8 + 4 * p.tokens.size();
}

}  // namespace fj::ppjoin

namespace fj::join {

using ppjoin::TokenSetRecord;
using text::TokenId;

}  // namespace fj::join
