#include <cinttypes>
#include <cstdio>

#include "common/string_util.h"
#include "fuzzyjoin/stage2.h"
#include "fuzzyjoin/stage2_internal.h"
#include "mapreduce/record_format.h"
#include "ppjoin/ppjoin.h"

namespace fj::join {

void FormatRidPairLine(uint64_t rid1, uint64_t rid2, double similarity,
                       std::string* out) {
  char buf[80];
  int n = std::snprintf(buf, sizeof(buf), "%" PRIu64 "\t%" PRIu64 "\t%.6f",
                        rid1, rid2, similarity);
  out->assign(buf, static_cast<size_t>(n));
}

std::string FormatRidPairLine(uint64_t rid1, uint64_t rid2,
                              double similarity) {
  std::string out;
  FormatRidPairLine(rid1, rid2, similarity, &out);
  return out;
}

void FormatRidPairOut(mr::RecordFormat format, uint64_t rid1, uint64_t rid2,
                      double similarity, std::string* out) {
  if (format == mr::RecordFormat::kBinary) {
    mr::FormatRidPairRecord(rid1, rid2, similarity, out);
    return;
  }
  FormatRidPairLine(rid1, rid2, similarity, out);
}

Result<std::tuple<uint64_t, uint64_t, double>> ParseRidPairLine(
    const std::string& line) {
  if (mr::IsBinaryRecord(line)) {
    uint64_t rid1 = 0;
    uint64_t rid2 = 0;
    double similarity = 0;
    if (!mr::ParseRidPairRecord(line, &rid1, &rid2, &similarity)) {
      return Status::InvalidArgument("bad rid-pair record");
    }
    return std::tuple<uint64_t, uint64_t, double>(rid1, rid2, similarity);
  }
  std::vector<std::string> fields = fj::Split(line, '\t');
  if (fields.size() != 3) {
    return Status::InvalidArgument("bad rid-pair line: " + line);
  }
  FJ_ASSIGN_OR_RETURN(uint64_t rid1, fj::ParseUint64(fields[0]));
  FJ_ASSIGN_OR_RETURN(uint64_t rid2, fj::ParseUint64(fields[1]));
  FJ_ASSIGN_OR_RETURN(double similarity, fj::ParseDouble(fields[2]));
  return std::tuple<uint64_t, uint64_t, double>(rid1, rid2, similarity);
}

namespace internal {

std::string SerializeProjection(const TokenSetRecord& projection) {
  std::string out = std::to_string(projection.rid);
  for (TokenId id : projection.tokens) {
    out += ' ';
    out += std::to_string(id);
  }
  return out;
}

Result<TokenSetRecord> ParseProjection(const std::string& line) {
  std::vector<std::string> fields = fj::Split(line, ' ');
  if (fields.empty()) {
    return Status::InvalidArgument("empty projection line");
  }
  TokenSetRecord projection;
  FJ_ASSIGN_OR_RETURN(projection.rid, fj::ParseUint64(fields[0]));
  projection.tokens.reserve(fields.size() - 1);
  for (size_t i = 1; i < fields.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(uint64_t id, fj::ParseUint64(fields[i]));
    projection.tokens.push_back(id);
  }
  return projection;
}

void MergePPJoinStats(const ppjoin::PPJoinStats& stats, mr::TaskContext* ctx) {
  auto& counters = ctx->counters();
  counters.Add("stage2.pk.probes", static_cast<int64_t>(stats.probes));
  counters.Add("stage2.pk.candidates", static_cast<int64_t>(stats.candidates));
  counters.Add("stage2.pk.positional_pruned",
               static_cast<int64_t>(stats.positional_pruned));
  counters.Add("stage2.pk.suffix_pruned",
               static_cast<int64_t>(stats.suffix_pruned));
  counters.Add("stage2.pk.bitmap_pruned",
               static_cast<int64_t>(stats.bitmap_pruned));
  counters.Add("stage2.pk.verified", static_cast<int64_t>(stats.verified));
  counters.Add("stage2.pk.results", static_cast<int64_t>(stats.results));
  counters.Add("stage2.pk.evicted_records",
               static_cast<int64_t>(stats.evicted_records));
  counters.Add("stage2.pk.hash_lookups_avoided",
               static_cast<int64_t>(stats.hash_lookups_avoided));
  counters.Max("stage2.pk.arena_bytes",
               static_cast<int64_t>(stats.arena_bytes));
}

}  // namespace internal
}  // namespace fj::join
