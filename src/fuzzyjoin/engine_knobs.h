// One place where JoinConfig's MapReduce-engine knobs land on a JobSpec.
//
// Every stage driver builds several JobSpecs; before this helper each of
// them copied the engine knobs by hand, and each new knob meant touching
// eight call sites (and silently missing one left that job running with
// defaults). ApplyEngineKnobs is the single copy: execution concurrency,
// the sort-spill-merge shuffle budget, and the fault-tolerance /
// speculation settings all flow through here, so a job added tomorrow
// inherits the full engine configuration with one call.
//
// Job-SHAPE knobs (num_map_tasks / num_reduce_tasks, comparators,
// partitioners) stay with the individual drivers — they are algorithmic
// choices per job, not engine configuration (e.g. BTO's sort phase
// deliberately runs one reduce task).
#pragma once

#include "fuzzyjoin/config.h"
#include "mapreduce/job_spec.h"

namespace fj::join {

template <typename K, typename V>
void ApplyEngineKnobs(const JoinConfig& config, mr::JobSpec<K, V>* spec) {
  spec->local_threads = config.local_threads;
  spec->executor = config.executor;
  spec->sort_buffer_bytes = config.sort_buffer_bytes;
  spec->merge_factor = config.merge_factor;
  spec->max_task_attempts = config.max_task_attempts;
  spec->speculative_execution = config.speculative_execution;
  spec->speculation_slowdown_factor = config.speculation_slowdown_factor;
  spec->fault_plan = config.fault_plan;
  spec->verify_integrity = config.verify_integrity;
  spec->max_skipped_records = config.max_skipped_records;
  spec->check_contracts = config.check_contracts;
  spec->contract_sample_every = config.contract_sample_every;
  spec->record_format = config.record_format;
  spec->block_codec = config.block_codec;
  // The resolved transport instance (config.shuffle_transport after the
  // driver's pipeline-entry resolution), shared across the pipeline's
  // jobs exactly like `executor`.
  spec->transport = config.shuffle_transport;
  spec->net_fetch_local_fallback = config.net_fetch_local_fallback;
}

}  // namespace fj::join
