// Umbrella header: the public API of the parallel set-similarity join
// library (a from-scratch reproduction of Vernica, Carey, Li —
// "Efficient Parallel Set-Similarity Joins Using MapReduce", SIGMOD 2010).
//
// Typical use:
//
//   fj::mr::Dfs dfs;
//   dfs.WriteFile("records", fj::data::RecordsToLines(my_records));
//   fj::join::JoinConfig config;            // Jaccard >= 0.8, BTO-PK-OPRJ
//   auto result = fj::join::RunSelfJoin(&dfs, "records", "out", config);
//   auto pairs = fj::join::ReadJoinedPairs(dfs, result->output_file);
#pragma once

#include "fuzzyjoin/config.h"     // IWYU pragma: export
#include "fuzzyjoin/driver.h"     // IWYU pragma: export
#include "fuzzyjoin/one_stage.h"  // IWYU pragma: export
#include "fuzzyjoin/stage1.h"     // IWYU pragma: export
#include "fuzzyjoin/stage2.h"     // IWYU pragma: export
#include "fuzzyjoin/stage3.h"     // IWYU pragma: export
