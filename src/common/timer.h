// Wall-clock timing helpers.
#pragma once

#include <chrono>

namespace fj {

/// Measures elapsed wall time since construction or the last Restart().
class WallTimer {
 public:
  WallTimer() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace fj
