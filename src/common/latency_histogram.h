// A fixed-layout geometric latency histogram (HdrHistogram-lite).
//
// Samples are recorded in nanoseconds into buckets whose width grows
// geometrically: 4 sub-buckets per power of two, giving a worst-case
// quantile error of ~12.5% of the value — plenty for p50/p99 serving
// latency and per-task phase-wall reporting, at 252 * 8 bytes of state
// and O(1) record cost (a bit-scan plus an increment).
//
// The layout is static (no configuration), so any two histograms are
// mergeable: the serving layer merges per-batch histograms into the
// service totals, and the bench harness merges per-point histograms
// across repetitions. Exact count / sum / min / max are tracked beside
// the buckets, so Quantile(0) and Quantile(1) are exact and the mean is
// not quantized.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace fj {

class LatencyHistogram {
 public:
  /// Bucket count of the static layout: values 0..3 ns map 1:1, then 4
  /// sub-buckets per octave up to 2^63 ns.
  static constexpr size_t kBuckets = 252;

  LatencyHistogram();

  /// Records one sample. Negative durations clamp to zero (they can only
  /// arise from clock adjustments; losing them beats corrupting buckets).
  void Record(double seconds);
  void RecordNanos(uint64_t nanos);

  /// Adds every sample of `other` into this histogram.
  void Merge(const LatencyHistogram& other);

  /// Forgets all samples.
  void Reset();

  /// The value at quantile `q` in [0, 1], in seconds, linearly
  /// interpolated within its bucket and clamped to the exact observed
  /// [min, max]. Returns 0 when empty.
  double Quantile(double q) const;

  uint64_t count() const { return count_; }
  double total_seconds() const { return static_cast<double>(sum_nanos_) * 1e-9; }
  /// Exact smallest / largest recorded sample (0 when empty).
  double min_seconds() const;
  double max_seconds() const;
  /// Arithmetic mean in seconds (0 when empty).
  double mean_seconds() const;

  /// "n=1234 p50=1.2ms p90=3.4ms p99=8.9ms p99.9=12ms max=15ms" — the
  /// one-line form used by --stats and the serving driver.
  std::string Summary() const;

  /// Index of the bucket holding `nanos` (exposed for tests).
  static size_t BucketIndex(uint64_t nanos);
  /// Inclusive lower bound of bucket `index`, in nanoseconds.
  static uint64_t BucketLowerBound(size_t index);

 private:
  uint64_t buckets_[kBuckets];
  uint64_t count_ = 0;
  uint64_t sum_nanos_ = 0;
  uint64_t min_nanos_ = 0;
  uint64_t max_nanos_ = 0;
};

}  // namespace fj
