#include "common/string_util.h"

#include <cctype>
#include <cerrno>
#include <cstdlib>

namespace fj {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> SplitN(std::string_view s, char sep,
                                size_t max_fields) {
  std::vector<std::string> out;
  if (max_fields == 0) max_fields = 1;
  size_t start = 0;
  while (out.size() + 1 < max_fields) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) break;
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  out.emplace_back(s.substr(start));
  return out;
}

std::string Join(const std::vector<std::string>& parts, char sep) {
  return Join(parts, std::string_view(&sep, 1));
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  size_t total = 0;
  for (const auto& p : parts) total += p.size() + sep.size();
  out.reserve(total);
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

void ToLowerInPlace(std::string* s) {
  for (char& c : *s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  ToLowerInPlace(&out);
  return out;
}

std::string_view Trim(std::string_view s) {
  size_t b = 0;
  size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

Result<uint64_t> ParseUint64(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty integer");
  uint64_t value = 0;
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument("not a digit in: " + std::string(s));
    }
    uint64_t digit = static_cast<uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) {
      return Status::OutOfRange("uint64 overflow: " + std::string(s));
    }
    value = value * 10 + digit;
  }
  return value;
}

Result<int64_t> ParseInt64(std::string_view s) {
  bool negative = false;
  std::string_view body = s;
  if (!body.empty() && (body[0] == '-' || body[0] == '+')) {
    negative = body[0] == '-';
    body.remove_prefix(1);
  }
  FJ_ASSIGN_OR_RETURN(uint64_t magnitude, ParseUint64(body));
  if (negative) {
    if (magnitude > static_cast<uint64_t>(INT64_MAX) + 1) {
      return Status::OutOfRange("int64 underflow: " + std::string(s));
    }
    return static_cast<int64_t>(~magnitude + 1);
  }
  if (magnitude > static_cast<uint64_t>(INT64_MAX)) {
    return Status::OutOfRange("int64 overflow: " + std::string(s));
  }
  return static_cast<int64_t>(magnitude);
}

Result<double> ParseDouble(std::string_view s) {
  if (s.empty()) return Status::InvalidArgument("empty double");
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double value = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE) {
    return Status::OutOfRange("double out of range: " + buf);
  }
  if (end != buf.c_str() + buf.size()) {
    return Status::InvalidArgument("not a double: " + buf);
  }
  return value;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

}  // namespace fj
