#include "common/flags.h"

#include <cstdlib>

namespace fj {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    size_t eq = arg.find('=');
    if (eq == std::string::npos) {
      values_.insert_or_assign(arg.substr(2), std::string("1"));
    } else {
      values_.insert_or_assign(arg.substr(2, eq - 2), arg.substr(eq + 1));
    }
  }
}

bool Flags::Has(const std::string& key) const { return values_.count(key) > 0; }

int64_t Flags::GetInt(const std::string& key, int64_t default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& key, double default_value) const {
  auto it = values_.find(key);
  if (it == values_.end()) return default_value;
  return std::strtod(it->second.c_str(), nullptr);
}

std::string Flags::GetString(const std::string& key,
                             const std::string& default_value) const {
  auto it = values_.find(key);
  return it == values_.end() ? default_value : it->second;
}

}  // namespace fj
