// LEB128-style variable-length integer encoding (the protobuf wire idiom):
// 7 value bits per byte, high bit set on every byte except the last, so
// small numbers — token ranks, record lengths, ascending-id deltas — cost
// one or two bytes instead of a fixed-width field or decimal text.
//
// Decoding is bounds-checked and never reads past the buffer: a truncated
// or overlong input returns false with the cursor untouched, so callers
// can surface a Status instead of invoking undefined behaviour.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace fj {

/// Longest encoding of a uint64_t (10 bytes: ceil(64 / 7)).
inline constexpr size_t kMaxVarintBytes = 10;

/// Encoded length of `v` in bytes (1..10) without materializing it.
inline size_t VarintLen(uint64_t v) {
  size_t n = 1;
  while (v >= 0x80) {
    v >>= 7;
    ++n;
  }
  return n;
}

/// Appends the canonical (shortest) encoding of `v` to `*out`.
inline void AppendVarint(std::string* out, uint64_t v) {
  while (v >= 0x80) {
    out->push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out->push_back(static_cast<char>(v));
}

/// Decodes one varint starting at `*pos`. On success advances `*pos` past
/// the encoding, stores the value, and returns true. On truncation or an
/// encoding longer than kMaxVarintBytes, returns false and leaves `*pos`
/// and `*value` untouched.
inline bool DecodeVarint(std::string_view buf, size_t* pos, uint64_t* value) {
  uint64_t result = 0;
  size_t p = *pos;
  for (unsigned shift = 0; shift < 64 && p < buf.size(); shift += 7) {
    auto byte = static_cast<uint8_t>(buf[p++]);
    result |= static_cast<uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) {
      *pos = p;
      *value = result;
      return true;
    }
  }
  return false;
}

/// Maps signed to unsigned so small-magnitude negatives stay short:
/// 0,-1,1,-2,... -> 0,1,2,3,... (protobuf zigzag).
inline uint64_t ZigZagEncode(int64_t v) {
  return (static_cast<uint64_t>(v) << 1) ^ static_cast<uint64_t>(v >> 63);
}

inline int64_t ZigZagDecode(uint64_t v) {
  return static_cast<int64_t>(v >> 1) ^ -static_cast<int64_t>(v & 1);
}

}  // namespace fj
