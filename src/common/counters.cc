#include "common/counters.h"

#include <sstream>

namespace fj {

void CounterSet::Add(const std::string& name, int64_t delta) {
  MutexLock lock(&mu_);
  counters_[name] += delta;
}

void CounterSet::Max(const std::string& name, int64_t value) {
  MutexLock lock(&mu_);
  auto [it, inserted] = counters_.try_emplace(name, value);
  if (!inserted && it->second < value) it->second = value;
}

int64_t CounterSet::Get(const std::string& name) const {
  MutexLock lock(&mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void CounterSet::MergeFrom(const CounterSet& other) {
  auto snapshot = other.Snapshot();
  MutexLock lock(&mu_);
  for (const auto& [name, value] : snapshot) counters_[name] += value;
}

std::map<std::string, int64_t> CounterSet::Snapshot() const {
  MutexLock lock(&mu_);
  return counters_;
}

std::string CounterSet::ToString() const {
  std::ostringstream out;
  for (const auto& [name, value] : Snapshot()) {
    out << name << " = " << value << "\n";
  }
  return out.str();
}

void CounterSet::Clear() {
  MutexLock lock(&mu_);
  counters_.clear();
}

}  // namespace fj
