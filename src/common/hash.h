// Hashing utilities: 64-bit FNV-1a for strings/bytes and hash combining.
//
// The MapReduce engine partitions keys with these hashes; they are stable
// across runs and platforms, which keeps experiments deterministic.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace fj {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

/// 64-bit FNV-1a over a byte range.
inline uint64_t HashBytes(const void* data, size_t len,
                          uint64_t seed = kFnvOffsetBasis) {
  const auto* p = static_cast<const unsigned char*>(data);
  uint64_t h = seed;
  for (size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

inline uint64_t HashString(std::string_view s) {
  return HashBytes(s.data(), s.size());
}

/// Finalizer from MurmurHash3 (fmix64): good avalanche for integer keys.
inline uint64_t HashInt64(uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace fj
