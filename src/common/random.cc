#include "common/random.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fj {

namespace {

inline uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64: expands one seed into the four xoshiro words.
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t s = seed;
  for (auto& word : state_) word = SplitMix64(&s);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Rng::NextBelow(uint64_t bound) {
  assert(bound > 0);
  // Rejection sampling to avoid modulo bias.
  uint64_t threshold = (0 - bound) % bound;
  while (true) {
    uint64_t r = Next();
    if (r >= threshold) return r % bound;
  }
}

uint64_t Rng::NextInRange(uint64_t lo, uint64_t hi) {
  assert(lo <= hi);
  return lo + NextBelow(hi - lo + 1);
}

double Rng::NextDouble() {
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

bool Rng::NextBool(double p) { return NextDouble() < p; }

ZipfSampler::ZipfSampler(size_t n, double theta) : theta_(theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0.0;
  for (size_t k = 0; k < n; ++k) {
    sum += 1.0 / std::pow(static_cast<double>(k + 1), theta);
    cdf_[k] = sum;
  }
  for (auto& c : cdf_) c /= sum;
  cdf_.back() = 1.0;  // guard against rounding
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) --it;
  return static_cast<size_t>(it - cdf_.begin());
}

}  // namespace fj
