#include "common/executor.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <string>
#include <thread>
#include <utility>

namespace fj {
namespace {

// Which executor (if any) the current thread serves, and as which index.
// Plain thread_locals: written once at worker startup, read only by the
// owning thread.
thread_local const Executor* tls_executor = nullptr;
thread_local size_t tls_worker_index = Executor::kNotAWorker;

uint64_t ElapsedNs(std::chrono::steady_clock::time_point from,
                   std::chrono::steady_clock::time_point to) {
  if (to <= from) return 0;
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(to - from)
          .count());
}

}  // namespace

size_t ResolveWorkerCount(size_t requested) {
  if (requested > 0) return requested;
  return std::max<size_t>(1, std::thread::hardware_concurrency());
}

Executor::Executor(size_t num_threads) {
  const size_t n = ResolveWorkerCount(num_threads);
  workers_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  // Start threads only after the vector is fully built: WorkerLoop steals
  // from sibling slots, so every Worker must exist first.
  for (size_t i = 0; i < n; ++i) {
    workers_[i]->thread = std::thread([this, i] { WorkerLoop(i); });
  }
}

Executor::~Executor() {
  {
    MutexLock lock(&idle_mu_);
    shutting_down_ = true;
  }
  idle_cv_.NotifyAll();
  for (auto& w : workers_) w->thread.join();
}

size_t Executor::CurrentWorkerIndex() const {
  return tls_executor == this ? tls_worker_index : kNotAWorker;
}

ExecutorStats Executor::stats() const {
  ExecutorStats s;
  s.workers = workers_.size();
  for (const auto& w : workers_) {
    s.tasks_executed += w->tasks_executed.load(std::memory_order_relaxed);
    s.tasks_stolen += w->tasks_stolen.load(std::memory_order_relaxed);
    s.busy_seconds +=
        static_cast<double>(w->busy_ns.load(std::memory_order_relaxed)) * 1e-9;
    s.queue_delay_seconds +=
        static_cast<double>(
            w->queue_delay_ns.load(std::memory_order_relaxed)) *
        1e-9;
  }
  return s;
}

void Executor::Submit(TaskGroup* group, std::function<void()> fn) {
  Task task{std::move(fn), group, std::chrono::steady_clock::now()};
  // A worker submits to its own deque (popped LIFO for locality); external
  // threads spread round-robin.
  size_t target = CurrentWorkerIndex();
  if (target == kNotAWorker) {
    target = submit_cursor_.fetch_add(1, std::memory_order_relaxed) %
             workers_.size();
  }
  Worker& w = *workers_[target];
  {
    MutexLock lock(&w.mu);
    // queued_ is bumped under the same worker mutex as the push: an idle
    // worker that observes the count and then locks this deque blocks
    // until the push has landed and finds the task, instead of spinning
    // through fail-pop / re-wait cycles while the push is still in
    // flight. Pops decrement under the same lock, so the count can never
    // trail the deque either.
    queued_.fetch_add(1, std::memory_order_release);
    w.deque.push_back(std::move(task));
  }
  {
    // Empty critical section: pairs the queued_ bump with the idle wait's
    // predicate check so the notify cannot be lost.
    MutexLock lock(&idle_mu_);
  }
  idle_cv_.NotifyOne();
}

bool Executor::PopLocal(size_t index, Task* out) {
  Worker& self = *workers_[index];
  MutexLock lock(&self.mu);
  if (self.deque.empty()) return false;
  *out = std::move(self.deque.back());
  self.deque.pop_back();
  queued_.fetch_sub(1, std::memory_order_relaxed);
  return true;
}

bool Executor::Steal(size_t thief, Task* out) {
  const size_t n = workers_.size();
  for (size_t k = 1; k < n; ++k) {
    Worker& victim = *workers_[(thief + k) % n];
    MutexLock lock(&victim.mu);
    if (victim.deque.empty()) continue;
    // FIFO steal: the victim's oldest task — least cache-warm for it and
    // most likely to still be a large unit of work.
    *out = std::move(victim.deque.front());
    victim.deque.pop_front();
    queued_.fetch_sub(1, std::memory_order_relaxed);
    workers_[thief]->tasks_stolen.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  return false;
}

void Executor::WorkerLoop(size_t index) {
  tls_executor = this;
  tls_worker_index = index;
  Worker& self = *workers_[index];
  for (;;) {
    Task task;
    if (!PopLocal(index, &task) && !Steal(index, &task)) {
      MutexLock lock(&idle_mu_);
      // Explicit wait loop (not a predicate lambda): the thread-safety
      // analysis can see shutting_down_ is read under idle_mu_ this way.
      while (!shutting_down_ &&
             queued_.load(std::memory_order_acquire) == 0) {
        idle_cv_.Wait(&idle_mu_);
      }
      // Drain before exiting: shutdown only stops the worker once no
      // submitted task remains.
      if (shutting_down_ &&
          queued_.load(std::memory_order_acquire) == 0) {
        return;
      }
      continue;
    }
    const auto start = std::chrono::steady_clock::now();
    self.queue_delay_ns.fetch_add(ElapsedNs(task.submitted, start),
                                  std::memory_order_relaxed);
    Status status = Status::OK();
    try {
      task.fn();
    } catch (const std::exception& e) {
      status = Status::Internal(std::string("task threw: ") + e.what());
    } catch (...) {
      status = Status::Internal("task threw a non-std::exception");
    }
    self.busy_ns.fetch_add(
        ElapsedNs(start, std::chrono::steady_clock::now()),
        std::memory_order_relaxed);
    self.tasks_executed.fetch_add(1, std::memory_order_relaxed);
    task.group->TaskDone(std::move(status));
  }
}

void TaskGroup::Spawn(std::function<void()> fn) {
  pending_.fetch_add(1, std::memory_order_relaxed);
  executor_->Submit(this, std::move(fn));
}

Status TaskGroup::Wait() {
  // Fast path — and the empty-group guard: waiting on a group that never
  // spawned anything must not touch the executor at all.
  if (pending_.load(std::memory_order_acquire) == 0) {
    MutexLock lock(&mu_);
    return status_;
  }
  MutexLock lock(&mu_);
  while (pending_.load(std::memory_order_acquire) != 0) {
    done_cv_.Wait(&mu_);
  }
  return status_;
}

void TaskGroup::TaskDone(Status status) {
  // The final decrement must happen under mu_: a waiter that observes
  // pending_ == 0 (lock-free fast path or the wait predicate) goes on to
  // acquire mu_ before returning from Wait, so it serializes after this
  // worker released the lock — at which point the worker is done touching
  // the group and the caller may destroy it. Decrementing outside the
  // lock would let the waiter return (and destroy the group) between the
  // decrement and the notify, a use-after-free.
  MutexLock lock(&mu_);
  if (!status.ok() && status_.ok()) status_ = std::move(status);
  if (pending_.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    done_cv_.NotifyAll();
  }
}

}  // namespace fj
