// A fixed-size thread pool used by the MapReduce engine to execute map and
// reduce tasks. Task *costs* are metered separately (see mapreduce/metrics.h);
// the pool only provides physical concurrency on the host machine.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace fj {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (at least 1).
  explicit ThreadPool(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void Submit(std::function<void()> task);

  /// Blocks until every submitted task has finished executing.
  void Wait();

  size_t num_threads() const { return workers_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_available_;
  std::condition_variable all_done_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  size_t in_flight_ = 0;
  bool shutting_down_ = false;
};

/// Runs `tasks` on a pool of `num_threads` and blocks until all complete.
/// With num_threads == 1 the tasks run on the calling thread in order,
/// which keeps single-core runs free of thread overhead.
void RunParallel(const std::vector<std::function<void()>>& tasks,
                 size_t num_threads);

}  // namespace fj
