// The tree's synchronization capability layer: every lock in the engine
// is an fj::Mutex (or fj::SharedMutex), never a naked std primitive
// (tools/lint.py no-naked-mutex). The wrapper buys two things the std
// types cannot provide:
//
//   1. Compile-time thread-safety analysis. Every type and method here
//      carries Clang's capability annotations (-Wthread-safety, the
//      model behind absl::Mutex), so "field X is only touched under
//      mu_" is a checked contract, not a comment: FJ_GUARDED_BY(mu_)
//      on the field, FJ_REQUIRES(mu_) on helpers that assume the lock,
//      and the compiler rejects any access path that cannot prove the
//      lock is held. The macros expand to nothing on non-Clang builds;
//      the CI thread-safety job compiles the whole tree with
//      clang++ -Wthread-safety -Wthread-safety-beta -Werror.
//      FJ_NO_THREAD_SAFETY_ANALYSIS is the explicit, grep-able waiver
//      for the rare function the analysis cannot follow — every use
//      needs a comment saying why, mirroring the lint waiver style.
//
//   2. A runtime lock-rank deadlock detector for the dynamic orderings
//      the static pass cannot see. A Mutex may be constructed with a
//      name and a rank from the lock_rank hierarchy below; a
//      thread-local held-lock stack then enforces that ranked locks
//      are acquired in strictly DECREASING rank order (outermost
//      highest). An out-of-order acquire — the building block of every
//      lock-cycle deadlock — aborts immediately, printing both lock
//      names and both acquisition stacks. Checks default on in debug
//      builds (NDEBUG off), off in release; FJ_SYNC_DEADLOCK_CHECKS=0/1
//      overrides either way at process start.
//
// Lock hierarchy (see DESIGN.md "Concurrency discipline"): executor
// deques < TaskGroup < DFS < job state < transport < service. A thread
// holding a service lock may take any lock below it; the reverse
// aborts. Unranked mutexes (the default) are exempt from rank checking
// and MUST be leaves: never acquire another lock while holding one.
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <shared_mutex>

// ---------------------------------------------------------------------------
// Clang thread-safety annotation macros. No-ops everywhere else.

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define FJ_THREAD_ANNOTATION__(x) __attribute__((x))
#endif
#endif
#ifndef FJ_THREAD_ANNOTATION__
#define FJ_THREAD_ANNOTATION__(x)  // not Clang: annotations compile away
#endif

/// Declares a type to be a lockable capability (mutexes below).
#define FJ_CAPABILITY(x) FJ_THREAD_ANNOTATION__(capability(x))
/// Declares an RAII type that acquires on construction, releases on
/// destruction (MutexLock / ReaderMutexLock).
#define FJ_SCOPED_CAPABILITY FJ_THREAD_ANNOTATION__(scoped_lockable)
/// Field may only be read or written while holding the given mutex.
#define FJ_GUARDED_BY(x) FJ_THREAD_ANNOTATION__(guarded_by(x))
/// Pointer field whose POINTEE is protected by the given mutex.
#define FJ_PT_GUARDED_BY(x) FJ_THREAD_ANNOTATION__(pt_guarded_by(x))
/// Static ordering hints between mutexes (the runtime rank detector
/// covers the dynamic cases these cannot).
#define FJ_ACQUIRED_BEFORE(...) \
  FJ_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define FJ_ACQUIRED_AFTER(...) \
  FJ_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))
/// Caller must already hold the mutex (exclusively / shared).
#define FJ_REQUIRES(...) \
  FJ_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define FJ_REQUIRES_SHARED(...) \
  FJ_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))
/// Function acquires / releases the mutex and holds it past return.
#define FJ_ACQUIRE(...) FJ_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define FJ_ACQUIRE_SHARED(...) \
  FJ_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))
#define FJ_RELEASE(...) FJ_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define FJ_RELEASE_SHARED(...) \
  FJ_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
/// Function acquires the mutex iff it returns the given value.
#define FJ_TRY_ACQUIRE(...) \
  FJ_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
/// Caller must NOT hold the mutex (public entry points that lock).
#define FJ_EXCLUDES(...) FJ_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))
/// Runtime assertion that the mutex is held; teaches the analysis.
#define FJ_ASSERT_CAPABILITY(x) FJ_THREAD_ANNOTATION__(assert_capability(x))
/// Function returns a reference to the given mutex.
#define FJ_RETURN_CAPABILITY(x) FJ_THREAD_ANNOTATION__(lock_returned(x))
/// The explicit waiver: turns the analysis off for one function. Every
/// use carries a comment explaining why the analysis cannot follow it
/// (same policy as the lint waivers — grep-able, justified, rare).
#define FJ_NO_THREAD_SAFETY_ANALYSIS \
  FJ_THREAD_ANNOTATION__(no_thread_safety_analysis)

namespace fj {

// ---------------------------------------------------------------------------
// Lock ranks. Acquisition order is strictly decreasing rank: a thread
// may acquire a ranked mutex only while every ranked mutex it already
// holds has a STRICTLY GREATER rank. Leaves (counters, logging, local
// completion latches) stay unranked and must never wrap another
// acquisition.

namespace lock_rank {
/// Executor idle-protocol mutex (idle_mu_): below the deques so the
/// submit path could nest deque -> idle if it ever needed to.
inline constexpr int kExecutorIdle = 9;
/// Executor per-worker deque mutexes: the innermost lock in the engine.
inline constexpr int kExecutorQueue = 10;
/// TaskGroup completion state.
inline constexpr int kTaskGroup = 20;
/// Dfs file map (storage layer; leaf-like but ranked for visibility).
inline constexpr int kStorage = 25;
/// Per-job engine state (failure latch, net metrics accumulators).
inline constexpr int kJobState = 30;
/// Shuffle transports and worker servers (the wire layer).
inline constexpr int kTransport = 40;
/// Serving tier (QueryService queue + cache).
inline constexpr int kService = 50;
}  // namespace lock_rank

namespace sync_internal {

/// Whether the runtime lock-rank detector is active. Defaults to on in
/// debug builds (!NDEBUG), off otherwise; the FJ_SYNC_DEADLOCK_CHECKS
/// environment variable (0/1) overrides, read once on first use.
bool DeadlockChecksEnabled();

/// Forces the detector on or off (tests). Returns the previous state.
bool SetDeadlockChecksForTest(bool enabled);

/// RAII toggle for tests (death tests flip it on in release builds).
class ScopedDeadlockChecksForTest {
 public:
  explicit ScopedDeadlockChecksForTest(bool enabled)
      : previous_(SetDeadlockChecksForTest(enabled)) {}
  ~ScopedDeadlockChecksForTest() { SetDeadlockChecksForTest(previous_); }
  ScopedDeadlockChecksForTest(const ScopedDeadlockChecksForTest&) = delete;
  ScopedDeadlockChecksForTest& operator=(const ScopedDeadlockChecksForTest&) =
      delete;

 private:
  bool previous_;
};

/// Pre-acquire rank check: aborts (with both lock names and both
/// acquisition stacks) when `rank` is not strictly below every ranked
/// lock the calling thread holds. Called before blocking so a
/// would-be deadlock dies loudly instead of hanging.
void CheckAcquireOrder(const void* mu, const char* name, int rank);

/// Records a successful ranked acquire / release on the calling
/// thread's held-lock stack. PopHeld tolerates a missing entry (the
/// detector may have been toggled between acquire and release).
void PushHeld(const void* mu, const char* name, int rank);
void PopHeld(const void* mu);

}  // namespace sync_internal

/// Rank value meaning "unranked leaf: exempt from order checking".
inline constexpr int kNoMutexRank = -1;

// ---------------------------------------------------------------------------
// Mutex.

/// An exclusive mutex with capability annotations and optional rank
/// participation. API follows absl::Mutex (Lock/Unlock/MutexLock with
/// pointer args); the lowercase BasicLockable aliases exist so CondVar
/// (std::condition_variable_any underneath) can release and reacquire
/// the wrapper — and with it the rank bookkeeping — during a wait.
class FJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  /// A named, optionally ranked mutex. `name` must outlive the mutex
  /// (string literals; it is printed by the deadlock detector).
  explicit Mutex(const char* name, int rank = kNoMutexRank)
      : name_(name), rank_(rank) {}

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() FJ_ACQUIRE() {
    if (rank_ != kNoMutexRank) {
      sync_internal::CheckAcquireOrder(this, name_, rank_);
      mu_.lock();
      sync_internal::PushHeld(this, name_, rank_);
    } else {
      mu_.lock();
    }
  }

  void Unlock() FJ_RELEASE() {
    if (rank_ != kNoMutexRank) sync_internal::PopHeld(this);
    mu_.unlock();
  }

  /// Never blocks, so it is exempt from the order check (a try-acquire
  /// cannot complete a deadlock cycle); a successful try still lands on
  /// the held stack so later blocking acquires are checked against it.
  bool TryLock() FJ_TRY_ACQUIRE(true) {
    if (!mu_.try_lock()) return false;
    if (rank_ != kNoMutexRank) sync_internal::PushHeld(this, name_, rank_);
    return true;
  }

  /// No-op at runtime; tells the analysis the lock is held on paths it
  /// cannot follow (e.g. a callee reached only under the lock).
  void AssertHeld() const FJ_ASSERT_CAPABILITY(this) {}

  // BasicLockable interface (CondVar interop; prefer Lock/Unlock).
  void lock() FJ_ACQUIRE() { Lock(); }
  void unlock() FJ_RELEASE() { Unlock(); }
  bool try_lock() FJ_TRY_ACQUIRE(true) { return TryLock(); }

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::mutex mu_;
  const char* name_ = "mutex";
  int rank_ = kNoMutexRank;
};

// ---------------------------------------------------------------------------
// SharedMutex.

/// A reader/writer mutex. Writers use Lock/Unlock (exclusive), readers
/// ReaderLock/ReaderUnlock (shared). Both modes participate in rank
/// checking — ordering deadlocks do not care about sharing.
class FJ_CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(const char* name, int rank = kNoMutexRank)
      : name_(name), rank_(rank) {}

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void Lock() FJ_ACQUIRE() {
    if (rank_ != kNoMutexRank) {
      sync_internal::CheckAcquireOrder(this, name_, rank_);
      mu_.lock();
      sync_internal::PushHeld(this, name_, rank_);
    } else {
      mu_.lock();
    }
  }

  void Unlock() FJ_RELEASE() {
    if (rank_ != kNoMutexRank) sync_internal::PopHeld(this);
    mu_.unlock();
  }

  void ReaderLock() FJ_ACQUIRE_SHARED() {
    if (rank_ != kNoMutexRank) {
      sync_internal::CheckAcquireOrder(this, name_, rank_);
      mu_.lock_shared();
      sync_internal::PushHeld(this, name_, rank_);
    } else {
      mu_.lock_shared();
    }
  }

  void ReaderUnlock() FJ_RELEASE_SHARED() {
    if (rank_ != kNoMutexRank) sync_internal::PopHeld(this);
    mu_.unlock_shared();
  }

  void AssertHeld() const FJ_ASSERT_CAPABILITY(this) {}

  const char* name() const { return name_; }
  int rank() const { return rank_; }

 private:
  std::shared_mutex mu_;
  const char* name_ = "shared_mutex";
  int rank_ = kNoMutexRank;
};

// ---------------------------------------------------------------------------
// RAII lock holders.

/// Scoped exclusive lock on a Mutex.
class FJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) FJ_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() FJ_RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* mu_;
};

/// Scoped exclusive (write) lock on a SharedMutex.
class FJ_SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex* mu) FJ_ACQUIRE(mu) : mu_(mu) {
    mu_->Lock();
  }
  ~WriterMutexLock() FJ_RELEASE() { mu_->Unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

/// Scoped shared (read) lock on a SharedMutex.
class FJ_SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex* mu) FJ_ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_->ReaderLock();
  }
  ~ReaderMutexLock() FJ_RELEASE() { mu_->ReaderUnlock(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex* mu_;
};

// ---------------------------------------------------------------------------
// CondVar.

/// Condition variable bound to fj::Mutex. There is deliberately no
/// predicate-lambda Wait: the analysis cannot see that a lambda runs
/// under the lock, so call sites write the explicit absl-style loop —
///
///   mu_.Lock();
///   while (!condition) cv_.Wait(&mu_);
///   ...
///   mu_.Unlock();
///
/// — where the enclosing scope provably holds the mutex. Wait releases
/// the mutex through its lock()/unlock() aliases, so the rank
/// detector's held stack stays correct across the wait.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `*mu`, blocks until notified (or a spurious
  /// wakeup), and reacquires `*mu` before returning. Callers loop.
  void Wait(Mutex* mu) FJ_REQUIRES(mu) { cv_.wait(*mu); }

  /// Wait bounded by `timeout`; returns false on timeout, true when
  /// notified. Either way `*mu` is held again on return.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      FJ_REQUIRES(mu) {
    return cv_.wait_for(*mu, timeout) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace fj
