// The engine's parallel runtime: a persistent work-stealing executor.
//
// One Executor is created per pipeline (JoinConfig::executor) and shared
// by every MapReduce job in it, so jobs stop paying pool construction per
// phase and the workers' caches stay warm across stage boundaries. Task
// *costs* are metered separately (see mapreduce/metrics.h); the executor
// only provides physical concurrency on the host machine — plus the
// measured counters (ExecutorStats) that let benchmarks report real
// wall-clock speedup next to the simulated cluster model.
//
// Scheduling: each worker owns a deque. A worker pushes tasks it spawns
// onto its own deque and pops them LIFO (locality: the freshest task's
// data is hottest); external submissions are distributed round-robin. An
// idle worker steals FIFO from a victim's deque — the oldest task, which
// is both the least cache-warm for the victim and most likely to be a
// large unit of work. Deques are small mutex-protected rings rather than
// lock-free Chase-Lev: task bodies here are whole map/reduce attempts
// (micro- to milliseconds), so queue overhead is noise, and the mutex
// version is straightforwardly TSan-clean.
//
// Work is spawned through a TaskGroup, which tracks completion of a set
// of tasks (including tasks spawned BY those tasks — the scheduler grows
// the graph as map commits release reduce tasks). Rules:
//   - TaskGroup::Wait blocks the CALLING thread only; never call it from
//     inside a task (a worker blocked on Wait could deadlock a 1-worker
//     executor). Spawning from inside a task is fine and lock-cheap.
//   - An exception escaping a task is captured and returned from Wait()
//     as an Internal Status (first one wins); remaining tasks still run.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/status.h"
#include "common/sync.h"

namespace fj {

class TaskGroup;

/// Cumulative activity counters of one Executor. Sampled via
/// Executor::stats(); subtract two samples to meter one job or pipeline
/// (JobMetrics::runtime). All counters are monotonic.
struct ExecutorStats {
  /// Tasks run to completion.
  uint64_t tasks_executed = 0;
  /// Tasks an idle worker took from another worker's deque — nonzero
  /// steal traffic is what distinguishes real load balancing from
  /// round-robin luck.
  uint64_t tasks_stolen = 0;
  /// Total seconds workers spent inside task bodies (summed across
  /// workers, so this may exceed wall time; busy / (wall * workers) is
  /// the executor utilization).
  double busy_seconds = 0;
  /// Total seconds tasks sat queued between submission and the start of
  /// execution — the scheduling latency the barrier-per-phase design
  /// paid repeatedly and the task graph is meant to shrink.
  double queue_delay_seconds = 0;
  /// Worker count (not a counter; carried for utilization math).
  size_t workers = 0;

  ExecutorStats operator-(const ExecutorStats& base) const {
    ExecutorStats d = *this;
    d.tasks_executed -= base.tasks_executed;
    d.tasks_stolen -= base.tasks_stolen;
    d.busy_seconds -= base.busy_seconds;
    d.queue_delay_seconds -= base.queue_delay_seconds;
    return d;
  }
};

/// Resolves a requested thread count: 0 means "auto" — use the hardware
/// concurrency of the host (at least 1 when it cannot be determined).
size_t ResolveWorkerCount(size_t requested);

class Executor {
 public:
  /// Returned by CurrentWorkerIndex() on threads that are not workers of
  /// this executor.
  static constexpr size_t kNotAWorker = static_cast<size_t>(-1);

  /// Spawns ResolveWorkerCount(num_threads) persistent workers.
  explicit Executor(size_t num_threads);

  /// Drains outstanding work, then joins all workers.
  ~Executor();

  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  size_t num_workers() const { return workers_.size(); }

  /// Index of the calling worker thread in [0, num_workers()), or
  /// kNotAWorker when called from outside the pool. Lets tasks address
  /// per-worker scratch (one slot per worker, no locking) safely.
  size_t CurrentWorkerIndex() const;

  /// Cumulative counters since construction (sums over workers).
  ExecutorStats stats() const;

 private:
  friend class TaskGroup;

  struct Task {
    std::function<void()> fn;
    TaskGroup* group;
    std::chrono::steady_clock::time_point submitted;
  };

  // One per worker; held by unique_ptr so addresses stay stable.
  struct Worker {
    Mutex mu{"executor.worker", lock_rank::kExecutorQueue};
    std::deque<Task> deque FJ_GUARDED_BY(mu);
    std::thread thread;
    // Relaxed atomics: each is written by one thread at a time and only
    // aggregated in stats(); no ordering is implied or needed.
    std::atomic<uint64_t> tasks_executed{0};
    std::atomic<uint64_t> tasks_stolen{0};
    std::atomic<uint64_t> busy_ns{0};
    std::atomic<uint64_t> queue_delay_ns{0};
  };

  /// Enqueues a task on behalf of `group` (the only submission path —
  /// see TaskGroup::Spawn). Worker threads push to their own deque;
  /// external threads distribute round-robin.
  void Submit(TaskGroup* group, std::function<void()> fn);

  void WorkerLoop(size_t index);
  bool PopLocal(size_t index, Task* out);
  bool Steal(size_t thief, Task* out);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::atomic<size_t> submit_cursor_{0};
  /// Tasks submitted but not yet dequeued; the idle-wait predicate.
  std::atomic<size_t> queued_{0};
  Mutex idle_mu_{"executor.idle", lock_rank::kExecutorIdle};
  CondVar idle_cv_;
  bool shutting_down_ FJ_GUARDED_BY(idle_mu_) = false;
};

/// Tracks completion (and the first failure) of a set of tasks spawned on
/// an Executor. See the header comment for the blocking rules.
class TaskGroup {
 public:
  explicit TaskGroup(Executor* executor) : executor_(executor) {}

  /// Blocks until every spawned task finished (best effort; the error, if
  /// any, was already delivered to an earlier Wait call).
  ~TaskGroup() {
    Status ignored = Wait();
    (void)ignored;
  }

  TaskGroup(const TaskGroup&) = delete;
  TaskGroup& operator=(const TaskGroup&) = delete;

  /// Enqueues `fn`. May be called from inside a task of this group (the
  /// graph grows); must not race with the group's destruction.
  void Spawn(std::function<void()> fn);

  /// Blocks the calling thread until every spawned task (including tasks
  /// spawned by tasks) has finished. Returns OK, or an Internal Status
  /// carrying the first exception a task threw. Returns immediately when
  /// nothing was spawned — submitting zero tasks costs zero threads.
  Status Wait();

 private:
  friend class Executor;

  /// Called by the executor when one task of this group finishes.
  void TaskDone(Status status);

  Executor* executor_;
  std::atomic<size_t> pending_{0};
  Mutex mu_{"taskgroup", lock_rank::kTaskGroup};
  CondVar done_cv_;
  /// First task failure wins.
  Status status_ FJ_GUARDED_BY(mu_);
};

}  // namespace fj
