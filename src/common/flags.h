// Minimal --key=value command-line flag parsing for tools and benchmarks.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace fj {

class Flags {
 public:
  /// Collects every "--key=value" (and bare "--key" as "1") argument;
  /// non-flag arguments are kept, in order, as positional arguments.
  Flags(int argc, char** argv);

  bool Has(const std::string& key) const;
  int64_t GetInt(const std::string& key, int64_t default_value) const;
  double GetDouble(const std::string& key, double default_value) const;
  std::string GetString(const std::string& key,
                        const std::string& default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace fj
