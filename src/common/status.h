// Status: lightweight error propagation without exceptions.
//
// Follows the RocksDB / Abseil idiom: fallible functions return a Status (or
// a Result<T>, see result.h) instead of throwing. The core library is
// exception-free; gtest assertions inspect Status values in tests.
#pragma once

#include <string>
#include <utility>

namespace fj {

/// Error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kResourceExhausted,  ///< e.g. a reducer exceeded its memory budget
  kInternal,
  kIOError,
  kUnimplemented,
  kDataLoss,  ///< checksum mismatch: stored data no longer matches its hash
  kFailedPrecondition,  ///< system state rejects the operation (e.g. resuming
                        ///< a checkpoint written by a different pipeline)
  kUnavailable,         ///< a peer is unreachable / lost (retryable elsewhere)
  kDeadlineExceeded,    ///< an I/O deadline expired (retryable)
};

/// Returns a short human-readable name for a StatusCode (e.g. "NotFound").
const char* StatusCodeName(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
///
/// [[nodiscard]] on the class makes every function returning a Status
/// nodiscard by default — silently dropping an error is a compile error
/// (promoted by -Werror); deliberate drops must spell out `(void)`.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

}  // namespace fj

/// Propagates a non-OK Status to the caller. Usage: FJ_RETURN_IF_ERROR(expr);
#define FJ_RETURN_IF_ERROR(expr)                  \
  do {                                            \
    ::fj::Status _fj_status = (expr);             \
    if (!_fj_status.ok()) return _fj_status;      \
  } while (0)
