#include "common/latency_histogram.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace fj {
namespace {

// 4 sub-buckets per octave: bucket width is 1/4 of the octave base.
constexpr unsigned kSubBits = 2;
constexpr uint64_t kSubMask = (uint64_t{1} << kSubBits) - 1;

// Pretty-prints a duration with a unit chosen by magnitude.
void AppendDuration(std::string* out, double seconds) {
  char buf[32];
  if (seconds < 1e-6) {
    std::snprintf(buf, sizeof(buf), "%.0fns", seconds * 1e9);
  } else if (seconds < 1e-3) {
    std::snprintf(buf, sizeof(buf), "%.1fus", seconds * 1e6);
  } else if (seconds < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.2fms", seconds * 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.3fs", seconds);
  }
  out->append(buf);
}

}  // namespace

LatencyHistogram::LatencyHistogram() { Reset(); }

size_t LatencyHistogram::BucketIndex(uint64_t nanos) {
  if (nanos < (uint64_t{1} << kSubBits)) return static_cast<size_t>(nanos);
  const unsigned octave = 63u - static_cast<unsigned>(std::countl_zero(nanos));
  const uint64_t sub = (nanos >> (octave - kSubBits)) & kSubMask;
  return static_cast<size_t>(
      ((uint64_t{octave} - kSubBits + 1) << kSubBits) + sub);
}

uint64_t LatencyHistogram::BucketLowerBound(size_t index) {
  if (index < (size_t{1} << kSubBits)) return index;
  const uint64_t group = index >> kSubBits;  // >= 1
  const unsigned octave = static_cast<unsigned>(group) + kSubBits - 1;
  const uint64_t sub = index & kSubMask;
  return (uint64_t{1} << octave) + (sub << (octave - kSubBits));
}

void LatencyHistogram::Record(double seconds) {
  if (!(seconds > 0)) {  // also catches NaN
    RecordNanos(0);
    return;
  }
  const double nanos = seconds * 1e9;
  if (nanos >= 9.2e18) {
    RecordNanos(UINT64_MAX / 2);  // saturate: ~146 years
    return;
  }
  RecordNanos(static_cast<uint64_t>(std::llround(nanos)));
}

void LatencyHistogram::RecordNanos(uint64_t nanos) {
  buckets_[BucketIndex(nanos)]++;
  if (count_ == 0 || nanos < min_nanos_) min_nanos_ = nanos;
  if (count_ == 0 || nanos > max_nanos_) max_nanos_ = nanos;
  count_++;
  sum_nanos_ += nanos;
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0 || other.min_nanos_ < min_nanos_) min_nanos_ = other.min_nanos_;
  if (count_ == 0 || other.max_nanos_ > max_nanos_) max_nanos_ = other.max_nanos_;
  count_ += other.count_;
  sum_nanos_ += other.sum_nanos_;
}

void LatencyHistogram::Reset() {
  std::memset(buckets_, 0, sizeof(buckets_));
  count_ = 0;
  sum_nanos_ = 0;
  min_nanos_ = 0;
  max_nanos_ = 0;
}

double LatencyHistogram::Quantile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0) return min_seconds();
  if (q >= 1) return max_seconds();
  // Rank of the sample the quantile lands on (1-based, nearest-rank).
  const uint64_t target = std::max<uint64_t>(
      1, static_cast<uint64_t>(std::ceil(q * static_cast<double>(count_))));
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBuckets; ++i) {
    if (buckets_[i] == 0) continue;
    if (cumulative + buckets_[i] >= target) {
      // Interpolate linearly over the bucket's representable values
      // [lb, ub-1] (samples are integer nanos, so ub itself is
      // unreachable — width-1 buckets answer exactly). The k-th of n
      // samples sits at fraction (k-1)/(n-1); a lone sample gets the
      // midpoint, which caps its error at half the bucket width.
      const uint64_t lb = BucketLowerBound(i);
      const uint64_t ub = i + 1 < kBuckets ? BucketLowerBound(i + 1) : lb + 1;
      const uint64_t k = target - cumulative;  // 1-based rank in bucket
      const double span = static_cast<double>(ub - 1 - lb);
      const double within =
          buckets_[i] == 1 ? 0.5
                           : static_cast<double>(k - 1) /
                                 static_cast<double>(buckets_[i] - 1);
      double nanos = static_cast<double>(lb) + span * within;
      nanos = std::clamp(nanos, static_cast<double>(min_nanos_),
                         static_cast<double>(max_nanos_));
      return nanos * 1e-9;
    }
    cumulative += buckets_[i];
  }
  return max_seconds();  // unreachable: counts always sum to count_
}

double LatencyHistogram::min_seconds() const {
  return count_ == 0 ? 0 : static_cast<double>(min_nanos_) * 1e-9;
}

double LatencyHistogram::max_seconds() const {
  return count_ == 0 ? 0 : static_cast<double>(max_nanos_) * 1e-9;
}

double LatencyHistogram::mean_seconds() const {
  return count_ == 0 ? 0
                     : static_cast<double>(sum_nanos_) * 1e-9 /
                           static_cast<double>(count_);
}

std::string LatencyHistogram::Summary() const {
  std::string out = "n=" + std::to_string(count_);
  if (count_ == 0) return out;
  const struct {
    const char* label;
    double q;
  } points[] = {{" p50=", 0.50}, {" p90=", 0.90}, {" p99=", 0.99},
                {" p99.9=", 0.999}};
  for (const auto& point : points) {
    out += point.label;
    AppendDuration(&out, Quantile(point.q));
  }
  out += " max=";
  AppendDuration(&out, max_seconds());
  return out;
}

}  // namespace fj
