#include "common/logging.h"

#include <atomic>
#include <cstdio>

#include "common/sync.h"

namespace fj {

namespace {

std::atomic<int> g_level{static_cast<int>(LogLevel::kInfo)};
// Unranked leaf: serializes stream writes only; LogMessage never takes
// another lock while holding it.
Mutex g_log_mu{"logging"};

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}

}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }

LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogMessage(LogLevel level, const std::string& message) {
  if (static_cast<int>(level) < g_level.load()) return;
  MutexLock lock(&g_log_mu);
  std::fprintf(stderr, "[%s] %s\n", LevelName(level), message.c_str());
}

}  // namespace fj
