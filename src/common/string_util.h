// Small string helpers shared across modules (splitting, joining, parsing).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"

namespace fj {

/// Splits `s` on the single character `sep`. Keeps empty fields, so
/// Split("a||b", '|') == {"a", "", "b"} and Split("", '|') == {""}.
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on `sep` into at most `max_fields` pieces; the last piece
/// keeps the remainder (including separators). max_fields must be >= 1.
std::vector<std::string> SplitN(std::string_view s, char sep,
                                size_t max_fields);

/// Joins `parts` with `sep` between consecutive elements.
std::string Join(const std::vector<std::string>& parts, char sep);
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// ASCII lower-casing in place / by value.
void ToLowerInPlace(std::string* s);
std::string ToLower(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// Parses a base-10 unsigned/signed integer occupying the whole string.
Result<uint64_t> ParseUint64(std::string_view s);
Result<int64_t> ParseInt64(std::string_view s);
Result<double> ParseDouble(std::string_view s);

/// True if `s` starts with / ends with the given prefix/suffix.
bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

}  // namespace fj
