#include "common/status.h"

namespace fj {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kIOError:
      return "IOError";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace fj
