// Seeded pseudo-random generation, including a Zipf sampler used by the
// synthetic dataset generators. All randomness in the repository flows
// through Rng so experiments are reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fj {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, tiny state.
class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Uniform 64-bit value.
  uint64_t Next();

  /// Uniform integer in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  uint64_t NextInRange(uint64_t lo, uint64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli(p).
  bool NextBool(double p = 0.5);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

 private:
  uint64_t state_[4];
};

/// Draws ranks in [0, n) with P(k) proportional to 1/(k+1)^theta.
///
/// Uses the inverse-CDF over a precomputed cumulative table; construction is
/// O(n), sampling is O(log n). Zipf skew is the key property the paper's
/// datasets exhibit (token-frequency skew drives the prefix filter's
/// effectiveness and the workload-balance discussion).
class ZipfSampler {
 public:
  /// n: number of distinct ranks; theta: skew (0 = uniform, ~1 = web-like).
  ZipfSampler(size_t n, double theta);

  /// Returns a rank in [0, n); smaller ranks are more frequent.
  size_t Sample(Rng* rng) const;

  size_t n() const { return cdf_.size(); }
  double theta() const { return theta_; }

 private:
  std::vector<double> cdf_;
  double theta_;
};

}  // namespace fj
