#include "common/sync.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

#if defined(__has_include)
#if __has_include(<execinfo.h>)
#include <execinfo.h>
#include <unistd.h>
#define FJ_SYNC_HAVE_BACKTRACE 1
#endif
#endif

namespace fj::sync_internal {
namespace {

// -1 = undecided (resolve from env / build mode on first use).
std::atomic<int> g_checks_enabled{-1};

bool ResolveDefault() {
  if (const char* env = std::getenv("FJ_SYNC_DEADLOCK_CHECKS")) {
    return env[0] != '0';
  }
#ifdef NDEBUG
  return false;
#else
  return true;
#endif
}

constexpr int kMaxHeld = 32;    // deeper nesting than any sane hierarchy
constexpr int kMaxFrames = 24;  // acquisition backtrace depth

struct HeldLock {
  const void* mu = nullptr;
  const char* name = nullptr;
  int rank = 0;
  int frames = 0;
  void* stack[kMaxFrames];
};

struct HeldStack {
  HeldLock locks[kMaxHeld];
  int depth = 0;
};

// The calling thread's ranked held locks, acquisition order. Plain
// thread_local: only ever touched by the owning thread.
thread_local HeldStack tls_held;

void PrintStack(const char* label, void* const* frames, int count) {
  std::fprintf(stderr, "[sync] %s\n", label);
#ifdef FJ_SYNC_HAVE_BACKTRACE
  if (count > 0) {
    // Async-signal-unsafe niceties do not matter: we are about to abort.
    backtrace_symbols_fd(frames, count, STDERR_FILENO);
    return;
  }
#else
  (void)frames;
  (void)count;
#endif
  std::fprintf(stderr, "  (no backtrace available)\n");
}

[[noreturn]] void RankViolation(const HeldLock& held, const char* name,
                                int rank) {
  std::fprintf(
      stderr,
      "[sync] lock-rank violation: acquiring \"%s\" (rank %d) while holding "
      "\"%s\" (rank %d); ranked locks must be acquired in strictly "
      "decreasing rank order (see DESIGN.md \"Concurrency discipline\")\n",
      name, rank, held.name, held.rank);
  PrintStack("held lock was acquired at:", held.stack, held.frames);
#ifdef FJ_SYNC_HAVE_BACKTRACE
  void* now[kMaxFrames];
  const int n = backtrace(now, kMaxFrames);
  PrintStack("offending acquisition attempted at:", now, n);
#else
  PrintStack("offending acquisition attempted at:", nullptr, 0);
#endif
  std::abort();
}

}  // namespace

bool DeadlockChecksEnabled() {
  int state = g_checks_enabled.load(std::memory_order_relaxed);
  if (state < 0) {
    state = ResolveDefault() ? 1 : 0;
    // Losing this race to SetDeadlockChecksForTest is fine: exchange
    // only installs the default when still undecided.
    int expected = -1;
    if (!g_checks_enabled.compare_exchange_strong(expected, state,
                                                  std::memory_order_relaxed)) {
      state = expected;
    }
  }
  return state != 0;
}

bool SetDeadlockChecksForTest(bool enabled) {
  const bool previous = DeadlockChecksEnabled();
  g_checks_enabled.store(enabled ? 1 : 0, std::memory_order_relaxed);
  return previous;
}

void CheckAcquireOrder(const void* mu, const char* name, int rank) {
  if (!DeadlockChecksEnabled()) return;
  (void)mu;
  const HeldStack& held = tls_held;
  for (int i = 0; i < held.depth; ++i) {
    // Strictly decreasing: an equal rank is a violation too (two peers
    // can be acquired in either order by racing threads — a cycle).
    if (held.locks[i].rank <= rank) RankViolation(held.locks[i], name, rank);
  }
}

void PushHeld(const void* mu, const char* name, int rank) {
  if (!DeadlockChecksEnabled()) return;
  HeldStack& held = tls_held;
  if (held.depth >= kMaxHeld) return;  // overflow: stop tracking, stay alive
  HeldLock& slot = held.locks[held.depth++];
  slot.mu = mu;
  slot.name = name;
  slot.rank = rank;
#ifdef FJ_SYNC_HAVE_BACKTRACE
  slot.frames = backtrace(slot.stack, kMaxFrames);
#else
  slot.frames = 0;
#endif
}

void PopHeld(const void* mu) {
  HeldStack& held = tls_held;
  // Search from the top: releases are almost always LIFO. Tolerate a
  // missing entry — the detector may have been enabled mid-hold.
  for (int i = held.depth - 1; i >= 0; --i) {
    if (held.locks[i].mu != mu) continue;
    for (int j = i; j + 1 < held.depth; ++j) {
      held.locks[j] = held.locks[j + 1];
    }
    --held.depth;
    return;
  }
}

}  // namespace fj::sync_internal
