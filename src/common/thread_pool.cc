#include "common/thread_pool.h"

#include <algorithm>
#include <functional>
#include <mutex>

namespace fj {

ThreadPool::ThreadPool(size_t num_threads) {
  num_threads = std::max<size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_available_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return queue_.empty() && in_flight_ == 0; });
}

void ThreadPool::WorkerLoop() {
  while (true) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_available_.wait(
          lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (shutting_down_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    task();
    {
      std::unique_lock<std::mutex> lock(mu_);
      --in_flight_;
      if (queue_.empty() && in_flight_ == 0) all_done_.notify_all();
    }
  }
}

void RunParallel(const std::vector<std::function<void()>>& tasks,
                 size_t num_threads) {
  if (num_threads <= 1) {
    for (const auto& t : tasks) t();
    return;
  }
  ThreadPool pool(std::min(num_threads, tasks.size() ? tasks.size() : 1));
  for (const auto& t : tasks) pool.Submit(t);
  pool.Wait();
}

}  // namespace fj
