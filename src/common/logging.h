// Minimal leveled logging to stderr. Off by default at DEBUG level.
#pragma once

#include <sstream>
#include <string>

namespace fj {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is emitted (default kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

/// Emits one log line (thread-safe).
void LogMessage(LogLevel level, const std::string& message);

namespace internal {

/// Stream-style collector that emits on destruction.
class LogLine {
 public:
  explicit LogLine(LogLevel level) : level_(level) {}
  ~LogLine() { LogMessage(level_, stream_.str()); }

  template <typename T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal
}  // namespace fj

#define FJ_LOG(level) ::fj::internal::LogLine(::fj::LogLevel::k##level)
