// Result<T>: a value-or-Status, the companion of status.h.
#pragma once

#include <cassert>
#include <utility>
#include <variant>

#include "common/status.h"

namespace fj {

/// Holds either a T or a non-OK Status. Analogous to absl::StatusOr<T>.
/// [[nodiscard]] as a class: see status.h — dropping a Result drops its
/// error too.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit from a value (success).
  Result(T value) : data_(std::move(value)) {}  // NOLINT(runtime/explicit)

  /// Implicit from an error Status. Must not be OK: an OK status carries no
  /// value and would leave the Result empty.
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(data_).ok() &&
           "Result constructed from OK status without a value");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  /// Returns the error, or OK if this holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  /// Requires ok().
  const T& value() const& {
    assert(ok());
    return std::get<T>(data_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(data_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(data_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace fj

/// Assigns the value of a Result expression to `lhs`, or returns its error.
#define FJ_ASSIGN_OR_RETURN(lhs, expr)                 \
  auto FJ_CONCAT_(_fj_result_, __LINE__) = (expr);     \
  if (!FJ_CONCAT_(_fj_result_, __LINE__).ok())         \
    return FJ_CONCAT_(_fj_result_, __LINE__).status(); \
  lhs = std::move(FJ_CONCAT_(_fj_result_, __LINE__)).value()

#define FJ_CONCAT_INNER_(a, b) a##b
#define FJ_CONCAT_(a, b) FJ_CONCAT_INNER_(a, b)
