// Named counters, mirroring Hadoop job counters. The MapReduce engine and
// the join pipeline use these to report records read/written, bytes
// shuffled, candidate pairs generated, pairs pruned by each filter, etc.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/sync.h"

namespace fj {

/// A thread-safe bag of int64 counters keyed by name.
class CounterSet {
 public:
  CounterSet() = default;

  // Copy/move synchronize on the source's mutex; the new set gets a fresh
  // mutex. (Needed so JobMetrics stays movable.)
  CounterSet(const CounterSet& other) : counters_(other.Snapshot()) {}
  CounterSet(CounterSet&& other) noexcept : counters_(other.Snapshot()) {}
  CounterSet& operator=(const CounterSet& other) {
    if (this != &other) {
      auto snapshot = other.Snapshot();
      MutexLock lock(&mu_);
      counters_ = std::move(snapshot);
    }
    return *this;
  }
  CounterSet& operator=(CounterSet&& other) noexcept {
    return *this = other;
  }

  /// Adds `delta` to counter `name` (creating it at zero).
  void Add(const std::string& name, int64_t delta);

  /// Raises counter `name` to `value` if it is currently lower (peak
  /// tracking, e.g. peak resident memory across reduce tasks).
  void Max(const std::string& name, int64_t value);

  /// Returns the value of `name`, or 0 if never touched.
  int64_t Get(const std::string& name) const;

  /// Merges every counter from `other` into this set.
  void MergeFrom(const CounterSet& other);

  /// Snapshot of all counters in name order.
  std::map<std::string, int64_t> Snapshot() const;

  /// One "name = value" line per counter.
  std::string ToString() const;

  void Clear();

 private:
  // Unranked leaf: Add() is on the record hot path and never acquires
  // another lock, so it skips the debug rank detector's bookkeeping.
  mutable Mutex mu_{"counters"};
  std::map<std::string, int64_t> counters_ FJ_GUARDED_BY(mu_);
};

}  // namespace fj
