#include "similarity/filters.h"

#include <algorithm>
#include <cstdlib>

namespace fj::sim {

namespace {

int64_t AbsDiff(size_t a, size_t b) {
  return static_cast<int64_t>(a > b ? a - b : b - a);
}

}  // namespace

bool SuffixFilter::MayQualify(TokenIdSpan x_s, TokenIdSpan y_s,
                              size_t required_overlap) const {
  if (required_overlap == 0) return true;
  // Hamming(x,y) = |x| + |y| - 2*overlap, so overlap >= o forces
  // Hamming <= |x| + |y| - 2*o.
  int64_t hmax = static_cast<int64_t>(x_s.size()) +
                 static_cast<int64_t>(y_s.size()) -
                 2 * static_cast<int64_t>(required_overlap);
  if (hmax < 0) return false;  // even identical suffixes are too short
  return BoundHamming(x_s, y_s, hmax, 1) <= hmax;
}

int64_t SuffixFilter::BoundHamming(TokenIdSpan x, TokenIdSpan y, int64_t hmax,
                                   size_t depth) const {
  if (x.empty() || y.empty() || depth > max_depth_) {
    return AbsDiff(x.size(), y.size());
  }

  // Partition y at its median token, x at that token's global rank position.
  size_t mid = (y.size() - 1) / 2;
  TokenId w = y[mid];
  TokenIdSpan yl = y.subspan(0, mid);
  TokenIdSpan yr = y.subspan(mid + 1);

  auto it = std::lower_bound(x.begin(), x.end(), w);
  size_t p = static_cast<size_t>(it - x.begin());
  int64_t diff = (p < x.size() && x[p] == w) ? 0 : 1;
  TokenIdSpan xl = x.subspan(0, p);
  TokenIdSpan xr = x.subspan(diff == 0 ? p + 1 : p);

  int64_t side_l = AbsDiff(xl.size(), yl.size());
  int64_t side_r = AbsDiff(xr.size(), yr.size());
  int64_t h = side_l + side_r + diff;
  if (h > hmax) return h;

  int64_t hl = BoundHamming(xl, yl, hmax - side_r - diff, depth + 1);
  int64_t h_with_l = hl + side_r + diff;
  if (h_with_l > hmax) return h_with_l;

  int64_t hr = BoundHamming(xr, yr, hmax - hl - diff, depth + 1);
  return hl + hr + diff;
}

}  // namespace fj::sim
