// The candidate-pruning filters of PPJoin / PPJoin+ (Xiao et al., WWW'08),
// referenced by Section 2.3 of the paper: the positional filter, the
// suffix filter, and the hashed-bitmap pre-verification filter (after
// "Bitmap Filter: Speeding up Exact Set Similarity Joins with Bitwise
// Operations", arXiv:1711.07295). (The prefix and length filters are pure
// arithmetic and live on SimilaritySpec.)
#pragma once

#include <bit>
#include <cstdint>
#include <cstdlib>

#include "common/hash.h"
#include "similarity/similarity.h"

namespace fj::sim {

/// A fixed-width (128-bit) hashed token signature: every token of a set is
/// hashed to one of 128 bit positions. Used as a word-level
/// pre-verification filter — two sets whose signatures differ in many bits
/// must have a large symmetric difference, which bounds their overlap from
/// above without touching the token arrays.
struct BitmapSignature {
  uint64_t lo = 0;
  uint64_t hi = 0;
};

/// Bit position of a token in the 128-bit signature. Fibonacci
/// (multiplicative) hashing: one multiply, top bits — the cheapest mixer
/// whose high bits avalanche well, and this runs once per token per
/// record build.
inline uint64_t BitmapBitOf(TokenId t) {
  return (static_cast<uint64_t>(t) * 0x9e3779b97f4a7c15ULL) >> 57;
}

inline BitmapSignature BuildBitmapSignature(TokenIdSpan tokens) {
  BitmapSignature sig;
  for (TokenId t : tokens) {
    uint64_t bit = BitmapBitOf(t);
    if (bit < 64) {
      sig.lo |= uint64_t{1} << bit;
    } else {
      sig.hi |= uint64_t{1} << (bit - 64);
    }
  }
  return sig;
}

/// Upper bound on |x ∩ y| from the signatures and the set sizes. Sound
/// because each token maps to exactly one bit: a bit set in one signature
/// but not the other witnesses at least one token of the symmetric
/// difference, and tokens witnessing different bits are distinct, so
/// |x Δ y| >= popcount(sig_x XOR sig_y) and
/// |x ∩ y| = (|x| + |y| - |x Δ y|) / 2. (Colliding tokens only *weaken*
/// the bound — they never overstate the difference.)
inline size_t BitmapOverlapUpperBound(const BitmapSignature& a,
                                      const BitmapSignature& b, size_t lx,
                                      size_t ly) {
  size_t diff = static_cast<size_t>(std::popcount(a.lo ^ b.lo) +
                                    std::popcount(a.hi ^ b.hi));
  size_t total = lx + ly;
  if (diff >= total) return 0;
  return (total - diff) / 2;
}

/// Positional filter. When the prefix token at (0-based) position `i` of x
/// matches the token at position `j` of y, the final overlap is at most
/// acc + 1 + min(|x|-i-1, |y|-j-1): `acc` matches accumulated so far, this
/// match, and whatever the two remaining suffixes can contribute.
inline size_t PositionalUpperBound(size_t lx, size_t ly, size_t i, size_t j,
                                   size_t acc) {
  return acc + 1 + std::min(lx - i - 1, ly - j - 1);
}

/// True if the pair survives the positional filter for required overlap
/// `alpha`.
inline bool PassesPositionalFilter(size_t lx, size_t ly, size_t i, size_t j,
                                   size_t acc, size_t alpha) {
  return PositionalUpperBound(lx, ly, i, j, acc) >= alpha;
}

/// Suffix filter: a divide-and-conquer lower bound on the Hamming distance
/// (symmetric-difference size) of two suffixes, used to discard candidates
/// whose suffixes cannot overlap enough.
///
/// Implementation note: the published Algorithm 3 probes the partition
/// token within a position window and aborts when the window is invalid.
/// We partition at the global lower bound instead: the resulting bound
///   H = ||xl|-|yl|| + ||xr|-|yr|| + (w∈x ? 0 : 1)
/// is identical (a far-from-median partition point makes the side-size
/// terms large, which is exactly what the window test detects), and the
/// code stays free of window-boundary corner cases. Only the binary-search
/// range differs, which at MAXDEPTH <= 3 is negligible.
class SuffixFilter {
 public:
  /// max_depth: recursion depth bound (the PPJoin+ paper uses 2).
  explicit SuffixFilter(size_t max_depth = 2) : max_depth_(max_depth) {}

  /// May suffixes x_s and y_s still share at least `required_overlap`
  /// tokens? False means the candidate is definitely pruned.
  bool MayQualify(TokenIdSpan x_s, TokenIdSpan y_s,
                  size_t required_overlap) const;

  /// Lower bound on the Hamming distance between x and y, tightened only
  /// while it might still be <= hmax. Exposed for testing.
  int64_t BoundHamming(TokenIdSpan x, TokenIdSpan y, int64_t hmax,
                       size_t depth) const;

  size_t max_depth() const { return max_depth_; }

 private:
  size_t max_depth_;
};

}  // namespace fj::sim
