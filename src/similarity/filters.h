// The candidate-pruning filters of PPJoin / PPJoin+ (Xiao et al., WWW'08),
// referenced by Section 2.3 of the paper: the positional filter and the
// suffix filter. (The prefix and length filters are pure arithmetic and
// live on SimilaritySpec.)
#pragma once

#include <cstdint>
#include <cstdlib>

#include "similarity/similarity.h"

namespace fj::sim {

/// Positional filter. When the prefix token at (0-based) position `i` of x
/// matches the token at position `j` of y, the final overlap is at most
/// acc + 1 + min(|x|-i-1, |y|-j-1): `acc` matches accumulated so far, this
/// match, and whatever the two remaining suffixes can contribute.
inline size_t PositionalUpperBound(size_t lx, size_t ly, size_t i, size_t j,
                                   size_t acc) {
  return acc + 1 + std::min(lx - i - 1, ly - j - 1);
}

/// True if the pair survives the positional filter for required overlap
/// `alpha`.
inline bool PassesPositionalFilter(size_t lx, size_t ly, size_t i, size_t j,
                                   size_t acc, size_t alpha) {
  return PositionalUpperBound(lx, ly, i, j, acc) >= alpha;
}

/// Suffix filter: a divide-and-conquer lower bound on the Hamming distance
/// (symmetric-difference size) of two suffixes, used to discard candidates
/// whose suffixes cannot overlap enough.
///
/// Implementation note: the published Algorithm 3 probes the partition
/// token within a position window and aborts when the window is invalid.
/// We partition at the global lower bound instead: the resulting bound
///   H = ||xl|-|yl|| + ||xr|-|yr|| + (w∈x ? 0 : 1)
/// is identical (a far-from-median partition point makes the side-size
/// terms large, which is exactly what the window test detects), and the
/// code stays free of window-boundary corner cases. Only the binary-search
/// range differs, which at MAXDEPTH <= 3 is negligible.
class SuffixFilter {
 public:
  /// max_depth: recursion depth bound (the PPJoin+ paper uses 2).
  explicit SuffixFilter(size_t max_depth = 2) : max_depth_(max_depth) {}

  /// May suffixes x_s and y_s still share at least `required_overlap`
  /// tokens? False means the candidate is definitely pruned.
  bool MayQualify(TokenIdSpan x_s, TokenIdSpan y_s,
                  size_t required_overlap) const;

  /// Lower bound on the Hamming distance between x and y, tightened only
  /// while it might still be <= hmax. Exposed for testing.
  int64_t BoundHamming(TokenIdSpan x, TokenIdSpan y, int64_t hmax,
                       size_t depth) const;

  size_t max_depth() const { return max_depth_; }

 private:
  size_t max_depth_;
};

}  // namespace fj::sim
