#include "similarity/similarity.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace fj::sim {

namespace {
// Absolute slack absorbing floating-point error in threshold arithmetic.
constexpr double kEps = 1e-9;
}  // namespace

const char* SimilarityFunctionName(SimilarityFunction fn) {
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return "jaccard";
    case SimilarityFunction::kCosine:
      return "cosine";
    case SimilarityFunction::kDice:
      return "dice";
    case SimilarityFunction::kOverlap:
      return "overlap";
  }
  return "?";
}

Result<SimilarityFunction> SimilarityFunctionFromName(const std::string& name) {
  if (name == "jaccard") return SimilarityFunction::kJaccard;
  if (name == "cosine") return SimilarityFunction::kCosine;
  if (name == "dice") return SimilarityFunction::kDice;
  if (name == "overlap") return SimilarityFunction::kOverlap;
  return Status::InvalidArgument("unknown similarity function: " + name);
}

size_t CeilTimes(double f, size_t l) {
  double v = f * static_cast<double>(l);
  return static_cast<size_t>(std::ceil(v - kEps));
}

size_t FloorTimes(double f, size_t l) {
  double v = f * static_cast<double>(l);
  return static_cast<size_t>(std::floor(v + kEps));
}

SimilaritySpec::SimilaritySpec(SimilarityFunction fn, double tau)
    : fn_(fn), tau_(tau) {
  assert(tau > 0.0 && tau <= 1.0);
}

size_t SimilaritySpec::MinOverlap(size_t lx, size_t ly) const {
  double alpha = 0;
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      // jaccard >= t  <=>  o >= t/(1+t) * (lx+ly)
      alpha = tau_ / (1.0 + tau_) * static_cast<double>(lx + ly);
      break;
    case SimilarityFunction::kCosine:
      alpha = tau_ * std::sqrt(static_cast<double>(lx) *
                               static_cast<double>(ly));
      break;
    case SimilarityFunction::kDice:
      alpha = tau_ / 2.0 * static_cast<double>(lx + ly);
      break;
    case SimilarityFunction::kOverlap:
      alpha = tau_ * static_cast<double>(std::min(lx, ly));
      break;
  }
  size_t o = static_cast<size_t>(std::ceil(alpha - kEps));
  return std::max<size_t>(1, o);
}

size_t SimilaritySpec::LengthLowerBound(size_t l) const {
  size_t lb = 1;
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      lb = CeilTimes(tau_, l);
      break;
    case SimilarityFunction::kCosine:
      lb = CeilTimes(tau_ * tau_, l);
      break;
    case SimilarityFunction::kDice:
      lb = CeilTimes(tau_ / (2.0 - tau_), l);
      break;
    case SimilarityFunction::kOverlap:
      lb = 1;  // overlap/min admits arbitrarily small partners
      break;
  }
  return std::max<size_t>(1, lb);
}

size_t SimilaritySpec::LengthUpperBound(size_t l) const {
  switch (fn_) {
    case SimilarityFunction::kJaccard:
      return FloorTimes(1.0 / tau_, l);
    case SimilarityFunction::kCosine:
      return FloorTimes(1.0 / (tau_ * tau_), l);
    case SimilarityFunction::kDice:
      return FloorTimes((2.0 - tau_) / tau_, l);
    case SimilarityFunction::kOverlap:
      return std::numeric_limits<size_t>::max();
  }
  return std::numeric_limits<size_t>::max();
}

size_t SimilaritySpec::PrefixLength(size_t l) const {
  if (l == 0) return 0;
  // The smallest qualifying partner needs the least overlap, so it fixes
  // the longest usable prefix.
  size_t min_alpha = MinOverlap(l, LengthLowerBound(l));
  if (min_alpha > l) return 0;  // no partner can qualify
  return l - min_alpha + 1;
}

double SimilaritySpec::Similarity(TokenIdSpan x, TokenIdSpan y) const {
  return SimilarityFromOverlap(fn_, OverlapSize(x, y), x.size(), y.size());
}

bool SimilaritySpec::Satisfies(TokenIdSpan x, TokenIdSpan y) const {
  if (x.empty() || y.empty()) return false;
  size_t alpha = MinOverlap(x.size(), y.size());
  return VerifyOverlap(x, y, 0, 0, 0, alpha) != kOverlapFailed;
}

std::string SimilaritySpec::ToString() const {
  return std::string(SimilarityFunctionName(fn_)) + ">=" + std::to_string(tau_);
}

size_t OverlapSize(TokenIdSpan x, TokenIdSpan y) {
  size_t i = 0, j = 0, overlap = 0;
  while (i < x.size() && j < y.size()) {
    if (x[i] == y[j]) {
      ++overlap;
      ++i;
      ++j;
    } else if (x[i] < y[j]) {
      ++i;
    } else {
      ++j;
    }
  }
  return overlap;
}

size_t VerifyOverlap(TokenIdSpan x, TokenIdSpan y, size_t ix, size_t iy,
                     size_t acc, size_t alpha) {
  size_t overlap = acc;
  while (ix < x.size() && iy < y.size()) {
    // Upper bound on the final overlap from here; abort when insufficient.
    size_t remaining = std::min(x.size() - ix, y.size() - iy);
    if (overlap + remaining < alpha) return kOverlapFailed;
    if (x[ix] == y[iy]) {
      ++overlap;
      ++ix;
      ++iy;
    } else if (x[ix] < y[iy]) {
      ++ix;
    } else {
      ++iy;
    }
  }
  return overlap >= alpha ? overlap : kOverlapFailed;
}

double SimilarityFromOverlap(SimilarityFunction fn, size_t overlap, size_t lx,
                             size_t ly) {
  if (lx == 0 || ly == 0) return 0.0;
  double o = static_cast<double>(overlap);
  switch (fn) {
    case SimilarityFunction::kJaccard:
      return o / static_cast<double>(lx + ly - overlap);
    case SimilarityFunction::kCosine:
      return o / std::sqrt(static_cast<double>(lx) * static_cast<double>(ly));
    case SimilarityFunction::kDice:
      return 2.0 * o / static_cast<double>(lx + ly);
    case SimilarityFunction::kOverlap:
      return o / static_cast<double>(std::min(lx, ly));
  }
  return 0.0;
}

}  // namespace fj::sim
