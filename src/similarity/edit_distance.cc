#include "similarity/edit_distance.h"

#include <algorithm>
#include <limits>
#include <map>
#include <unordered_map>

#include "text/tokenizer.h"

namespace fj::sim {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  std::vector<size_t> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t diagonal = row[0];
    row[0] = j;
    for (size_t i = 1; i <= a.size(); ++i) {
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, substitute});
    }
  }
  return row[a.size()];
}

bool WithinEditDistance(std::string_view a, std::string_view b,
                        size_t max_distance) {
  if (a.size() > b.size()) std::swap(a, b);
  if (b.size() - a.size() > max_distance) return false;
  if (max_distance == 0) return a == b;

  // Banded DP: only cells with |i - j| <= max_distance can stay within the
  // threshold. Row-by-row over b with a window into a.
  constexpr size_t kInf = std::numeric_limits<size_t>::max() / 2;
  const size_t band = max_distance;
  std::vector<size_t> row(a.size() + 1, kInf);
  for (size_t i = 0; i <= std::min(a.size(), band); ++i) row[i] = i;
  for (size_t j = 1; j <= b.size(); ++j) {
    size_t lo = j > band ? j - band : 0;
    size_t hi = std::min(a.size(), j + band);
    size_t i_start = std::max<size_t>(lo, 1);
    // Diagonal predecessor of the first in-band cell: row[j-1][i_start-1].
    size_t diagonal = row[i_start - 1];
    if (lo == 0) {
      row[0] = j;  // lo == 0 implies j <= band
    } else {
      row[lo - 1] = kInf;  // left of the band is unreachable in this row
    }
    size_t best = lo == 0 ? row[0] : kInf;
    for (size_t i = i_start; i <= hi; ++i) {
      size_t substitute = diagonal + (a[i - 1] == b[j - 1] ? 0 : 1);
      diagonal = row[i];           // becomes row[j-1][i] for the next cell
      size_t up = row[i];          // row[j-1][i]
      size_t left = row[i - 1];    // row[j][i-1]
      row[i] = std::min({up + 1, left + 1, substitute});
      best = std::min(best, row[i]);
    }
    // Cells above the band are infinite for the next row.
    if (hi < a.size()) row[hi + 1] = kInf;
    if (best > max_distance) return false;  // the band can only grow worse
  }
  return row[a.size()] <= max_distance;
}

std::vector<EditDistancePair> NaiveEditDistanceSelfJoin(
    const std::vector<std::string>& strings, size_t max_distance) {
  std::vector<EditDistancePair> out;
  for (size_t i = 0; i < strings.size(); ++i) {
    for (size_t j = i + 1; j < strings.size(); ++j) {
      size_t distance = LevenshteinDistance(strings[i], strings[j]);
      if (distance <= max_distance) {
        out.push_back(EditDistancePair{i, j, distance});
      }
    }
  }
  return out;
}

std::vector<EditDistancePair> NaiveEditDistanceRSJoin(
    const std::vector<std::string>& r_strings,
    const std::vector<std::string>& s_strings, size_t max_distance) {
  std::vector<EditDistancePair> out;
  for (size_t i = 0; i < r_strings.size(); ++i) {
    for (size_t j = 0; j < s_strings.size(); ++j) {
      size_t distance = LevenshteinDistance(r_strings[i], s_strings[j]);
      if (distance <= max_distance) {
        out.push_back(EditDistancePair{i, j, distance});
      }
    }
  }
  return out;
}

namespace {

/// Shared gram machinery: tokenizes every string of both inputs, ranks
/// grams rarest-first over the union, and returns each string's sorted
/// rank array.
struct GramIndexInput {
  std::vector<std::vector<uint64_t>> r_ids;
  std::vector<std::vector<uint64_t>> s_ids;
};

GramIndexInput RankGrams(const std::vector<std::string>& r_strings,
                         const std::vector<std::string>& s_strings,
                         size_t q) {
  text::QGramTokenizer tokenizer(q, text::DuplicatePolicy::kNumber);
  std::vector<std::vector<std::string>> r_grams(r_strings.size());
  std::vector<std::vector<std::string>> s_grams(s_strings.size());
  std::map<std::string, uint64_t> frequency;
  for (size_t i = 0; i < r_strings.size(); ++i) {
    r_grams[i] = tokenizer.Tokenize(r_strings[i]);
    for (const auto& g : r_grams[i]) frequency[g]++;
  }
  for (size_t j = 0; j < s_strings.size(); ++j) {
    s_grams[j] = tokenizer.Tokenize(s_strings[j]);
    for (const auto& g : s_grams[j]) frequency[g]++;
  }
  std::unordered_map<std::string, uint64_t> rank;
  {
    std::vector<std::pair<uint64_t, const std::string*>> ordered;
    ordered.reserve(frequency.size());
    for (const auto& [gram, count] : frequency) {
      ordered.emplace_back(count, &gram);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return *a.second < *b.second;
              });
    rank.reserve(ordered.size());
    for (size_t r = 0; r < ordered.size(); ++r) rank[*ordered[r].second] = r;
  }
  auto to_ids = [&rank](const std::vector<std::vector<std::string>>& grams) {
    std::vector<std::vector<uint64_t>> ids(grams.size());
    for (size_t i = 0; i < grams.size(); ++i) {
      ids[i].reserve(grams[i].size());
      for (const auto& g : grams[i]) ids[i].push_back(rank.at(g));
      std::sort(ids[i].begin(), ids[i].end());
    }
    return ids;
  };
  return GramIndexInput{to_ids(r_grams), to_ids(s_grams)};
}

}  // namespace

std::vector<EditDistancePair> EditDistanceRSJoin(
    const std::vector<std::string>& r_strings,
    const std::vector<std::string>& s_strings, size_t max_distance,
    size_t q) {
  if (q == 0) q = 1;
  std::vector<EditDistancePair> out;
  if (r_strings.empty() || s_strings.empty()) return out;

  GramIndexInput input = RankGrams(r_strings, s_strings, q);
  const size_t prefix = q * max_distance + 1;

  // Index R's gram prefixes; R strings too short for the pigeonhole are
  // kept aside and compared against every S string.
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  std::vector<size_t> short_r;
  for (size_t i = 0; i < r_strings.size(); ++i) {
    if (input.r_ids[i].size() < prefix) {
      short_r.push_back(i);
    } else {
      for (size_t p = 0; p < prefix; ++p) {
        index[input.r_ids[i][p]].push_back(i);
      }
    }
  }

  std::vector<size_t> candidate_of(r_strings.size(),
                                   std::numeric_limits<size_t>::max());
  for (size_t j = 0; j < s_strings.size(); ++j) {
    std::vector<size_t> candidates;
    if (input.s_ids[j].size() < prefix) {
      candidates.reserve(r_strings.size());
      for (size_t i = 0; i < r_strings.size(); ++i) candidates.push_back(i);
    } else {
      for (size_t p = 0; p < prefix; ++p) {
        auto it = index.find(input.s_ids[j][p]);
        if (it == index.end()) continue;
        for (size_t i : it->second) {
          if (candidate_of[i] == j) continue;
          candidate_of[i] = j;
          candidates.push_back(i);
        }
      }
      for (size_t i : short_r) {
        if (candidate_of[i] == j) continue;
        candidate_of[i] = j;
        candidates.push_back(i);
      }
    }
    for (size_t i : candidates) {
      size_t li = r_strings[i].size();
      size_t lj = s_strings[j].size();
      if ((li > lj ? li - lj : lj - li) > max_distance) continue;
      if (!WithinEditDistance(r_strings[i], s_strings[j], max_distance)) {
        continue;
      }
      out.push_back(EditDistancePair{
          i, j, LevenshteinDistance(r_strings[i], s_strings[j])});
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

std::vector<EditDistancePair> EditDistanceSelfJoin(
    const std::vector<std::string>& strings, size_t max_distance, size_t q) {
  if (q == 0) q = 1;
  std::vector<EditDistancePair> out;
  if (strings.empty()) return out;

  // Positional q-grams (duplicates numbered, so repeated grams count).
  text::QGramTokenizer tokenizer(q, text::DuplicatePolicy::kNumber);
  std::vector<std::vector<std::string>> grams(strings.size());
  std::map<std::string, uint64_t> frequency;
  for (size_t i = 0; i < strings.size(); ++i) {
    grams[i] = tokenizer.Tokenize(strings[i]);
    for (const auto& g : grams[i]) frequency[g]++;
  }

  // Rarest-first gram order (the global token ordering of stage 1, local).
  std::unordered_map<std::string, uint64_t> rank;
  {
    std::vector<std::pair<uint64_t, const std::string*>> ordered;
    ordered.reserve(frequency.size());
    for (const auto& [gram, count] : frequency) {
      ordered.emplace_back(count, &gram);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const auto& a, const auto& b) {
                if (a.first != b.first) return a.first < b.first;
                return *a.second < *b.second;
              });
    rank.reserve(ordered.size());
    for (size_t r = 0; r < ordered.size(); ++r) rank[*ordered[r].second] = r;
  }

  std::vector<std::vector<uint64_t>> ids(strings.size());
  for (size_t i = 0; i < strings.size(); ++i) {
    ids[i].reserve(grams[i].size());
    for (const auto& g : grams[i]) ids[i].push_back(rank[g]);
    std::sort(ids[i].begin(), ids[i].end());
  }

  // One edit damages at most q padded grams, so strings within distance d
  // share a gram among their q*d + 1 rarest — the Ed-Join prefix. Strings
  // with at most q*d grams are exempt from that pigeonhole (a qualifying
  // partner may share nothing) and are compared exhaustively.
  const size_t prefix = q * max_distance + 1;
  std::unordered_map<uint64_t, std::vector<size_t>> index;
  std::vector<size_t> shorts;  // indices with <= q*d grams
  std::vector<size_t> candidate_of(strings.size(),
                                   std::numeric_limits<size_t>::max());
  for (size_t i = 0; i < strings.size(); ++i) {
    std::vector<size_t> candidates;
    bool i_is_short = ids[i].size() < prefix;  // <= q*d grams
    if (i_is_short) {
      // Must consider every earlier string.
      candidates.reserve(i);
      for (size_t j = 0; j < i; ++j) candidates.push_back(j);
    } else {
      size_t probe = std::min(prefix, ids[i].size());
      for (size_t p = 0; p < probe; ++p) {
        auto it = index.find(ids[i][p]);
        if (it == index.end()) continue;
        for (size_t j : it->second) {
          if (candidate_of[j] == i) continue;  // dedupe within this probe
          candidate_of[j] = i;
          candidates.push_back(j);
        }
      }
      // Earlier short strings never indexed enough grams to be found.
      for (size_t j : shorts) {
        if (candidate_of[j] == i) continue;
        candidate_of[j] = i;
        candidates.push_back(j);
      }
    }
    for (size_t j : candidates) {
      size_t li = strings[i].size();
      size_t lj = strings[j].size();
      if ((li > lj ? li - lj : lj - li) > max_distance) continue;
      if (!WithinEditDistance(strings[i], strings[j], max_distance)) continue;
      size_t distance = LevenshteinDistance(strings[i], strings[j]);
      out.push_back(EditDistancePair{std::min(i, j), std::max(i, j),
                                     distance});
    }
    if (i_is_short) {
      shorts.push_back(i);
    } else {
      for (size_t p = 0; p < prefix; ++p) {
        index[ids[i][p]].push_back(i);
      }
    }
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

}  // namespace fj::sim
