// Set-similarity functions and the filter-bound arithmetic built on them.
//
// All kernels operate on records represented as ascending arrays of TokenId
// (see text/token_ordering.h); ascending id order is the global
// increasing-frequency order, so a record's *prefix* is its rarest tokens.
//
// For a similarity function sim and threshold tau, three derived quantities
// drive the filters (Chaudhuri et al. '06, Bayardo et al. '07, Xiao et
// al. '08, and Section 2.3 of the paper):
//
//   MinOverlap(lx, ly)   the overlap alpha that sim(x,y) >= tau forces
//                        between sets of sizes lx and ly;
//   length bounds        the sizes a partner of a size-l set may have
//                        (the length filter);
//   PrefixLength(l)      how many leading tokens suffice so that any
//                        qualifying partner shares one of them (the prefix
//                        filter / pigeonhole principle).
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <span>
#include <string>
#include <vector>

#include "common/result.h"
#include "text/token_ordering.h"

namespace fj::sim {

using text::TokenId;
using TokenIdSpan = std::span<const TokenId>;

enum class SimilarityFunction {
  kJaccard,  ///< |x∩y| / |x∪y|
  kCosine,   ///< |x∩y| / sqrt(|x|·|y|)
  kDice,     ///< 2|x∩y| / (|x|+|y|)
  kOverlap,  ///< |x∩y| / min(|x|,|y|)
};

const char* SimilarityFunctionName(SimilarityFunction fn);
Result<SimilarityFunction> SimilarityFunctionFromName(const std::string& name);

/// A similarity predicate: sim(x, y) >= tau.
class SimilaritySpec {
 public:
  /// tau must lie in (0, 1].
  SimilaritySpec(SimilarityFunction fn, double tau);

  SimilarityFunction function() const { return fn_; }
  double tau() const { return tau_; }

  /// Minimum |x∩y| forced by sim(x,y) >= tau for set sizes lx, ly.
  /// Always >= 1 (sizes are >= 1 for non-empty sets).
  size_t MinOverlap(size_t lx, size_t ly) const;

  /// Smallest partner size that can satisfy the predicate with a size-l set
  /// (the length filter's lower bound).
  size_t LengthLowerBound(size_t l) const;

  /// Largest partner size; SIZE_MAX when unbounded (overlap similarity).
  size_t LengthUpperBound(size_t l) const;

  /// Probe-prefix length for a size-l set: l - MinOverlap(l, lb(l)) + 1,
  /// clamped to [0, l]. Any pair with sim >= tau shares a token within both
  /// prefixes of this length.
  size_t PrefixLength(size_t l) const;

  /// Exact similarity of two ascending id arrays.
  double Similarity(TokenIdSpan x, TokenIdSpan y) const;

  /// True iff sim(x, y) >= tau (early-terminating).
  bool Satisfies(TokenIdSpan x, TokenIdSpan y) const;

  std::string ToString() const;

 private:
  SimilarityFunction fn_;
  double tau_;
};

/// ceil(f * l) computed robustly against floating-point error
/// (e.g. 0.8 * 5 must ceil to 4, not 5).
size_t CeilTimes(double f, size_t l);

/// floor(f * l), same robustness note.
size_t FloorTimes(double f, size_t l);

/// |x ∩ y| by linear merge.
size_t OverlapSize(TokenIdSpan x, TokenIdSpan y);

/// Overlap continued from positions (ix, iy) with `acc` matches already
/// accumulated, aborting early (returning SIZE_MAX sentinel... see below)
/// when the required overlap `alpha` is unreachable.
///
/// Returns the total overlap if it is >= alpha, or SIZE_MAX if the merge
/// proved the overlap cannot reach alpha (early exit). This is the
/// verification step shared by all kernels: candidates surviving the
/// filters are confirmed with one bounded merge.
size_t VerifyOverlap(TokenIdSpan x, TokenIdSpan y, size_t ix, size_t iy,
                     size_t acc, size_t alpha);

/// Sentinel returned by VerifyOverlap when alpha is unreachable.
inline constexpr size_t kOverlapFailed = std::numeric_limits<size_t>::max();

/// Similarity value from an overlap count and set sizes.
double SimilarityFromOverlap(SimilarityFunction fn, size_t overlap, size_t lx,
                             size_t ly);

}  // namespace fj::sim
