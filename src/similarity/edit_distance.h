// Edit-distance (Levenshtein) matching — the paper's footnote 1: "The
// techniques described in this paper can also be used for approximate
// string search using the edit or Levenshtein distance", via q-gram
// tokenization (Gravano et al. '01, Xiao et al.'s Ed-Join '08).
//
// The self-join here uses the classic count-filter machinery: strings
// within edit distance d share all but at most q*d of their (positional)
// q-grams, so a prefix of q*d + 1 rarest grams must intersect — the same
// pigeonhole argument as the similarity prefix filter. Candidates pass a
// length filter (| |x| - |y| | <= d) and are confirmed with a banded
// dynamic program that runs in O(d * min(|x|, |y|)).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace fj::sim {

/// Exact Levenshtein distance (unit-cost insert/delete/substitute).
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// True iff LevenshteinDistance(a, b) <= max_distance; banded DP with
/// early exit, O((2*max_distance+1) * min(|a|, |b|)) time.
bool WithinEditDistance(std::string_view a, std::string_view b,
                        size_t max_distance);

/// One edit-distance join result (indices into the input vector, i < j).
struct EditDistancePair {
  size_t index1 = 0;
  size_t index2 = 0;
  size_t distance = 0;

  friend bool operator==(const EditDistancePair& a,
                         const EditDistancePair& b) {
    return a.index1 == b.index1 && a.index2 == b.index2 &&
           a.distance == b.distance;
  }
  friend bool operator<(const EditDistancePair& a,
                        const EditDistancePair& b) {
    if (a.index1 != b.index1) return a.index1 < b.index1;
    return a.index2 < b.index2;
  }
};

/// All pairs (i < j) with LevenshteinDistance <= max_distance, found with
/// q-gram prefix filtering + length filter + banded verification. Sorted,
/// duplicate-free. q must be >= 1.
std::vector<EditDistancePair> EditDistanceSelfJoin(
    const std::vector<std::string>& strings, size_t max_distance,
    size_t q = 3);

/// R-S variant: all (i, j) with LevenshteinDistance(r_strings[i],
/// s_strings[j]) <= max_distance; index1 indexes r_strings, index2
/// s_strings. Same filtering machinery as the self-join (gram frequencies
/// taken over both inputs). Sorted, duplicate-free.
std::vector<EditDistancePair> EditDistanceRSJoin(
    const std::vector<std::string>& r_strings,
    const std::vector<std::string>& s_strings, size_t max_distance,
    size_t q = 3);

/// Brute-force references (exposed for tests and small inputs).
std::vector<EditDistancePair> NaiveEditDistanceSelfJoin(
    const std::vector<std::string>& strings, size_t max_distance);
std::vector<EditDistancePair> NaiveEditDistanceRSJoin(
    const std::vector<std::string>& r_strings,
    const std::vector<std::string>& s_strings, size_t max_distance);

}  // namespace fj::sim
