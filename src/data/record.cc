#include "data/record.h"

#include "common/string_util.h"

namespace fj::data {

std::string Record::ToLine() const {
  std::string line;
  line.reserve(24 + title.size() + authors.size() + payload.size());
  line += std::to_string(rid);
  line += '\t';
  line += title;
  line += '\t';
  line += authors;
  line += '\t';
  line += payload;
  return line;
}

Result<Record> Record::FromLine(const std::string& line) {
  std::vector<std::string> fields = fj::SplitN(line, '\t', 4);
  if (fields.size() != 4) {
    return Status::InvalidArgument("bad record line (want 4 fields): " + line);
  }
  FJ_ASSIGN_OR_RETURN(uint64_t rid, fj::ParseUint64(fields[0]));
  Record record;
  record.rid = rid;
  record.title = std::move(fields[1]);
  record.authors = std::move(fields[2]);
  record.payload = std::move(fields[3]);
  return record;
}

std::vector<std::string> RecordsToLines(const std::vector<Record>& records) {
  std::vector<std::string> lines;
  lines.reserve(records.size());
  for (const auto& r : records) lines.push_back(r.ToLine());
  return lines;
}

Result<std::vector<Record>> RecordsFromLines(
    const std::vector<std::string>& lines) {
  std::vector<Record> records;
  records.reserve(lines.size());
  for (const auto& line : lines) {
    FJ_ASSIGN_OR_RETURN(Record record, Record::FromLine(line));
    records.push_back(std::move(record));
  }
  return records;
}

}  // namespace fj::data
