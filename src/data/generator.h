// Synthetic bibliographic dataset generators.
//
// The paper evaluates on DBLP (~259 bytes/record) and CITESEERX (~1374
// bytes/record). These generators reproduce the properties the algorithms
// are sensitive to:
//   * Zipf-distributed token frequencies over a bounded dictionary
//     (token-frequency skew is what makes rare-token-first prefix routing
//     balance the reducers);
//   * a title+authors join attribute of realistic token count;
//   * payload fields sized so the two datasets keep the paper's record
//     length ratio (record-join cost in stage 3 depends on record bytes);
//   * a controllable fraction of injected near-duplicates, so the join
//     produces a nontrivial, linearly-growing result.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "data/record.h"

namespace fj::data {

struct GeneratorConfig {
  uint64_t num_records = 1000;
  uint64_t seed = 42;
  uint64_t first_rid = 1;

  /// Size of the title vocabulary; token frequencies are Zipf(theta).
  size_t title_vocab = 2000;
  double zipf_theta = 0.9;

  /// Title length range (tokens), uniform.
  size_t title_tokens_min = 5;
  size_t title_tokens_max = 12;

  /// Author-name vocabulary and per-record author count.
  size_t author_vocab = 400;
  size_t authors_min = 1;
  size_t authors_max = 4;

  /// Approximate payload size in bytes (tunes total record length).
  size_t payload_bytes = 160;

  /// Probability that a record is a near-duplicate of an earlier record
  /// (same title/authors with up to `dup_max_edits` token edits).
  double duplicate_fraction = 0.15;
  size_t dup_max_edits = 2;
};

/// DBLP-like defaults: ~260-byte records.
GeneratorConfig DblpLikeConfig(uint64_t num_records, uint64_t seed = 42);

/// CITESEERX-like defaults: ~1370-byte records (long abstract payload),
/// sharing the DBLP-like title token space so an R-S join of the two
/// produces matches — the paper joins DBLP with CITESEERX on
/// title+authors.
GeneratorConfig CiteseerxLikeConfig(uint64_t num_records, uint64_t seed = 43);

/// Generates `config.num_records` records with RIDs
/// [first_rid, first_rid + num_records).
std::vector<Record> GenerateRecords(const GeneratorConfig& config);

/// Replaces `fraction` of `target` records' title+authors with (lightly
/// mutated) copies drawn from `source`. Models the real-world overlap
/// between DBLP and CITESEERX — the same publications appearing in both —
/// which is what gives the paper's R-S join its result pairs. Payloads and
/// RIDs of `target` are preserved.
void InjectOverlap(const std::vector<Record>& source, double fraction,
                   size_t max_edits, uint64_t seed,
                   std::vector<Record>* target);

/// The deterministic word for a vocabulary slot; shared across generators
/// so DBLP-like and CITESEERX-like datasets draw titles from the same
/// token space. Rank 0 is the most frequent word.
std::string VocabWord(size_t index);

/// Author-name token for a slot (distinct space from VocabWord).
std::string AuthorWord(size_t index);

}  // namespace fj::data
