// The full-record schema flowing through the end-to-end pipeline.
//
// Mirrors the paper's preprocessed DBLP/CITESEERX layout: one line per
// publication holding a unique integer RID, a title, a list of authors, and
// "the rest of the content" (payload). The join attribute is the
// concatenation of title and authors (Section 6). Lines are tab-separated;
// the generators never emit tabs inside fields.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"

namespace fj::data {

struct Record {
  uint64_t rid = 0;
  std::string title;
  std::string authors;
  std::string payload;

  /// The join-attribute value: title and authors, concatenated.
  std::string JoinAttribute() const { return title + " " + authors; }

  /// Serializes to "rid<TAB>title<TAB>authors<TAB>payload".
  std::string ToLine() const;

  /// Parses a serialized record line.
  static Result<Record> FromLine(const std::string& line);

  friend bool operator==(const Record& a, const Record& b) {
    return a.rid == b.rid && a.title == b.title && a.authors == b.authors &&
           a.payload == b.payload;
  }
};

/// Serializes a record collection, one line each.
std::vector<std::string> RecordsToLines(const std::vector<Record>& records);

/// Parses a full file of record lines.
Result<std::vector<Record>> RecordsFromLines(
    const std::vector<std::string>& lines);

}  // namespace fj::data
