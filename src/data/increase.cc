#include "data/increase.h"

#include <algorithm>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"

namespace fj::data {

namespace {

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  for (auto& w : fj::Split(s, ' ')) {
    if (!w.empty()) words.push_back(std::move(w));
  }
  return words;
}

/// The global token order of one or two datasets: tokens sorted by
/// (frequency ascending, token ascending), plus each token's position.
struct TokenOrder {
  std::vector<std::string> by_position;
  std::unordered_map<std::string, size_t> position;
};

void CountTokens(const std::vector<Record>& records,
                 std::unordered_map<std::string, uint64_t>* counts) {
  for (const Record& r : records) {
    for (auto& t : SplitWords(r.title)) (*counts)[t]++;
    for (auto& t : SplitWords(r.authors)) (*counts)[t]++;
  }
}

TokenOrder BuildOrder(const std::unordered_map<std::string, uint64_t>& counts) {
  std::vector<std::pair<std::string, uint64_t>> ordered(counts.begin(),
                                                        counts.end());
  std::sort(ordered.begin(), ordered.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;
    return a.first < b.first;
  });
  TokenOrder order;
  order.by_position.reserve(ordered.size());
  order.position.reserve(ordered.size());
  for (auto& [token, count] : ordered) {
    order.position[token] = order.by_position.size();
    order.by_position.push_back(std::move(token));
  }
  return order;
}

std::string ShiftText(const TokenOrder& order, const std::string& text,
                      size_t k) {
  std::vector<std::string> tokens = SplitWords(text);
  for (auto& t : tokens) {
    size_t pos = order.position.at(t);
    t = order.by_position[(pos + k) % order.by_position.size()];
  }
  return fj::Join(tokens, ' ');
}

uint64_t RidStride(const std::vector<Record>& records) {
  uint64_t stride = 0;
  for (const Record& r : records) stride = std::max(stride, r.rid);
  return stride + 1;
}

/// Appends factor-1 shifted copies of `base` to `out` (which must start as
/// a copy of `base`).
void AppendShiftedCopies(const TokenOrder& order,
                         const std::vector<Record>& base, size_t factor,
                         std::vector<Record>* out) {
  uint64_t stride = RidStride(base);
  out->reserve(base.size() * factor);
  for (size_t k = 1; k < factor; ++k) {
    for (const Record& r : base) {
      Record copy;
      copy.rid = r.rid + k * stride;
      copy.title = ShiftText(order, r.title, k);
      copy.authors = ShiftText(order, r.authors, k);
      copy.payload = r.payload;
      out->push_back(std::move(copy));
    }
  }
}

}  // namespace

Result<std::vector<Record>> IncreaseDataset(const std::vector<Record>& base,
                                            size_t factor) {
  if (factor == 0) {
    return Status::InvalidArgument("increase factor must be >= 1");
  }
  std::unordered_map<std::string, uint64_t> counts;
  CountTokens(base, &counts);
  if (counts.empty() && factor > 1 && !base.empty()) {
    return Status::InvalidArgument("cannot increase: no tokens in dataset");
  }
  std::vector<Record> out = base;
  if (factor > 1) {
    TokenOrder order = BuildOrder(counts);
    AppendShiftedCopies(order, base, factor, &out);
  }
  return out;
}

Status IncreaseDatasetsTogether(std::vector<Record>* r,
                                std::vector<Record>* s, size_t factor) {
  if (factor == 0) {
    return Status::InvalidArgument("increase factor must be >= 1");
  }
  if (factor == 1) return Status::OK();
  std::unordered_map<std::string, uint64_t> counts;
  CountTokens(*r, &counts);
  CountTokens(*s, &counts);
  if (counts.empty()) {
    return Status::InvalidArgument("cannot increase: no tokens in datasets");
  }
  TokenOrder order = BuildOrder(counts);
  std::vector<Record> r_base = *r;
  std::vector<Record> s_base = *s;
  AppendShiftedCopies(order, r_base, factor, r);
  AppendShiftedCopies(order, s_base, factor, s);
  return Status::OK();
}

}  // namespace fj::data
