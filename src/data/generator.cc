#include "data/generator.h"

#include <algorithm>
#include <cassert>

#include "common/string_util.h"

namespace fj::data {

namespace {

constexpr const char* kSyllables[] = {
    "ba", "ce", "di", "fo", "gu", "ha", "ki", "lo", "mu", "ne",
    "pa", "qi", "ro", "su", "ta", "ve", "wi", "xo", "yu", "za"};
constexpr size_t kNumSyllables = sizeof(kSyllables) / sizeof(kSyllables[0]);

// Distinct pronounceable word for `index`: base-20 syllable encoding with a
// minimum of three syllables (so words look like "bacedi", "cezaqi", ...).
std::string EncodeSyllables(size_t index, size_t min_syllables) {
  std::string word;
  size_t remaining = index;
  while (remaining > 0 || word.size() < 2 * min_syllables) {
    word += kSyllables[remaining % kNumSyllables];
    remaining /= kNumSyllables;
  }
  return word;
}

std::vector<std::string> SplitWords(const std::string& s) {
  std::vector<std::string> words;
  for (auto& w : fj::Split(s, ' ')) {
    if (!w.empty()) words.push_back(std::move(w));
  }
  return words;
}

// Applies up to `max_edits` random token edits (replace / delete / insert).
void MutateTokens(std::vector<std::string>* tokens, size_t max_edits,
                  const fj::ZipfSampler& vocab_dist, fj::Rng* rng) {
  size_t edits = static_cast<size_t>(rng->NextBelow(max_edits + 1));
  for (size_t e = 0; e < edits; ++e) {
    uint64_t op = rng->NextBelow(3);
    if (op == 0 && !tokens->empty()) {  // replace
      size_t pos = static_cast<size_t>(rng->NextBelow(tokens->size()));
      (*tokens)[pos] = VocabWord(vocab_dist.Sample(rng));
    } else if (op == 1 && tokens->size() > 1) {  // delete
      size_t pos = static_cast<size_t>(rng->NextBelow(tokens->size()));
      tokens->erase(tokens->begin() + static_cast<ptrdiff_t>(pos));
    } else {  // insert
      size_t pos = static_cast<size_t>(rng->NextBelow(tokens->size() + 1));
      tokens->insert(tokens->begin() + static_cast<ptrdiff_t>(pos),
                     VocabWord(vocab_dist.Sample(rng)));
    }
  }
}

std::string MakePayload(size_t target_bytes, fj::Rng* rng) {
  std::string payload;
  payload.reserve(target_bytes + 12);
  while (payload.size() < target_bytes) {
    if (!payload.empty()) payload += ' ';
    payload += EncodeSyllables(rng->NextBelow(100000), 2);
  }
  payload.resize(target_bytes);
  if (!payload.empty() && payload.back() == ' ') payload.back() = 'x';
  return payload;
}

}  // namespace

std::string VocabWord(size_t index) { return EncodeSyllables(index, 3); }

std::string AuthorWord(size_t index) {
  return "mc" + EncodeSyllables(index, 2);
}

GeneratorConfig DblpLikeConfig(uint64_t num_records, uint64_t seed) {
  GeneratorConfig config;
  config.num_records = num_records;
  config.seed = seed;
  config.payload_bytes = 160;  // -> ~260-byte records
  return config;
}

GeneratorConfig CiteseerxLikeConfig(uint64_t num_records, uint64_t seed) {
  GeneratorConfig config;
  config.num_records = num_records;
  config.seed = seed;
  config.payload_bytes = 1250;  // -> ~1370-byte records ("abstract + URLs")
  return config;
}

std::vector<Record> GenerateRecords(const GeneratorConfig& config) {
  fj::Rng rng(config.seed);
  fj::ZipfSampler title_dist(config.title_vocab, config.zipf_theta);
  fj::ZipfSampler author_dist(config.author_vocab, config.zipf_theta);

  std::vector<Record> out;
  out.reserve(config.num_records);
  for (uint64_t i = 0; i < config.num_records; ++i) {
    Record record;
    record.rid = config.first_rid + i;

    if (!out.empty() && rng.NextBool(config.duplicate_fraction)) {
      // Near-duplicate of an earlier record: same authors, slightly edited
      // title — the pairs the join is meant to find.
      const Record& base = out[rng.NextBelow(out.size())];
      std::vector<std::string> tokens = SplitWords(base.title);
      MutateTokens(&tokens, config.dup_max_edits, title_dist, &rng);
      record.title = fj::Join(tokens, ' ');
      record.authors = base.authors;
    } else {
      size_t title_len = static_cast<size_t>(
          rng.NextInRange(config.title_tokens_min, config.title_tokens_max));
      std::vector<std::string> tokens;
      tokens.reserve(title_len);
      for (size_t t = 0; t < title_len; ++t) {
        tokens.push_back(VocabWord(title_dist.Sample(&rng)));
      }
      record.title = fj::Join(tokens, ' ');

      size_t author_count = static_cast<size_t>(
          rng.NextInRange(config.authors_min, config.authors_max));
      std::vector<std::string> authors;
      authors.reserve(author_count);
      for (size_t a = 0; a < author_count; ++a) {
        authors.push_back(AuthorWord(author_dist.Sample(&rng)));
      }
      record.authors = fj::Join(authors, ' ');
    }

    record.payload = MakePayload(config.payload_bytes, &rng);
    out.push_back(std::move(record));
  }
  return out;
}

void InjectOverlap(const std::vector<Record>& source, double fraction,
                   size_t max_edits, uint64_t seed,
                   std::vector<Record>* target) {
  if (source.empty() || target->empty()) return;
  fj::Rng rng(seed);
  fj::ZipfSampler vocab_dist(2000, 0.9);
  for (Record& record : *target) {
    if (!rng.NextBool(fraction)) continue;
    const Record& base = source[rng.NextBelow(source.size())];
    std::vector<std::string> tokens = SplitWords(base.title);
    MutateTokens(&tokens, max_edits, vocab_dist, &rng);
    record.title = fj::Join(tokens, ' ');
    record.authors = base.authors;
  }
}

}  // namespace fj::data
