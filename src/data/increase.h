// The paper's dataset-increase technique (Section 6, "Increasing Dataset
// Sizes"): to grow a dataset n-fold while keeping its set-similarity join
// properties, compute the title+authors token frequencies, order tokens by
// increasing frequency, and emit copy k of each record with every token
// replaced by the token k positions after it in that order.
//
// Because each shift is a bijection on the token dictionary, every copy
// reproduces the base dataset's intra-copy join pairs exactly (set sizes
// and intersections are preserved), so the join-result cardinality grows
// linearly with n — while the token dictionary stays constant. Both
// properties are verified by tests/data/increase_test.cc.
#pragma once

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "data/record.h"

namespace fj::data {

/// Returns the base dataset followed by factor-1 shifted copies (so the
/// result holds factor * base.size() records). Copy k's records get
/// RID = base RID + k * stride, stride = max base RID + 1. factor >= 1.
Result<std::vector<Record>> IncreaseDataset(const std::vector<Record>& base,
                                            size_t factor);

/// Increases two relations together for the R-S experiments, shifting both
/// with ONE token order computed over the union of their join attributes.
/// Shifting R and S with independent orders would scramble cross-dataset
/// matches (copy k of an S record would no longer match copy k of its R
/// counterpart) and the join result would stop growing; the shared order
/// applies the same bijection to both relations, so every copy reproduces
/// the base R-S matches and the result cardinality grows linearly in
/// `factor` — the property the paper's Figure 12/14 workloads rely on.
Status IncreaseDatasetsTogether(std::vector<Record>* r,
                                std::vector<Record>* s, size_t factor);

}  // namespace fj::data
