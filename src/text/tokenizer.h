// String-to-token-set conversion.
//
// The paper maps strings to sets by tokenizing them, using words or q-grams
// as tokens (Section 2). Normalization ("cleaning") happens inside the
// algorithms — the paper explicitly does not pre-clean its datasets — so the
// tokenizers lower-case and strip punctuation themselves.
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace fj::text {

/// What to do with repeated tokens within one string. Set-similarity is
/// defined on sets, so duplicates must either be removed or disambiguated.
enum class DuplicatePolicy {
  kRemove,  ///< keep the first occurrence only (a string becomes a true set)
  kNumber,  ///< k-th duplicate becomes "token#k", preserving multiplicity
};

class Tokenizer {
 public:
  virtual ~Tokenizer() = default;

  /// Splits `text` into tokens, applying the duplicate policy.
  virtual std::vector<std::string> Tokenize(std::string_view text) const = 0;

  /// Short name for diagnostics ("word", "qgram3", ...).
  virtual std::string Name() const = 0;
};

/// Word tokenizer: lower-cases, then splits on any non-alphanumeric byte.
/// "I will call back" -> [i, will, call, back].
class WordTokenizer : public Tokenizer {
 public:
  explicit WordTokenizer(DuplicatePolicy policy = DuplicatePolicy::kRemove)
      : policy_(policy) {}

  std::vector<std::string> Tokenize(std::string_view text) const override;
  std::string Name() const override { return "word"; }

 private:
  DuplicatePolicy policy_;
};

/// Overlapping fixed-length substrings ("q-grams") over the lower-cased,
/// whitespace-normalized string, padded with q-1 '$' on the left and '#'
/// on the right so every character participates in q grams. With q-gram
/// tokens the pipeline answers edit-distance-style approximate matching
/// (the paper's footnote 1).
class QGramTokenizer : public Tokenizer {
 public:
  explicit QGramTokenizer(size_t q,
                          DuplicatePolicy policy = DuplicatePolicy::kNumber);

  std::vector<std::string> Tokenize(std::string_view text) const override;
  std::string Name() const override { return "qgram" + std::to_string(q_); }

  size_t q() const { return q_; }

 private:
  size_t q_;
  DuplicatePolicy policy_;
};

/// Applies the duplicate policy to an ordered token list in place.
void ApplyDuplicatePolicy(DuplicatePolicy policy,
                          std::vector<std::string>* tokens);

}  // namespace fj::text
