#include "text/token_ordering.h"

#include <algorithm>
#include <cassert>
#include <optional>

#include "common/hash.h"
#include "common/string_util.h"

namespace fj::text {

TokenOrdering TokenOrdering::FromCounts(
    const std::vector<std::pair<std::string, uint64_t>>& counts) {
  TokenOrdering ordering;
  ordering.by_rank_ = counts;
  std::sort(ordering.by_rank_.begin(), ordering.by_rank_.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second < b.second;
              return a.first < b.first;
            });
  ordering.ranks_.reserve(ordering.by_rank_.size());
  for (size_t i = 0; i < ordering.by_rank_.size(); ++i) {
    ordering.InsertRank(ordering.by_rank_[i].first, i);
  }
  return ordering;
}

Result<TokenOrdering> TokenOrdering::FromLines(
    const std::vector<std::string>& lines) {
  TokenOrdering ordering;
  ordering.by_rank_.reserve(lines.size());
  ordering.ranks_.reserve(lines.size());
  for (const std::string& line : lines) {
    std::vector<std::string> fields = fj::Split(line, '\t');
    if (fields.size() != 2) {
      return Status::InvalidArgument("bad token-ordering line: " + line);
    }
    FJ_ASSIGN_OR_RETURN(uint64_t count, fj::ParseUint64(fields[1]));
    TokenId rank = ordering.by_rank_.size();
    if (!ordering.InsertRank(fields[0], rank)) {
      return Status::InvalidArgument("duplicate token in ordering: " +
                                     fields[0]);
    }
    ordering.by_rank_.emplace_back(std::move(fields[0]), count);
  }
  return ordering;
}

std::vector<std::string> TokenOrdering::ToLines() const {
  std::vector<std::string> lines;
  lines.reserve(by_rank_.size());
  for (const auto& [token, count] : by_rank_) {
    lines.push_back(token + "\t" + std::to_string(count));
  }
  return lines;
}

bool TokenOrdering::InsertRank(const std::string& token, TokenId rank) {
  auto [it, inserted] = ranks_.emplace(fj::HashString(token), rank);
  if (inserted) return true;
  if (by_rank_[static_cast<size_t>(it->second)].first == token) {
    return false;  // duplicate token
  }
  // Distinct tokens with colliding FNV hashes: the later one lives in the
  // string-keyed fallback map.
  return collision_ranks_.emplace(token, rank).second;
}

std::optional<TokenId> TokenOrdering::RankHashed(const std::string& token,
                                                 uint64_t hash) const {
  auto it = ranks_.find(hash);
  if (it != ranks_.end() &&
      by_rank_[static_cast<size_t>(it->second)].first == token) {
    return it->second;
  }
  if (!collision_ranks_.empty()) {
    auto ct = collision_ranks_.find(token);
    if (ct != collision_ranks_.end()) return ct->second;
  }
  return std::nullopt;
}

std::optional<TokenId> TokenOrdering::Rank(const std::string& token) const {
  return RankHashed(token, fj::HashString(token));
}

TokenId TokenOrdering::IdOf(const std::string& token) const {
  uint64_t hash = fj::HashString(token);
  if (std::optional<TokenId> rank = RankHashed(token, hash)) return *rank;
  // Stable id outside the rank range, reusing the already-computed hash.
  // Guaranteed >= kUnknownTokenBase.
  return kUnknownTokenBase | hash;
}

std::vector<TokenId> TokenOrdering::ToSortedIds(
    const std::vector<std::string>& tokens) const {
  std::vector<TokenId> ids;
  ids.reserve(tokens.size());
  for (const auto& t : tokens) ids.push_back(IdOf(t));
  std::sort(ids.begin(), ids.end());
  // Hash-derived ids for *distinct* unknown tokens could in principle
  // collide; dedupe so the result is a set.
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids;
}

uint64_t TokenOrdering::FrequencyOfRank(TokenId rank) const {
  assert(rank < by_rank_.size());
  return by_rank_[static_cast<size_t>(rank)].second;
}

const std::string& TokenOrdering::TokenOfRank(TokenId rank) const {
  assert(rank < by_rank_.size());
  return by_rank_[static_cast<size_t>(rank)].first;
}

}  // namespace fj::text
