// The global token ordering — the product of the paper's Stage 1.
//
// Tokens are ranked by increasing corpus frequency (ties broken
// lexicographically, so the ordering is total and deterministic). Prefix
// filtering uses this ordering: a record's prefix consists of its *rarest*
// tokens, which keeps candidate groups small and balances reducers despite
// token-frequency skew (Section 3).
//
// Records are converted to sorted arrays of TokenId. Known tokens map to
// their rank (0 = rarest). Tokens absent from the ordering (they occur in an
// R-S join when relation S contains tokens that relation R never produced)
// map to ids >= kUnknownTokenBase derived from a stable 64-bit hash: they
// cannot collide with ranks, compare consistently across records, and can
// never match a token of the indexed relation — while still counting toward
// set sizes so similarity values stay exact.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"

namespace fj::text {

using TokenId = uint64_t;

/// Ids at or above this value denote out-of-dictionary tokens.
inline constexpr TokenId kUnknownTokenBase = uint64_t{1} << 32;

/// True if `id` denotes a token that was not in the stage-1 ordering.
inline bool IsUnknownToken(TokenId id) { return id >= kUnknownTokenBase; }

class TokenOrdering {
 public:
  TokenOrdering() = default;

  /// Builds an ordering from (token, frequency) pairs, ranking by
  /// (frequency ascending, token ascending).
  static TokenOrdering FromCounts(
      const std::vector<std::pair<std::string, uint64_t>>& counts);

  /// Parses the stage-1 output: one "token<TAB>count" line per token, in
  /// rank order (rarest first). Inverse of ToLines().
  static Result<TokenOrdering> FromLines(const std::vector<std::string>& lines);

  /// Serializes to "token<TAB>count" lines in rank order.
  std::vector<std::string> ToLines() const;

  /// Rank of `token`, or nullopt if not in the ordering.
  std::optional<TokenId> Rank(const std::string& token) const;

  /// Id for `token`: its rank if known, otherwise a stable hash-derived id
  /// >= kUnknownTokenBase. The token is hashed exactly once (FNV-1a): the
  /// same hash drives the rank lookup and, on a miss, the unknown id — the
  /// hot path of ToSortedIds.
  TokenId IdOf(const std::string& token) const;

  /// Maps tokens to ids and sorts ascending — the canonical set
  /// representation consumed by the similarity kernels. (Ascending id order
  /// IS the global frequency order for known tokens; unknown tokens sort
  /// after every known one, i.e. they are treated as maximally frequent,
  /// which keeps prefix filtering correct for R-S joins.)
  std::vector<TokenId> ToSortedIds(const std::vector<std::string>& tokens) const;

  /// Corpus frequency of the token with the given rank.
  uint64_t FrequencyOfRank(TokenId rank) const;

  /// Token string for a known rank (diagnostics / tests).
  const std::string& TokenOfRank(TokenId rank) const;

  size_t size() const { return by_rank_.size(); }
  bool empty() const { return by_rank_.empty(); }

 private:
  /// Registers `token` under `rank`. Returns false if the token already
  /// has a rank (duplicate).
  bool InsertRank(const std::string& token, TokenId rank);

  /// Rank lookup with a precomputed FNV-1a hash of `token`.
  std::optional<TokenId> RankHashed(const std::string& token,
                                    uint64_t hash) const;

  std::vector<std::pair<std::string, uint64_t>> by_rank_;  // (token, count)
  /// FNV-1a(token) -> rank. Integer-keyed so a lookup hashes the token
  /// string once; a hit is confirmed with one string compare against
  /// by_rank_. The rare distinct-token FNV collisions fall back to
  /// collision_ranks_ (string-keyed, almost always empty).
  std::unordered_map<uint64_t, TokenId> ranks_;
  std::unordered_map<std::string, TokenId> collision_ranks_;
};

}  // namespace fj::text
