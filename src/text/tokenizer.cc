#include "text/tokenizer.h"

#include <cctype>
#include <unordered_map>
#include <unordered_set>

namespace fj::text {

void ApplyDuplicatePolicy(DuplicatePolicy policy,
                          std::vector<std::string>* tokens) {
  if (policy == DuplicatePolicy::kRemove) {
    std::unordered_set<std::string> seen;
    std::vector<std::string> out;
    out.reserve(tokens->size());
    for (auto& t : *tokens) {
      if (seen.insert(t).second) out.push_back(std::move(t));
    }
    *tokens = std::move(out);
  } else {
    std::unordered_map<std::string, size_t> occurrences;
    for (auto& t : *tokens) {
      size_t n = occurrences[t]++;
      if (n > 0) {
        t += '#';
        t += std::to_string(n);
      }
    }
  }
}

std::vector<std::string> WordTokenizer::Tokenize(std::string_view text) const {
  std::vector<std::string> tokens;
  std::string current;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      current += static_cast<char>(std::tolower(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  ApplyDuplicatePolicy(policy_, &tokens);
  return tokens;
}

QGramTokenizer::QGramTokenizer(size_t q, DuplicatePolicy policy)
    : q_(q == 0 ? 1 : q), policy_(policy) {}

std::vector<std::string> QGramTokenizer::Tokenize(std::string_view text) const {
  // Normalize: lower-case; collapse runs of non-alphanumerics to one space.
  std::string norm;
  norm.reserve(text.size() + 2 * (q_ - 1));
  norm.append(q_ - 1, '$');
  bool pending_space = false;
  for (char raw : text) {
    unsigned char c = static_cast<unsigned char>(raw);
    if (std::isalnum(c)) {
      if (pending_space && !norm.empty() && norm.back() != '$') norm += ' ';
      pending_space = false;
      norm += static_cast<char>(std::tolower(c));
    } else {
      pending_space = true;
    }
  }
  norm.append(q_ - 1, '#');

  std::vector<std::string> tokens;
  if (norm.size() >= q_) {
    tokens.reserve(norm.size() - q_ + 1);
    for (size_t i = 0; i + q_ <= norm.size(); ++i) {
      tokens.emplace_back(norm.substr(i, q_));
    }
  }
  ApplyDuplicatePolicy(policy_, &tokens);
  return tokens;
}

}  // namespace fj::text
