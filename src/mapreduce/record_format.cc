#include "mapreduce/record_format.h"

#include <cstring>
#include <vector>

namespace fj::mr {

namespace {

// fjlz stream constants. The format is the LZ4 block idiom: a token byte
// whose high nibble is the literal length and low nibble the match length
// minus the 4-byte minimum; nibble value 15 means "read 255-continuation
// extension bytes". Literals follow the token; a 2-byte little-endian
// offset and the match extensions follow the literals. The final sequence
// of a stream is literals-only — the decoder stops once the declared raw
// size is produced, so no sentinel match is needed.
constexpr size_t kFjlzMinMatch = 4;
constexpr size_t kFjlzMaxOffset = 65535;
constexpr unsigned kFjlzHashBits = 13;
constexpr uint32_t kFjlzNoPos = 0xffffffffu;

uint32_t FjlzHash4(const char* p) {
  uint32_t v = 0;
  std::memcpy(&v, p, sizeof(v));
  return (v * 2654435761u) >> (32 - kFjlzHashBits);
}

void FjlzAppendLength(std::string* out, size_t len) {
  // Extension bytes for a nibble that saturated at 15.
  len -= 15;
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

// Emits one sequence: `lit_len` literals starting at `lit`, then (when
// `match_len` > 0) a back-reference of `match_len >= kFjlzMinMatch` bytes
// at distance `offset`.
void FjlzEmit(std::string* out, const char* lit, size_t lit_len,
              size_t match_len, size_t offset) {
  size_t match_code = match_len == 0 ? 0 : match_len - kFjlzMinMatch;
  uint8_t token =
      static_cast<uint8_t>((lit_len < 15 ? lit_len : 15) << 4 |
                           (match_code < 15 ? match_code : 15));
  out->push_back(static_cast<char>(token));
  if (lit_len >= 15) FjlzAppendLength(out, lit_len);
  out->append(lit, lit_len);
  if (match_len == 0) return;
  out->push_back(static_cast<char>(offset & 0xff));
  out->push_back(static_cast<char>((offset >> 8) & 0xff));
  if (match_code >= 15) FjlzAppendLength(out, match_code);
}

// Reads the 255-continuation extension of a saturated nibble.
bool FjlzReadLength(std::string_view src, size_t* pos, size_t* len) {
  while (true) {
    if (*pos >= src.size()) return false;
    auto byte = static_cast<uint8_t>(src[(*pos)++]);
    *len += byte;
    if (byte != 0xff) return true;
  }
}

}  // namespace

void FjlzCompress(std::string_view src, std::string* out) {
  out->clear();
  const size_t n = src.size();
  if (n == 0) return;
  out->reserve(n / 2 + 16);
  std::vector<uint32_t> table(size_t{1} << kFjlzHashBits, kFjlzNoPos);
  size_t anchor = 0;
  size_t i = 0;
  while (i + kFjlzMinMatch <= n) {
    uint32_t h = FjlzHash4(src.data() + i);
    uint32_t cand = table[h];
    table[h] = static_cast<uint32_t>(i);
    if (cand != kFjlzNoPos && i - cand <= kFjlzMaxOffset &&
        std::memcmp(src.data() + cand, src.data() + i, kFjlzMinMatch) == 0) {
      size_t match = kFjlzMinMatch;
      while (i + match < n && src[cand + match] == src[i + match]) ++match;
      FjlzEmit(out, src.data() + anchor, i - anchor, match, i - cand);
      i += match;
      anchor = i;
    } else {
      ++i;
    }
  }
  if (anchor < n) FjlzEmit(out, src.data() + anchor, n - anchor, 0, 0);
}

Status FjlzDecompress(std::string_view src, size_t raw_size,
                      std::string* out) {
  out->clear();
  out->reserve(raw_size);
  size_t pos = 0;
  while (out->size() < raw_size) {
    if (pos >= src.size()) {
      return Status::DataLoss("fjlz stream truncated before token");
    }
    auto token = static_cast<uint8_t>(src[pos++]);
    size_t lit_len = token >> 4;
    if (lit_len == 15 && !FjlzReadLength(src, &pos, &lit_len)) {
      return Status::DataLoss("fjlz stream truncated in literal length");
    }
    if (lit_len > src.size() - pos) {
      return Status::DataLoss("fjlz literal run exceeds stream");
    }
    if (lit_len > raw_size - out->size()) {
      return Status::DataLoss("fjlz literal run exceeds declared raw size");
    }
    out->append(src.data() + pos, lit_len);
    pos += lit_len;
    if (out->size() == raw_size) break;  // final literals-only sequence
    if (src.size() - pos < 2) {
      return Status::DataLoss("fjlz stream truncated before match offset");
    }
    size_t offset = static_cast<uint8_t>(src[pos]) |
                    static_cast<size_t>(static_cast<uint8_t>(src[pos + 1]))
                        << 8;
    pos += 2;
    if (offset == 0 || offset > out->size()) {
      return Status::DataLoss("fjlz match offset outside produced output");
    }
    size_t match_code = token & 0x0f;
    if (match_code == 15 && !FjlzReadLength(src, &pos, &match_code)) {
      return Status::DataLoss("fjlz stream truncated in match length");
    }
    size_t match_len = match_code + kFjlzMinMatch;
    if (match_len > raw_size - out->size()) {
      return Status::DataLoss("fjlz match exceeds declared raw size");
    }
    size_t from = out->size() - offset;
    // Byte-by-byte: matches may overlap their own output (RLE-style).
    for (size_t k = 0; k < match_len; ++k) out->push_back((*out)[from + k]);
  }
  if (pos != src.size()) {
    return Status::DataLoss("trailing bytes after fjlz stream");
  }
  return Status::OK();
}

void EncodeBlock(BlockCodec codec, uint64_t record_count,
                 std::string_view raw_payload, std::string* out) {
  out->clear();
  std::string compressed;
  std::string_view payload = raw_payload;
  if (codec == BlockCodec::kFjlz) {
    FjlzCompress(raw_payload, &compressed);
    if (compressed.size() < raw_payload.size()) {
      payload = compressed;
    } else {
      codec = BlockCodec::kNone;  // incompressible: store raw
    }
  }
  out->reserve(payload.size() + 2 * kMaxVarintBytes + 1);
  out->push_back(static_cast<char>(codec));
  AppendVarint(out, record_count);
  AppendVarint(out, raw_payload.size());
  out->append(payload);
}

Status DecodeBlock(std::string_view block, uint64_t* record_count,
                   std::string* raw_payload) {
  if (block.empty()) return Status::DataLoss("empty run block");
  auto codec_byte = static_cast<uint8_t>(block[0]);
  if (codec_byte > static_cast<uint8_t>(BlockCodec::kFjlz)) {
    return Status::DataLoss("run block names an unknown codec");
  }
  size_t pos = 1;
  uint64_t count = 0;
  uint64_t raw_size = 0;
  if (!DecodeVarint(block, &pos, &count) ||
      !DecodeVarint(block, &pos, &raw_size)) {
    return Status::DataLoss("truncated run block header");
  }
  std::string_view payload = block.substr(pos);
  if (static_cast<BlockCodec>(codec_byte) == BlockCodec::kNone) {
    if (raw_size != payload.size()) {
      return Status::DataLoss("run block payload size mismatch");
    }
    raw_payload->assign(payload.data(), payload.size());
  } else {
    // fjlz expands at most ~255x per stream byte; a declared raw size
    // beyond that is a corrupt header — reject before reserving.
    if (raw_size > 16 + payload.size() * 256) {
      return Status::DataLoss("run block declares implausible raw size");
    }
    FJ_RETURN_IF_ERROR(
        FjlzDecompress(payload, static_cast<size_t>(raw_size), raw_payload));
  }
  *record_count = count;
  return Status::OK();
}

const char* RecordFormatName(RecordFormat format) {
  switch (format) {
    case RecordFormat::kText:
      return "text";
    case RecordFormat::kBinary:
      return "binary";
  }
  return "unknown";
}

const char* BlockCodecName(BlockCodec codec) {
  switch (codec) {
    case BlockCodec::kNone:
      return "none";
    case BlockCodec::kFjlz:
      return "fjlz";
  }
  return "unknown";
}

bool ParseRecordFormat(std::string_view name, RecordFormat* format) {
  if (name == "text") {
    *format = RecordFormat::kText;
    return true;
  }
  if (name == "binary") {
    *format = RecordFormat::kBinary;
    return true;
  }
  return false;
}

bool ParseBlockCodec(std::string_view name, BlockCodec* codec) {
  if (name == "none") {
    *codec = BlockCodec::kNone;
    return true;
  }
  if (name == "fjlz") {
    *codec = BlockCodec::kFjlz;
    return true;
  }
  return false;
}

void FormatTokenCountRecord(std::string_view token, uint64_t count,
                            std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(kBinaryRecordMagic));
  out->push_back(static_cast<char>(kTokenCountRecordKind));
  AppendVarint(out, token.size());
  out->append(token);
  AppendVarint(out, count);
}

bool ParseTokenCountRecord(std::string_view record, std::string* token,
                           uint64_t* count) {
  if (record.size() < 2 ||
      static_cast<uint8_t>(record[0]) != kBinaryRecordMagic ||
      static_cast<uint8_t>(record[1]) != kTokenCountRecordKind) {
    return false;
  }
  size_t pos = 2;
  uint64_t len = 0;
  if (!DecodeVarint(record, &pos, &len)) return false;
  if (len > record.size() - pos) return false;
  token->assign(record.data() + pos, static_cast<size_t>(len));
  pos += static_cast<size_t>(len);
  if (!DecodeVarint(record, &pos, count)) return false;
  return pos == record.size();
}

void FormatRidPairRecord(uint64_t rid1, uint64_t rid2, double similarity,
                         std::string* out) {
  out->clear();
  out->push_back(static_cast<char>(kBinaryRecordMagic));
  out->push_back(static_cast<char>(kRidPairRecordKind));
  AppendVarint(out, rid1);
  AppendVarint(out, rid2);
  uint64_t bits = 0;
  std::memcpy(&bits, &similarity, sizeof(bits));
  internal::AppendFixed64(out, bits);
}

bool ParseRidPairRecord(std::string_view record, uint64_t* rid1,
                        uint64_t* rid2, double* similarity) {
  if (record.size() < 2 ||
      static_cast<uint8_t>(record[0]) != kBinaryRecordMagic ||
      static_cast<uint8_t>(record[1]) != kRidPairRecordKind) {
    return false;
  }
  size_t pos = 2;
  if (!DecodeVarint(record, &pos, rid1)) return false;
  if (!DecodeVarint(record, &pos, rid2)) return false;
  uint64_t bits = 0;
  if (!internal::DecodeFixed64(record, &pos, &bits)) return false;
  std::memcpy(similarity, &bits, sizeof(bits));
  return pos == record.size();
}

}  // namespace fj::mr
