// Length-framed loopback TCP for the socket shuffle — the only file pair
// in the tree allowed to touch raw POSIX sockets (tools/lint.py
// no-raw-socket). Dependency-free: <sys/socket.h> and friends, nothing
// else.
//
// Layers, bottom up:
//
//   frames     — every message is [magic 'FJNT' | type u8 | varlen u64 |
//                payload hash u64 | payload]. The hash (64-bit FNV over
//                the payload) makes a flipped wire byte a structured
//                DataLoss at the frame boundary; short reads and expired
//                SO_RCVTIMEO deadlines surface as DeadlineExceeded /
//                Unavailable. All reads/writes loop on EINTR and treat
//                EAGAIN as the deadline.
//   requests   — one connection carries one request/response exchange:
//                PUT/GET/PING/DROPJOB/QUIT with (job, map task,
//                partition, attempt) coordinates, so the server can
//                resolve its NetFaultPlan deterministically per RPC.
//   WorkerServer — the shuffle node: stores published segments in memory
//                and serves fetches, applying its fault plan to real
//                response bytes (drop / delay / truncate / bit-flip /
//                stall mid-stream). Runs its accept loop and per-
//                connection handlers on raw threads (waived: this IS the
//                network layer the executor's tasks talk to).
//   WorkerPool — the coordinator's view of N workers: either in-process
//                servers on threads (tests, benches) or spawned worker
//                subprocesses re-execing /proc/self/exe with the
//                kShuffleWorkerSentinel argv (CLI, chaos CI). Port
//                handshake over a pipe; a life pipe tears workers down
//                when the coordinator exits, even on a crash.
//
// fuzzyjoin_worker (tools/worker_main.cc) wraps RunShuffleWorkerMain as a
// standalone binary; any host binary that wants to spawn process workers
// calls MaybeRunShuffleWorker first thing in main().
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "mapreduce/shuffle_transport.h"

namespace fj::mr::net {

// ---------------------------------------------------------------------------
// Process-wide I/O hygiene shared with the serving driver.

/// Ignores SIGPIPE process-wide so a peer closing mid-write surfaces as
/// EPIPE from the write, never a process kill. Idempotent.
void IgnoreSigpipe();

/// Writes all of `data` to `fd`, looping on EINTR and short writes and
/// polling through EAGAIN. EPIPE (peer gone) returns Unavailable; other
/// errors IOError.
Status WriteAllFd(int fd, std::string_view data);

// ---------------------------------------------------------------------------
// Frames.

inline constexpr uint32_t kFrameMagic = 0x464a4e54;  // "FJNT"

enum class FrameType : uint8_t {
  kPut = 1,
  kGet = 2,
  kPing = 3,
  kDropJob = 4,
  kQuit = 5,
  kOk = 0x80,
  kError = 0x81,
};

struct Frame {
  FrameType type = FrameType::kOk;
  std::string payload;
};

/// Serializes one frame (header + payload hash + payload) into `*out`.
void AppendFrame(std::string* out, FrameType type, std::string_view payload);

/// Sends one frame on `fd` under the socket's send deadline.
Status SendFrame(int fd, FrameType type, std::string_view payload);

/// Receives one frame under the socket's receive deadline, verifying the
/// payload hash (mismatch = DataLoss — the wire integrity contract).
Result<Frame> RecvFrame(int fd);

/// One request as carried in a PUT/GET/PING/DROPJOB frame payload.
struct Request {
  std::string job;
  uint64_t map_task = 0;
  uint64_t partition = 0;
  /// Per-operation attempt number, part of the server's fault coordinate.
  uint64_t attempt = 0;
  std::string body;  ///< PUT: the segment bytes; otherwise empty
};

void EncodeRequest(const Request& request, std::string* out);
bool DecodeRequest(std::string_view payload, Request* request);

/// One response: a Status plus (for GET) the segment bytes.
struct Response {
  Status status;
  std::string body;
};

void EncodeResponse(const Response& response, std::string* out);
bool DecodeResponse(std::string_view payload, Response* response);

// ---------------------------------------------------------------------------
// Sockets (loopback only).

/// Binds and listens on 127.0.0.1:`*port` (0 = ephemeral; the chosen port
/// is written back). Returns the listening fd.
Result<int> ListenTcpLoopback(int* port);

/// Connects to 127.0.0.1:`port` with a connect deadline, then arms
/// `io_timeout_ms` as the socket's send/receive deadline.
Result<int> DialTcpLoopback(int port, uint32_t connect_timeout_ms,
                            uint32_t io_timeout_ms);

void CloseFd(int fd);

// ---------------------------------------------------------------------------
// WorkerServer: one shuffle node.

struct WorkerServerOptions {
  /// Server-side fault plan applied to PUT/GET responses (PING and
  /// DROPJOB stay clean so liveness is orthogonal to data-path chaos).
  NetFaultPlan faults;
  /// Receive deadline for reading a request off an accepted connection.
  uint32_t request_timeout_ms = 5000;
};

class WorkerServer {
 public:
  explicit WorkerServer(WorkerServerOptions options = {});
  ~WorkerServer();

  WorkerServer(const WorkerServer&) = delete;
  WorkerServer& operator=(const WorkerServer&) = delete;

  /// Binds an ephemeral loopback port and starts the accept thread.
  Status Start();
  /// Stops accepting, joins every handler, drops stored segments.
  void Stop();

  int port() const { return port_; }

  // Observability for tests and the worker main's exit log.
  uint64_t requests_served() const;
  uint64_t faults_injected() const;
  uint64_t segments_stored() const;

 private:
  void AcceptLoop();
  void HandleConnection(int fd);
  /// Builds the response for one decoded request (storage side effects
  /// included); wire faults are applied later, at send time.
  Response Execute(const Request& request, FrameType type);
  /// Sends `response`, applying the fault plan's server-side faults for
  /// this request's coordinate. Returns true when a fault fired.
  bool SendWithFaults(int fd, const Request& request, FrameType type,
                      const Response& response);

  WorkerServerOptions options_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread accept_thread_;  // lint: allow-thread (network layer, not task work)

  mutable Mutex mu_{"worker_net.server", lock_rank::kTransport};
  bool stopping_ FJ_GUARDED_BY(mu_) = false;
  std::map<std::tuple<std::string, uint64_t, uint64_t>, std::string> segments_
      FJ_GUARDED_BY(mu_);
  std::vector<std::thread> handlers_  // lint: allow-thread (one per connection)
      FJ_GUARDED_BY(mu_);
  uint64_t requests_served_ FJ_GUARDED_BY(mu_) = 0;
  uint64_t faults_injected_ FJ_GUARDED_BY(mu_) = 0;
};

// ---------------------------------------------------------------------------
// WorkerPool: the coordinator's N workers.

class WorkerPool {
 public:
  /// N in-process WorkerServers on threads — real loopback TCP without
  /// subprocess machinery (tests, benches).
  static Result<std::unique_ptr<WorkerPool>> StartInProcess(
      size_t workers, const NetFaultPlan& faults);

  /// N worker subprocesses, each re-execing /proc/self/exe with the
  /// kShuffleWorkerSentinel argv — the host binary's main() must call
  /// MaybeRunShuffleWorker() first. Ports are handed back over a pipe;
  /// workers exit when the coordinator closes the life pipe (or dies).
  static Result<std::unique_ptr<WorkerPool>> SpawnProcesses(
      size_t workers, const NetFaultPlan& faults);

  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  std::vector<int> ports() const;
  size_t size() const;

  /// Chaos hook: hard-kills worker `index` (SIGKILL for subprocesses,
  /// Stop() for in-process servers). Its stored segments are gone; the
  /// transport's liveness layer must notice and the engine must recover.
  void KillWorker(size_t index);

  /// In-process pools only: the underlying server (test observability).
  WorkerServer* server(size_t index);

 private:
  WorkerPool() = default;

  struct ProcessWorker {
    int64_t pid = -1;
    int port = 0;
    int life_fd = -1;  ///< write end; closing it tells the worker to exit
  };
  std::vector<std::unique_ptr<WorkerServer>> servers_;
  std::vector<ProcessWorker> processes_;
};

// ---------------------------------------------------------------------------
// Worker process mode.

/// argv[1] sentinel that turns any cooperating binary into a shuffle
/// worker process.
inline constexpr const char* kShuffleWorkerSentinel = "fj-shuffle-worker";

/// The worker process body: parses --port_fd/--life_fd/--net_faults flags,
/// serves until the life pipe closes, returns the process exit code.
int RunShuffleWorkerMain(int argc, char** argv);

/// Call first thing in main(): when argv names the worker sentinel, runs
/// the worker and returns its exit code; otherwise returns nullopt and
/// the host binary proceeds normally.
std::optional<int> MaybeRunShuffleWorker(int argc, char** argv);

}  // namespace fj::mr::net
