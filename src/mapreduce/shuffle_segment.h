// Wire encoding of one shuffle segment — the partition-r slice of one map
// task's committed output, as moved by a ShuffleTransport.
//
// A segment carries the task's non-empty partition-r runs in spill order,
// each as a PR 7 framed run block (record_format.h EncodeRunBlock) plus
// the run metadata the reduce side meters against (estimated bytes,
// on-disk flag, record count, pre-codec payload size, write-side
// checksum). Binary-format runs ship their existing encoded block
// verbatim; text-format runs are encoded on the fly (codec kNone), and
// their carried checksum is re-pointed at the block bytes so the reduce
// side's read verification covers what actually crossed the wire.
//
// Layout:
//   varint run_count
//   per run: varint flags (bit 0 = on_disk)
//            varint record_count | varint bytes | varint logical_bytes
//            fixed64 run_checksum
//            varint block_len | block bytes
//   fixed64 segment hash (FNV over everything above)
//
// The trailing hash is the PR 7 integrity contract extended to the wire:
// it is verified on decode regardless of JobSpec::verify_integrity, so a
// byte flipped in transit (or rotted in a worker's store) is DataLoss,
// never silently-wrong join output. Decoding preserves run order, so the
// reduce merger's map-task-then-spill tie-break — and therefore byte
// identity — survives the network hop.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "common/varint.h"
#include "mapreduce/record_format.h"
#include "mapreduce/sort_buffer.h"

namespace fj::mr {

/// Appends the partition-`partition` segment of `output` to `*encoded`.
/// `verify` mirrors JobSpec::verify_integrity: when on, text runs get a
/// fresh checksum over their block bytes (binary runs already carry one).
template <typename K, typename V>
void EncodeShuffleSegment(const MapTaskOutput<K, V>& output, size_t partition,
                          bool verify, std::string* encoded) {
  uint64_t run_count = 0;
  for (const auto& spill : output.spills) {
    if (partition < spill.size() && spill[partition].HasRecords()) run_count++;
  }
  std::string body;
  AppendVarint(&body, run_count);
  for (const auto& spill : output.spills) {
    if (partition >= spill.size()) continue;
    const SortedRun<K, V>& run = spill[partition];
    if (!run.HasRecords()) continue;
    std::string block;
    uint64_t record_count = run.record_count;
    uint64_t logical_bytes = run.logical_bytes;
    uint64_t checksum = run.checksum;
    if (!run.encoded.empty()) {
      block = run.encoded;  // binary format: ship the committed block as is
    } else {
      EncodeRunBlock(BlockCodec::kNone, run.pairs, &block, &logical_bytes);
      record_count = run.pairs.size();
      // The reduce side verifies runs with encoded payloads against
      // HashString(encoded) — re-point the text run's checksum at the
      // bytes that actually travel.
      checksum = verify ? HashString(block) : 0;
    }
    AppendVarint(&body, run.on_disk ? 1 : 0);
    AppendVarint(&body, record_count);
    AppendVarint(&body, run.bytes);
    AppendVarint(&body, logical_bytes);
    internal::AppendFixed64(&body, checksum);
    AppendVarint(&body, block.size());
    body.append(block);
  }
  internal::AppendFixed64(&body, HashString(body));
  encoded->append(body);
}

/// Decodes a segment back into runs whose payload stays ENCODED (pairs
/// empty, `encoded` set): RunReduceAttempt decodes a private copy per
/// attempt, exactly as it does for binary-format runs. The trailing hash
/// is always verified; a mismatch is DataLoss.
template <typename K, typename V>
Status DecodeShuffleSegment(std::string_view segment,
                            std::vector<SortedRun<K, V>>* runs) {
  runs->clear();
  if (segment.size() < 8) {
    return Status::DataLoss("shuffle segment truncated before hash");
  }
  const std::string_view body = segment.substr(0, segment.size() - 8);
  size_t pos = body.size();
  uint64_t carried_hash = 0;
  if (!internal::DecodeFixed64(segment, &pos, &carried_hash) ||
      carried_hash != HashString(body)) {
    return Status::DataLoss("shuffle segment hash mismatch");
  }
  pos = 0;
  uint64_t run_count = 0;
  if (!DecodeVarint(body, &pos, &run_count) || run_count > body.size()) {
    return Status::DataLoss("shuffle segment run count corrupt");
  }
  runs->reserve(static_cast<size_t>(run_count));
  for (uint64_t i = 0; i < run_count; ++i) {
    SortedRun<K, V> run;
    uint64_t flags = 0, block_len = 0;
    if (!DecodeVarint(body, &pos, &flags) ||
        !DecodeVarint(body, &pos, &run.record_count) ||
        !DecodeVarint(body, &pos, &run.bytes) ||
        !DecodeVarint(body, &pos, &run.logical_bytes) ||
        !internal::DecodeFixed64(body, &pos, &run.checksum) ||
        !DecodeVarint(body, &pos, &block_len) ||
        block_len > body.size() - pos) {
      return Status::DataLoss("shuffle segment run header truncated");
    }
    run.on_disk = (flags & 1) != 0;
    run.encoded.assign(body.data() + pos, static_cast<size_t>(block_len));
    pos += static_cast<size_t>(block_len);
    runs->push_back(std::move(run));
  }
  if (pos != body.size()) {
    return Status::DataLoss("trailing bytes after last shuffle segment run");
  }
  return Status::OK();
}

}  // namespace fj::mr
