// Deterministic fault injection for the MapReduce engine.
//
// Hadoop's execution model assumes tasks fail: attempts crash mid-split,
// nodes slow down, and the framework re-executes deterministically until
// the job either completes or a task exhausts its attempt budget. This
// module makes those behaviours reproducible on the local engine: a
// FaultPlan describes *which* (phase, task, attempt) coordinates misbehave
// and *how* (crash after k records, run slowed down), and a FaultInjector
// resolves the plan for one job. Faults flow into task execution through
// TaskContext (task_context.h) — mappers and reducers stay untouched.
//
// Two layers compose:
//   - targeted FaultSpecs pin an exact (phase, task, attempt-range),
//     which the unit tests use to script crash/retry/speculation stories;
//   - a probabilistic layer hashes (seed, job, phase, task, attempt) to a
//     deterministic uniform draw, so "10% of attempts crash" reproduces
//     bit-for-bit across runs and thread counts.
//
// Recoverability: a plan whose every crash stops firing before
// JobSpec::max_task_attempts is *recoverable* — the engine's retry layer
// re-executes each faulted task and, because attempts are deterministic and
// attempt-scoped, the job output is byte-identical to the fault-free run.
// A plan with a permanent crash fails the job with a structured Status.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace fj::mr {

/// Which half of a MapReduce job a task belongs to.
enum class TaskPhase { kMap, kReduce };

const char* TaskPhaseName(TaskPhase phase);

/// Where a CorruptRecord fault flips its byte. Corruption is a *real*
/// mutation of the attempt's data (see integrity.h): with
/// JobSpec::verify_integrity on, the checksum layer detects it at the
/// producing attempt's commit and converts it into a transient task failure
/// (a re-run under the max_task_attempts budget); with verification off the
/// corrupted bytes flow silently downstream — the failure mode HDFS block
/// checksums exist to prevent.
enum class CorruptTarget {
  kNone = 0,
  kMapOutput,     ///< a pair in the map attempt's (in-memory) final run
  kSpill,         ///< a pair in a budget-triggered on-disk spill run
  kReduceOutput,  ///< a line of the reduce attempt's output
};

const char* CorruptTargetName(CorruptTarget target);

/// The resolved disturbance applied to one task attempt. The default value
/// is "no fault": never crashes, runs at full speed.
struct AttemptFault {
  static constexpr uint64_t kNoCrash = ~0ULL;

  /// The attempt crashes once it has processed this many records (map:
  /// input records; reduce: key groups). kNoCrash = runs to completion.
  /// A value at or above the attempt's record count never fires.
  uint64_t crash_after_records = kNoCrash;

  /// Straggler factor multiplied into the attempt's cost (measured wall
  /// time + charged seconds). 1.0 = full speed.
  double slowdown = 1.0;

  /// Absolute simulated seconds added to the attempt's cost — a straggler
  /// charge that dominates measurement noise, which keeps speculation
  /// tests deterministic on microsecond-scale local tasks.
  double extra_seconds = 0.0;

  /// Corrupt one record of the attempt's output at this location (kNone =
  /// no corruption). corrupt_salt picks the run/record/bit
  /// deterministically.
  CorruptTarget corrupt_target = CorruptTarget::kNone;
  uint64_t corrupt_salt = 0;

  bool crashes() const { return crash_after_records != kNoCrash; }
  bool corrupts() const { return corrupt_target != CorruptTarget::kNone; }
  bool any() const {
    return crashes() || corrupts() || slowdown != 1.0 || extra_seconds != 0.0;
  }
};

/// One scripted fault: applies to attempts [first_attempt,
/// first_attempt + failing_attempts) of (phase, task_id) in every job whose
/// name contains job_substring.
struct FaultSpec {
  static constexpr uint32_t kAllAttempts = ~0u;

  TaskPhase phase = TaskPhase::kMap;
  size_t task_id = 0;

  /// First attempt the fault applies to (0 = the original attempt; 1 = the
  /// first retry or a speculative backup).
  uint32_t first_attempt = 0;
  /// Number of consecutive attempts affected. 1 models a transient fault;
  /// kAllAttempts a permanent one (the task can never succeed).
  uint32_t failing_attempts = 1;

  /// Crash after this many records; AttemptFault::kNoCrash for a
  /// straggler-only spec.
  uint64_t crash_after_records = AttemptFault::kNoCrash;

  /// Straggler behaviour (see AttemptFault).
  double slowdown = 1.0;
  double extra_seconds = 0.0;

  /// CorruptRecord behaviour: flip a byte of the attempt's output at this
  /// location (kNone = no corruption). The salt is folded with the
  /// (job, phase, task, attempt) coordinate so each affected attempt
  /// corrupts a deterministic but distinct record.
  CorruptTarget corrupt_target = CorruptTarget::kNone;
  uint64_t corrupt_salt = 0;

  /// Empty matches every job; otherwise the job's name must contain this
  /// substring (e.g. "stage2" to fault only the kernel job of a pipeline).
  std::string job_substring;

  bool AppliesTo(TaskPhase p, size_t task, uint32_t attempt,
                 const std::string& job_name) const;
};

/// A complete description of the faults injected into a run: scripted
/// specs plus a seed-driven probabilistic layer. Plans are engine-agnostic
/// data — the same plan can be handed to every job of a pipeline.
struct FaultPlan {
  std::vector<FaultSpec> faults;

  /// Seed for the probabilistic layer. Every (job, phase, task, attempt)
  /// coordinate is hashed together with the seed into a uniform draw, so
  /// the same plan produces the same faults regardless of thread count or
  /// execution order.
  uint64_t seed = 0;

  /// Per-attempt crash probability. Drawn crashes fire after a
  /// hash-derived record count in [0, crash_after_records].
  double crash_probability = 0.0;
  uint64_t crash_after_records = 8;
  /// Random crashes only hit attempts below this bound — keeping the
  /// probabilistic layer transient (recoverable) as long as the bound is
  /// below JobSpec::max_task_attempts.
  uint32_t crash_failing_attempts = 2;

  /// Per-task straggler probability (first attempt only — a backup or
  /// retry lands on a "different node" and runs at full speed).
  double straggler_probability = 0.0;
  double straggler_slowdown = 4.0;
  double straggler_extra_seconds = 0.0;

  /// Per-attempt CorruptRecord probability. Drawn corruptions pick a
  /// phase-appropriate target (map output or spill for map attempts,
  /// reduce output for reduce attempts) and a hash-derived salt.
  double corrupt_probability = 0.0;
  /// Random corruption only hits attempts below this bound — transient as
  /// long as the bound is below JobSpec::max_task_attempts AND integrity
  /// verification is on to convert detections into retries.
  uint32_t corrupt_failing_attempts = 2;

  /// True when the plan injects nothing at all.
  bool Empty() const;

  /// True when every fault the plan can produce stops firing before
  /// `max_task_attempts` — i.e. the retry layer is guaranteed to recover
  /// and the job output is byte-identical to the fault-free run.
  /// Corruption is only recoverable when `verify_integrity` is on: without
  /// the checksum layer nothing converts a flipped byte into a retry, so
  /// any corrupting plan is unrecoverable (silent wrong output).
  bool RecoverableWith(uint32_t max_task_attempts,
                       bool verify_integrity = false) const;
};

/// Resolves a FaultPlan for one job. Cheap to construct per job; FaultFor
/// is pure (const, no state), so concurrent task attempts can query it
/// without synchronization.
class FaultInjector {
 public:
  /// Inactive injector: never faults.
  FaultInjector() = default;

  /// `plan` may be nullptr (fault-free). The plan must outlive the
  /// injector.
  FaultInjector(const FaultPlan* plan, std::string job_name);

  bool active() const { return plan_ != nullptr && !plan_->Empty(); }

  /// The combined fault for one attempt: scripted specs stack (slowdowns
  /// multiply, the earliest crash wins) on top of the probabilistic layer.
  AttemptFault FaultFor(TaskPhase phase, size_t task_id,
                        uint32_t attempt) const;

 private:
  const FaultPlan* plan_ = nullptr;
  std::string job_name_;
};

}  // namespace fj::mr
