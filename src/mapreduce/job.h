// The MapReduce engine: a single-machine, fully-metered implementation of
// the Hadoop execution contract that the paper's algorithms program against.
//
// Supported hooks (all used somewhere in the fuzzyjoin pipeline):
//   - map / combine / reduce with per-task Setup and Teardown ("configure"
//     and "close" in Hadoop 0.20) — OPTO emits its whole output in Teardown;
//   - a combiner that aggregates map output locally before the shuffle
//     (stage 1 token counting);
//   - a custom partitioner decoupled from the sort order — PK partitions on
//     the token group only while sorting on (group, length), the R-S kernels
//     additionally ignore the relation tag when partitioning;
//   - a custom sort comparator and a custom *group* comparator, so one
//     reduce call can span keys that differ in the secondary-sort fields;
//   - multiple input files with the originating file visible to the mapper
//     (stage 3 BRJ distinguishes record files from RID-pair files);
//   - counters, and per-task cost metering for the cluster cost model.
//
// Execution is layered like Hadoop's shuffle (see DESIGN.md):
//
//   map task   -> SortBuffer (job_spec.h + sort_buffer.h): pairs buffer
//                 against JobSpec::sort_buffer_bytes, are stable-sorted by
//                 (partition, key), combined per spill, and written out as
//                 sorted runs — spill I/O charged to the task's scratch;
//   reduce task-> RunMerger (run_merger.h): a streaming k-way merge over
//                 the partition's runs (heap over run cursors, ties broken
//                 by map-task-then-spill rank) feeds Reduce one contiguous
//                 key group at a time — the whole partition is never
//                 re-sorted or re-materialized.
//
// Fault tolerance (fault.h) adds a task-ATTEMPT layer on top:
//
//   - every task runs as a sequence of attempts, each with its own
//     TaskContext, CounterSet, SortBuffer/output, and (on the reduce side)
//     its own copy of the partition's runs — a crashed attempt is dropped
//     wholesale and can never leak partial spills, counters, or output
//     lines into the shuffle or the job result;
//   - a crashing attempt (per the job's FaultPlan) is retried up to
//     JobSpec::max_task_attempts; exhausting the budget fails the job with
//     a structured Status BEFORE any output file is written;
//   - with JobSpec::speculative_execution, tasks whose committed cost
//     exceeds speculation_slowdown_factor x the phase median get a
//     speculative backup attempt; the first finisher (by simulated
//     completion time, backups handicapped by the detection delay) wins
//     the COST-ACCOUNTING commit and the loser's cost is recorded as
//     wasted work. The data hand-off is never re-pointed: attempts are
//     deterministic, so the backup's bytes are identical to the
//     primary's already-published bytes — which is what lets reduce
//     tasks start consuming the shuffle while map backups still run
//     (and means a backup can never poison committed data);
//   - committed TaskMetrics/counters always describe exactly one clean
//     attempt, so a faulted run's committed metrics — and its output
//     bytes — match the fault-free run; the wasted work is tracked in the
//     attempt-bookkeeping fields the cluster model prices separately.
//
// Data integrity (integrity.h + JobSpec::verify_integrity) adds the HDFS
// checksum analogue on top of the attempt layer:
//
//   - job inputs are verified against their Dfs hashes before the map
//     phase (a DataLoss input fails the job with a structured Status);
//   - sorted runs carry write-side checksums (SortedRun::checksum) that
//     are re-verified at map-attempt commit and at the reduce side's
//     run-merge read; reduce output lines are hashed at emit and
//     re-verified at the attempt's commit;
//   - a mismatch — e.g. an injected CorruptRecord fault, which really
//     mutates a record — crashes the DETECTING attempt, so the ordinary
//     retry loop re-runs the producing attempt under max_task_attempts
//     and a recoverable corruption plan still yields byte-identical
//     output. With verification off the corrupted bytes flow silently.
//   - verified bytes/detections are metered in TaskMetrics (accumulated
//     across failed attempts too) and priced by the cluster model.
//
// The output file commits atomically: lines are written under a temp name
// and renamed into place (Dfs::RenameFile), so no observer can ever read a
// partial output file under the final name. Mappers may route unparsable
// input lines to TaskContext::QuarantineRecord instead of aborting; the
// committed lines land in `<output_file>.bad`, bounded by
// JobSpec::max_skipped_records.
//
// Execution (common/executor.h) is task-graph scheduling on a persistent
// work-stealing executor, not barrier-per-phase:
//
//   - every map task is spawned onto the executor (normally the pipeline's
//     shared JobSpec::executor; a job-private one otherwise). A map task's
//     commit PUBLISHES its sorted runs into per-(map-task x partition)
//     shuffle slots and decrements each partition's pending-input counter;
//     the decrement that hits zero spawns that reduce task. Slots are
//     indexed by map task, so runs are consumed in map-task-then-spill
//     order no matter which order commits land in — the rank order the
//     merger's tie-break relies on;
//   - speculative backups narrow the old map->reduce barrier instead of
//     re-imposing it: reduce tasks overlap still-running map backups,
//     which only ever re-commit cost accounting (see above);
//   - reduce attempts that must copy their runs (preserve_runs) reuse a
//     per-WORKER scratch buffer — overwritten in full by each attempt, so
//     attempt isolation is preserved without reallocating per attempt;
//   - an exception escaping a task surfaces as an Internal Status from
//     the job (first one wins), not a std::terminate;
//   - measured per-phase wall times and the executor's activity counters
//     land in JobMetrics (map/reduce_phase_wall_seconds, runtime) next to
//     the simulated charges.
//
// Determinism: runs are internally in emit order (stable sort) and the
// merge breaks ties toward earlier runs, so output is byte-identical to
// the legacy unbounded path (sort_buffer_bytes == 0, a single in-memory
// run per map task) — and, because attempts re-execute deterministically,
// also byte-identical under any recoverable fault plan AND under any
// thread count (committed counters and committed task metrics too; only
// wall-time-derived fields vary). Reduce output lines are written to the
// job's output file in the Dfs, concatenated in reduce-task order.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "common/hash.h"
#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/timer.h"
#include "mapreduce/contract.h"
#include "mapreduce/dfs.h"
#include "mapreduce/fault.h"
#include "mapreduce/input.h"
#include "mapreduce/integrity.h"
#include "mapreduce/job_spec.h"
#include "mapreduce/metrics.h"
#include "mapreduce/run_merger.h"
#include "mapreduce/shuffle_segment.h"
#include "mapreduce/shuffle_transport.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

/// Executes JobSpecs against a Dfs.
template <typename K, typename V>
class Job {
 public:
  Job(Dfs* dfs, JobSpec<K, V> spec) : dfs_(dfs), spec_(std::move(spec)) {}

  /// Runs the job; on success the output file exists in the Dfs and the
  /// returned metrics describe every task. A task that fails permanently
  /// (every attempt crashed) returns a non-OK Status and writes nothing.
  Result<JobMetrics> Run();

 private:
  using Pair = std::pair<K, V>;

  class VectorOutputEmitter : public OutputEmitter {
   public:
    VectorOutputEmitter(std::vector<std::string>* lines, TaskMetrics* metrics,
                        bool hash_lines)
        : lines_(lines), metrics_(metrics), hash_lines_(hash_lines) {}
    void Emit(std::string line) override {
      metrics_->output_records++;
      metrics_->output_bytes += line.size() + 1;
      // Write-side checksum of the attempt's output stream, re-verified at
      // commit (the reduce-output integrity boundary).
      if (hash_lines_) checksum_ = HashCombine(checksum_, LineChecksum(line));
      lines_->push_back(std::move(line));
    }
    uint64_t checksum() const { return checksum_; }

   private:
    std::vector<std::string>* lines_;
    TaskMetrics* metrics_;
    bool hash_lines_;
    uint64_t checksum_ = kFnvOffsetBasis;
  };

  /// Everything one attempt produces, scoped to the attempt so a crash
  /// discards it wholesale.
  struct MapAttemptResult {
    bool crashed = false;
    TaskMetrics metrics;
    CounterSet counters;
    MapTaskOutput<K, V> output;
    /// Malformed input lines the attempt quarantined (committed with it).
    std::vector<std::string> quarantined;
    /// Contract violation found by this attempt (JobSpec::check_contracts).
    /// Attempts are deterministic, so a violation is PERMANENT: the job
    /// fails with this Status immediately, no retry.
    Status contract;
  };

  struct ReduceAttemptResult {
    bool crashed = false;
    TaskMetrics metrics;
    CounterSet counters;
    std::vector<std::string> output;
    /// See MapAttemptResult::contract.
    Status contract;
  };

  // Copies a finished task's scratch I/O into the attempt's counters.
  static void AccountScratch(const TaskContext& ctx, CounterSet* counters) {
    const LocalScratch& scratch = ctx.scratch();
    if (scratch.bytes_written() > 0 || scratch.bytes_read() > 0) {
      counters->Add("scratch.bytes_written",
                    static_cast<int64_t>(scratch.bytes_written()));
      counters->Add("scratch.bytes_read",
                    static_cast<int64_t>(scratch.bytes_read()));
    }
    if (scratch.spill_bytes_written() > 0 || scratch.spill_bytes_read() > 0) {
      counters->Add("scratch.spill_bytes_written",
                    static_cast<int64_t>(scratch.spill_bytes_written()));
      counters->Add("scratch.spill_bytes_read",
                    static_cast<int64_t>(scratch.spill_bytes_read()));
    }
  }

  /// The attempt's cost: measured wall time plus simulated charges, slowed
  /// down by any straggler fault.
  static double AttemptSeconds(const WallTimer& timer, const TaskContext& ctx,
                               const AttemptFault& fault) {
    return (timer.ElapsedSeconds() + ctx.charged_seconds()) * fault.slowdown +
           fault.extra_seconds;
  }

  /// Median of the committed task costs of one phase — the speculation
  /// detector's notion of "normal" (and of when it noticed the straggler).
  static double MedianSeconds(const std::vector<TaskMetrics>& tasks) {
    std::vector<double> secs;
    secs.reserve(tasks.size());
    for (const TaskMetrics& t : tasks) secs.push_back(t.seconds);
    std::sort(secs.begin(), secs.end());
    return secs.empty() ? 0.0 : secs[secs.size() / 2];
  }

  /// Injected CorruptRecord fault: really mutates the attempt's shuffle
  /// output, AFTER the write-side checksums were computed — exactly the
  /// window HDFS block checksums guard. Prefers a run matching the fault's
  /// target (on-disk spill vs. in-memory map output), falling back to any
  /// non-empty run so a kSpill fault still bites when the job never
  /// spilled. Text runs get one value mutated; binary runs get one byte of
  /// the ENCODED block flipped — bit rot hits the stored representation,
  /// compressed or not, and must still be caught at the read boundaries.
  static void CorruptMapOutput(MapTaskOutput<K, V>* out,
                               const AttemptFault& fault) {
    std::vector<SortedRun<K, V>*> any, preferred;
    const bool want_disk = fault.corrupt_target == CorruptTarget::kSpill;
    for (auto& spill : out->spills) {
      for (SortedRun<K, V>& run : spill) {
        if (!run.HasRecords()) continue;
        any.push_back(&run);
        if (run.on_disk == want_disk) preferred.push_back(&run);
      }
    }
    auto& pool = preferred.empty() ? any : preferred;
    if (pool.empty()) return;  // nothing to corrupt: the attempt stays clean
    SortedRun<K, V>* run = pool[fault.corrupt_salt % pool.size()];
    if (!run->encoded.empty()) {
      std::string& block = run->encoded;
      block[HashInt64(fault.corrupt_salt) % block.size()] ^=
          static_cast<char>(1u << (1 + fault.corrupt_salt % 7));
      return;
    }
    auto& pair = run->pairs[HashInt64(fault.corrupt_salt) % run->pairs.size()];
    // Corrupt the value side: record data, not routing metadata — flipping
    // a key could silently re-partition instead of modelling bit rot.
    CorruptInPlace(pair.second, HashInt64(fault.corrupt_salt ^ 0x5eed));
  }

  MapAttemptResult RunMapAttempt(const InputSplit& split,
                                 const std::vector<std::string>& lines,
                                 const SpecOrdering<K, V>& ordering,
                                 size_t task_id, uint32_t attempt,
                                 const AttemptFault& fault);

  /// `copy_scratch` is the executing worker's reusable run-copy buffer for
  /// the preserve_runs path; every attempt overwrites it in full, so reuse
  /// across attempts (and across tasks on the same worker) cannot leak
  /// state between them. `runs_encoded` says the input runs carry encoded
  /// payloads that must be decoded into the attempt's private copies —
  /// true for binary-format runs and for every run fetched through a
  /// shuffle transport (text runs cross the wire as encoded blocks too).
  ReduceAttemptResult RunReduceAttempt(
      const std::vector<SortedRun<K, V>*>& partition_runs, bool preserve_runs,
      bool runs_encoded, const SpecOrdering<K, V>& ordering,
      size_t merge_factor, size_t task_id, uint32_t attempt,
      const AttemptFault& fault, std::vector<SortedRun<K, V>>* copy_scratch);

  Dfs* dfs_;
  JobSpec<K, V> spec_;
};

template <typename K, typename V>
typename Job<K, V>::MapAttemptResult Job<K, V>::RunMapAttempt(
    const InputSplit& split, const std::vector<std::string>& lines,
    const SpecOrdering<K, V>& ordering, size_t task_id, uint32_t attempt,
    const AttemptFault& fault) {
  MapAttemptResult res;
  WallTimer timer;
  TaskContext ctx(task_id, attempt, &res.counters);
  ctx.set_fault(fault);
  // Attempt-scoped contract checker: like counters and the sort buffer, a
  // crashed attempt's checker state is dropped with the attempt.
  std::optional<KeyContractChecker<K, SpecOrdering<K, V>>> checker;
  if (spec_.check_contracts) {
    checker.emplace(&ordering, spec_.num_reduce_tasks,
                    spec_.contract_sample_every, spec_.name);
  }
  SortBuffer<K, V> buffer(&spec_, &ordering, &ctx, &res.metrics, &res.output,
                          checker ? &*checker : nullptr);

  auto mapper = spec_.mapper_factory();
  mapper->Setup(&ctx);
  for (size_t i = split.begin_line; i < split.end_line; ++i) {
    if (ctx.CrashDue()) {
      res.crashed = true;
      break;
    }
    // A latched contract violation fails the whole job; stop feeding the
    // mapper so the attempt winds down fast.
    if (checker && !checker->ok()) break;
    InputRecord record{split.file_index, &split.file_name, i, &lines[i]};
    mapper->Map(record, &buffer, &ctx);
    ctx.NoteRecordProcessed();
    res.metrics.input_records++;
    res.metrics.input_bytes += lines[i].size() + 1;
  }
  // A crash budget equal to the split size fires before Teardown — the
  // attempt dies without flushing (OPTO-style Teardown emitters included).
  if (!res.crashed && ctx.CrashDue()) res.crashed = true;
  if (!res.crashed && (!checker || checker->ok())) {
    mapper->Teardown(&buffer, &ctx);
    buffer.Flush();
    AccountScratch(ctx, &res.counters);
    res.quarantined = ctx.TakeQuarantined();
  }
  if (checker) {
    // Every observed key did a partition-range check; the rest of the work
    // is counted per predicate evaluation in ContractStats::checks.
    res.metrics.contract_checks =
        checker->stats().checks + checker->stats().keys_observed;
    res.contract = checker->status();
    if (!res.contract.ok()) {
      res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
      return res;
    }
  }
  if (!res.crashed && (fault.corrupt_target == CorruptTarget::kMapOutput ||
                       fault.corrupt_target == CorruptTarget::kSpill)) {
    CorruptMapOutput(&res.output, fault);
  }
  // Commit-time verification of the attempt's runs against their
  // write-side checksums. A mismatch converts the corruption into a
  // transient failure: the attempt is marked crashed and the ordinary
  // retry loop re-runs the producing attempt.
  if (!res.crashed && spec_.verify_integrity) {
    for (auto& spill : res.output.spills) {
      for (const SortedRun<K, V>& run : spill) {
        if (!run.HasRecords()) continue;
        res.metrics.integrity_bytes_verified += run.bytes;
        // Binary runs are checksummed over their encoded block bytes (the
        // bytes the shuffle actually carries); text runs over their pairs.
        const uint64_t actual = run.encoded.empty()
                                    ? RunChecksum(run.pairs)
                                    : HashString(run.encoded);
        if (actual != run.checksum) {
          res.metrics.corruption_detected++;
          res.crashed = true;
        }
      }
    }
  }
  res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
  return res;
}

template <typename K, typename V>
typename Job<K, V>::ReduceAttemptResult Job<K, V>::RunReduceAttempt(
    const std::vector<SortedRun<K, V>*>& partition_runs, bool preserve_runs,
    bool runs_encoded, const SpecOrdering<K, V>& ordering, size_t merge_factor,
    size_t task_id, uint32_t attempt, const AttemptFault& fault,
    std::vector<SortedRun<K, V>>* copy_scratch) {
  ReduceAttemptResult res;
  WallTimer timer;
  TaskContext ctx(task_id, attempt, &res.counters);
  ctx.set_fault(fault);
  VectorOutputEmitter out(&res.output, &res.metrics,
                          /*hash_lines=*/spec_.verify_integrity);

  // The merge consumes its input runs, so when this task may run more than
  // once (faults or speculation active) each attempt merges an
  // attempt-scoped copy and the shuffle data stays pristine for the next
  // attempt. The copies land in the worker's reusable scratch (every
  // element copy-assigned from the pristine run, so nothing of a previous
  // attempt survives, but pair-vector capacity is recycled). Fault-free
  // text jobs keep the zero-copy path; encoded runs (binary format, or
  // anything fetched through a shuffle transport) always copy, because
  // decoding the encoded block IS the attempt-isolation copy — the
  // pristine published block is never touched.
  const bool binary = spec_.record_format == RecordFormat::kBinary;
  std::vector<SortedRun<K, V>>& copies = *copy_scratch;
  std::vector<SortedRun<K, V>*> runs;
  if (preserve_runs || runs_encoded) {
    copies.resize(partition_runs.size());
    runs.reserve(partition_runs.size());
    for (size_t i = 0; i < partition_runs.size(); ++i) {
      copies[i] = *partition_runs[i];
      runs.push_back(&copies[i]);
    }
  } else {
    runs = partition_runs;
  }

  // Run-merge read verification (the "checksum on read" half): each run is
  // re-verified before the merge consumes it. Map-commit verification means
  // a corrupted run normally never gets this far, but the read-side check
  // is what the cost model prices — HDFS clients verify every block read.
  // Binary runs verify the encoded block bytes BEFORE any decode touches
  // them, like an HDFS client checksumming a compressed block on read.
  if (spec_.verify_integrity) {
    for (const SortedRun<K, V>* run : runs) {
      if (!run->HasRecords()) continue;
      res.metrics.integrity_bytes_verified += run->bytes;
      const uint64_t actual = run->encoded.empty() ? RunChecksum(run->pairs)
                                                   : HashString(run->encoded);
      if (actual != run->checksum) {
        res.metrics.corruption_detected++;
        res.crashed = true;
      }
    }
    if (res.crashed) {
      res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
      return res;
    }
  }

  // Decode encoded runs into the attempt's private copies. A block that
  // fails to decode (truncated varint, bad codec frame) crashes the
  // attempt with a counted detection — a transient failure under the
  // retry budget, never UB and never silently-wrong pairs. Codec CPU is
  // only metered in binary format: transport-encoded text runs keep the
  // text job's committed counters identical to the in-process run.
  if (runs_encoded) {
    for (SortedRun<K, V>* run : runs) {
      if (run->encoded.empty()) continue;
      Status decoded = DecodeRunBlock(run->encoded, &run->pairs);
      if (!decoded.ok()) {
        res.metrics.corruption_detected++;
        res.crashed = true;
        res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
        return res;
      }
      if (binary) {
        res.metrics.codec_encoded_bytes += run->encoded.size();
        res.metrics.codec_logical_bytes += run->logical_bytes;
      }
      run->encoded.clear();
      run->encoded.shrink_to_fit();
    }
  }
  for (const SortedRun<K, V>* run : runs) {
    res.metrics.input_records += run->pairs.size();
    res.metrics.input_bytes += run->bytes;
  }

  // Reduce-side contract checker: verifies group contiguity, merge order,
  // and that user code leaves group keys untouched mid-call.
  std::optional<GroupContractChecker<K, SpecOrdering<K, V>>> checker;
  if (spec_.check_contracts) checker.emplace(&ordering, spec_.name);

  auto reducer = spec_.reducer_factory();
  reducer->Setup(&ctx);
  RunMerger<K, V> merger(&ordering, std::move(runs), merge_factor, &ctx,
                         &res.metrics);
  merger.ForEachGroup(
      [&reducer, &out, &ctx, &res, &checker](std::span<const Pair> group)
          -> bool {
        if (ctx.CrashDue()) {
          res.crashed = true;
          return false;
        }
        uint64_t key_fingerprint = 0;
        if (checker) {
          key_fingerprint = checker->ObserveGroup(group.front().first);
          if (!checker->ok()) return false;
        }
        reducer->Reduce(group.front().first, group, &out, &ctx);
        if (checker) {
          checker->CheckKeyUnchanged(group.front().first, key_fingerprint);
          if (!checker->ok()) return false;
        }
        ctx.NoteRecordProcessed();
        return true;
      });
  if (checker) {
    res.metrics.contract_checks = checker->stats().checks;
    res.contract = checker->status();
    if (!res.contract.ok()) {
      res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
      return res;
    }
  }
  if (!res.crashed && ctx.CrashDue()) res.crashed = true;
  if (!res.crashed) {
    reducer->Teardown(&out, &ctx);
    AccountScratch(ctx, &res.counters);
  }
  if (!res.crashed && fault.corrupt_target == CorruptTarget::kReduceOutput &&
      !res.output.empty()) {
    CorruptInPlace(res.output[fault.corrupt_salt % res.output.size()],
                   HashInt64(fault.corrupt_salt ^ 0x07));
  }
  // Commit-time verification of the attempt's output lines against the
  // emitter's write-side stream hash.
  if (!res.crashed && spec_.verify_integrity) {
    uint64_t fold = kFnvOffsetBasis;
    for (const std::string& line : res.output) {
      fold = HashCombine(fold, LineChecksum(line));
      res.metrics.integrity_bytes_verified += line.size() + 1;
    }
    if (fold != out.checksum()) {
      res.metrics.corruption_detected++;
      res.crashed = true;
    }
  }
  res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
  return res;
}

template <typename K, typename V>
Result<JobMetrics> Job<K, V>::Run() {
  if (!spec_.mapper_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no mapper");
  }
  if (!spec_.reducer_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no reducer");
  }
  if (spec_.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': num_reduce_tasks must be >= 1");
  }
  if (spec_.merge_factor < 2) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': merge_factor must be >= 2");
  }
  if (spec_.max_task_attempts < 1) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': max_task_attempts must be >= 1");
  }
  if (spec_.speculative_execution && spec_.speculation_slowdown_factor <= 1.0) {
    return Status::InvalidArgument(
        "job '" + spec_.name + "': speculation_slowdown_factor must be > 1");
  }
  if (spec_.check_contracts && spec_.contract_sample_every < 1) {
    return Status::InvalidArgument(
        "job '" + spec_.name + "': contract_sample_every must be >= 1");
  }
  if (spec_.input_files.empty()) {
    return Status::InvalidArgument("job '" + spec_.name + "': no input files");
  }

  WallTimer job_timer;
  JobMetrics metrics;
  metrics.job_name = spec_.name;

  FJ_ASSIGN_OR_RETURN(std::vector<InputSplit> splits,
                      dfs_->MakeSplits(spec_.input_files, spec_.num_map_tasks));

  // Resolve input file contents up front (pointers stay valid: Dfs never
  // moves a file's line storage).
  std::vector<const std::vector<std::string>*> file_lines(
      spec_.input_files.size());
  for (size_t i = 0; i < spec_.input_files.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(file_lines[i], dfs_->ReadFile(spec_.input_files[i]));
  }

  // Input integrity: verify every input file against its Dfs checksums
  // before any task reads it. A corrupted input has no healthy producer to
  // re-run, so this is a structured job failure, not a retry.
  uint64_t input_integrity_bytes = 0;
  if (spec_.verify_integrity) {
    for (const std::string& file : spec_.input_files) {
      Result<uint64_t> verified = dfs_->VerifyFile(file);
      if (!verified.ok()) {
        return Status(verified.status().code(),
                      "job '" + spec_.name + "': " +
                          verified.status().message());
      }
      input_integrity_bytes += *verified;
    }
  }

  const size_t num_map_tasks = splits.size();
  const size_t num_reduce_tasks = spec_.num_reduce_tasks;
  const SpecOrdering<K, V> ordering(&spec_);
  const FaultInjector injector(spec_.fault_plan.get(), spec_.name);
  // Reduce attempts must not consume the shuffle when a retry or backup
  // might need it again.
  const bool preserve_runs = injector.active() || spec_.speculative_execution;
  // Shuffle transport (spec_.transport): when set, committed map output
  // crosses a real hand-off — encoded, Publish()ed, Fetch()ed back, and
  // checksum-verified — and the reduce side merges the FETCHED bytes.
  ShuffleTransport* const transport = spec_.transport.get();
  const uint64_t net_losses_before =
      transport ? transport->worker_losses() : 0;
  // Transport-fetched runs arrive with encoded payloads even in text
  // format (they crossed the wire as blocks), so reduce attempts decode.
  const bool runs_encoded =
      spec_.record_format == RecordFormat::kBinary || transport != nullptr;

  // The host executor: normally the pipeline's shared one (one set of
  // persistent workers serving every job of every stage); a standalone
  // job gets a private executor sized by local_threads.
  std::shared_ptr<Executor> executor = spec_.executor;
  if (!executor) executor = std::make_shared<Executor>(spec_.local_threads);
  const ExecutorStats runtime_before = executor->stats();

  // First permanent task failure wins; later ones are redundant detail.
  // job_failed is the lock-free "already latched?" flag task bodies poll.
  // Job-local latch; ranked kJobState — held across nothing but the
  // status write, always acquired from task bodies that hold no lock.
  Mutex failure_mu{"job.failure", lock_rank::kJobState};
  Status job_status;
  std::atomic<bool> job_failed{false};
  auto record_failure = [this, &failure_mu, &job_status, &job_failed](
                            TaskPhase phase, size_t task_id) {
    MutexLock lock(&failure_mu);
    if (job_status.ok()) {
      job_status = Status::Internal(
          "job '" + spec_.name + "': " + TaskPhaseName(phase) + " task " +
          std::to_string(task_id) + " failed permanently after " +
          std::to_string(spec_.max_task_attempts) + " attempts");
    }
    job_failed.store(true, std::memory_order_release);
  };
  // Contract violations are deterministic user-code bugs, not transient
  // faults: the first one fails the job (no retry, no output).
  auto latch_status = [&failure_mu, &job_status, &job_failed](const Status& s) {
    MutexLock lock(&failure_mu);
    if (job_status.ok()) job_status = s;
    job_failed.store(true, std::memory_order_release);
  };

  metrics.map_tasks.resize(num_map_tasks);
  metrics.reduce_tasks.resize(num_reduce_tasks);
  std::vector<MapTaskOutput<K, V>> map_outputs(num_map_tasks);
  std::vector<std::vector<std::string>> quarantined(num_map_tasks);
  std::vector<std::vector<std::string>> reduce_outputs(num_reduce_tasks);

  // Unbounded runs are plain in-memory vectors; a single merge pass over
  // any number of them is free, so the multi-pass collapse (and its disk
  // charges) only applies when the job actually spills.
  const size_t merge_factor = spec_.sort_buffer_bytes > 0
                                  ? spec_.merge_factor
                                  : std::numeric_limits<size_t>::max();

  // ---- Task-graph state ----
  // The shuffle hand-off is partition-granular: map_outputs[m] is task m's
  // slot row (its committed runs, per partition), and reduce task r is
  // released the instant reduce_inputs_pending[r] — decremented once per
  // finished map task, acq_rel so the publish is visible — hits zero.
  // Failed maps decrement too; the reduce bodies early-out on the latched
  // status, which keeps the countdown total.
  std::vector<std::atomic<size_t>> reduce_inputs_pending(num_reduce_tasks);
  for (auto& pending : reduce_inputs_pending) {
    pending.store(num_map_tasks, std::memory_order_relaxed);
  }
  // Built by each reduce task from the committed slot board, reused by
  // its speculative backup (which runs strictly after it).
  std::vector<std::vector<SortedRun<K, V>*>> partition_runs(num_reduce_tasks);
  // Transport runs only: the fetched-and-verified segments, decoded back
  // into runs (payloads still encoded) at [map task][partition]. Written
  // by the map commit hand-off strictly BEFORE the countdown decrement
  // that can release partition r, read by reduce tasks after it — the
  // countdown is the synchronization edge.
  std::vector<std::vector<std::vector<SortedRun<K, V>>>> fetched_slots(
      transport ? num_map_tasks : 0,
      std::vector<std::vector<SortedRun<K, V>>>(num_reduce_tasks));
  Mutex net_mu{"job.net", lock_rank::kJobState};  // guards the metrics.net_* accumulators
  std::atomic<size_t> maps_remaining{num_map_tasks};
  std::atomic<size_t> reduces_remaining{num_reduce_tasks};
  // Measured phase walls, stamped by whichever worker completed the
  // phase; read by this thread only after the group Wait synchronizes.
  double map_done_wall = 0;
  double reduce_done_wall = 0;

  // Per-worker reduce-side run-copy scratch (see RunReduceAttempt). The
  // extra slot serves a non-worker caller — impossible today, but it
  // keeps the indexing total.
  std::vector<std::vector<SortedRun<K, V>>> reduce_scratch(
      executor->num_workers() + 1);
  auto worker_scratch = [&reduce_scratch, &executor] {
    const size_t w = executor->CurrentWorkerIndex();
    return &reduce_scratch[w == Executor::kNotAWorker
                               ? reduce_scratch.size() - 1
                               : w];
  };

  TaskGroup group(executor.get());

  // ---- Task bodies ----
  // The retry chain of one map task: attempts run sequentially on one
  // worker until one commits (or the budget is exhausted).
  auto run_map_chain = [this, &splits, &file_lines, &metrics, &map_outputs,
                        &quarantined, &ordering, &injector, &record_failure,
                        &latch_status](size_t m) {
      const InputSplit& split = splits[m];
      const std::vector<std::string>& lines = *file_lines[split.file_index];
      uint32_t failed = 0;
      double failed_seconds = 0;
      // Verification work and detections accumulate across ALL attempts
      // (the bytes were really hashed even when the attempt then crashed).
      uint64_t integrity_bytes = 0;
      uint32_t corruption_detected = 0;
      for (uint32_t attempt = 0; attempt < spec_.max_task_attempts;
           ++attempt) {
        MapAttemptResult res =
            RunMapAttempt(split, lines, ordering, m, attempt,
                          injector.FaultFor(TaskPhase::kMap, m, attempt));
        integrity_bytes += res.metrics.integrity_bytes_verified;
        corruption_detected += res.metrics.corruption_detected;
        if (!res.contract.ok()) {
          // Deterministic violation — retrying would find it again.
          metrics.map_tasks[m].contract_checks = res.metrics.contract_checks;
          latch_status(res.contract);
          return;
        }
        if (res.crashed) {
          failed++;
          failed_seconds += res.metrics.seconds;
          continue;
        }
        // Commit: the clean attempt's metrics, counters, and shuffle
        // output become the task's result; failed attempts only leave
        // their cost behind.
        TaskMetrics committed = std::move(res.metrics);
        committed.attempts = failed + 1;
        committed.failed_attempts = failed;
        committed.failed_attempt_seconds = failed_seconds;
        committed.integrity_bytes_verified = integrity_bytes;
        committed.corruption_detected = corruption_detected;
        metrics.map_tasks[m] = std::move(committed);
        metrics.counters.MergeFrom(res.counters);
        map_outputs[m] = std::move(res.output);
        quarantined[m] = std::move(res.quarantined);
        return;
      }
      metrics.map_tasks[m].attempts = failed;
      metrics.map_tasks[m].failed_attempts = failed;
      metrics.map_tasks[m].failed_attempt_seconds = failed_seconds;
      metrics.map_tasks[m].integrity_bytes_verified = integrity_bytes;
      metrics.map_tasks[m].corruption_detected = corruption_detected;
      record_failure(TaskPhase::kMap, m);
  };

  // Speculative map backups, spawned by the map phase's completion
  // continuation: back up stragglers, first finisher (by simulated time)
  // wins the COST commit. The backup never re-points map_outputs[m]:
  // attempts are deterministic, so its bytes equal the already-published
  // primary bytes — which is exactly what lets the released reduce tasks
  // keep consuming the shuffle while backups are still in flight.
  auto spawn_map_backups = [this, &group, &splits, &file_lines, &metrics,
                            &ordering, &injector, num_map_tasks] {
    if (!spec_.speculative_execution || num_map_tasks < 2) return;
    const double median = MedianSeconds(metrics.map_tasks);
    const double threshold = median * spec_.speculation_slowdown_factor;
    for (size_t m = 0; m < num_map_tasks; ++m) {
      if (median <= 0 || metrics.map_tasks[m].seconds <= threshold) continue;
      group.Spawn([this, m, median, &splits, &file_lines, &metrics, &ordering,
                   &injector] {
        const InputSplit& split = splits[m];
        const std::vector<std::string>& lines = *file_lines[split.file_index];
        TaskMetrics& task = metrics.map_tasks[m];
        const uint32_t attempt = task.attempts;
        MapAttemptResult res =
            RunMapAttempt(split, lines, ordering, m, attempt,
                          injector.FaultFor(TaskPhase::kMap, m, attempt));
        task.attempts++;
        task.speculative_launched = true;
        task.integrity_bytes_verified += res.metrics.integrity_bytes_verified;
        task.corruption_detected += res.metrics.corruption_detected;
        if (res.crashed) {
          // The backup died (or would have been killed at the straggler's
          // commit, whichever came first); the straggler's commit stands.
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds,
              std::max(0.0, task.failed_attempt_seconds + task.seconds -
                                median));
          return;
        }
        // First-finisher-wins: the straggler has been running since the
        // phase started (behind its failed attempts); the backup launched
        // when the detector noticed — at the phase median. The loser is
        // KILLED at the winner's commit, so it only occupies its slot
        // until then — that kill is what makes speculation pay.
        const double primary_finish =
            task.failed_attempt_seconds + task.seconds;
        const double backup_finish = median + res.metrics.seconds;
        if (backup_finish < primary_finish) {
          TaskMetrics committed = std::move(res.metrics);
          committed.attempts = task.attempts;
          committed.failed_attempts = task.failed_attempts;
          committed.failed_attempt_seconds = task.failed_attempt_seconds;
          committed.speculative_launched = true;
          committed.speculative_won = true;
          committed.speculative_loser_seconds =
              task.speculative_loser_seconds +
              std::max(0.0, backup_finish - task.failed_attempt_seconds);
          committed.integrity_bytes_verified = task.integrity_bytes_verified;
          committed.corruption_detected = task.corruption_detected;
          task = std::move(committed);
          // Deterministic attempts emit identical counters, output bytes,
          // and quarantined lines, so the primary's already-merged
          // counters — and its published runs — stand for the backup too.
        } else {
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds, std::max(0.0, primary_finish - median));
        }
      });
    }
  };

  // Map-phase completion continuation, run by whichever worker finished
  // the last map task. Quarantine accounting must precede the final
  // reduce release (the old engine checked it between the phases).
  auto on_maps_done = [this, &job_timer, &map_done_wall, &metrics,
                       &quarantined, &latch_status, &job_failed,
                       &spawn_map_backups] {
    map_done_wall = job_timer.ElapsedSeconds();
    // Quarantine bookkeeping: malformed input lines the committed map
    // attempts routed to TaskContext::QuarantineRecord (attempts are
    // deterministic, so retries and backups quarantine identically).
    for (const auto& task_lines : quarantined) {
      metrics.records_skipped += task_lines.size();
    }
    if (metrics.records_skipped > spec_.max_skipped_records) {
      latch_status(Status::DataLoss(
          "job '" + spec_.name + "': " +
          std::to_string(metrics.records_skipped) +
          " malformed input records exceed max_skipped_records=" +
          std::to_string(spec_.max_skipped_records)));
      return;
    }
    if (!job_failed.load(std::memory_order_acquire)) spawn_map_backups();
  };

  // The retry chain of one reduce task: a streaming k-way merge over the
  // partition's committed runs.
  auto run_reduce_chain = [this, preserve_runs, runs_encoded, transport,
                           &metrics, &map_outputs, &fetched_slots,
                           &partition_runs, &reduce_outputs, &ordering,
                           merge_factor, &injector, &record_failure,
                           &latch_status, &job_failed, &worker_scratch,
                           num_map_tasks](size_t r) {
      if (job_failed.load(std::memory_order_acquire)) return;
      // This partition's runs from every map task, in map-task-then-spill
      // order — the rank order the merger's tie-break relies on. The slot
      // board is indexed by map task, so commit ARRIVAL order cannot
      // perturb it. Under a transport the board is the FETCHED segments
      // (decoded back in spill order): the reduce side consumes what
      // crossed the wire, never the local map output.
      std::vector<SortedRun<K, V>*>& runs = partition_runs[r];
      if (transport) {
        for (size_t m = 0; m < num_map_tasks; ++m) {
          for (auto& run : fetched_slots[m][r]) runs.push_back(&run);
        }
      } else {
        for (size_t m = 0; m < num_map_tasks; ++m) {
          for (auto& spill : map_outputs[m].spills) {
            if (spill[r].HasRecords()) runs.push_back(&spill[r]);
          }
        }
      }
      uint32_t failed = 0;
      double failed_seconds = 0;
      uint64_t integrity_bytes = 0;
      uint32_t corruption_detected = 0;
      for (uint32_t attempt = 0; attempt < spec_.max_task_attempts;
           ++attempt) {
        ReduceAttemptResult res = RunReduceAttempt(
            runs, preserve_runs, runs_encoded, ordering, merge_factor, r,
            attempt, injector.FaultFor(TaskPhase::kReduce, r, attempt),
            worker_scratch());
        integrity_bytes += res.metrics.integrity_bytes_verified;
        corruption_detected += res.metrics.corruption_detected;
        if (!res.contract.ok()) {
          metrics.reduce_tasks[r].contract_checks =
              res.metrics.contract_checks;
          latch_status(res.contract);
          return;
        }
        if (res.crashed) {
          failed++;
          failed_seconds += res.metrics.seconds;
          continue;
        }
        TaskMetrics committed = std::move(res.metrics);
        committed.attempts = failed + 1;
        committed.failed_attempts = failed;
        committed.failed_attempt_seconds = failed_seconds;
        committed.integrity_bytes_verified = integrity_bytes;
        committed.corruption_detected = corruption_detected;
        metrics.reduce_tasks[r] = std::move(committed);
        metrics.counters.MergeFrom(res.counters);
        reduce_outputs[r] = std::move(res.output);
        return;
      }
      metrics.reduce_tasks[r].attempts = failed;
      metrics.reduce_tasks[r].failed_attempts = failed;
      metrics.reduce_tasks[r].failed_attempt_seconds = failed_seconds;
      metrics.reduce_tasks[r].integrity_bytes_verified = integrity_bytes;
      metrics.reduce_tasks[r].corruption_detected = corruption_detected;
      record_failure(TaskPhase::kReduce, r);
  };

  // Speculative reduce backups (see spawn_map_backups: cost-accounting
  // commit only, reduce_outputs[r] is never re-pointed).
  auto spawn_reduce_backups = [this, &group, preserve_runs, runs_encoded,
                               &metrics, &partition_runs, &ordering,
                               merge_factor, &injector, &worker_scratch,
                               num_reduce_tasks] {
    if (!spec_.speculative_execution || num_reduce_tasks < 2) return;
    const double median = MedianSeconds(metrics.reduce_tasks);
    const double threshold = median * spec_.speculation_slowdown_factor;
    for (size_t r = 0; r < num_reduce_tasks; ++r) {
      if (median <= 0 || metrics.reduce_tasks[r].seconds <= threshold) {
        continue;
      }
      group.Spawn([this, r, median, preserve_runs, runs_encoded, &metrics,
                   &partition_runs, &ordering, merge_factor, &injector,
                   &worker_scratch] {
        TaskMetrics& task = metrics.reduce_tasks[r];
        const uint32_t attempt = task.attempts;
        ReduceAttemptResult res = RunReduceAttempt(
            partition_runs[r], preserve_runs, runs_encoded, ordering,
            merge_factor, r, attempt,
            injector.FaultFor(TaskPhase::kReduce, r, attempt),
            worker_scratch());
        task.attempts++;
        task.speculative_launched = true;
        task.integrity_bytes_verified += res.metrics.integrity_bytes_verified;
        task.corruption_detected += res.metrics.corruption_detected;
        if (res.crashed) {
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds,
              std::max(0.0, task.failed_attempt_seconds + task.seconds -
                                median));
          return;
        }
        const double primary_finish =
            task.failed_attempt_seconds + task.seconds;
        const double backup_finish = median + res.metrics.seconds;
        if (backup_finish < primary_finish) {
          TaskMetrics committed = std::move(res.metrics);
          committed.attempts = task.attempts;
          committed.failed_attempts = task.failed_attempts;
          committed.failed_attempt_seconds = task.failed_attempt_seconds;
          committed.speculative_launched = true;
          committed.speculative_won = true;
          committed.speculative_loser_seconds =
              task.speculative_loser_seconds +
              std::max(0.0, backup_finish - task.failed_attempt_seconds);
          committed.integrity_bytes_verified = task.integrity_bytes_verified;
          committed.corruption_detected = task.corruption_detected;
          task = std::move(committed);
        } else {
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds, std::max(0.0, primary_finish - median));
        }
      });
    }
  };

  // Reduce-phase completion continuation: stamp the wall when the last
  // PRIMARY reduce commits (backups it spawns run past it, tracked by the
  // same group).
  auto on_reduces_done = [&job_timer, &reduce_done_wall, &job_failed,
                          &spawn_reduce_backups] {
    reduce_done_wall = job_timer.ElapsedSeconds();
    if (!job_failed.load(std::memory_order_acquire)) spawn_reduce_backups();
  };

  auto run_reduce_task = [&run_reduce_chain, &reduces_remaining,
                          &on_reduces_done](size_t r) {
    run_reduce_chain(r);
    if (reduces_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      on_reduces_done();
    }
  };

  // Transport hand-off for one committed segment (map m x partition r):
  // publish, fetch back, verify, decode into fetched_slots[m][r]. Rung 1
  // of the recovery ladder lives inside the transport (per-fetch
  // deadlines, exponential backoff + jitter, bounded retry budgets);
  // each round of the loop here climbs the rest: a failed fetch falls
  // back to the map task's locally committed output (rung 2, the DFS
  // spill analogue), and past that the committed map attempt is
  // deterministically re-executed and re-published so the transport can
  // re-route the segment to a surviving worker (rung 3, the PR 3 retry
  // machinery's re-run). Only after every rung fails does the job latch
  // a structured Unavailable.
  auto transport_shuffle = [this, transport, &map_outputs, &fetched_slots,
                            &metrics, &net_mu, &splits, &file_lines,
                            &ordering, &injector, &latch_status](
                               size_t m, size_t r,
                               uint32_t committed_attempt) {
    bool has_records = false;
    for (const auto& spill : map_outputs[m].spills) {
      if (r < spill.size() && spill[r].HasRecords()) has_records = true;
    }
    if (!has_records) return;  // empty slot: nothing crosses the wire
    WallTimer fetch_timer;
    const ShuffleSegmentKey key{spec_.name, m, r};
    NetCallStats stats;
    std::string segment;
    EncodeShuffleSegment(map_outputs[m], r, spec_.verify_integrity, &segment);
    uint64_t published_count = 0, redundant = 0, reruns = 0,
             decode_corruptions = 0;
    std::vector<SortedRun<K, V>> runs;
    Status shuffled = Status::Unavailable("shuffle hand-off never ran");
    for (int round = 0; round < 3; ++round) {
      Status published = transport->Publish(key, segment, &stats);
      if (published.ok()) {
        published_count++;
        Result<std::string> fetched = transport->Fetch(key, &stats);
        if (fetched.ok()) {
          Status decoded = DecodeShuffleSegment(*fetched, &runs);
          if (decoded.ok()) {
            shuffled = Status::OK();
            break;
          }
          // The stored bytes rotted past the frame checksums; re-fetching
          // the same bytes cannot help — escalate.
          decode_corruptions++;
          shuffled = decoded;
        } else {
          shuffled = fetched.status();
        }
      } else {
        shuffled = published;
      }
      if (spec_.net_fetch_local_fallback) {
        // Rung 2: the encoded segment in hand IS the committed spill.
        Status decoded = DecodeShuffleSegment(segment, &runs);
        if (decoded.ok()) {
          redundant++;
          shuffled = Status::OK();
          break;
        }
        shuffled = decoded;
      }
      // Rung 3: the committed attempt's fault draw was clean (it
      // committed), so re-running it reproduces the identical output.
      const InputSplit& split = splits[m];
      MapAttemptResult redo = RunMapAttempt(
          split, *file_lines[split.file_index], ordering, m,
          committed_attempt,
          injector.FaultFor(TaskPhase::kMap, m, committed_attempt));
      if (redo.crashed || !redo.contract.ok()) {
        shuffled = Status::Internal(
            "job '" + spec_.name + "': map task " + std::to_string(m) +
            " re-run for shuffle recovery did not commit");
        break;
      }
      reruns++;
      map_outputs[m] = std::move(redo.output);
      segment.clear();
      EncodeShuffleSegment(map_outputs[m], r, spec_.verify_integrity,
                           &segment);
    }
    const double latency = fetch_timer.ElapsedSeconds();
    {
      MutexLock lock(&net_mu);
      metrics.net_segments += published_count;
      metrics.net_fetches++;
      metrics.net_fetch_retries += stats.retries;
      metrics.net_redundant_fetches += redundant;
      metrics.net_map_reruns += reruns;
      metrics.net_bytes_pushed += stats.bytes_sent;
      metrics.net_bytes_fetched += stats.bytes_received;
      metrics.net_corruption_detected +=
          stats.corrupt_frames + decode_corruptions;
      metrics.net_fetch_latency.Record(latency);
    }
    if (!shuffled.ok()) {
      latch_status(Status::Unavailable(
          "job '" + spec_.name + "': shuffle segment m" + std::to_string(m) +
          " r" + std::to_string(r) +
          " unrecoverable after transport retries, local fallback, and map "
          "re-run: " +
          shuffled.ToString()));
      return;
    }
    fetched_slots[m][r] = std::move(runs);
  };

  // Map-task completion: run the phase continuation when this was the
  // last map task (BEFORE the final release, so quarantine accounting and
  // backup spawning precede the reduces it unblocks), then decrement
  // every partition's countdown, spawning each reduce task the moment its
  // inputs are complete. Under a transport the decrement fires on the
  // RECEIVED-AND-VERIFIED segment, not the local commit: the hand-off
  // (and its whole recovery ladder) completes before the release.
  auto finish_map_task = [&group, &maps_remaining, &on_maps_done,
                          &reduce_inputs_pending, &run_reduce_task,
                          &transport_shuffle, transport, &metrics,
                          &job_failed, num_reduce_tasks](size_t m) {
    // The committed attempt index, read BEFORE the phase continuation can
    // spawn a speculative backup that bumps this task's attempt
    // bookkeeping (rung 3 must re-run exactly the attempt that committed).
    const uint32_t committed_attempt =
        transport ? metrics.map_tasks[m].failed_attempts : 0;
    if (maps_remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      on_maps_done();
    }
    for (size_t r = 0; r < num_reduce_tasks; ++r) {
      if (transport && !job_failed.load(std::memory_order_acquire)) {
        transport_shuffle(m, r, committed_attempt);
      }
      if (reduce_inputs_pending[r].fetch_sub(1, std::memory_order_acq_rel) ==
          1) {
        group.Spawn([&run_reduce_task, r] { run_reduce_task(r); });
      }
    }
  };

  // ---- Spawn the graph: map tasks now, reduce tasks as their inputs
  // commit, backups from the phase-completion continuations ----
  for (size_t m = 0; m < num_map_tasks; ++m) {
    group.Spawn([&run_map_chain, &finish_map_task, m] {
      run_map_chain(m);
      finish_map_task(m);
    });
  }
  if (num_map_tasks == 0) {
    // An empty input still runs every reduce task (reducers may emit in
    // Teardown) — there is just no shuffle to wait for.
    on_maps_done();
    for (size_t r = 0; r < num_reduce_tasks; ++r) {
      group.Spawn([&run_reduce_task, r] { run_reduce_task(r); });
    }
  }

  // Wait drains the whole graph — including tasks the continuations
  // spawned mid-flight — and surfaces the first task exception as a
  // Status instead of std::terminate.
  Status tasks_status = group.Wait();
  // This job's segments are dead weight from here, success or failure
  // (pipelines run jobs sequentially, so the drop cannot race a reader).
  if (transport) transport->DropJob(spec_.name);
  FJ_RETURN_IF_ERROR(tasks_status);
  // All tasks are done: job_status is stable without the lock.
  FJ_RETURN_IF_ERROR(job_status);
  if (transport) {
    metrics.net_worker_losses =
        transport->worker_losses() - net_losses_before;
  }

  // ---- Job-level accounting (O(tasks): totals were metered on the emit
  // and spill paths, never by re-walking the intermediate data) ----
  for (const TaskMetrics& t : metrics.map_tasks) {
    metrics.map_output_records += t.output_records;
    metrics.map_output_bytes += t.output_bytes;
    metrics.shuffle_records += t.shuffle_records;
    metrics.shuffle_bytes += t.shuffle_bytes;
    metrics.input_bytes += t.input_bytes;
    metrics.spill_count += t.spill_count;
    metrics.spilled_bytes += t.spilled_bytes;
  }
  for (const TaskMetrics& t : metrics.reduce_tasks) {
    metrics.spill_count += t.spill_count;
    metrics.spilled_bytes += t.spilled_bytes;
    metrics.merge_passes += t.merge_passes;
  }
  for (const std::vector<TaskMetrics>* tasks :
       {&metrics.map_tasks, &metrics.reduce_tasks}) {
    for (const TaskMetrics& t : *tasks) {
      metrics.failed_attempts += t.failed_attempts;
      if (t.speculative_launched) metrics.speculative_launched++;
      if (t.speculative_won) metrics.speculative_wins++;
      metrics.wasted_task_seconds += t.wasted_seconds();
      metrics.integrity_bytes_verified += t.integrity_bytes_verified;
      metrics.corruption_detected += t.corruption_detected;
      metrics.contract_checks += t.contract_checks;
      metrics.codec_logical_bytes += t.codec_logical_bytes;
      metrics.codec_encoded_bytes += t.codec_encoded_bytes;
    }
  }
  if (metrics.codec_encoded_bytes > 0) {
    metrics.counters.Add("format.logical_bytes",
                         static_cast<int64_t>(metrics.codec_logical_bytes));
    metrics.counters.Add("format.encoded_bytes",
                         static_cast<int64_t>(metrics.codec_encoded_bytes));
  }
  if (spec_.check_contracts && metrics.contract_checks > 0) {
    metrics.counters.Add("contract.checks",
                         static_cast<int64_t>(metrics.contract_checks));
  }
  metrics.integrity_bytes_verified += input_integrity_bytes;
  if (spec_.verify_integrity) {
    metrics.counters.Add(
        "integrity.bytes_verified",
        static_cast<int64_t>(metrics.integrity_bytes_verified));
    if (metrics.corruption_detected > 0) {
      metrics.counters.Add(
          "integrity.corruption_detected",
          static_cast<int64_t>(metrics.corruption_detected));
    }
  }
  if (metrics.records_skipped > 0) {
    metrics.counters.Add("records_skipped",
                         static_cast<int64_t>(metrics.records_skipped));
  }

  // ---- Output: atomic commit via temp-name + rename, so no observer can
  // ever read a partial file under the final name ----
  if (!spec_.output_file.empty()) {
    std::vector<std::string> all_lines;
    size_t total = 0;
    for (const auto& part : reduce_outputs) total += part.size();
    all_lines.reserve(total);
    for (auto& part : reduce_outputs) {
      std::move(part.begin(), part.end(), std::back_inserter(all_lines));
    }
    const std::string tmp = spec_.output_file + ".__commit";
    if (dfs_->Exists(tmp)) FJ_RETURN_IF_ERROR(dfs_->DeleteFile(tmp));
    // Binary-record outputs commit through the Dfs block API so the file's
    // checksums and byte counts are defined over the varint-framed
    // encoding; the quarantine file below always holds text input lines.
    FJ_RETURN_IF_ERROR(spec_.binary_output
                           ? dfs_->WriteFileBlocks(tmp, std::move(all_lines))
                           : dfs_->WriteFile(tmp, std::move(all_lines)));
    Status renamed = dfs_->RenameFile(tmp, spec_.output_file);
    if (!renamed.ok()) {
      (void)dfs_->DeleteFile(tmp);  // best effort; the rename error wins
      return renamed;
    }
    if (metrics.records_skipped > 0) {
      std::vector<std::string> bad_lines;
      bad_lines.reserve(metrics.records_skipped);
      for (auto& task_lines : quarantined) {
        std::move(task_lines.begin(), task_lines.end(),
                  std::back_inserter(bad_lines));
      }
      FJ_RETURN_IF_ERROR(
          dfs_->WriteFile(spec_.output_file + ".bad", std::move(bad_lines)));
    }
  }

  metrics.wall_seconds = job_timer.ElapsedSeconds();
  metrics.map_phase_wall_seconds = map_done_wall;
  metrics.reduce_phase_wall_seconds =
      std::max(0.0, reduce_done_wall - map_done_wall);
  metrics.runtime = executor->stats() - runtime_before;
  return metrics;
}

}  // namespace fj::mr
