// The MapReduce engine: a single-machine, fully-metered implementation of
// the Hadoop execution contract that the paper's algorithms program against.
//
// Supported hooks (all used somewhere in the fuzzyjoin pipeline):
//   - map / combine / reduce with per-task Setup and Teardown ("configure"
//     and "close" in Hadoop 0.20) — OPTO emits its whole output in Teardown;
//   - a combiner that aggregates map output locally before the shuffle
//     (stage 1 token counting);
//   - a custom partitioner decoupled from the sort order — PK partitions on
//     the token group only while sorting on (group, length), the R-S kernels
//     additionally ignore the relation tag when partitioning;
//   - a custom sort comparator and a custom *group* comparator, so one
//     reduce call can span keys that differ in the secondary-sort fields;
//   - multiple input files with the originating file visible to the mapper
//     (stage 3 BRJ distinguishes record files from RID-pair files);
//   - counters, and per-task cost metering for the cluster cost model.
//
// Execution: map tasks run over input splits, partition their output into
// one bucket per reduce task (running the combiner locally if configured);
// each reduce task merges its buckets from all map tasks, sorts with the
// sort comparator (stable, so ties preserve map-task order and runs are
// deterministic), groups adjacent keys with the group comparator, and calls
// Reduce once per group. Reduce output lines are written to the job's
// output file in the Dfs, concatenated in reduce-task order.
#pragma once

#include <algorithm>
#include <cassert>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "mapreduce/byte_size.h"
#include "mapreduce/dfs.h"
#include "mapreduce/input.h"
#include "mapreduce/key_traits.h"
#include "mapreduce/metrics.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

/// Receives intermediate (key, value) pairs from map or combine functions.
template <typename K, typename V>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(K key, V value) = 0;
};

/// Receives final output lines from reduce functions.
class OutputEmitter {
 public:
  virtual ~OutputEmitter() = default;
  virtual void Emit(std::string line) = 0;
};

/// User map function. One instance is created per map task.
template <typename K, typename V>
class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Called once before the first record (Hadoop "configure").
  virtual void Setup(TaskContext* ctx) { (void)ctx; }
  virtual void Map(const InputRecord& record, Emitter<K, V>* out,
                   TaskContext* ctx) = 0;
  /// Called once after the last record (Hadoop "close").
  virtual void Teardown(Emitter<K, V>* out, TaskContext* ctx) {
    (void)out;
    (void)ctx;
  }
};

/// User reduce function. One instance is created per reduce task.
///
/// `group` is the run of sorted (key, value) pairs that compare equal under
/// the job's group comparator. Individual keys within the group may differ
/// in secondary-sort fields — exactly Hadoop's value-iteration behaviour
/// under a custom grouping comparator, which the PK kernel relies on to see
/// projections in increasing length order.
template <typename K, typename V>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Setup(TaskContext* ctx) { (void)ctx; }
  virtual void Reduce(const K& key, std::span<const std::pair<K, V>> group,
                      OutputEmitter* out, TaskContext* ctx) = 0;
  virtual void Teardown(OutputEmitter* out, TaskContext* ctx) {
    (void)out;
    (void)ctx;
  }
};

/// Functional adapters for small jobs.
template <typename K, typename V>
class LambdaMapper : public Mapper<K, V> {
 public:
  using MapFn =
      std::function<void(const InputRecord&, Emitter<K, V>*, TaskContext*)>;
  explicit LambdaMapper(MapFn fn) : fn_(std::move(fn)) {}
  void Map(const InputRecord& record, Emitter<K, V>* out,
           TaskContext* ctx) override {
    fn_(record, out, ctx);
  }

 private:
  MapFn fn_;
};

template <typename K, typename V>
class LambdaReducer : public Reducer<K, V> {
 public:
  using ReduceFn = std::function<void(
      const K&, std::span<const std::pair<K, V>>, OutputEmitter*, TaskContext*)>;
  explicit LambdaReducer(ReduceFn fn) : fn_(std::move(fn)) {}
  void Reduce(const K& key, std::span<const std::pair<K, V>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    fn_(key, group, out, ctx);
  }

 private:
  ReduceFn fn_;
};

/// Full description of one MapReduce job.
template <typename K, typename V>
struct JobSpec {
  std::string name = "job";

  std::vector<std::string> input_files;
  std::string output_file;

  /// Target number of map tasks; 0 means one split per input file.
  size_t num_map_tasks = 0;
  size_t num_reduce_tasks = 1;

  /// Host threads used to execute tasks (physical concurrency only; the
  /// simulated cluster size lives in ClusterConfig, not here).
  size_t local_threads = 1;

  std::function<std::unique_ptr<Mapper<K, V>>()> mapper_factory;
  std::function<std::unique_ptr<Reducer<K, V>>()> reducer_factory;

  /// Optional local aggregation of map output before the shuffle. Receives
  /// one key group at a time (grouped with the job's comparators) and emits
  /// replacement pairs.
  std::function<void(const K&, std::vector<V>&&, Emitter<K, V>*)> combiner;

  /// Partition function; nullptr = hash(key) % num_reduce_tasks.
  std::function<size_t(const K&, size_t num_partitions)> partitioner;

  /// Sort comparator; nullptr = std::less<K>. Must be a strict weak order.
  std::function<bool(const K&, const K&)> sort_less;

  /// Group comparator; nullptr = equality under sort_less. Keys equal under
  /// group_equal MUST be contiguous under sort_less.
  std::function<bool(const K&, const K&)> group_equal;
};

/// Executes JobSpecs against a Dfs.
template <typename K, typename V>
class Job {
 public:
  Job(Dfs* dfs, JobSpec<K, V> spec) : dfs_(dfs), spec_(std::move(spec)) {}

  /// Runs the job; on success the output file exists in the Dfs and the
  /// returned metrics describe every task.
  Result<JobMetrics> Run();

 private:
  using Pair = std::pair<K, V>;
  using Bucket = std::vector<Pair>;

  // Emitter that partitions pairs into per-reduce-task buckets.
  class PartitioningEmitter : public Emitter<K, V> {
   public:
    PartitioningEmitter(const JobSpec<K, V>* spec, std::vector<Bucket>* buckets,
                        TaskMetrics* metrics)
        : spec_(spec), buckets_(buckets), metrics_(metrics) {}

    void Emit(K key, V value) override {
      size_t p = spec_->partitioner
                     ? spec_->partitioner(key, spec_->num_reduce_tasks)
                     : KeyHashOf(key) % spec_->num_reduce_tasks;
      assert(p < buckets_->size());
      if (metrics_ != nullptr) {
        metrics_->output_records++;
        metrics_->output_bytes += ByteSizeOf(key) + ByteSizeOf(value);
      }
      (*buckets_)[p].emplace_back(std::move(key), std::move(value));
    }

   private:
    const JobSpec<K, V>* spec_;
    std::vector<Bucket>* buckets_;
    TaskMetrics* metrics_;
  };

  class VectorOutputEmitter : public OutputEmitter {
   public:
    explicit VectorOutputEmitter(std::vector<std::string>* lines,
                                 TaskMetrics* metrics)
        : lines_(lines), metrics_(metrics) {}
    void Emit(std::string line) override {
      metrics_->output_records++;
      metrics_->output_bytes += line.size() + 1;
      lines_->push_back(std::move(line));
    }

   private:
    std::vector<std::string>* lines_;
    TaskMetrics* metrics_;
  };

  bool SortLess(const Pair& a, const Pair& b) const {
    if (spec_.sort_less) return spec_.sort_less(a.first, b.first);
    return a.first < b.first;
  }

  bool GroupEqual(const K& a, const K& b) const {
    if (spec_.group_equal) return spec_.group_equal(a, b);
    if (spec_.sort_less) return !spec_.sort_less(a, b) && !spec_.sort_less(b, a);
    return !(a < b) && !(b < a);
  }

  // Sorts a bucket and applies `fn` to each contiguous key group.
  template <typename Fn>
  void ForEachGroup(Bucket* bucket, Fn fn) {
    std::stable_sort(bucket->begin(), bucket->end(),
                     [this](const Pair& a, const Pair& b) {
                       return SortLess(a, b);
                     });
    size_t begin = 0;
    while (begin < bucket->size()) {
      size_t end = begin + 1;
      while (end < bucket->size() &&
             GroupEqual((*bucket)[begin].first, (*bucket)[end].first)) {
        ++end;
      }
      fn(std::span<const Pair>(bucket->data() + begin, end - begin));
      begin = end;
    }
  }

  Dfs* dfs_;
  JobSpec<K, V> spec_;
};

template <typename K, typename V>
Result<JobMetrics> Job<K, V>::Run() {
  if (!spec_.mapper_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no mapper");
  }
  if (!spec_.reducer_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no reducer");
  }
  if (spec_.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': num_reduce_tasks must be >= 1");
  }
  if (spec_.input_files.empty()) {
    return Status::InvalidArgument("job '" + spec_.name + "': no input files");
  }

  WallTimer job_timer;
  JobMetrics metrics;
  metrics.job_name = spec_.name;

  FJ_ASSIGN_OR_RETURN(std::vector<InputSplit> splits,
                      dfs_->MakeSplits(spec_.input_files, spec_.num_map_tasks));

  // Resolve input file contents up front (pointers stay valid: Dfs never
  // moves a file's line storage).
  std::vector<const std::vector<std::string>*> file_lines(
      spec_.input_files.size());
  for (size_t i = 0; i < spec_.input_files.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(file_lines[i], dfs_->ReadFile(spec_.input_files[i]));
  }

  const size_t num_map_tasks = splits.size();
  const size_t num_reduce_tasks = spec_.num_reduce_tasks;

  metrics.map_tasks.resize(num_map_tasks);
  // map_buckets[m][r] = pairs emitted by map task m for reduce task r.
  std::vector<std::vector<Bucket>> map_buckets(num_map_tasks);

  // ---- Map phase ----
  std::vector<std::function<void()>> map_fns;
  map_fns.reserve(num_map_tasks);
  for (size_t m = 0; m < num_map_tasks; ++m) {
    map_fns.push_back([this, m, &splits, &file_lines, &metrics, &map_buckets,
                       num_reduce_tasks] {
      const InputSplit& split = splits[m];
      TaskMetrics& task_metrics = metrics.map_tasks[m];
      std::vector<Bucket>& buckets = map_buckets[m];
      buckets.resize(num_reduce_tasks);

      WallTimer timer;
      TaskContext ctx(m, &metrics.counters);
      PartitioningEmitter emitter(&spec_, &buckets, &task_metrics);

      auto mapper = spec_.mapper_factory();
      mapper->Setup(&ctx);
      const std::vector<std::string>& lines = *file_lines[split.file_index];
      for (size_t i = split.begin_line; i < split.end_line; ++i) {
        InputRecord record{split.file_index, &split.file_name, i, &lines[i]};
        mapper->Map(record, &emitter, &ctx);
        task_metrics.input_records++;
      }
      mapper->Teardown(&emitter, &ctx);

      task_metrics.seconds = timer.ElapsedSeconds() + ctx.charged_seconds();
    });
  }

  RunParallel(map_fns, spec_.local_threads);

  // ---- Combine pass (if configured) ----
  // Runs on the map side (its cost is charged to the map task), re-grouping
  // each bucket locally and letting the combiner emit replacement pairs.
  if (spec_.combiner) {
    std::vector<std::function<void()>> combine_fns;
    combine_fns.reserve(num_map_tasks);
    for (size_t m = 0; m < num_map_tasks; ++m) {
      combine_fns.push_back([this, m, &metrics, &map_buckets,
                             num_reduce_tasks] {
        WallTimer timer;
        std::vector<Bucket> combined(num_reduce_tasks);
        PartitioningEmitter combine_out(&spec_, &combined, nullptr);
        for (Bucket& bucket : map_buckets[m]) {
          ForEachGroup(&bucket,
                       [this, &combine_out](std::span<const Pair> group) {
                         std::vector<V> values;
                         values.reserve(group.size());
                         for (const Pair& p : group)
                           values.push_back(p.second);
                         spec_.combiner(group.front().first, std::move(values),
                                        &combine_out);
                       });
        }
        map_buckets[m] = std::move(combined);
        metrics.map_tasks[m].seconds += timer.ElapsedSeconds();
      });
    }
    RunParallel(combine_fns, spec_.local_threads);
  }

  // ---- Accounting: map output vs shuffled bytes ----
  for (size_t m = 0; m < num_map_tasks; ++m) {
    metrics.map_output_records += metrics.map_tasks[m].output_records;
    metrics.map_output_bytes += metrics.map_tasks[m].output_bytes;
    for (const Bucket& bucket : map_buckets[m]) {
      metrics.shuffle_records += bucket.size();
      for (const Pair& p : bucket) {
        metrics.shuffle_bytes += ByteSizeOf(p.first) + ByteSizeOf(p.second);
      }
    }
  }

  // ---- Reduce phase ----
  metrics.reduce_tasks.resize(num_reduce_tasks);
  std::vector<std::vector<std::string>> reduce_outputs(num_reduce_tasks);

  std::vector<std::function<void()>> reduce_fns;
  reduce_fns.reserve(num_reduce_tasks);
  for (size_t r = 0; r < num_reduce_tasks; ++r) {
    reduce_fns.push_back([this, r, num_map_tasks, &metrics, &map_buckets,
                          &reduce_outputs] {
      TaskMetrics& task_metrics = metrics.reduce_tasks[r];
      WallTimer timer;
      TaskContext ctx(r, &metrics.counters);
      VectorOutputEmitter out(&reduce_outputs[r], &task_metrics);

      // Merge this partition's buckets from every map task, in task order.
      Bucket merged;
      size_t total = 0;
      for (size_t m = 0; m < num_map_tasks; ++m) {
        total += map_buckets[m][r].size();
      }
      merged.reserve(total);
      for (size_t m = 0; m < num_map_tasks; ++m) {
        std::move(map_buckets[m][r].begin(), map_buckets[m][r].end(),
                  std::back_inserter(merged));
        map_buckets[m][r].clear();
      }
      task_metrics.input_records = merged.size();

      auto reducer = spec_.reducer_factory();
      reducer->Setup(&ctx);
      ForEachGroup(&merged, [&reducer, &out, &ctx](std::span<const Pair> group) {
        reducer->Reduce(group.front().first, group, &out, &ctx);
      });
      reducer->Teardown(&out, &ctx);

      if (ctx.scratch().bytes_written() > 0 || ctx.scratch().bytes_read() > 0) {
        metrics.counters.Add(
            "scratch.bytes_written",
            static_cast<int64_t>(ctx.scratch().bytes_written()));
        metrics.counters.Add("scratch.bytes_read",
                             static_cast<int64_t>(ctx.scratch().bytes_read()));
      }
      task_metrics.seconds = timer.ElapsedSeconds() + ctx.charged_seconds();
    });
  }
  RunParallel(reduce_fns, spec_.local_threads);

  // ---- Output ----
  if (!spec_.output_file.empty()) {
    std::vector<std::string> all_lines;
    size_t total = 0;
    for (const auto& part : reduce_outputs) total += part.size();
    all_lines.reserve(total);
    for (auto& part : reduce_outputs) {
      std::move(part.begin(), part.end(), std::back_inserter(all_lines));
    }
    FJ_RETURN_IF_ERROR(dfs_->WriteFile(spec_.output_file, std::move(all_lines)));
  }

  metrics.wall_seconds = job_timer.ElapsedSeconds();
  return metrics;
}

}  // namespace fj::mr
