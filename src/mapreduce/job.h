// The MapReduce engine: a single-machine, fully-metered implementation of
// the Hadoop execution contract that the paper's algorithms program against.
//
// Supported hooks (all used somewhere in the fuzzyjoin pipeline):
//   - map / combine / reduce with per-task Setup and Teardown ("configure"
//     and "close" in Hadoop 0.20) — OPTO emits its whole output in Teardown;
//   - a combiner that aggregates map output locally before the shuffle
//     (stage 1 token counting);
//   - a custom partitioner decoupled from the sort order — PK partitions on
//     the token group only while sorting on (group, length), the R-S kernels
//     additionally ignore the relation tag when partitioning;
//   - a custom sort comparator and a custom *group* comparator, so one
//     reduce call can span keys that differ in the secondary-sort fields;
//   - multiple input files with the originating file visible to the mapper
//     (stage 3 BRJ distinguishes record files from RID-pair files);
//   - counters, and per-task cost metering for the cluster cost model.
//
// Execution is layered like Hadoop's shuffle (see DESIGN.md):
//
//   map task   -> SortBuffer (job_spec.h + sort_buffer.h): pairs buffer
//                 against JobSpec::sort_buffer_bytes, are stable-sorted by
//                 (partition, key), combined per spill, and written out as
//                 sorted runs — spill I/O charged to the task's scratch;
//   reduce task-> RunMerger (run_merger.h): a streaming k-way merge over
//                 the partition's runs (heap over run cursors, ties broken
//                 by map-task-then-spill rank) feeds Reduce one contiguous
//                 key group at a time — the whole partition is never
//                 re-sorted or re-materialized.
//
// Fault tolerance (fault.h) adds a task-ATTEMPT layer on top:
//
//   - every task runs as a sequence of attempts, each with its own
//     TaskContext, CounterSet, SortBuffer/output, and (on the reduce side)
//     its own copy of the partition's runs — a crashed attempt is dropped
//     wholesale and can never leak partial spills, counters, or output
//     lines into the shuffle or the job result;
//   - a crashing attempt (per the job's FaultPlan) is retried up to
//     JobSpec::max_task_attempts; exhausting the budget fails the job with
//     a structured Status BEFORE any output file is written;
//   - with JobSpec::speculative_execution, tasks whose committed cost
//     exceeds speculation_slowdown_factor x the phase median get a
//     speculative backup attempt; the first finisher (by simulated
//     completion time, backups handicapped by the detection delay) wins
//     the commit and the loser's cost is recorded as wasted work;
//   - committed TaskMetrics/counters always describe exactly one clean
//     attempt, so a faulted run's committed metrics — and its output
//     bytes — match the fault-free run; the wasted work is tracked in the
//     attempt-bookkeeping fields the cluster model prices separately.
//
// Determinism: runs are internally in emit order (stable sort) and the
// merge breaks ties toward earlier runs, so output is byte-identical to
// the legacy unbounded path (sort_buffer_bytes == 0, a single in-memory
// run per map task) — and, because attempts re-execute deterministically,
// also byte-identical under any recoverable fault plan. Reduce output
// lines are written to the job's output file in the Dfs, concatenated in
// reduce-task order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "mapreduce/dfs.h"
#include "mapreduce/fault.h"
#include "mapreduce/input.h"
#include "mapreduce/job_spec.h"
#include "mapreduce/metrics.h"
#include "mapreduce/run_merger.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

/// Executes JobSpecs against a Dfs.
template <typename K, typename V>
class Job {
 public:
  Job(Dfs* dfs, JobSpec<K, V> spec) : dfs_(dfs), spec_(std::move(spec)) {}

  /// Runs the job; on success the output file exists in the Dfs and the
  /// returned metrics describe every task. A task that fails permanently
  /// (every attempt crashed) returns a non-OK Status and writes nothing.
  Result<JobMetrics> Run();

 private:
  using Pair = std::pair<K, V>;

  class VectorOutputEmitter : public OutputEmitter {
   public:
    explicit VectorOutputEmitter(std::vector<std::string>* lines,
                                 TaskMetrics* metrics)
        : lines_(lines), metrics_(metrics) {}
    void Emit(std::string line) override {
      metrics_->output_records++;
      metrics_->output_bytes += line.size() + 1;
      lines_->push_back(std::move(line));
    }

   private:
    std::vector<std::string>* lines_;
    TaskMetrics* metrics_;
  };

  /// Everything one attempt produces, scoped to the attempt so a crash
  /// discards it wholesale.
  struct MapAttemptResult {
    bool crashed = false;
    TaskMetrics metrics;
    CounterSet counters;
    MapTaskOutput<K, V> output;
  };

  struct ReduceAttemptResult {
    bool crashed = false;
    TaskMetrics metrics;
    CounterSet counters;
    std::vector<std::string> output;
  };

  // Copies a finished task's scratch I/O into the attempt's counters.
  static void AccountScratch(const TaskContext& ctx, CounterSet* counters) {
    const LocalScratch& scratch = ctx.scratch();
    if (scratch.bytes_written() > 0 || scratch.bytes_read() > 0) {
      counters->Add("scratch.bytes_written",
                    static_cast<int64_t>(scratch.bytes_written()));
      counters->Add("scratch.bytes_read",
                    static_cast<int64_t>(scratch.bytes_read()));
    }
    if (scratch.spill_bytes_written() > 0 || scratch.spill_bytes_read() > 0) {
      counters->Add("scratch.spill_bytes_written",
                    static_cast<int64_t>(scratch.spill_bytes_written()));
      counters->Add("scratch.spill_bytes_read",
                    static_cast<int64_t>(scratch.spill_bytes_read()));
    }
  }

  /// The attempt's cost: measured wall time plus simulated charges, slowed
  /// down by any straggler fault.
  static double AttemptSeconds(const WallTimer& timer, const TaskContext& ctx,
                               const AttemptFault& fault) {
    return (timer.ElapsedSeconds() + ctx.charged_seconds()) * fault.slowdown +
           fault.extra_seconds;
  }

  /// Median of the committed task costs of one phase — the speculation
  /// detector's notion of "normal" (and of when it noticed the straggler).
  static double MedianSeconds(const std::vector<TaskMetrics>& tasks) {
    std::vector<double> secs;
    secs.reserve(tasks.size());
    for (const TaskMetrics& t : tasks) secs.push_back(t.seconds);
    std::sort(secs.begin(), secs.end());
    return secs.empty() ? 0.0 : secs[secs.size() / 2];
  }

  MapAttemptResult RunMapAttempt(const InputSplit& split,
                                 const std::vector<std::string>& lines,
                                 const SpecOrdering<K, V>& ordering,
                                 size_t task_id, uint32_t attempt,
                                 const AttemptFault& fault);

  ReduceAttemptResult RunReduceAttempt(
      const std::vector<SortedRun<K, V>*>& partition_runs, bool preserve_runs,
      const SpecOrdering<K, V>& ordering, size_t merge_factor, size_t task_id,
      uint32_t attempt, const AttemptFault& fault);

  Dfs* dfs_;
  JobSpec<K, V> spec_;
};

template <typename K, typename V>
typename Job<K, V>::MapAttemptResult Job<K, V>::RunMapAttempt(
    const InputSplit& split, const std::vector<std::string>& lines,
    const SpecOrdering<K, V>& ordering, size_t task_id, uint32_t attempt,
    const AttemptFault& fault) {
  MapAttemptResult res;
  WallTimer timer;
  TaskContext ctx(task_id, attempt, &res.counters);
  ctx.set_fault(fault);
  SortBuffer<K, V> buffer(&spec_, &ordering, &ctx, &res.metrics, &res.output);

  auto mapper = spec_.mapper_factory();
  mapper->Setup(&ctx);
  for (size_t i = split.begin_line; i < split.end_line; ++i) {
    if (ctx.CrashDue()) {
      res.crashed = true;
      break;
    }
    InputRecord record{split.file_index, &split.file_name, i, &lines[i]};
    mapper->Map(record, &buffer, &ctx);
    ctx.NoteRecordProcessed();
    res.metrics.input_records++;
    res.metrics.input_bytes += lines[i].size() + 1;
  }
  // A crash budget equal to the split size fires before Teardown — the
  // attempt dies without flushing (OPTO-style Teardown emitters included).
  if (!res.crashed && ctx.CrashDue()) res.crashed = true;
  if (!res.crashed) {
    mapper->Teardown(&buffer, &ctx);
    buffer.Flush();
    AccountScratch(ctx, &res.counters);
  }
  res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
  return res;
}

template <typename K, typename V>
typename Job<K, V>::ReduceAttemptResult Job<K, V>::RunReduceAttempt(
    const std::vector<SortedRun<K, V>*>& partition_runs, bool preserve_runs,
    const SpecOrdering<K, V>& ordering, size_t merge_factor, size_t task_id,
    uint32_t attempt, const AttemptFault& fault) {
  ReduceAttemptResult res;
  WallTimer timer;
  TaskContext ctx(task_id, attempt, &res.counters);
  ctx.set_fault(fault);
  VectorOutputEmitter out(&res.output, &res.metrics);

  // The merge consumes its input runs, so when this task may run more than
  // once (faults or speculation active) each attempt merges an
  // attempt-scoped copy and the shuffle data stays pristine for the next
  // attempt. Fault-free jobs keep the zero-copy path.
  std::vector<SortedRun<K, V>> copies;
  std::vector<SortedRun<K, V>*> runs;
  if (preserve_runs) {
    copies.assign(partition_runs.size(), SortedRun<K, V>{});
    runs.reserve(partition_runs.size());
    for (size_t i = 0; i < partition_runs.size(); ++i) {
      copies[i] = *partition_runs[i];
      runs.push_back(&copies[i]);
    }
  } else {
    runs = partition_runs;
  }
  for (const SortedRun<K, V>* run : runs) {
    res.metrics.input_records += run->pairs.size();
    res.metrics.input_bytes += run->bytes;
  }

  auto reducer = spec_.reducer_factory();
  reducer->Setup(&ctx);
  RunMerger<K, V> merger(&ordering, std::move(runs), merge_factor, &ctx,
                         &res.metrics);
  merger.ForEachGroup(
      [&reducer, &out, &ctx, &res](std::span<const Pair> group) -> bool {
        if (ctx.CrashDue()) {
          res.crashed = true;
          return false;
        }
        reducer->Reduce(group.front().first, group, &out, &ctx);
        ctx.NoteRecordProcessed();
        return true;
      });
  if (!res.crashed && ctx.CrashDue()) res.crashed = true;
  if (!res.crashed) {
    reducer->Teardown(&out, &ctx);
    AccountScratch(ctx, &res.counters);
  }
  res.metrics.seconds = AttemptSeconds(timer, ctx, fault);
  return res;
}

template <typename K, typename V>
Result<JobMetrics> Job<K, V>::Run() {
  if (!spec_.mapper_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no mapper");
  }
  if (!spec_.reducer_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no reducer");
  }
  if (spec_.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': num_reduce_tasks must be >= 1");
  }
  if (spec_.merge_factor < 2) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': merge_factor must be >= 2");
  }
  if (spec_.max_task_attempts < 1) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': max_task_attempts must be >= 1");
  }
  if (spec_.speculative_execution && spec_.speculation_slowdown_factor <= 1.0) {
    return Status::InvalidArgument(
        "job '" + spec_.name + "': speculation_slowdown_factor must be > 1");
  }
  if (spec_.input_files.empty()) {
    return Status::InvalidArgument("job '" + spec_.name + "': no input files");
  }

  WallTimer job_timer;
  JobMetrics metrics;
  metrics.job_name = spec_.name;

  FJ_ASSIGN_OR_RETURN(std::vector<InputSplit> splits,
                      dfs_->MakeSplits(spec_.input_files, spec_.num_map_tasks));

  // Resolve input file contents up front (pointers stay valid: Dfs never
  // moves a file's line storage).
  std::vector<const std::vector<std::string>*> file_lines(
      spec_.input_files.size());
  for (size_t i = 0; i < spec_.input_files.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(file_lines[i], dfs_->ReadFile(spec_.input_files[i]));
  }

  const size_t num_map_tasks = splits.size();
  const size_t num_reduce_tasks = spec_.num_reduce_tasks;
  const SpecOrdering<K, V> ordering(&spec_);
  const FaultInjector injector(spec_.fault_plan.get(), spec_.name);
  // Reduce attempts must not consume the shuffle when a retry or backup
  // might need it again.
  const bool preserve_runs = injector.active() || spec_.speculative_execution;

  // First permanent task failure wins; later ones are redundant detail.
  std::mutex failure_mu;
  Status job_status;
  auto record_failure = [this, &failure_mu, &job_status](TaskPhase phase,
                                                         size_t task_id) {
    std::lock_guard<std::mutex> lock(failure_mu);
    if (job_status.ok()) {
      job_status = Status::Internal(
          "job '" + spec_.name + "': " + TaskPhaseName(phase) + " task " +
          std::to_string(task_id) + " failed permanently after " +
          std::to_string(spec_.max_task_attempts) + " attempts");
    }
  };

  metrics.map_tasks.resize(num_map_tasks);
  std::vector<MapTaskOutput<K, V>> map_outputs(num_map_tasks);

  // ---- Map phase: retry each task's attempts until one commits ----
  std::vector<std::function<void()>> map_fns;
  map_fns.reserve(num_map_tasks);
  for (size_t m = 0; m < num_map_tasks; ++m) {
    map_fns.push_back([this, m, &splits, &file_lines, &metrics, &map_outputs,
                       &ordering, &injector, &record_failure] {
      const InputSplit& split = splits[m];
      const std::vector<std::string>& lines = *file_lines[split.file_index];
      uint32_t failed = 0;
      double failed_seconds = 0;
      for (uint32_t attempt = 0; attempt < spec_.max_task_attempts;
           ++attempt) {
        MapAttemptResult res =
            RunMapAttempt(split, lines, ordering, m, attempt,
                          injector.FaultFor(TaskPhase::kMap, m, attempt));
        if (res.crashed) {
          failed++;
          failed_seconds += res.metrics.seconds;
          continue;
        }
        // Commit: the clean attempt's metrics, counters, and shuffle
        // output become the task's result; failed attempts only leave
        // their cost behind.
        TaskMetrics committed = std::move(res.metrics);
        committed.attempts = failed + 1;
        committed.failed_attempts = failed;
        committed.failed_attempt_seconds = failed_seconds;
        metrics.map_tasks[m] = std::move(committed);
        metrics.counters.MergeFrom(res.counters);
        map_outputs[m] = std::move(res.output);
        return;
      }
      metrics.map_tasks[m].attempts = failed;
      metrics.map_tasks[m].failed_attempts = failed;
      metrics.map_tasks[m].failed_attempt_seconds = failed_seconds;
      record_failure(TaskPhase::kMap, m);
    });
  }
  RunParallel(map_fns, spec_.local_threads);
  FJ_RETURN_IF_ERROR(job_status);

  // ---- Map-side speculation: back up stragglers, first finisher wins ----
  if (spec_.speculative_execution && num_map_tasks >= 2) {
    const double median = MedianSeconds(metrics.map_tasks);
    const double threshold = median * spec_.speculation_slowdown_factor;
    std::vector<std::function<void()>> backup_fns;
    for (size_t m = 0; m < num_map_tasks; ++m) {
      if (median <= 0 || metrics.map_tasks[m].seconds <= threshold) continue;
      backup_fns.push_back([this, m, median, &splits, &file_lines, &metrics,
                            &map_outputs, &ordering, &injector] {
        const InputSplit& split = splits[m];
        const std::vector<std::string>& lines = *file_lines[split.file_index];
        TaskMetrics& task = metrics.map_tasks[m];
        const uint32_t attempt = task.attempts;
        MapAttemptResult res =
            RunMapAttempt(split, lines, ordering, m, attempt,
                          injector.FaultFor(TaskPhase::kMap, m, attempt));
        task.attempts++;
        task.speculative_launched = true;
        if (res.crashed) {
          // The backup died (or would have been killed at the straggler's
          // commit, whichever came first); the straggler's commit stands.
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds,
              std::max(0.0, task.failed_attempt_seconds + task.seconds -
                                median));
          return;
        }
        // First-finisher-wins: the straggler has been running since the
        // phase started (behind its failed attempts); the backup launched
        // when the detector noticed — at the phase median. The loser is
        // KILLED at the winner's commit, so it only occupies its slot
        // until then — that kill is what makes speculation pay.
        const double primary_finish =
            task.failed_attempt_seconds + task.seconds;
        const double backup_finish = median + res.metrics.seconds;
        if (backup_finish < primary_finish) {
          TaskMetrics committed = std::move(res.metrics);
          committed.attempts = task.attempts;
          committed.failed_attempts = task.failed_attempts;
          committed.failed_attempt_seconds = task.failed_attempt_seconds;
          committed.speculative_launched = true;
          committed.speculative_won = true;
          committed.speculative_loser_seconds =
              task.speculative_loser_seconds +
              std::max(0.0, backup_finish - task.failed_attempt_seconds);
          task = std::move(committed);
          // Deterministic attempts emit identical counters, so the
          // primary's already-merged counters stand for the backup too.
          map_outputs[m] = std::move(res.output);
        } else {
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds, std::max(0.0, primary_finish - median));
        }
      });
    }
    RunParallel(backup_fns, spec_.local_threads);
  }

  // ---- Reduce phase: streaming k-way merge over sorted runs ----
  metrics.reduce_tasks.resize(num_reduce_tasks);
  std::vector<std::vector<std::string>> reduce_outputs(num_reduce_tasks);

  // Unbounded runs are plain in-memory vectors; a single merge pass over
  // any number of them is free, so the multi-pass collapse (and its disk
  // charges) only applies when the job actually spills.
  const size_t merge_factor = spec_.sort_buffer_bytes > 0
                                  ? spec_.merge_factor
                                  : std::numeric_limits<size_t>::max();

  // This partition's runs from every map task, in map-task-then-spill
  // order — the rank order the merger's tie-break relies on.
  std::vector<std::vector<SortedRun<K, V>*>> partition_runs(num_reduce_tasks);
  for (size_t m = 0; m < num_map_tasks; ++m) {
    for (auto& spill : map_outputs[m].spills) {
      for (size_t r = 0; r < num_reduce_tasks; ++r) {
        if (!spill[r].pairs.empty()) partition_runs[r].push_back(&spill[r]);
      }
    }
  }

  std::vector<std::function<void()>> reduce_fns;
  reduce_fns.reserve(num_reduce_tasks);
  for (size_t r = 0; r < num_reduce_tasks; ++r) {
    reduce_fns.push_back([this, r, preserve_runs, &metrics, &partition_runs,
                          &reduce_outputs, &ordering, merge_factor, &injector,
                          &record_failure] {
      uint32_t failed = 0;
      double failed_seconds = 0;
      for (uint32_t attempt = 0; attempt < spec_.max_task_attempts;
           ++attempt) {
        ReduceAttemptResult res = RunReduceAttempt(
            partition_runs[r], preserve_runs, ordering, merge_factor, r,
            attempt, injector.FaultFor(TaskPhase::kReduce, r, attempt));
        if (res.crashed) {
          failed++;
          failed_seconds += res.metrics.seconds;
          continue;
        }
        TaskMetrics committed = std::move(res.metrics);
        committed.attempts = failed + 1;
        committed.failed_attempts = failed;
        committed.failed_attempt_seconds = failed_seconds;
        metrics.reduce_tasks[r] = std::move(committed);
        metrics.counters.MergeFrom(res.counters);
        reduce_outputs[r] = std::move(res.output);
        return;
      }
      metrics.reduce_tasks[r].attempts = failed;
      metrics.reduce_tasks[r].failed_attempts = failed;
      metrics.reduce_tasks[r].failed_attempt_seconds = failed_seconds;
      record_failure(TaskPhase::kReduce, r);
    });
  }
  RunParallel(reduce_fns, spec_.local_threads);
  FJ_RETURN_IF_ERROR(job_status);

  // ---- Reduce-side speculation ----
  if (spec_.speculative_execution && num_reduce_tasks >= 2) {
    const double median = MedianSeconds(metrics.reduce_tasks);
    const double threshold = median * spec_.speculation_slowdown_factor;
    std::vector<std::function<void()>> backup_fns;
    for (size_t r = 0; r < num_reduce_tasks; ++r) {
      if (median <= 0 || metrics.reduce_tasks[r].seconds <= threshold) {
        continue;
      }
      backup_fns.push_back([this, r, median, preserve_runs, &metrics,
                            &partition_runs, &reduce_outputs, &ordering,
                            merge_factor, &injector] {
        TaskMetrics& task = metrics.reduce_tasks[r];
        const uint32_t attempt = task.attempts;
        ReduceAttemptResult res = RunReduceAttempt(
            partition_runs[r], preserve_runs, ordering, merge_factor, r,
            attempt, injector.FaultFor(TaskPhase::kReduce, r, attempt));
        task.attempts++;
        task.speculative_launched = true;
        if (res.crashed) {
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds,
              std::max(0.0, task.failed_attempt_seconds + task.seconds -
                                median));
          return;
        }
        const double primary_finish =
            task.failed_attempt_seconds + task.seconds;
        const double backup_finish = median + res.metrics.seconds;
        if (backup_finish < primary_finish) {
          TaskMetrics committed = std::move(res.metrics);
          committed.attempts = task.attempts;
          committed.failed_attempts = task.failed_attempts;
          committed.failed_attempt_seconds = task.failed_attempt_seconds;
          committed.speculative_launched = true;
          committed.speculative_won = true;
          committed.speculative_loser_seconds =
              task.speculative_loser_seconds +
              std::max(0.0, backup_finish - task.failed_attempt_seconds);
          task = std::move(committed);
          reduce_outputs[r] = std::move(res.output);
        } else {
          task.speculative_loser_seconds += std::min(
              res.metrics.seconds, std::max(0.0, primary_finish - median));
        }
      });
    }
    RunParallel(backup_fns, spec_.local_threads);
  }

  // ---- Job-level accounting (O(tasks): totals were metered on the emit
  // and spill paths, never by re-walking the intermediate data) ----
  for (const TaskMetrics& t : metrics.map_tasks) {
    metrics.map_output_records += t.output_records;
    metrics.map_output_bytes += t.output_bytes;
    metrics.shuffle_records += t.shuffle_records;
    metrics.shuffle_bytes += t.shuffle_bytes;
    metrics.input_bytes += t.input_bytes;
    metrics.spill_count += t.spill_count;
    metrics.spilled_bytes += t.spilled_bytes;
  }
  for (const TaskMetrics& t : metrics.reduce_tasks) {
    metrics.spill_count += t.spill_count;
    metrics.spilled_bytes += t.spilled_bytes;
    metrics.merge_passes += t.merge_passes;
  }
  for (const std::vector<TaskMetrics>* tasks :
       {&metrics.map_tasks, &metrics.reduce_tasks}) {
    for (const TaskMetrics& t : *tasks) {
      metrics.failed_attempts += t.failed_attempts;
      if (t.speculative_launched) metrics.speculative_launched++;
      if (t.speculative_won) metrics.speculative_wins++;
      metrics.wasted_task_seconds += t.wasted_seconds();
    }
  }

  // ---- Output ----
  if (!spec_.output_file.empty()) {
    std::vector<std::string> all_lines;
    size_t total = 0;
    for (const auto& part : reduce_outputs) total += part.size();
    all_lines.reserve(total);
    for (auto& part : reduce_outputs) {
      std::move(part.begin(), part.end(), std::back_inserter(all_lines));
    }
    FJ_RETURN_IF_ERROR(dfs_->WriteFile(spec_.output_file, std::move(all_lines)));
  }

  metrics.wall_seconds = job_timer.ElapsedSeconds();
  return metrics;
}

}  // namespace fj::mr
