// The MapReduce engine: a single-machine, fully-metered implementation of
// the Hadoop execution contract that the paper's algorithms program against.
//
// Supported hooks (all used somewhere in the fuzzyjoin pipeline):
//   - map / combine / reduce with per-task Setup and Teardown ("configure"
//     and "close" in Hadoop 0.20) — OPTO emits its whole output in Teardown;
//   - a combiner that aggregates map output locally before the shuffle
//     (stage 1 token counting);
//   - a custom partitioner decoupled from the sort order — PK partitions on
//     the token group only while sorting on (group, length), the R-S kernels
//     additionally ignore the relation tag when partitioning;
//   - a custom sort comparator and a custom *group* comparator, so one
//     reduce call can span keys that differ in the secondary-sort fields;
//   - multiple input files with the originating file visible to the mapper
//     (stage 3 BRJ distinguishes record files from RID-pair files);
//   - counters, and per-task cost metering for the cluster cost model.
//
// Execution is layered like Hadoop's shuffle (see DESIGN.md):
//
//   map task   -> SortBuffer (job_spec.h + sort_buffer.h): pairs buffer
//                 against JobSpec::sort_buffer_bytes, are stable-sorted by
//                 (partition, key), combined per spill, and written out as
//                 sorted runs — spill I/O charged to the task's scratch;
//   reduce task-> RunMerger (run_merger.h): a streaming k-way merge over
//                 the partition's runs (heap over run cursors, ties broken
//                 by map-task-then-spill rank) feeds Reduce one contiguous
//                 key group at a time — the whole partition is never
//                 re-sorted or re-materialized.
//
// Determinism: runs are internally in emit order (stable sort) and the
// merge breaks ties toward earlier runs, so output is byte-identical to
// the legacy unbounded path (sort_buffer_bytes == 0, a single in-memory
// run per map task). Reduce output lines are written to the job's output
// file in the Dfs, concatenated in reduce-task order.
#pragma once

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "common/timer.h"
#include "mapreduce/dfs.h"
#include "mapreduce/input.h"
#include "mapreduce/job_spec.h"
#include "mapreduce/metrics.h"
#include "mapreduce/run_merger.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

/// Executes JobSpecs against a Dfs.
template <typename K, typename V>
class Job {
 public:
  Job(Dfs* dfs, JobSpec<K, V> spec) : dfs_(dfs), spec_(std::move(spec)) {}

  /// Runs the job; on success the output file exists in the Dfs and the
  /// returned metrics describe every task.
  Result<JobMetrics> Run();

 private:
  using Pair = std::pair<K, V>;

  class VectorOutputEmitter : public OutputEmitter {
   public:
    explicit VectorOutputEmitter(std::vector<std::string>* lines,
                                 TaskMetrics* metrics)
        : lines_(lines), metrics_(metrics) {}
    void Emit(std::string line) override {
      metrics_->output_records++;
      metrics_->output_bytes += line.size() + 1;
      lines_->push_back(std::move(line));
    }

   private:
    std::vector<std::string>* lines_;
    TaskMetrics* metrics_;
  };

  // Copies a finished task's scratch I/O into the job-wide counters.
  static void AccountScratch(const TaskContext& ctx, CounterSet* counters) {
    const LocalScratch& scratch = ctx.scratch();
    if (scratch.bytes_written() > 0 || scratch.bytes_read() > 0) {
      counters->Add("scratch.bytes_written",
                    static_cast<int64_t>(scratch.bytes_written()));
      counters->Add("scratch.bytes_read",
                    static_cast<int64_t>(scratch.bytes_read()));
    }
    if (scratch.spill_bytes_written() > 0 || scratch.spill_bytes_read() > 0) {
      counters->Add("scratch.spill_bytes_written",
                    static_cast<int64_t>(scratch.spill_bytes_written()));
      counters->Add("scratch.spill_bytes_read",
                    static_cast<int64_t>(scratch.spill_bytes_read()));
    }
  }

  Dfs* dfs_;
  JobSpec<K, V> spec_;
};

template <typename K, typename V>
Result<JobMetrics> Job<K, V>::Run() {
  if (!spec_.mapper_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no mapper");
  }
  if (!spec_.reducer_factory) {
    return Status::InvalidArgument("job '" + spec_.name + "': no reducer");
  }
  if (spec_.num_reduce_tasks == 0) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': num_reduce_tasks must be >= 1");
  }
  if (spec_.merge_factor < 2) {
    return Status::InvalidArgument("job '" + spec_.name +
                                   "': merge_factor must be >= 2");
  }
  if (spec_.input_files.empty()) {
    return Status::InvalidArgument("job '" + spec_.name + "': no input files");
  }

  WallTimer job_timer;
  JobMetrics metrics;
  metrics.job_name = spec_.name;

  FJ_ASSIGN_OR_RETURN(std::vector<InputSplit> splits,
                      dfs_->MakeSplits(spec_.input_files, spec_.num_map_tasks));

  // Resolve input file contents up front (pointers stay valid: Dfs never
  // moves a file's line storage).
  std::vector<const std::vector<std::string>*> file_lines(
      spec_.input_files.size());
  for (size_t i = 0; i < spec_.input_files.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(file_lines[i], dfs_->ReadFile(spec_.input_files[i]));
  }

  const size_t num_map_tasks = splits.size();
  const size_t num_reduce_tasks = spec_.num_reduce_tasks;
  const SpecOrdering<K, V> ordering(&spec_);

  metrics.map_tasks.resize(num_map_tasks);
  std::vector<MapTaskOutput<K, V>> map_outputs(num_map_tasks);

  // ---- Map phase: run mappers through the sort-spill buffer ----
  std::vector<std::function<void()>> map_fns;
  map_fns.reserve(num_map_tasks);
  for (size_t m = 0; m < num_map_tasks; ++m) {
    map_fns.push_back([this, m, &splits, &file_lines, &metrics, &map_outputs,
                       &ordering] {
      const InputSplit& split = splits[m];
      TaskMetrics& task_metrics = metrics.map_tasks[m];

      WallTimer timer;
      TaskContext ctx(m, &metrics.counters);
      SortBuffer<K, V> buffer(&spec_, &ordering, &ctx, &task_metrics,
                              &map_outputs[m]);

      auto mapper = spec_.mapper_factory();
      mapper->Setup(&ctx);
      const std::vector<std::string>& lines = *file_lines[split.file_index];
      for (size_t i = split.begin_line; i < split.end_line; ++i) {
        InputRecord record{split.file_index, &split.file_name, i, &lines[i]};
        mapper->Map(record, &buffer, &ctx);
        task_metrics.input_records++;
        task_metrics.input_bytes += lines[i].size() + 1;
      }
      mapper->Teardown(&buffer, &ctx);
      buffer.Flush();

      AccountScratch(ctx, &metrics.counters);
      task_metrics.seconds = timer.ElapsedSeconds() + ctx.charged_seconds();
    });
  }
  RunParallel(map_fns, spec_.local_threads);

  // ---- Reduce phase: streaming k-way merge over sorted runs ----
  metrics.reduce_tasks.resize(num_reduce_tasks);
  std::vector<std::vector<std::string>> reduce_outputs(num_reduce_tasks);

  // Unbounded runs are plain in-memory vectors; a single merge pass over
  // any number of them is free, so the multi-pass collapse (and its disk
  // charges) only applies when the job actually spills.
  const size_t merge_factor = spec_.sort_buffer_bytes > 0
                                  ? spec_.merge_factor
                                  : std::numeric_limits<size_t>::max();

  std::vector<std::function<void()>> reduce_fns;
  reduce_fns.reserve(num_reduce_tasks);
  for (size_t r = 0; r < num_reduce_tasks; ++r) {
    reduce_fns.push_back([this, r, num_map_tasks, &metrics, &map_outputs,
                          &reduce_outputs, &ordering, merge_factor] {
      TaskMetrics& task_metrics = metrics.reduce_tasks[r];
      WallTimer timer;
      TaskContext ctx(r, &metrics.counters);
      VectorOutputEmitter out(&reduce_outputs[r], &task_metrics);

      // This partition's runs from every map task, in map-task-then-spill
      // order — the rank order the merger's tie-break relies on.
      std::vector<SortedRun<K, V>*> runs;
      for (size_t m = 0; m < num_map_tasks; ++m) {
        for (auto& spill : map_outputs[m].spills) {
          SortedRun<K, V>& run = spill[r];
          if (run.pairs.empty()) continue;
          task_metrics.input_records += run.pairs.size();
          task_metrics.input_bytes += run.bytes;
          runs.push_back(&run);
        }
      }

      auto reducer = spec_.reducer_factory();
      reducer->Setup(&ctx);
      RunMerger<K, V> merger(&ordering, std::move(runs), merge_factor, &ctx,
                             &task_metrics);
      merger.ForEachGroup([&reducer, &out, &ctx](std::span<const Pair> group) {
        reducer->Reduce(group.front().first, group, &out, &ctx);
      });
      reducer->Teardown(&out, &ctx);

      AccountScratch(ctx, &metrics.counters);
      task_metrics.seconds = timer.ElapsedSeconds() + ctx.charged_seconds();
    });
  }
  RunParallel(reduce_fns, spec_.local_threads);

  // ---- Job-level accounting (O(tasks): totals were metered on the emit
  // and spill paths, never by re-walking the intermediate data) ----
  for (const TaskMetrics& t : metrics.map_tasks) {
    metrics.map_output_records += t.output_records;
    metrics.map_output_bytes += t.output_bytes;
    metrics.shuffle_records += t.shuffle_records;
    metrics.shuffle_bytes += t.shuffle_bytes;
    metrics.input_bytes += t.input_bytes;
    metrics.spill_count += t.spill_count;
    metrics.spilled_bytes += t.spilled_bytes;
  }
  for (const TaskMetrics& t : metrics.reduce_tasks) {
    metrics.spill_count += t.spill_count;
    metrics.spilled_bytes += t.spilled_bytes;
    metrics.merge_passes += t.merge_passes;
  }

  // ---- Output ----
  if (!spec_.output_file.empty()) {
    std::vector<std::string> all_lines;
    size_t total = 0;
    for (const auto& part : reduce_outputs) total += part.size();
    all_lines.reserve(total);
    for (auto& part : reduce_outputs) {
      std::move(part.begin(), part.end(), std::back_inserter(all_lines));
    }
    FJ_RETURN_IF_ERROR(dfs_->WriteFile(spec_.output_file, std::move(all_lines)));
  }

  metrics.wall_seconds = job_timer.ElapsedSeconds();
  return metrics;
}

}  // namespace fj::mr
