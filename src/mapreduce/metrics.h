// Cost metering for executed jobs. Every map/reduce task records its
// measured wall time plus any simulated charges; the cluster cost model
// (cluster_model.h) turns these into simulated cluster running times.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"

namespace fj::mr {

/// Per-task execution record.
struct TaskMetrics {
  double seconds = 0;          ///< measured wall time + charged seconds
  uint64_t input_records = 0;
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;
};

/// Everything the engine measured about one MapReduce job execution.
struct JobMetrics {
  std::string job_name;
  std::vector<TaskMetrics> map_tasks;
  std::vector<TaskMetrics> reduce_tasks;

  /// Bytes crossing the map->reduce boundary after the combiner ran.
  uint64_t shuffle_bytes = 0;
  /// Bytes emitted by mappers before the combiner (equal to shuffle_bytes
  /// when no combiner is configured). The gap is the combiner's savings.
  uint64_t map_output_bytes = 0;
  uint64_t map_output_records = 0;
  uint64_t shuffle_records = 0;

  /// Real wall time of the whole (local) execution.
  double wall_seconds = 0;

  CounterSet counters;

  double TotalMapSeconds() const {
    double s = 0;
    for (const auto& t : map_tasks) s += t.seconds;
    return s;
  }
  double TotalReduceSeconds() const {
    double s = 0;
    for (const auto& t : reduce_tasks) s += t.seconds;
    return s;
  }
};

}  // namespace fj::mr
