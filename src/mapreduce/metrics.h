// Cost metering for executed jobs. Every map/reduce task records its
// measured wall time plus any simulated charges; the cluster cost model
// (cluster_model.h) turns these into simulated cluster running times.
//
// All byte/record totals are metered on the emit, spill, and merge paths
// as the data flows — nothing re-walks the intermediate dataset to count
// it. Job-level totals are O(tasks) sums over the per-task records.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/executor.h"
#include "common/latency_histogram.h"

namespace fj::mr {

/// Per-task execution record.
struct TaskMetrics {
  double seconds = 0;          ///< measured wall time + charged seconds
  uint64_t input_records = 0;
  /// Map tasks: split bytes read (lines + terminators). Reduce tasks:
  /// serialized bytes of the partition's merged runs.
  uint64_t input_bytes = 0;
  /// Map tasks: records emitted by Map/Teardown, BEFORE the combiner.
  /// Reduce tasks: output lines.
  uint64_t output_records = 0;
  uint64_t output_bytes = 0;
  /// Map tasks only: records/bytes actually crossing the shuffle, AFTER
  /// the combiner ran (equal to output_* when no combiner is configured).
  uint64_t shuffle_records = 0;
  uint64_t shuffle_bytes = 0;
  /// Sort-spill-merge accounting. Map tasks: budget-triggered buffer
  /// spills. Reduce tasks: intermediate merge passes that re-spilled
  /// collapsed runs. spilled_bytes counts each spilled byte once at write
  /// time (it is re-read once per consuming merge pass).
  uint64_t spill_count = 0;
  uint64_t spilled_bytes = 0;
  /// Map tasks only: high-water mark of bytes resident in the sort buffer.
  /// Bounded by JobSpec::sort_buffer_bytes (when > 0) unless a single
  /// pair exceeds the whole budget.
  uint64_t peak_buffer_bytes = 0;
  /// Reduce tasks only: merge passes over this partition's runs (the
  /// final streaming merge plus any intermediate collapses; 0 when the
  /// partition arrived as a single run).
  uint64_t merge_passes = 0;

  /// --- Attempt bookkeeping (fault tolerance & speculation) ---
  /// Every field above describes the COMMITTED attempt only, so a faulted
  /// run's committed metrics match the fault-free run exactly; the cost of
  /// attempts that crashed or lost the speculation race lands here.
  /// Total attempts executed for this task (committed + failed +
  /// speculative).
  uint32_t attempts = 1;
  /// Attempts that crashed before committing (the retry chain ran them
  /// sequentially before the committed attempt).
  uint32_t failed_attempts = 0;
  /// Cost of the crashed attempts in the retry chain. The cluster model
  /// serializes this ahead of the committed attempt's cost.
  double failed_attempt_seconds = 0;
  /// A speculative backup was launched for this task.
  bool speculative_launched = false;
  /// The backup finished first and its output was committed.
  bool speculative_won = false;
  /// Slot time the losing side(s) of the speculation race actually
  /// occupied (the straggler when the backup won, the backup otherwise —
  /// including backups that crashed). The loser is killed at the winner's
  /// commit, so this is bounded by the winner's finish time, not the
  /// loser's would-be runtime. Ran concurrently with the winner on
  /// another slot.
  double speculative_loser_seconds = 0;

  /// --- Integrity verification (JobSpec::verify_integrity) ---
  /// Bytes checksum-verified for this task: sorted runs at map-attempt
  /// commit, runs again at the reduce side's merge read, and reduce output
  /// lines at commit. Unlike the committed-attempt fields above these
  /// accumulate across FAILED attempts too — the verification work was
  /// really performed, and the cluster model prices it.
  uint64_t integrity_bytes_verified = 0;
  /// Checksum mismatches detected; each one crashed the detecting attempt
  /// (converted into a transient failure and retried).
  uint32_t corruption_detected = 0;

  /// --- Contract checking (JobSpec::check_contracts) ---
  /// Comparator/partitioner/combiner predicate evaluations and key hashes
  /// performed by the contract checker for the COMMITTED attempt. Failed
  /// attempts' check time is already inside failed_attempt_seconds (checks
  /// run inline), so this stays deterministic across fault plans; priced by
  /// ClusterConfig::contract_checks_per_second_per_node.
  uint64_t contract_checks = 0;

  /// --- Binary record format (JobSpec::record_format) ---
  /// Pre-codec payload bytes of every run this task encoded (map spills)
  /// or decoded (reduce merge reads); the codec's CPU work is proportional
  /// to these and priced by ClusterConfig::codec_bytes_per_second_per_node.
  uint64_t codec_logical_bytes = 0;
  /// Encoded (post-codec) bytes of the same runs. The ratio against
  /// codec_logical_bytes is the measured compression ratio; 1:1 under
  /// BlockCodec::kNone. Zero in text format.
  uint64_t codec_encoded_bytes = 0;

  /// Work thrown away by failures and lost speculation races.
  double wasted_seconds() const {
    return failed_attempt_seconds + speculative_loser_seconds;
  }
};

/// Everything the engine measured about one MapReduce job execution.
struct JobMetrics {
  std::string job_name;
  std::vector<TaskMetrics> map_tasks;
  std::vector<TaskMetrics> reduce_tasks;

  /// Bytes crossing the map->reduce boundary after the combiner ran.
  uint64_t shuffle_bytes = 0;
  /// Bytes emitted by mappers before the combiner (equal to shuffle_bytes
  /// when no combiner is configured). The gap is the combiner's savings.
  uint64_t map_output_bytes = 0;
  uint64_t map_output_records = 0;
  uint64_t shuffle_records = 0;

  /// Total input bytes read by map tasks.
  uint64_t input_bytes = 0;
  /// Sort-spill-merge totals over all tasks (see TaskMetrics).
  uint64_t spill_count = 0;
  uint64_t spilled_bytes = 0;
  uint64_t merge_passes = 0;

  /// Fault-tolerance totals over all tasks (see TaskMetrics). Committed
  /// byte/record totals above exclude failed and losing attempts.
  uint64_t failed_attempts = 0;
  uint64_t speculative_launched = 0;
  uint64_t speculative_wins = 0;
  double wasted_task_seconds = 0;

  /// Integrity totals (JobSpec::verify_integrity): task sums plus the
  /// job-level input-file verification pass.
  uint64_t integrity_bytes_verified = 0;
  uint64_t corruption_detected = 0;
  /// Contract-checker work over all tasks (see TaskMetrics).
  uint64_t contract_checks = 0;
  /// Binary-format codec totals over all tasks (see TaskMetrics); both 0
  /// in text format.
  uint64_t codec_logical_bytes = 0;
  uint64_t codec_encoded_bytes = 0;
  /// Malformed input records quarantined to `<output_file>.bad` instead of
  /// aborting (see JobSpec::max_skipped_records).
  uint64_t records_skipped = 0;

  /// --- Shuffle transport (JobSpec::transport; all 0 when the hand-off
  /// is the in-process default) ---
  /// Segments published at map commit (one per non-empty map x partition
  /// slot, plus re-publishes after worker losses and map re-runs).
  uint64_t net_segments = 0;
  /// Segment fetches the reduce countdown waited on.
  uint64_t net_fetches = 0;
  /// Retried transport round trips (attempts after the first, across
  /// publishes and fetches) — the injected-fault recovery work.
  uint64_t net_fetch_retries = 0;
  /// Fetches answered from the map task's locally committed spill after
  /// the transport exhausted its retry budget (escalation rung 2).
  uint64_t net_redundant_fetches = 0;
  /// Map attempts deterministically re-executed because their published
  /// segments were unfetchable (escalation rung 3 — worker loss).
  uint64_t net_map_reruns = 0;
  /// Workers declared lost by the transport (heartbeat or retry budget).
  uint64_t net_worker_losses = 0;
  /// Wire traffic: segment bytes pushed to and fetched from workers.
  uint64_t net_bytes_pushed = 0;
  uint64_t net_bytes_fetched = 0;
  /// Frame/segment checksum mismatches caught on the wire. Every injected
  /// corruption must land here (or in a task's corruption_detected) —
  /// never in the join output.
  uint64_t net_corruption_detected = 0;
  /// Latency of each completed publish+fetch round per segment,
  /// fault-injection delays and retries included. Wall-derived, so NOT
  /// covered by the determinism contract.
  LatencyHistogram net_fetch_latency;

  /// Real wall time of the whole (local) execution.
  double wall_seconds = 0;
  /// Measured wall time until the last primary map task committed — the
  /// host-machine complement of the simulated map-phase charge. With the
  /// task-graph scheduler reduce tasks overlap map backups, so these two
  /// phases can sum to more than wall_seconds.
  double map_phase_wall_seconds = 0;
  /// Measured wall time from the last map commit to the last primary
  /// reduce commit (clamped at 0 if a reduce finished inside the map
  /// phase's backup window).
  double reduce_phase_wall_seconds = 0;
  /// Executor activity attributable to this job (stats delta across
  /// Run()): tasks executed/stolen, busy seconds, queue delay. Measured
  /// host values — the simulated cluster charges live in the per-task
  /// records above. Wall-derived, so NOT covered by the determinism
  /// contract (unlike every committed counter above).
  ExecutorStats runtime;

  CounterSet counters;

  double TotalMapSeconds() const {
    double s = 0;
    for (const auto& t : map_tasks) s += t.seconds;
    return s;
  }
  double TotalReduceSeconds() const {
    double s = 0;
    for (const auto& t : reduce_tasks) s += t.seconds;
    return s;
  }
};

}  // namespace fj::mr
