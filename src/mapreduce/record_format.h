// The binary record format for spill runs, shuffle segments, and stage
// intermediate files, plus the pluggable block codec applied on top.
//
// Three layers, bottom up:
//
//  1. Typed content codec: EncodeContent/DecodeContent serialize the
//     (key, value) types that cross the shuffle. Varints for integers
//     (zigzag for signed), length-prefixed bytes for strings, fixed
//     8-byte little-endian bit patterns for doubles (exact roundtrip),
//     and composition over pair/tuple/vector. Custom types participate
//     via ADL — `void FjEncodeContent(const T&, std::string*)` and
//     `bool FjDecodeContent(std::string_view, size_t*, T*)` — the same
//     customization-point idiom as byte_size.h and integrity.h.
//  2. Run blocks: EncodeRunBlock frames one sorted run's encoded pairs
//     as [codec byte | varint record count | varint raw size | payload],
//     optionally compressed by the block codec. Decoding returns Status:
//     a truncated or corrupted block is an error, never UB.
//  3. Wire records: self-describing binary records stored in DFS stage
//     files (stage-1 token counts, stage-2 RID pairs). Each starts with
//     the magic byte 0xFB — an invalid UTF-8 lead byte, so a reader can
//     sniff binary vs. text records and text lines can never collide.
//
// Checksums over binary runs are defined over the *encoded* block bytes
// (see job.h): the bytes that sit in the shuffle are the bytes verified,
// exactly like HDFS checksumming compressed blocks at rest.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <limits>
#include <string>
#include <string_view>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/varint.h"

namespace fj::mr {

/// How records are represented in spill runs, shuffle segments, and
/// intermediate stage files. Text is the compatibility default: every
/// record is a std::string line and shuffle bytes are ByteSizeOf
/// estimates. Binary makes serialization real: runs hold encoded blocks
/// and the byte meters count actual encoded sizes.
enum class RecordFormat : uint8_t {
  kText = 0,
  kBinary = 1,
};

/// Block codec applied per spill-run/shuffle block (binary format only).
enum class BlockCodec : uint8_t {
  kNone = 0,
  kFjlz = 1,  ///< self-contained LZ77 (LZ4-block-style token stream)
};

const char* RecordFormatName(RecordFormat format);
const char* BlockCodecName(BlockCodec codec);

/// Parses "text"/"binary" ("none"/"fjlz"). Returns false on unknown names.
bool ParseRecordFormat(std::string_view name, RecordFormat* format);
bool ParseBlockCodec(std::string_view name, BlockCodec* codec);

// ---------------------------------------------------------------------------
// Layer 1: typed content codec.

template <typename T>
void EncodeContent(const T& value, std::string* out);

/// Decodes one value starting at `*pos`. On success advances `*pos` and
/// returns true; on truncation/corruption returns false with `*pos`
/// untouched (the output value is unspecified).
template <typename T>
bool DecodeContent(std::string_view buf, size_t* pos, T* value);

namespace internal {

template <typename T, typename = void>
struct HasAdlEncodeContent : std::false_type {};

template <typename T>
struct HasAdlEncodeContent<
    T, std::void_t<decltype(FjEncodeContent(std::declval<const T&>(),
                                            std::declval<std::string*>()))>>
    : std::true_type {};

template <typename T, typename = void>
struct HasAdlDecodeContent : std::false_type {};

template <typename T>
struct HasAdlDecodeContent<
    T, std::void_t<decltype(FjDecodeContent(std::declval<std::string_view>(),
                                            std::declval<size_t*>(),
                                            std::declval<T*>()))>>
    : std::true_type {};

/// 8-byte little-endian, independent of host endianness.
inline void AppendFixed64(std::string* out, uint64_t bits) {
  for (unsigned i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((bits >> (8 * i)) & 0xff));
  }
}

inline bool DecodeFixed64(std::string_view buf, size_t* pos, uint64_t* bits) {
  if (buf.size() < 8 || *pos > buf.size() - 8) return false;
  uint64_t v = 0;
  for (unsigned i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(buf[*pos + i])) << (8 * i);
  }
  *pos += 8;
  *bits = v;
  return true;
}

template <typename T>
struct ContentCodec;

template <>
struct ContentCodec<std::string> {
  static void Encode(const std::string& s, std::string* out) {
    AppendVarint(out, s.size());
    out->append(s);
  }
  static bool Decode(std::string_view buf, size_t* pos, std::string* value) {
    size_t p = *pos;
    uint64_t len = 0;
    if (!DecodeVarint(buf, &p, &len)) return false;
    if (len > buf.size() - p) return false;
    value->assign(buf.data() + p, static_cast<size_t>(len));
    *pos = p + static_cast<size_t>(len);
    return true;
  }
};

template <typename A, typename B>
struct ContentCodec<std::pair<A, B>> {
  static void Encode(const std::pair<A, B>& v, std::string* out) {
    EncodeContent(v.first, out);
    EncodeContent(v.second, out);
  }
  static bool Decode(std::string_view buf, size_t* pos, std::pair<A, B>* value) {
    size_t p = *pos;
    if (!DecodeContent(buf, &p, &value->first)) return false;
    if (!DecodeContent(buf, &p, &value->second)) return false;
    *pos = p;
    return true;
  }
};

template <typename... Ts>
struct ContentCodec<std::tuple<Ts...>> {
  static void Encode(const std::tuple<Ts...>& v, std::string* out) {
    std::apply([out](const Ts&... parts) { (EncodeContent(parts, out), ...); },
               v);
  }
  static bool Decode(std::string_view buf, size_t* pos,
                     std::tuple<Ts...>* value) {
    size_t p = *pos;
    bool ok = std::apply(
        [&buf, &p](Ts&... parts) {
          return (DecodeContent(buf, &p, &parts) && ...);
        },
        *value);
    if (!ok) return false;
    *pos = p;
    return true;
  }
};

template <typename T>
struct ContentCodec<std::vector<T>> {
  static void Encode(const std::vector<T>& v, std::string* out) {
    AppendVarint(out, v.size());
    for (const auto& e : v) EncodeContent(e, out);
  }
  static bool Decode(std::string_view buf, size_t* pos,
                     std::vector<T>* value) {
    size_t p = *pos;
    uint64_t n = 0;
    if (!DecodeVarint(buf, &p, &n)) return false;
    // Every element encoding costs at least one byte, so a count larger
    // than the remaining buffer is corruption — reject before reserving.
    if (n > buf.size() - p) return false;
    value->clear();
    value->reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      T element;
      if (!DecodeContent(buf, &p, &element)) return false;
      value->push_back(std::move(element));
    }
    *pos = p;
    return true;
  }
};

template <typename T>
struct ContentCodec {
  static void Encode(const T& value, std::string* out) {
    if constexpr (HasAdlEncodeContent<T>::value) {
      FjEncodeContent(value, out);
    } else if constexpr (std::is_same_v<T, bool>) {
      out->push_back(value ? '\x01' : '\x00');
    } else if constexpr (std::is_enum_v<T>) {
      AppendVarint(out, static_cast<uint64_t>(value));
    } else if constexpr (std::is_integral_v<T>) {
      if constexpr (std::is_signed_v<T>) {
        AppendVarint(out, ZigZagEncode(static_cast<int64_t>(value)));
      } else {
        AppendVarint(out, static_cast<uint64_t>(value));
      }
    } else if constexpr (std::is_floating_point_v<T>) {
      static_assert(sizeof(T) == 8,
                    "only double is supported; use double or FjEncodeContent");
      uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(bits));
      AppendFixed64(out, bits);
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "provide FjEncodeContent/FjDecodeContent for "
                    "non-trivial types");
      const char* raw = reinterpret_cast<const char*>(&value);
      out->append(raw, sizeof(T));
    }
  }

  static bool Decode(std::string_view buf, size_t* pos, T* value) {
    if constexpr (HasAdlDecodeContent<T>::value) {
      return FjDecodeContent(buf, pos, value);
    } else if constexpr (std::is_same_v<T, bool>) {
      if (*pos >= buf.size()) return false;
      *value = buf[*pos] != '\x00';
      *pos += 1;
      return true;
    } else if constexpr (std::is_enum_v<T>) {
      size_t p = *pos;
      uint64_t raw = 0;
      if (!DecodeVarint(buf, &p, &raw)) return false;
      *value = static_cast<T>(raw);
      *pos = p;
      return true;
    } else if constexpr (std::is_integral_v<T>) {
      size_t p = *pos;
      uint64_t raw = 0;
      if (!DecodeVarint(buf, &p, &raw)) return false;
      if constexpr (std::is_signed_v<T>) {
        int64_t s = ZigZagDecode(raw);
        if constexpr (sizeof(T) < 8) {
          if (s < static_cast<int64_t>(std::numeric_limits<T>::min()) ||
              s > static_cast<int64_t>(std::numeric_limits<T>::max())) {
            return false;
          }
        }
        *value = static_cast<T>(s);
      } else {
        if constexpr (sizeof(T) < 8) {
          if (raw > static_cast<uint64_t>(std::numeric_limits<T>::max())) {
            return false;
          }
        }
        *value = static_cast<T>(raw);
      }
      *pos = p;
      return true;
    } else if constexpr (std::is_floating_point_v<T>) {
      size_t p = *pos;
      uint64_t bits = 0;
      if (!DecodeFixed64(buf, &p, &bits)) return false;
      std::memcpy(value, &bits, sizeof(bits));
      *pos = p;
      return true;
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "provide FjEncodeContent/FjDecodeContent for "
                    "non-trivial types");
      if (buf.size() < sizeof(T) || *pos > buf.size() - sizeof(T)) {
        return false;
      }
      std::memcpy(value, buf.data() + *pos, sizeof(T));
      *pos += sizeof(T);
      return true;
    }
  }
};

}  // namespace internal

template <typename T>
void EncodeContent(const T& value, std::string* out) {
  internal::ContentCodec<T>::Encode(value, out);
}

template <typename T>
bool DecodeContent(std::string_view buf, size_t* pos, T* value) {
  return internal::ContentCodec<T>::Decode(buf, pos, value);
}

// ---------------------------------------------------------------------------
// Layer 2: run blocks.

/// Self-contained LZ77 compressor (LZ4-block-style token stream: 4-bit
/// literal/match length nibbles with 255-continuation extensions, 2-byte
/// little-endian match offsets, minimum match 4).
void FjlzCompress(std::string_view src, std::string* out);

/// Decompresses exactly `raw_size` bytes. Every read and copy is
/// bounds-checked; malformed input yields DataLoss, never UB.
Status FjlzDecompress(std::string_view src, size_t raw_size, std::string* out);

/// Frames an already-encoded payload of `record_count` records as a run
/// block: [codec byte | varint record count | varint raw size | payload].
/// With kFjlz the payload is compressed; if compression does not shrink
/// it the block silently stores kNone (the codec byte is authoritative).
void EncodeBlock(BlockCodec codec, uint64_t record_count,
                 std::string_view raw_payload, std::string* out);

/// Inverse of EncodeBlock: recovers the raw payload and record count.
Status DecodeBlock(std::string_view block, uint64_t* record_count,
                   std::string* raw_payload);

/// Encodes one sorted run's pairs into a framed (possibly compressed)
/// block. `*logical_bytes` reports the pre-codec payload size so callers
/// can meter the compression ratio.
template <typename K, typename V>
void EncodeRunBlock(BlockCodec codec,
                    const std::vector<std::pair<K, V>>& pairs,
                    std::string* encoded, uint64_t* logical_bytes) {
  std::string payload;
  for (const auto& pair : pairs) {
    EncodeContent(pair.first, &payload);
    EncodeContent(pair.second, &payload);
  }
  *logical_bytes = payload.size();
  EncodeBlock(codec, pairs.size(), payload, encoded);
}

/// Decodes a framed run block back into pairs. Truncated or trailing
/// bytes in the payload are DataLoss.
template <typename K, typename V>
Status DecodeRunBlock(std::string_view encoded,
                      std::vector<std::pair<K, V>>* pairs) {
  uint64_t record_count = 0;
  std::string payload;
  FJ_RETURN_IF_ERROR(DecodeBlock(encoded, &record_count, &payload));
  // Every record costs at least two bytes (one per side), so a count
  // beyond the payload size is corruption — reject before reserving.
  if (record_count > payload.size()) {
    return Status::DataLoss("run block record count exceeds payload");
  }
  pairs->clear();
  pairs->reserve(static_cast<size_t>(record_count));
  size_t pos = 0;
  for (uint64_t i = 0; i < record_count; ++i) {
    std::pair<K, V> pair;
    if (!DecodeContent(payload, &pos, &pair.first) ||
        !DecodeContent(payload, &pos, &pair.second)) {
      return Status::DataLoss("truncated record in run block payload");
    }
    pairs->push_back(std::move(pair));
  }
  if (pos != payload.size()) {
    return Status::DataLoss("trailing bytes after last record in run block");
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Layer 3: wire records for DFS stage files.

/// First byte of every binary wire record. 0xFB is an invalid UTF-8 lead
/// byte and never starts a text line produced by this system.
inline constexpr uint8_t kBinaryRecordMagic = 0xFB;
/// Record kinds (second byte).
inline constexpr uint8_t kTokenCountRecordKind = 0x01;
inline constexpr uint8_t kRidPairRecordKind = 0x03;

/// True when `record` starts with the binary magic byte — readers use
/// this to dispatch between text lines and binary wire records.
inline bool IsBinaryRecord(std::string_view record) {
  return !record.empty() &&
         static_cast<uint8_t>(record.front()) == kBinaryRecordMagic;
}

/// Stage-1 ordering entry: (token, frequency). Replaces "token\tcount".
void FormatTokenCountRecord(std::string_view token, uint64_t count,
                            std::string* out);
bool ParseTokenCountRecord(std::string_view record, std::string* token,
                           uint64_t* count);

/// Stage-2 result: (rid1, rid2, similarity). The double is stored as its
/// exact bit pattern, so re-rendering with %.6f matches the text path
/// byte for byte. Replaces "rid1\trid2\tsim".
void FormatRidPairRecord(uint64_t rid1, uint64_t rid2, double similarity,
                         std::string* out);
bool ParseRidPairRecord(std::string_view record, uint64_t* rid1,
                        uint64_t* rid2, double* similarity);

}  // namespace fj::mr
