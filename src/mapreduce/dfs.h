// An in-memory stand-in for a distributed file system (HDFS).
//
// Files are named, immutable-once-written sequences of text lines. Jobs read
// input files from the Dfs and write one output file per job. The Dfs also
// computes input splits (block boundaries) for the map phase.
//
// Like HDFS, every file carries integrity metadata: a per-line FNV-1a hash
// and a whole-file hash (the ordered fold of the line hashes), maintained on
// WriteFile/AppendToFile. VerifyFile recomputes both against the stored
// bytes and reports DataLoss on any mismatch; jobs run it over their inputs
// when JobSpec::verify_integrity is on. RenameFile lets producers commit
// output atomically (write under a temp name, rename into place), so a
// crashed or killed attempt can never leave a readable partial file under
// the final name.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"
#include "mapreduce/input.h"

namespace fj::mr {

// Every fallible method returns Status/Result, which are [[nodiscard]] at
// the class level (status.h / result.h): ignoring a Dfs error is a compile
// error, deliberate drops are written `(void)dfs.DeleteFile(...)`.
class Dfs {
 public:
  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Creates `name` with the given lines. Fails if the file exists.
  Status WriteFile(const std::string& name, std::vector<std::string> lines);

  /// Creates `name` as a BINARY file holding length-prefixed blocks (each
  /// element one binary record/block, arbitrary bytes — record_format.h).
  /// Fails if the file exists. Storage and integrity metadata are shared
  /// with the line API; the difference is on-disk framing: byte counts and
  /// VerifyFile charge varint length prefixes instead of newline
  /// terminators, and IsBinary() reports true so readers and the CLI's
  /// --dfs_dir import/export pick the right representation.
  Status WriteFileBlocks(const std::string& name,
                         std::vector<std::string> blocks);

  /// True when `name` exists and was written through WriteFileBlocks.
  bool IsBinary(const std::string& name) const;

  /// Creates `name` if needed and appends the lines.
  Status AppendToFile(const std::string& name,
                      const std::vector<std::string>& lines);

  /// Returns a stable pointer to the file's lines (files are never moved
  /// once created; appends mutate the pointed-to vector, so callers must not
  /// hold the pointer across writes).
  Result<const std::vector<std::string>*> ReadFile(const std::string& name) const;

  bool Exists(const std::string& name) const;

  Status DeleteFile(const std::string& name);

  /// Atomically renames `from` to `to`. Fails with NotFound when `from` is
  /// missing and AlreadyExists when `to` already exists; on failure nothing
  /// changes. Line storage moves with the entry, so pointers obtained from
  /// ReadFile(from) keep observing the same lines under the new name.
  Status RenameFile(const std::string& from, const std::string& to);

  /// Removes every file.
  void Clear();

  /// Recomputes the per-line and whole-file hashes of `name` against the
  /// stored bytes. Returns the bytes scanned (lines + terminators) on
  /// success; DataLoss naming the first diverging line otherwise.
  Result<uint64_t> VerifyFile(const std::string& name) const;

  /// The whole-file content hash maintained by writes/appends.
  Result<uint64_t> FileChecksum(const std::string& name) const;

  /// Test/fault-injection hook: flips one deterministic, seed-chosen byte
  /// of the stored file WITHOUT touching the integrity metadata, so the
  /// next VerifyFile reports DataLoss. Fails on missing or all-empty files.
  Status CorruptByteForTest(const std::string& name, uint64_t seed);

  /// Total serialized bytes of the file: lines plus newline terminators
  /// for text files, blocks plus their varint length prefixes for binary
  /// files.
  Result<uint64_t> FileBytes(const std::string& name) const;

  Result<size_t> FileLines(const std::string& name) const;

  /// Names of all files, sorted.
  std::vector<std::string> ListFiles() const;

  /// Splits the given files into roughly `target_splits` contiguous line
  /// ranges overall, never spanning files and never returning empty splits
  /// (unless every file is empty). With target_splits == 0, one split per
  /// file. Split sizes are proportional to file line counts.
  Result<std::vector<InputSplit>> MakeSplits(
      const std::vector<std::string>& names, size_t target_splits) const;

 private:
  // Lines plus their integrity metadata. line_hashes[i] is the FNV-1a hash
  // of lines[i]; file_hash folds them in order (seeded kFnvOffsetBasis).
  struct FileEntry {
    std::vector<std::string> lines;
    std::vector<uint64_t> line_hashes;
    uint64_t file_hash;
    /// True for files created via WriteFileBlocks: elements are binary
    /// blocks framed by varint length prefixes rather than newlines.
    bool binary = false;
    FileEntry();
    void Append(const std::string& line);
  };

  Status WriteInternal(const std::string& name, std::vector<std::string> lines,
                       bool binary);

  Result<const FileEntry*> FindLocked(const std::string& name) const
      FJ_REQUIRES_SHARED(mu_);

  // Reader/writer lock: jobs hammer the read path (splits, verification,
  // map input) concurrently, while writes are one commit per task.
  mutable SharedMutex mu_{"dfs", lock_rank::kStorage};
  // unique_ptr keeps line storage stable across map rehashes.
  std::map<std::string, std::unique_ptr<FileEntry>> files_ FJ_GUARDED_BY(mu_);
};

}  // namespace fj::mr
