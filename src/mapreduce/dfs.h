// An in-memory stand-in for a distributed file system (HDFS).
//
// Files are named, immutable-once-written sequences of text lines. Jobs read
// input files from the Dfs and write one output file per job. The Dfs also
// computes input splits (block boundaries) for the map phase.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "mapreduce/input.h"

namespace fj::mr {

class Dfs {
 public:
  Dfs() = default;
  Dfs(const Dfs&) = delete;
  Dfs& operator=(const Dfs&) = delete;

  /// Creates `name` with the given lines. Fails if the file exists.
  Status WriteFile(const std::string& name, std::vector<std::string> lines);

  /// Creates `name` if needed and appends the lines.
  Status AppendToFile(const std::string& name,
                      const std::vector<std::string>& lines);

  /// Returns a stable pointer to the file's lines (files are never moved
  /// once created; appends mutate the pointed-to vector, so callers must not
  /// hold the pointer across writes).
  Result<const std::vector<std::string>*> ReadFile(const std::string& name) const;

  bool Exists(const std::string& name) const;

  Status DeleteFile(const std::string& name);

  /// Removes every file.
  void Clear();

  /// Total bytes of the file's lines (excluding line terminators).
  Result<uint64_t> FileBytes(const std::string& name) const;

  Result<size_t> FileLines(const std::string& name) const;

  /// Names of all files, sorted.
  std::vector<std::string> ListFiles() const;

  /// Splits the given files into roughly `target_splits` contiguous line
  /// ranges overall, never spanning files and never returning empty splits
  /// (unless every file is empty). With target_splits == 0, one split per
  /// file. Split sizes are proportional to file line counts.
  Result<std::vector<InputSplit>> MakeSplits(
      const std::vector<std::string>& names, size_t target_splits) const;

 private:
  mutable std::mutex mu_;
  // unique_ptr keeps line storage stable across map rehashes.
  std::map<std::string, std::unique_ptr<std::vector<std::string>>> files_;
};

}  // namespace fj::mr
