// Contract checking for user-supplied job hooks — the layer that *proves*
// the JobSpec contract instead of trusting it.
//
// Every algorithm in the paper is expressed through user-supplied sort and
// group comparators, partitioners, and combiners (BTO's swapped sort keys,
// PK's partition-on-group / sort-on-(group, length) split, stage 1's
// algebraic count combiner). The engine's correctness theorems all assume
// those hooks are lawful:
//
//   - sort_less is a strict weak order (irreflexive, asymmetric,
//     transitive, with transitive incomparability);
//   - group_equal is reflexive, symmetric, and COARSER than the sort
//     order's equivalence (sort-equal keys must be group-equal), and
//     group-equal keys must be contiguous under sort_less;
//   - the partitioner sends group-equal keys to the same partition and
//     stays inside [0, num_partitions);
//   - the combiner is algebraic: associative, order-insensitive, and
//     idempotent over its own output (it runs once per spill, so its
//     output is re-fed to the reducer and possibly to itself).
//
// A hook that silently breaks one of these does not crash — it drops or
// duplicates join pairs (Hadoop's classic RawComparator bug). With
// JobSpec::check_contracts on, the engine samples emitted keys into a
// bounded pool and verifies the axioms on pairs and triples drawn from it,
// verifies the partitioner at emit time, property-tests the combiner on
// sampled key groups, and fingerprints group keys across reduce calls to
// catch both non-contiguous groups and reducers that mutate keys
// mid-group. The first violation latches a structured FailedPrecondition
// Status naming the offending key pair; the job fails with it instead of
// committing a wrong answer. Checks are metered (ContractStats /
// TaskMetrics::contract_checks) and priced by the cluster model like
// integrity verification.
//
// Sampling bounds: every kth emitted key (JobSpec::contract_sample_every)
// enters a pool of kContractPoolCap keys; each sampled key is checked
// against the whole pool (pairs) and at most kContractTripleCap triples.
// Every predicate evaluation counts one contract check.
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <functional>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "common/status.h"
#include "mapreduce/integrity.h"
#include "mapreduce/job_spec.h"

namespace fj::mr {

/// Pool of sampled keys each new sample is checked against.
inline constexpr size_t kContractPoolCap = 12;
/// Transitivity triples examined per sampled key.
inline constexpr size_t kContractTripleCap = 24;
/// Combiner key groups property-tested per spill.
inline constexpr size_t kContractCombinerGroupsPerSpill = 4;

/// Builds the structured violation Status: FailedPrecondition with
/// "job 'name': contract violation [rule]: detail".
Status ContractViolation(const std::string& job_name, const std::string& rule,
                         const std::string& detail);

/// Work performed by the checker, folded into TaskMetrics::contract_checks
/// and priced by ClusterConfig::contract_checks_per_second_per_node.
struct ContractStats {
  uint64_t keys_observed = 0;   ///< emitted keys seen (range check each)
  uint64_t keys_sampled = 0;    ///< keys that entered the axiom pool
  uint64_t checks = 0;          ///< predicate evaluations + key hashes
  uint64_t combiner_groups_checked = 0;
};

namespace contract_internal {

template <typename T, typename = void>
struct HasAdlDebugString : std::false_type {};

template <typename T>
struct HasAdlDebugString<
    T, std::void_t<decltype(FjDebugString(std::declval<const T&>()))>>
    : std::true_type {};

std::string QuoteForDebug(const std::string& s);

template <typename T>
std::string DebugKey(const T& value);

template <typename A, typename B>
std::string DebugKey(const std::pair<A, B>& value) {
  return "(" + DebugKey(value.first) + ", " + DebugKey(value.second) + ")";
}

template <typename... Ts>
std::string DebugKey(const std::tuple<Ts...>& value) {
  std::string out = "(";
  bool first = true;
  std::apply(
      [&out, &first](const Ts&... parts) {
        ((out += (first ? "" : ", ") + DebugKey(parts), first = false), ...);
      },
      value);
  return out + ")";
}

template <typename T>
std::string DebugKey(const T& value) {
  if constexpr (HasAdlDebugString<T>::value) {
    return FjDebugString(value);
  } else if constexpr (std::is_same_v<T, std::string>) {
    return QuoteForDebug(value);
  } else if constexpr (std::is_integral_v<T>) {
    return std::to_string(value);
  } else if constexpr (std::is_enum_v<T>) {
    return std::to_string(static_cast<int64_t>(value));
  } else if constexpr (std::is_floating_point_v<T>) {
    return std::to_string(value);
  } else {
    // Opaque key type: identify it by content hash so the violation still
    // names a concrete, reproducible key.
    char buf[24];
    std::snprintf(buf, sizeof(buf), "key#%016llx",
                  static_cast<unsigned long long>(ContentHashOf(value)));
    return buf;
  }
}

}  // namespace contract_internal

/// Map-emit-side checker: verifies partition range on every emitted key and
/// the comparator / partitioner axioms on a sampled pool. One instance per
/// map-task attempt (attempt-scoped like counters, so a crashed attempt's
/// latched state is dropped with it). `Ordering` must expose SortLess,
/// GroupEqual, and PartitionOf — SpecOrdering does.
template <typename K, typename Ordering>
class KeyContractChecker {
 public:
  KeyContractChecker(const Ordering* ordering, size_t num_partitions,
                     uint32_t sample_every, std::string job_name)
      : ordering_(ordering),
        num_partitions_(num_partitions),
        sample_every_(sample_every == 0 ? 1 : sample_every),
        job_name_(std::move(job_name)) {
    pool_.reserve(kContractPoolCap);
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  ContractStats& stats() { return stats_; }
  const std::string& job_name() const { return job_name_; }
  uint32_t sample_every() const { return sample_every_; }

  /// Latches a violation found outside the emit path (e.g. by the
  /// combiner property test); first violation wins.
  void Latch(Status violation) {
    if (status_.ok() && !violation.ok()) status_ = std::move(violation);
  }

  /// Observes one emitted key and the partition the job computed for it.
  /// Latches the first violation; once latched everything is a no-op and
  /// the caller should stop emitting (the job fails with status()).
  void ObserveEmit(const K& key, size_t partition) {
    if (!status_.ok()) return;
    stats_.keys_observed++;
    if (partition >= num_partitions_) {
      status_ = ContractViolation(
          job_name_, "partition out of range",
          "partitioner returned " + std::to_string(partition) + " for key " +
              contract_internal::DebugKey(key) + " but the job has only " +
              std::to_string(num_partitions_) + " partitions");
      return;
    }
    if (stats_.keys_observed % sample_every_ != 0) return;
    stats_.keys_sampled++;
    CheckSampledKey(key, partition);
    if (!status_.ok()) return;
    // Deterministic replacement keeps the pool a moving sample of the
    // emitted key stream without ever growing it.
    if (pool_.size() < kContractPoolCap) {
      pool_.push_back(Sample{key, partition});
    } else {
      pool_[HashInt64(stats_.keys_sampled) % pool_.size()] =
          Sample{key, partition};
    }
  }

 private:
  struct Sample {
    K key;
    size_t partition;
  };

  bool Less(const K& a, const K& b) {
    stats_.checks++;
    return ordering_->SortLess(a, b);
  }
  bool GroupEq(const K& a, const K& b) {
    stats_.checks++;
    return ordering_->GroupEqual(a, b);
  }

  void Violate(const std::string& rule, const std::string& detail) {
    if (status_.ok()) status_ = ContractViolation(job_name_, rule, detail);
  }

  /// Pairwise and triple-wise axioms of the new sample against the pool.
  void CheckSampledKey(const K& key, size_t partition) {
    if (Less(key, key)) {
      Violate("sort_less not irreflexive",
              "sort_less(k, k) is true for key k = " +
                  contract_internal::DebugKey(key));
      return;
    }
    if (!GroupEq(key, key)) {
      Violate("group comparator not reflexive",
              "group_equal(k, k) is false for key k = " +
                  contract_internal::DebugKey(key));
      return;
    }
    for (const Sample& sample : pool_) {
      const K& p = sample.key;
      const bool kp = Less(key, p);
      const bool pk = Less(p, key);
      if (kp && pk) {
        Violate("sort_less not asymmetric",
                "sort_less orders both a < b and b < a for a = " +
                    contract_internal::DebugKey(key) + ", b = " +
                    contract_internal::DebugKey(p));
        return;
      }
      const bool group_eq = GroupEq(key, p);
      if (group_eq != GroupEq(p, key)) {
        Violate("group comparator not symmetric",
                "group_equal(a, b) != group_equal(b, a) for a = " +
                    contract_internal::DebugKey(key) + ", b = " +
                    contract_internal::DebugKey(p));
        return;
      }
      if (!kp && !pk && !group_eq) {
        Violate("group comparator finer than sort order",
                "keys equal under sort_less are not group-equal: a = " +
                    contract_internal::DebugKey(key) + ", b = " +
                    contract_internal::DebugKey(p) +
                    " (the group comparator must be coarser than the sort "
                    "equivalence or groups fragment nondeterministically)");
        return;
      }
      if (group_eq && partition != sample.partition) {
        Violate("partitioner splits a key group",
                "group-equal keys landed in different partitions: a = " +
                    contract_internal::DebugKey(key) + " -> partition " +
                    std::to_string(partition) + ", b = " +
                    contract_internal::DebugKey(p) + " -> partition " +
                    std::to_string(sample.partition) +
                    " (their reduce group would be processed twice)");
        return;
      }
    }
    // Transitivity over sampled triples (key, pool[i], pool[j]) — both of
    // the classic strict-weak-order laws: transitivity of < and
    // transitivity of incomparability (the one subtly broken comparators
    // actually fail).
    size_t triples = 0;
    for (size_t i = 0; i < pool_.size() && triples < kContractTripleCap; ++i) {
      for (size_t j = i + 1; j < pool_.size() && triples < kContractTripleCap;
           ++j) {
        ++triples;
        const K& a = key;
        const K& b = pool_[i].key;
        const K& c = pool_[j].key;
        if (!CheckTriple(a, b, c) || !CheckTriple(b, a, c) ||
            !CheckTriple(b, c, a)) {
          return;
        }
      }
    }
  }

  /// Checks the two transitivity laws on one ordered triple (a, b, c).
  /// Returns false when a violation was latched.
  bool CheckTriple(const K& a, const K& b, const K& c) {
    const bool ab = Less(a, b);
    const bool bc = Less(b, c);
    if (ab && bc && !Less(a, c)) {
      Violate("sort_less not transitive",
              "a < b and b < c but not a < c for a = " +
                  contract_internal::DebugKey(a) + ", b = " +
                  contract_internal::DebugKey(b) + ", c = " +
                  contract_internal::DebugKey(c));
      return false;
    }
    if (!ab && !bc && !Less(b, a) && !Less(c, b) &&
        (Less(a, c) || Less(c, a))) {
      Violate("sort equivalence not transitive",
              "a ~ b and b ~ c (incomparable) but a and c compare unequal "
              "for a = " +
                  contract_internal::DebugKey(a) + ", b = " +
                  contract_internal::DebugKey(b) + ", c = " +
                  contract_internal::DebugKey(c) +
                  " (not a strict weak order: sorted runs will interleave "
                  "equal keys unpredictably)");
      return false;
    }
    return true;
  }

  const Ordering* ordering_;
  size_t num_partitions_;
  uint32_t sample_every_;
  std::string job_name_;
  Status status_;
  ContractStats stats_;
  std::vector<Sample> pool_;
};

/// Reduce-side checker: fingerprints the stream of group keys handed to
/// Reduce. Catches (1) group-equal keys that were NOT contiguous under the
/// sort order — the same logical group split across two reduce calls,
/// which silently duplicates or drops pairs; (2) a merged key stream that
/// regresses under sort_less (an inconsistent comparator); and (3) a
/// reducer (or combiner) that mutates the group key mid-call through the
/// const view. One instance per reduce-task attempt.
template <typename K, typename Ordering>
class GroupContractChecker {
 public:
  GroupContractChecker(const Ordering* ordering, std::string job_name)
      : ordering_(ordering), job_name_(std::move(job_name)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }
  ContractStats& stats() { return stats_; }

  /// Called with the first key of each group BEFORE Reduce runs. Returns
  /// the key's content fingerprint for the post-call mutation check.
  uint64_t ObserveGroup(const K& key) {
    stats_.checks += 2;
    if (!status_.ok()) return 0;
    if (has_prev_) {
      if (ordering_->GroupEqual(prev_, key)) {
        status_ = ContractViolation(
            job_name_, "key group not contiguous",
            "two consecutive reduce groups have group-equal keys: " +
                contract_internal::DebugKey(prev_) + " and " +
                contract_internal::DebugKey(key) +
                " (keys equal under group_equal must be contiguous under "
                "sort_less; this group was split across reduce calls)");
        return 0;
      }
      if (ordering_->SortLess(key, prev_)) {
        status_ = ContractViolation(
            job_name_, "merged keys out of sort order",
            "group key " + contract_internal::DebugKey(key) +
                " sorts before the previous group key " +
                contract_internal::DebugKey(prev_) +
                " (sort_less answered inconsistently across comparisons)");
        return 0;
      }
    }
    prev_ = key;
    has_prev_ = true;
    stats_.checks++;
    return ContentHashOf(key);
  }

  /// Called with the same key AFTER Reduce returned; `fingerprint` is
  /// ObserveGroup's return value.
  void CheckKeyUnchanged(const K& key, uint64_t fingerprint) {
    if (!status_.ok()) return;
    stats_.checks++;
    if (ContentHashOf(key) != fingerprint) {
      status_ = ContractViolation(
          job_name_, "reducer mutated the group key",
          "the group key changed while Reduce ran; it is now " +
              contract_internal::DebugKey(key) +
              " (user code must treat keys as immutable mid-group: the "
              "merge order and the remaining group span depend on them)");
    }
  }

 private:
  const Ordering* ordering_;
  std::string job_name_;
  Status status_;
  ContractStats stats_;
  K prev_{};
  bool has_prev_ = false;
};

namespace contract_internal {

/// Collects combiner output for the property tests.
template <typename K, typename V>
class CaptureEmitter : public Emitter<K, V> {
 public:
  void Emit(K key, V value) override {
    pairs_.emplace_back(std::move(key), std::move(value));
  }
  const std::vector<std::pair<K, V>>& pairs() const { return pairs_; }

 private:
  std::vector<std::pair<K, V>> pairs_;
};

/// Multiset fingerprint of emitted pairs: sorted content hashes, so two
/// outputs compare equal regardless of emit order.
template <typename K, typename V>
std::vector<uint64_t> PairFingerprints(
    const std::vector<std::pair<K, V>>& pairs) {
  std::vector<uint64_t> hashes;
  hashes.reserve(pairs.size());
  for (const auto& pair : pairs) hashes.push_back(ShufflePairChecksum(pair));
  std::sort(hashes.begin(), hashes.end());
  return hashes;
}

}  // namespace contract_internal

/// Property-tests the combiner on one sampled key group. The combiner runs
/// once per spill (Hadoop semantics), so its output is re-fed to the
/// reducer — and, across multiple spills, conceptually to itself. The test
/// verifies, on the group's real values:
///
///   order-insensitivity  combine(k, reverse(vs)) == combine(k, vs)
///   associativity        combine(k, {combine(front), combine(back)})
///                        == combine(k, vs)   (partial aggregates compose)
///   idempotence          combine over its own single-pair output is a
///                        fixed point
///   key immutability     the combiner must not mutate its input key
///
/// The associativity / idempotence re-feeds only apply when the partial
/// outputs are single pairs whose keys stay in the input key's group (the
/// algebraic-aggregation shape every lawful combiner has; a multi-pair or
/// group-escaping output is itself reported). Outputs are compared as
/// multisets of content hashes. Returns OK or the first violation.
template <typename K, typename V, typename Ordering>
Status CheckCombinerContract(
    const std::function<void(const K&, std::vector<V>&&, Emitter<K, V>*)>&
        combiner,
    const Ordering& ordering, const K& key, const std::vector<V>& values,
    const std::string& job_name, ContractStats* stats) {
  using contract_internal::CaptureEmitter;
  using contract_internal::DebugKey;
  using contract_internal::PairFingerprints;
  if constexpr (!std::is_copy_constructible_v<V>) {
    (void)combiner;
    (void)ordering;
    (void)key;
    (void)values;
    (void)job_name;
    (void)stats;
    return Status::OK();  // cannot replay move-only values
  } else {
    stats->combiner_groups_checked++;
    const uint64_t key_fingerprint = ContentHashOf(key);
    auto run = [&combiner, stats](const K& k, std::vector<V> vs) {
      stats->checks++;
      CaptureEmitter<K, V> capture;
      combiner(k, std::move(vs), &capture);
      return capture.pairs();
    };

    const auto baseline = run(key, values);
    stats->checks++;
    if (ContentHashOf(key) != key_fingerprint) {
      return ContractViolation(
          job_name, "combiner mutated the group key",
          "the input key changed while the combiner ran; it is now " +
              DebugKey(key));
    }
    const auto baseline_prints = PairFingerprints(baseline);

    // Order-insensitivity: the buffer's stable sort only fixes KEY order;
    // equal keys arrive in emit order, which differs between spills.
    std::vector<V> reversed(values.rbegin(), values.rend());
    if (PairFingerprints(run(key, std::move(reversed))) != baseline_prints) {
      return ContractViolation(
          job_name, "combiner order-sensitive",
          "combining the values of key " + DebugKey(key) +
              " in reverse order changed the output (spill order is not "
              "deterministic across buffer budgets)");
    }

    // Associativity / idempotence re-feeds need partial aggregates that
    // stay single pairs in the input key's group.
    auto single_in_group =
        [&ordering, &key, stats](const std::vector<std::pair<K, V>>& out) {
          stats->checks++;
          return out.size() == 1 && ordering.GroupEqual(out.front().first, key);
        };

    if (values.size() >= 2) {
      const size_t mid = values.size() / 2;
      const auto front = run(key, {values.begin(), values.begin() + mid});
      const auto back = run(key, {values.begin() + mid, values.end()});
      if (single_in_group(front) && single_in_group(back)) {
        const auto refed = run(
            key, {front.front().second, back.front().second});
        if (PairFingerprints(refed) != baseline_prints) {
          return ContractViolation(
              job_name, "combiner not associative",
              "combining the partial aggregates of key " + DebugKey(key) +
                  " differs from combining all values at once (the "
                  "combiner runs once per spill, so partial aggregates "
                  "must compose)");
        }
      }
    }
    if (single_in_group(baseline)) {
      const auto refed =
          run(baseline.front().first, {baseline.front().second});
      if (PairFingerprints(refed) != baseline_prints) {
        return ContractViolation(
            job_name, "combiner not idempotent",
            "re-combining the combined value of key " + DebugKey(key) +
                " changed it (multi-spill runs feed combiner output back "
                "through the combiner)");
      }
    }
    return Status::OK();
  }
}

}  // namespace fj::mr
