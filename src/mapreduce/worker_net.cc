// All raw POSIX socket / fork-exec machinery for the socket shuffle lives
// in this translation unit (tools/lint.py bans these calls elsewhere).
#include "mapreduce/worker_net.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <optional>
#include <string>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "common/varint.h"

namespace fj::mr::net {
namespace {

// magic u32 | type u8 | len u64 | hash u64, all little-endian.
constexpr size_t kFrameHeaderBytes = 4 + 1 + 8 + 8;
// A shuffle segment is bounded by map-task output; 1 GiB is far above any
// legitimate frame and catches a corrupted length field before we try to
// allocate it.
constexpr uint64_t kMaxFramePayload = uint64_t{1} << 30;

void PutU32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

void PutU64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
}

uint32_t GetU32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(in[i])) << (8 * i);
  }
  return v;
}

/// Reads exactly `len` bytes. Peer close mid-message is Unavailable; an
/// expired SO_RCVTIMEO deadline is DeadlineExceeded.
Status ReadFullFd(int fd, char* out, size_t len) {
  size_t done = 0;
  while (done < len) {
    ssize_t n = ::read(fd, out + done, len - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n == 0) return Status::Unavailable("peer closed mid-message");
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("socket read deadline expired");
    }
    return Status::IOError(std::string("read: ") + std::strerror(errno));
  }
  return Status::OK();
}

void AppendLengthPrefixed(std::string* out, std::string_view s) {
  AppendVarint(out, s.size());
  out->append(s);
}

bool DecodeLengthPrefixed(std::string_view buf, size_t* pos, std::string* s) {
  uint64_t len = 0;
  if (!DecodeVarint(buf, pos, &len) || len > buf.size() - *pos) return false;
  s->assign(buf.data() + *pos, static_cast<size_t>(len));
  *pos += static_cast<size_t>(len);
  return true;
}

Status SetSocketDeadlines(int fd, uint32_t io_timeout_ms) {
  timeval tv;
  tv.tv_sec = io_timeout_ms / 1000;
  tv.tv_usec = static_cast<long>(io_timeout_ms % 1000) * 1000;
  if (setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv)) != 0 ||
      setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv)) != 0) {
    return Status::IOError(std::string("setsockopt(SO_*TIMEO): ") +
                           std::strerror(errno));
  }
  return Status::OK();
}

void SleepMs(uint32_t ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Writes raw bytes, tolerating failure: fault injection sends truncated
/// and stalled responses where the peer may hang up at any point.
void BestEffortWrite(int fd, std::string_view data) {
  (void)WriteAllFd(fd, data);
}

}  // namespace

// ---------------------------------------------------------------------------
// Process-wide I/O hygiene.

void IgnoreSigpipe() {
  static const bool done = [] {
    ::signal(SIGPIPE, SIG_IGN);
    return true;
  }();
  (void)done;
}

Status WriteAllFd(int fd, std::string_view data) {
  size_t done = 0;
  while (done < data.size()) {
    ssize_t n = ::write(fd, data.data() + done, data.size() - done);
    if (n > 0) {
      done += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Non-blocking fd (the serve driver's stdout can be): wait for
      // writability rather than spinning.
      pollfd pfd{fd, POLLOUT, 0};
      (void)::poll(&pfd, 1, 1000);
      continue;
    }
    if (n < 0 && errno == EPIPE) {
      return Status::Unavailable("peer closed the pipe (EPIPE)");
    }
    return Status::IOError(std::string("write: ") + std::strerror(errno));
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// Frames.

void AppendFrame(std::string* out, FrameType type, std::string_view payload) {
  char header[kFrameHeaderBytes];
  PutU32(header, kFrameMagic);
  header[4] = static_cast<char>(type);
  PutU64(header + 5, payload.size());
  PutU64(header + 13, HashString(payload));
  out->append(header, sizeof(header));
  out->append(payload);
}

Status SendFrame(int fd, FrameType type, std::string_view payload) {
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(&wire, type, payload);
  return WriteAllFd(fd, wire);
}

Result<Frame> RecvFrame(int fd) {
  char header[kFrameHeaderBytes];
  FJ_RETURN_IF_ERROR(ReadFullFd(fd, header, sizeof(header)));
  if (GetU32(header) != kFrameMagic) {
    return Status::DataLoss("frame magic mismatch");
  }
  const uint64_t len = GetU64(header + 5);
  if (len > kMaxFramePayload) {
    return Status::DataLoss("frame length implausible (corrupt header)");
  }
  Frame frame;
  frame.type = static_cast<FrameType>(static_cast<uint8_t>(header[4]));
  frame.payload.resize(static_cast<size_t>(len));
  FJ_RETURN_IF_ERROR(ReadFullFd(fd, frame.payload.data(), frame.payload.size()));
  if (GetU64(header + 13) != HashString(frame.payload)) {
    return Status::DataLoss("frame payload hash mismatch");
  }
  return frame;
}

void EncodeRequest(const Request& request, std::string* out) {
  AppendLengthPrefixed(out, request.job);
  AppendVarint(out, request.map_task);
  AppendVarint(out, request.partition);
  AppendVarint(out, request.attempt);
  AppendLengthPrefixed(out, request.body);
}

bool DecodeRequest(std::string_view payload, Request* request) {
  size_t pos = 0;
  return DecodeLengthPrefixed(payload, &pos, &request->job) &&
         DecodeVarint(payload, &pos, &request->map_task) &&
         DecodeVarint(payload, &pos, &request->partition) &&
         DecodeVarint(payload, &pos, &request->attempt) &&
         DecodeLengthPrefixed(payload, &pos, &request->body) &&
         pos == payload.size();
}

void EncodeResponse(const Response& response, std::string* out) {
  AppendVarint(out, static_cast<uint64_t>(response.status.code()));
  AppendLengthPrefixed(out, response.status.message());
  AppendLengthPrefixed(out, response.body);
}

bool DecodeResponse(std::string_view payload, Response* response) {
  size_t pos = 0;
  uint64_t code = 0;
  std::string message;
  if (!DecodeVarint(payload, &pos, &code) ||
      !DecodeLengthPrefixed(payload, &pos, &message) ||
      !DecodeLengthPrefixed(payload, &pos, &response->body) ||
      pos != payload.size()) {
    return false;
  }
  response->status = code == 0 ? Status::OK()
                               : Status(static_cast<StatusCode>(code),
                                        std::move(message));
  return true;
}

// ---------------------------------------------------------------------------
// Sockets.

Result<int> ListenTcpLoopback(int* port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(*port));
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    Status err = Status::IOError(std::string("bind: ") + std::strerror(errno));
    CloseFd(fd);
    return err;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0) {
    Status err =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    CloseFd(fd);
    return err;
  }
  *port = ntohs(addr.sin_port);
  if (::listen(fd, 128) != 0) {
    Status err =
        Status::IOError(std::string("listen: ") + std::strerror(errno));
    CloseFd(fd);
    return err;
  }
  return fd;
}

Result<int> DialTcpLoopback(int port, uint32_t connect_timeout_ms,
                            uint32_t io_timeout_ms) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  // Non-blocking connect so a dead peer costs connect_timeout_ms, not the
  // kernel's SYN retry budget.
  int flags = ::fcntl(fd, F_GETFL, 0);
  (void)::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  int rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    Status err =
        Status::Unavailable(std::string("connect: ") + std::strerror(errno));
    CloseFd(fd);
    return err;
  }
  if (rc != 0) {
    pollfd pfd{fd, POLLOUT, 0};
    int ready = ::poll(&pfd, 1, static_cast<int>(connect_timeout_ms));
    if (ready <= 0) {
      CloseFd(fd);
      return Status::DeadlineExceeded("connect deadline expired");
    }
    int soerr = 0;
    socklen_t soerr_len = sizeof(soerr);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &soerr, &soerr_len) != 0 ||
        soerr != 0) {
      Status err = Status::Unavailable(std::string("connect: ") +
                                       std::strerror(soerr ? soerr : errno));
      CloseFd(fd);
      return err;
    }
  }
  (void)::fcntl(fd, F_SETFL, flags);
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  Status deadline = SetSocketDeadlines(fd, io_timeout_ms);
  if (!deadline.ok()) {
    CloseFd(fd);
    return deadline;
  }
  return fd;
}

void CloseFd(int fd) {
  if (fd < 0) return;
  int rc;
  do {
    rc = ::close(fd);
  } while (rc != 0 && errno == EINTR);
}

// ---------------------------------------------------------------------------
// WorkerServer.

WorkerServer::WorkerServer(WorkerServerOptions options)
    : options_(std::move(options)) {}

WorkerServer::~WorkerServer() { Stop(); }

Status WorkerServer::Start() {
  IgnoreSigpipe();
  int port = 0;
  FJ_ASSIGN_OR_RETURN(listen_fd_, ListenTcpLoopback(&port));
  port_ = port;
  {
    MutexLock lock(&mu_);
    stopping_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });  // lint: allow-thread
  return Status::OK();
}

void WorkerServer::Stop() {
  {
    MutexLock lock(&mu_);
    if (stopping_ && listen_fd_ < 0) return;
    stopping_ = true;
  }
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    CloseFd(listen_fd_);
    listen_fd_ = -1;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> handlers;  // lint: allow-thread (joining the wire layer's own handlers)
  {
    MutexLock lock(&mu_);
    handlers.swap(handlers_);
    segments_.clear();
  }
  for (auto& t : handlers) {
    if (t.joinable()) t.join();
  }
}

uint64_t WorkerServer::requests_served() const {
  MutexLock lock(&mu_);
  return requests_served_;
}

uint64_t WorkerServer::faults_injected() const {
  MutexLock lock(&mu_);
  return faults_injected_;
}

uint64_t WorkerServer::segments_stored() const {
  MutexLock lock(&mu_);
  return segments_.size();
}

void WorkerServer::AcceptLoop() {
  for (;;) {
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // listen fd closed by Stop(), or fatal — either way, done
    }
    MutexLock lock(&mu_);
    if (stopping_) {
      CloseFd(fd);
      return;
    }
    handlers_.emplace_back(  // lint: allow-thread
        [this, fd] { HandleConnection(fd); });
  }
}

void WorkerServer::HandleConnection(int fd) {
  Status deadline = SetSocketDeadlines(fd, options_.request_timeout_ms);
  if (!deadline.ok()) {
    CloseFd(fd);
    return;
  }
  Result<Frame> frame = RecvFrame(fd);
  if (!frame.ok()) {
    CloseFd(fd);
    return;
  }
  Request request;
  Response response;
  bool decoded = true;
  if (frame->type == FrameType::kPut || frame->type == FrameType::kGet ||
      frame->type == FrameType::kPing || frame->type == FrameType::kDropJob) {
    decoded = DecodeRequest(frame->payload, &request);
  }
  if (!decoded) {
    response.status = Status::InvalidArgument("malformed shuffle request");
  } else {
    response = Execute(request, frame->type);
  }
  {
    MutexLock lock(&mu_);
    requests_served_++;
  }
  if (SendWithFaults(fd, request, frame->type, response)) {
    MutexLock lock(&mu_);
    faults_injected_++;
  }
  CloseFd(fd);
}

Response WorkerServer::Execute(const Request& request, FrameType type) {
  Response response;
  MutexLock lock(&mu_);
  switch (type) {
    case FrameType::kPut:
      segments_[{request.job, request.map_task, request.partition}] =
          request.body;
      break;
    case FrameType::kGet: {
      auto it =
          segments_.find({request.job, request.map_task, request.partition});
      if (it == segments_.end()) {
        response.status = Status::NotFound(
            "shuffle segment not stored on this worker");
      } else {
        response.body = it->second;
      }
      break;
    }
    case FrameType::kPing:
      break;
    case FrameType::kDropJob: {
      auto it = segments_.lower_bound({request.job, 0, 0});
      while (it != segments_.end() && std::get<0>(it->first) == request.job) {
        it = segments_.erase(it);
      }
      break;
    }
    case FrameType::kQuit:
      break;  // life-pipe closure is the real shutdown signal
    default:
      response.status = Status::InvalidArgument("unexpected frame type");
      break;
  }
  return response;
}

bool WorkerServer::SendWithFaults(int fd, const Request& request,
                                  FrameType type, const Response& response) {
  std::string payload;
  EncodeResponse(response, &payload);
  const FrameType out_type =
      response.status.ok() ? FrameType::kOk : FrameType::kError;
  std::string wire;
  wire.reserve(kFrameHeaderBytes + payload.size());
  AppendFrame(&wire, out_type, payload);

  const NetFaultPlan& plan = options_.faults;
  const bool data_op = type == FrameType::kPut || type == FrameType::kGet;
  if (!plan.Empty() && data_op && request.attempt < plan.fault_attempts) {
    const NetOp op =
        type == FrameType::kPut ? NetOp::kPush : NetOp::kFetch;
    auto draw = [&](uint64_t salt) {
      return NetFaultDraw(plan, request.job, request.map_task,
                          request.partition, request.attempt, op, salt);
    };
    // Fixed precedence so a plan with several probabilities stays
    // deterministic: drop > truncate > stall > corrupt > delay.
    if (draw(1) < plan.drop_probability) {
      return true;  // close without any response
    }
    if (draw(2) < plan.truncate_probability) {
      // Header promises the full payload; deliver only part and hang up.
      const size_t cut = kFrameHeaderBytes + payload.size() / 2;
      BestEffortWrite(fd, std::string_view(wire).substr(0, cut));
      return true;
    }
    if (draw(3) < plan.stall_probability) {
      // Half the frame, then silence longer than the client's deadline.
      const size_t half = wire.size() / 2;
      BestEffortWrite(fd, std::string_view(wire).substr(0, half));
      SleepMs(plan.stall_ms);
      BestEffortWrite(fd, std::string_view(wire).substr(half));
      return true;
    }
    if (draw(4) < plan.corrupt_probability && !payload.empty()) {
      // Flip one payload byte AFTER the header hash was computed: the
      // client must catch the mismatch at the frame boundary.
      const size_t victim =
          kFrameHeaderBytes +
          static_cast<size_t>(draw(7) * static_cast<double>(payload.size()));
      wire[std::min(victim, wire.size() - 1)] ^= 0x40;
      BestEffortWrite(fd, wire);
      return true;
    }
    if (draw(5) < plan.delay_probability) {
      SleepMs(plan.delay_ms);
      BestEffortWrite(fd, wire);
      return true;
    }
  }
  BestEffortWrite(fd, wire);
  return false;
}

// ---------------------------------------------------------------------------
// WorkerPool.

Result<std::unique_ptr<WorkerPool>> WorkerPool::StartInProcess(
    size_t workers, const NetFaultPlan& faults) {
  auto pool = std::unique_ptr<WorkerPool>(new WorkerPool());
  for (size_t i = 0; i < workers; ++i) {
    WorkerServerOptions options;
    options.faults = faults;
    auto server = std::make_unique<WorkerServer>(options);
    FJ_RETURN_IF_ERROR(server->Start());
    pool->servers_.push_back(std::move(server));
  }
  return pool;
}

Result<std::unique_ptr<WorkerPool>> WorkerPool::SpawnProcesses(
    size_t workers, const NetFaultPlan& faults) {
  IgnoreSigpipe();
  auto pool = std::unique_ptr<WorkerPool>(new WorkerPool());
  const std::string faults_flag = "--net_faults=" + faults.Serialize();
  for (size_t i = 0; i < workers; ++i) {
    int port_pipe[2] = {-1, -1};
    int life_pipe[2] = {-1, -1};
    if (::pipe(port_pipe) != 0 || ::pipe(life_pipe) != 0) {
      CloseFd(port_pipe[0]);
      CloseFd(port_pipe[1]);
      return Status::IOError(std::string("pipe: ") + std::strerror(errno));
    }
    pid_t pid = ::fork();
    if (pid < 0) {
      CloseFd(port_pipe[0]);
      CloseFd(port_pipe[1]);
      CloseFd(life_pipe[0]);
      CloseFd(life_pipe[1]);
      return Status::IOError(std::string("fork: ") + std::strerror(errno));
    }
    if (pid == 0) {
      // Child: become a shuffle worker by re-execing this binary with the
      // sentinel argv. The exec keeps only the two handshake fds.
      CloseFd(port_pipe[0]);
      CloseFd(life_pipe[1]);
      const std::string port_fd_flag =
          "--port_fd=" + std::to_string(port_pipe[1]);
      const std::string life_fd_flag =
          "--life_fd=" + std::to_string(life_pipe[0]);
      const char* argv[] = {"/proc/self/exe",
                            kShuffleWorkerSentinel,
                            port_fd_flag.c_str(),
                            life_fd_flag.c_str(),
                            faults_flag.c_str(),
                            nullptr};
      ::execv("/proc/self/exe", const_cast<char* const*>(argv));
      ::_exit(127);  // exec failed
    }
    CloseFd(port_pipe[1]);
    CloseFd(life_pipe[0]);
    // Port handshake: the worker writes "<port>\n" once it is listening.
    std::string line;
    char ch = 0;
    for (;;) {
      ssize_t n = ::read(port_pipe[0], &ch, 1);
      if (n == 1 && ch != '\n') {
        line.push_back(ch);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      break;
    }
    CloseFd(port_pipe[0]);
    ProcessWorker worker;
    worker.pid = pid;
    worker.life_fd = life_pipe[1];
    worker.port = line.empty() ? 0 : std::atoi(line.c_str());
    pool->processes_.push_back(worker);
    if (worker.port <= 0) {
      return Status::Internal("shuffle worker " + std::to_string(i) +
                              " failed to report a port");
    }
  }
  return pool;
}

WorkerPool::~WorkerPool() {
  for (auto& worker : processes_) {
    if (worker.pid < 0) continue;
    CloseFd(worker.life_fd);  // HUP tells the worker to exit
    worker.life_fd = -1;
    const auto pid = static_cast<pid_t>(worker.pid);
    bool reaped = false;
    for (int spin = 0; spin < 200; ++spin) {  // ~2s grace, then SIGKILL
      int status = 0;
      pid_t done = ::waitpid(pid, &status, WNOHANG);
      if (done == pid || (done < 0 && errno == ECHILD)) {
        reaped = true;
        break;
      }
      SleepMs(10);
    }
    if (!reaped) {
      ::kill(pid, SIGKILL);
      int status = 0;
      (void)::waitpid(pid, &status, 0);
    }
    worker.pid = -1;
  }
}

std::vector<int> WorkerPool::ports() const {
  std::vector<int> ports;
  for (const auto& server : servers_) ports.push_back(server->port());
  for (const auto& worker : processes_) ports.push_back(worker.port);
  return ports;
}

size_t WorkerPool::size() const {
  return servers_.size() + processes_.size();
}

void WorkerPool::KillWorker(size_t index) {
  if (index < servers_.size()) {
    servers_[index]->Stop();
    return;
  }
  index -= servers_.size();
  if (index >= processes_.size()) return;
  auto& worker = processes_[index];
  if (worker.pid < 0) return;
  const auto pid = static_cast<pid_t>(worker.pid);
  ::kill(pid, SIGKILL);
  int status = 0;
  (void)::waitpid(pid, &status, 0);
  CloseFd(worker.life_fd);
  worker.life_fd = -1;
  worker.pid = -1;
}

WorkerServer* WorkerPool::server(size_t index) {
  return index < servers_.size() ? servers_[index].get() : nullptr;
}

// ---------------------------------------------------------------------------
// Worker process mode.

int RunShuffleWorkerMain(int argc, char** argv) {
  IgnoreSigpipe();
  int port_fd = STDOUT_FILENO;
  int life_fd = STDIN_FILENO;
  WorkerServerOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg.rfind("--port_fd=", 0) == 0) {
      port_fd = std::atoi(argv[i] + 10);
    } else if (arg.rfind("--life_fd=", 0) == 0) {
      life_fd = std::atoi(argv[i] + 10);
    } else if (arg.rfind("--net_faults=", 0) == 0) {
      if (!NetFaultPlan::Deserialize(arg.substr(13), &options.faults)) {
        std::fprintf(stderr, "fj-shuffle-worker: bad --net_faults\n");
        return 2;
      }
    } else if (arg == kShuffleWorkerSentinel) {
      // the dispatch sentinel itself
    } else {
      std::fprintf(stderr, "fj-shuffle-worker: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  WorkerServer server(options);
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "fj-shuffle-worker: %s\n",
                 started.ToString().c_str());
    return 1;
  }
  const std::string port_line = std::to_string(server.port()) + "\n";
  if (!WriteAllFd(port_fd, port_line).ok()) return 1;
  if (port_fd != STDOUT_FILENO) CloseFd(port_fd);
  // Serve until the coordinator closes the life pipe (or dies, which
  // closes it too) — read() returning 0 is the shutdown signal.
  char ch = 0;
  for (;;) {
    ssize_t n = ::read(life_fd, &ch, 1);
    if (n > 0) continue;
    if (n < 0 && errno == EINTR) continue;
    break;
  }
  server.Stop();
  return 0;
}

std::optional<int> MaybeRunShuffleWorker(int argc, char** argv) {
  if (argc >= 2 && std::string_view(argv[1]) == kShuffleWorkerSentinel) {
    return RunShuffleWorkerMain(argc, argv);
  }
  return std::nullopt;
}

}  // namespace fj::mr::net
