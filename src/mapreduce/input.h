// Input model for MapReduce jobs: line-oriented files split into contiguous
// line ranges (the analogue of Hadoop's TextInputFormat + FileSplit).
#pragma once

#include <cstdint>
#include <string>

namespace fj::mr {

/// A contiguous range of lines of one input file, processed by one map task.
/// Mirrors Hadoop's rule that "mappers do not span across files" — a rule the
/// paper's BRJ stage depends on to tell record files from RID-pair files.
struct InputSplit {
  /// Index of the file in the job's input_files list; exposed to mappers so
  /// they can distinguish input sources (the paper's stage 3 uses this).
  size_t file_index = 0;
  std::string file_name;
  size_t begin_line = 0;  ///< inclusive
  size_t end_line = 0;    ///< exclusive
};

/// One input record handed to a map call.
struct InputRecord {
  size_t file_index = 0;
  const std::string* file_name = nullptr;
  size_t line_number = 0;  ///< 0-based within the file
  const std::string* line = nullptr;
};

}  // namespace fj::mr
