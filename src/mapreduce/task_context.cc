#include "mapreduce/task_context.h"

namespace fj::mr {

void LocalScratch::Put(const std::string& key,
                       std::vector<std::string> lines) {
  for (const auto& l : lines) bytes_written_ += l.size() + 1;
  blocks_[key] = std::move(lines);
}

Result<const std::vector<std::string>*> LocalScratch::Get(
    const std::string& key) const {
  auto it = blocks_.find(key);
  if (it == blocks_.end()) return Status::NotFound("scratch block: " + key);
  for (const auto& l : it->second) bytes_read_ += l.size() + 1;
  return &it->second;
}

void LocalScratch::Erase(const std::string& key) { blocks_.erase(key); }

}  // namespace fj::mr
