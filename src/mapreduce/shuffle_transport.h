// The shuffle transport: how committed map-output partition segments
// travel from the map side to the reduce side of a job.
//
// Until PR 9 the hand-off was a function call — map tasks published their
// sorted runs into in-memory slots and reduce tasks read them in place, so
// every "network" fault the engine survived was injected. This layer makes
// the movement real and failure-prone:
//
//   - ShuffleTransport is the seam job.h programs against: Publish() one
//     encoded segment per (map task x reduce partition) at map commit,
//     Fetch() it back before the partition's reduce_inputs_pending
//     countdown may fire. The reduce side consumes the FETCHED bytes, so
//     a byte flipped in transit must be detected (frame + segment
//     checksums) or it would poison the join output.
//   - InprocTransport is the graceful-degradation default: a mutex-guarded
//     in-memory segment store with the same observable semantics, used by
//     `--transport=inproc` and by single-process tests.
//   - SocketTransport (MakeSocketTransport) moves segments over
//     length-framed loopback TCP to a set of shuffle-worker endpoints
//     (worker_net.h): segment (m, r) lives on worker m % N. Robustness
//     core: per-operation deadlines, bounded retry budgets with
//     exponential backoff + deterministic jitter, heartbeat-based peer
//     liveness, and worker-loss handling (a lost worker's segments are
//     re-routed to the next live worker in the ring when the engine
//     re-publishes them). Escalation beyond the transport — re-reading
//     the locally committed spill, ultimately re-running the map attempt
//     — lives in job.h, where the retry machinery is.
//   - NetFaultPlan is the deterministic network chaos injector: drop,
//     delay, truncate, bit-flip, stall mid-stream, and refuse-connect
//     faults, each seed-hashed per (job, map task, partition, attempt,
//     op) so chaos runs reproduce bit-for-bit. Server-side faults mangle
//     real response bytes on a real socket; only refuse-connect is
//     simulated client-side (a SYN that never lands has no server to
//     misbehave).
//
// Determinism contract: the transport moves bytes, it never reorders the
// shuffle — segments are keyed by (map task, partition) and decoded back
// into map-task-then-spill rank order (shuffle_segment.h), so join output
// is byte-identical across transports, worker counts, and fault plans.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <tuple>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "common/sync.h"

namespace fj::mr {

/// Which shuffle transport a run uses. Inproc is the default: the
/// in-process segment store with no sockets involved.
enum class TransportKind : uint8_t {
  kInproc = 0,
  kSocket = 1,
};

const char* TransportKindName(TransportKind kind);
/// Parses "inproc"/"socket". Returns false on unknown names.
bool ParseTransportKind(std::string_view name, TransportKind* kind);

/// Deterministic network fault injector: which shuffle RPCs misbehave and
/// how. Every (job, map task, partition, attempt, op, fault kind)
/// coordinate hashes — with the seed — to a uniform draw, so the same plan
/// produces the same faults regardless of timing, thread count, or worker
/// scheduling. Server-side faults (drop/delay/truncate/corrupt/stall)
/// mangle real response bytes on the wire; refuse-connect is applied
/// client-side before dialing.
struct NetFaultPlan {
  uint64_t seed = 0;

  /// Close the connection without sending any response.
  double drop_probability = 0;
  /// Send a response frame that claims more bytes than follow, then close.
  double truncate_probability = 0;
  /// Flip one byte of the response payload AFTER the frame hash was
  /// computed — the receiver must detect the mismatch at the frame
  /// boundary and retry.
  double corrupt_probability = 0;
  /// Send half the response, then go silent for stall_ms (longer than the
  /// client's I/O deadline) before finishing — the client must time out
  /// mid-stream and retry.
  double stall_probability = 0;
  /// Sleep delay_ms before responding (bounded; the response still lands).
  double delay_probability = 0;
  /// Client-side: the connection attempt is refused outright.
  double refuse_connect_probability = 0;

  uint32_t delay_ms = 20;
  uint32_t stall_ms = 400;

  /// Faults only fire on per-operation attempt numbers below this bound,
  /// mirroring FaultPlan::crash_failing_attempts: a retry budget >= the
  /// bound always recovers. Set it above the budget to model a permanent
  /// network fault (and exercise the escalation ladder).
  uint32_t fault_attempts = 2;

  bool Empty() const;

  /// One-flag serialization for shipping the plan to worker subprocesses
  /// (colon-separated scalar fields).
  std::string Serialize() const;
  static bool Deserialize(std::string_view text, NetFaultPlan* plan);
};

/// The operation being faulted / performed, part of the fault coordinate.
enum class NetOp : uint8_t {
  kPush = 1,   ///< map side publishing a segment to its owner worker
  kFetch = 2,  ///< reduce side fetching a segment back
};

/// Deterministic uniform draw in [0, 1) for one fault coordinate.
double NetFaultDraw(const NetFaultPlan& plan, std::string_view job,
                    uint64_t map_task, uint64_t partition, uint64_t attempt,
                    NetOp op, uint64_t salt);

/// Identity of one shuffle segment: the partition-`partition` slice of map
/// task `map_task`'s committed output in job `job`.
struct ShuffleSegmentKey {
  std::string job;
  uint64_t map_task = 0;
  uint64_t partition = 0;
};

/// Wire-activity counters for one Publish/Fetch call, aggregated by the
/// engine into JobMetrics (metrics.h net_* fields).
struct NetCallStats {
  uint64_t rpcs = 0;            ///< round trips attempted (retries included)
  uint64_t retries = 0;         ///< attempts after the first, per operation
  uint64_t corrupt_frames = 0;  ///< frame/segment checksum mismatches caught
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
};

/// The seam between the job engine and the bytes-moving layer. All methods
/// are thread-safe: map tasks publish and fetch concurrently.
class ShuffleTransport {
 public:
  virtual ~ShuffleTransport() = default;

  virtual const char* name() const = 0;

  /// Stores `segment` under `key`, replacing any previous bytes (publish
  /// is idempotent: re-publishing after a worker loss or a map re-run
  /// writes the same deterministic bytes).
  virtual Status Publish(const ShuffleSegmentKey& key, std::string segment,
                         NetCallStats* stats) = 0;

  /// Retrieves the bytes published under `key`, checksum-verified end to
  /// end. A non-OK result means the transport exhausted its own retry
  /// budget — the caller escalates (local spill, map re-run).
  virtual Result<std::string> Fetch(const ShuffleSegmentKey& key,
                                    NetCallStats* stats) = 0;

  /// Frees every segment of `job` (jobs in a pipeline run sequentially;
  /// the engine drops its shuffle when the job completes).
  virtual void DropJob(const std::string& job) = 0;

  /// Workers declared dead so far (heartbeat misses or exhausted
  /// connection retries). Always 0 for the in-process transport.
  virtual uint64_t worker_losses() const { return 0; }
};

/// The in-process default: a mutex-guarded segment map.
class InprocTransport : public ShuffleTransport {
 public:
  const char* name() const override { return "inproc"; }
  Status Publish(const ShuffleSegmentKey& key, std::string segment,
                 NetCallStats* stats) override;
  Result<std::string> Fetch(const ShuffleSegmentKey& key,
                            NetCallStats* stats) override;
  void DropJob(const std::string& job) override;

 private:
  Mutex mu_{"transport.inproc", lock_rank::kTransport};
  std::map<std::tuple<std::string, uint64_t, uint64_t>, std::string> segments_
      FJ_GUARDED_BY(mu_);
};

/// Client-side policy knobs of the socket transport.
struct SocketTransportOptions {
  /// Deadline for one connect attempt.
  uint32_t connect_timeout_ms = 500;
  /// Deadline for one frame send/receive (SO_SNDTIMEO/SO_RCVTIMEO): a
  /// stalled peer trips this and the operation retries.
  uint32_t io_timeout_ms = 1000;
  /// Attempts per operation against one worker before it is declared
  /// lost (Publish moves on to the next live worker in the ring; Fetch
  /// reports Unavailable and the engine escalates).
  uint32_t max_attempts_per_op = 5;
  /// Exponential backoff between attempts: base * 2^attempt, capped, plus
  /// deterministic jitter in [0, base) hashed from the fault coordinate.
  uint32_t backoff_base_ms = 5;
  uint32_t backoff_max_ms = 100;
  /// Background heartbeat (PING) cadence per worker; 0 disables the
  /// heartbeat thread (losses are then only detected on demand).
  uint32_t heartbeat_interval_ms = 100;
  /// Consecutive heartbeat misses before a worker is declared lost.
  uint32_t heartbeat_misses_to_loss = 3;
};

/// A socket transport speaking the worker_net.h frame protocol to shuffle
/// workers listening on 127.0.0.1:`ports[i]`. `fault_plan` (may be null)
/// drives only the CLIENT-side refuse-connect fault — server-side faults
/// belong to the workers' own plan. The returned transport owns a
/// heartbeat thread; destroy it before tearing the workers down.
std::unique_ptr<ShuffleTransport> MakeSocketTransport(
    std::vector<int> ports, std::shared_ptr<const NetFaultPlan> fault_plan,
    const SocketTransportOptions& options = {});

}  // namespace fj::mr
