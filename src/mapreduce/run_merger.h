// Reduce-side shuffle layer: streaming k-way merge of sorted runs — the
// analogue of Hadoop's reduce-side Merger.
//
// A reduce task collects every run of its partition (from all map tasks,
// in map-task-then-spill order) and feeds them to a RunMerger instead of
// materializing and re-sorting the whole partition. The merger holds a
// min-heap over one cursor per run and hands the reducer one contiguous
// key group at a time, so peak memory is the largest single group, not the
// partition.
//
// Ties (keys equal under the sort comparator) are broken toward the run
// with the lower rank — runs are ranked in map-task-then-spill order, and
// each run is internally in emit order, so tied pairs surface in exactly
// the order the legacy concatenate-then-stable-sort produced. Output is
// byte-identical to the unbounded path.
//
// When a partition has more runs than JobSpec::merge_factor, contiguous
// rank ranges are first collapsed into intermediate runs (Hadoop's
// multi-pass merge under a small io.sort.factor). Every intermediate pass
// re-reads its inputs and re-writes the merged run; that I/O is charged to
// the reduce task's scratch and counted in its metrics.
//
// Integrity: with JobSpec::verify_integrity the engine re-verifies every
// input run's write-side checksum (SortedRun::checksum, see integrity.h)
// at the run-merge read boundary — in RunReduceAttempt, immediately before
// the merger consumes the runs. The merger itself therefore only ever sees
// verified data, and intermediate collapsed runs never leave the attempt,
// so they need no fresh checksum of their own.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <utility>
#include <vector>

#include "mapreduce/job_spec.h"
#include "mapreduce/metrics.h"
#include "mapreduce/sort_buffer.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

template <typename K, typename V>
class RunMerger {
 public:
  using Pair = std::pair<K, V>;

  /// `runs` must be ordered by rank (map task first, then spill index);
  /// empty runs may be included and are skipped. The merger consumes the
  /// runs' pairs (they are moved out as groups stream).
  RunMerger(const SpecOrdering<K, V>* ordering,
            std::vector<SortedRun<K, V>*> runs, size_t merge_factor,
            TaskContext* ctx, TaskMetrics* metrics)
      : ordering_(ordering), merge_factor_(std::max<size_t>(2, merge_factor)),
        ctx_(ctx), metrics_(metrics) {
    for (SortedRun<K, V>* run : runs) {
      if (run != nullptr && !run->pairs.empty()) runs_.push_back(run);
    }
  }

  /// Streams each contiguous key group to `fn` as a span (valid only for
  /// the duration of the call), smallest keys first. `fn` may return void
  /// (consume every group) or bool — returning false stops the merge
  /// early, which the engine's fault layer uses to abort a crashing
  /// reduce attempt mid-stream.
  template <typename Fn>
  void ForEachGroup(Fn fn) {
    auto emit = [&fn](std::span<const Pair> group) -> bool {
      if constexpr (std::is_void_v<
                        std::invoke_result_t<Fn&, std::span<const Pair>>>) {
        fn(group);
        return true;
      } else {
        return fn(group);
      }
    };

    CollapseToSinglePass();
    if (runs_.empty()) return;

    // Reading the surviving runs is the final merge pass.
    for (SortedRun<K, V>* run : runs_) {
      if (run->on_disk) ctx_->scratch().ChargeSpillRead(run->bytes);
    }
    if (runs_.size() > 1) metrics_->merge_passes++;

    InitHeap();
    std::vector<Pair> group;
    while (!heap_.empty()) {
      if (!group.empty() &&
          !ordering_->GroupEqual(group.front().first, TopKey())) {
        if (!emit(std::span<const Pair>(group.data(), group.size()))) return;
        group.clear();
      }
      group.push_back(PopMin());
    }
    if (!group.empty()) {
      emit(std::span<const Pair>(group.data(), group.size()));
    }
  }

 private:
  struct Cursor {
    SortedRun<K, V>* run;
    size_t pos;
    size_t rank;
    const Pair& Current() const { return run->pairs[pos]; }
  };

  // Intermediate passes: while too many runs remain, merge the
  // `merge_factor` lowest-ranked (contiguous, so stability is preserved)
  // into one on-disk run that inherits the lowest rank.
  void CollapseToSinglePass() {
    while (runs_.size() > merge_factor_) {
      auto merged = std::make_unique<SortedRun<K, V>>();
      std::vector<SortedRun<K, V>*> inputs(
          runs_.begin(), runs_.begin() + merge_factor_);
      size_t total = 0;
      for (SortedRun<K, V>* run : inputs) {
        total += run->pairs.size();
        merged->bytes += run->bytes;
        if (run->on_disk) ctx_->scratch().ChargeSpillRead(run->bytes);
      }
      merged->pairs.reserve(total);

      RunMerger sub(ordering_, std::move(inputs), merge_factor_, ctx_,
                    metrics_);
      sub.InitHeap();
      while (!sub.heap_.empty()) merged->pairs.push_back(sub.PopMin());

      merged->on_disk = true;
      ctx_->scratch().ChargeSpillWrite(merged->bytes);
      metrics_->spill_count++;
      metrics_->spilled_bytes += merged->bytes;
      metrics_->merge_passes++;

      runs_.erase(runs_.begin(), runs_.begin() + merge_factor_);
      runs_.insert(runs_.begin(), merged.get());
      owned_.push_back(std::move(merged));
    }
  }

  void InitHeap() {
    heap_.clear();
    heap_.reserve(runs_.size());
    for (size_t i = 0; i < runs_.size(); ++i) {
      heap_.push_back(Cursor{runs_[i], 0, i});
    }
    std::make_heap(heap_.begin(), heap_.end(),
                   [this](const Cursor& a, const Cursor& b) {
                     return CursorAfter(a, b);
                   });
  }

  // Heap comparator: true if `a` surfaces after `b` (min-heap through
  // std::make_heap's max-heap semantics). Ties go to the lower rank.
  bool CursorAfter(const Cursor& a, const Cursor& b) const {
    const K& ka = a.Current().first;
    const K& kb = b.Current().first;
    if (ordering_->SortLess(ka, kb)) return false;
    if (ordering_->SortLess(kb, ka)) return true;
    return a.rank > b.rank;
  }

  const K& TopKey() const { return heap_.front().Current().first; }

  // Removes and returns the smallest pair, advancing its cursor.
  Pair PopMin() {
    auto after = [this](const Cursor& a, const Cursor& b) {
      return CursorAfter(a, b);
    };
    std::pop_heap(heap_.begin(), heap_.end(), after);
    Cursor& cursor = heap_.back();
    Pair pair = std::move(cursor.run->pairs[cursor.pos]);
    cursor.pos++;
    if (cursor.pos < cursor.run->pairs.size()) {
      std::push_heap(heap_.begin(), heap_.end(), after);
    } else {
      heap_.pop_back();
    }
    return pair;
  }

  const SpecOrdering<K, V>* ordering_;
  size_t merge_factor_;
  TaskContext* ctx_;
  TaskMetrics* metrics_;

  std::vector<SortedRun<K, V>*> runs_;
  std::vector<std::unique_ptr<SortedRun<K, V>>> owned_;
  std::vector<Cursor> heap_;
};

}  // namespace fj::mr
