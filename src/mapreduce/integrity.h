// Content hashing and deterministic corruption of shuffled (key, value)
// pairs — the typed analogue of HDFS block checksums.
//
// The engine checksums every sorted run at spill time (ContentHashOf folded
// over the run's pairs) and re-verifies the fold at the two read boundaries:
// map-attempt commit and reduce-side run-merge reads. The fault injector's
// CorruptRecord fault mutates one value in one run through CorruptInPlace —
// a real mutation, so undetected corruption genuinely changes downstream
// bytes rather than only tripping a flag.
//
// Custom shuffle types participate by being composed of the types handled
// here, or by providing `uint64_t FjContentHash(const T&)` and (for value
// types that can be corrupted) `bool FjCorruptContent(T&, uint64_t salt)`
// found via ADL — the same customization-point idiom as key_traits.h and
// byte_size.h.
#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/hash.h"

namespace fj::mr {

template <typename T>
uint64_t ContentHashOf(const T& value);

template <typename T>
bool CorruptInPlace(T& value, uint64_t salt);

namespace internal {

template <typename T, typename = void>
struct HasAdlContentHash : std::false_type {};

template <typename T>
struct HasAdlContentHash<
    T, std::void_t<decltype(FjContentHash(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T, typename = void>
struct HasAdlCorrupt : std::false_type {};

template <typename T>
struct HasAdlCorrupt<T, std::void_t<decltype(FjCorruptContent(
                            std::declval<T&>(), uint64_t{0}))>>
    : std::true_type {};

template <typename T>
struct ContentHash;

template <>
struct ContentHash<std::string> {
  static uint64_t Of(const std::string& s) { return HashString(s); }
};

template <typename A, typename B>
struct ContentHash<std::pair<A, B>> {
  static uint64_t Of(const std::pair<A, B>& p) {
    return HashCombine(ContentHashOf(p.first), ContentHashOf(p.second));
  }
};

template <typename T>
struct ContentHash<std::vector<T>> {
  static uint64_t Of(const std::vector<T>& v) {
    uint64_t h = HashInt64(v.size());
    for (const auto& e : v) h = HashCombine(h, ContentHashOf(e));
    return h;
  }
};

template <typename T>
struct ContentHash {
  static uint64_t Of(const T& value) {
    if constexpr (HasAdlContentHash<T>::value) {
      return FjContentHash(value);
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      return HashInt64(static_cast<uint64_t>(value));
    } else if constexpr (std::is_floating_point_v<T>) {
      uint64_t bits = 0;
      std::memcpy(&bits, &value, sizeof(value) < sizeof(bits) ? sizeof(value)
                                                              : sizeof(bits));
      return HashInt64(bits);
    } else {
      static_assert(HasAdlContentHash<T>::value,
                    "provide FjContentHash(const T&) for non-trivial types");
      return 0;
    }
  }
};

template <typename T>
struct Corrupt;

template <>
struct Corrupt<std::string> {
  static bool In(std::string& s, uint64_t salt) {
    if (s.empty()) return false;
    // XOR with a non-zero mask always changes the byte.
    s[salt % s.size()] ^= static_cast<char>(1u << (1 + salt % 7));
    return true;
  }
};

template <typename A, typename B>
struct Corrupt<std::pair<A, B>> {
  static bool In(std::pair<A, B>& p, uint64_t salt) {
    if (salt & 1 ? CorruptInPlace(p.second, salt >> 1)
                 : CorruptInPlace(p.first, salt >> 1)) {
      return true;
    }
    return salt & 1 ? CorruptInPlace(p.first, salt >> 1)
                    : CorruptInPlace(p.second, salt >> 1);
  }
};

template <typename T>
struct Corrupt<std::vector<T>> {
  static bool In(std::vector<T>& v, uint64_t salt) {
    if (v.empty()) return false;
    return CorruptInPlace(v[salt % v.size()], HashInt64(salt));
  }
};

template <typename T>
struct Corrupt {
  static bool In(T& value, uint64_t salt) {
    static_assert(HasAdlCorrupt<T>::value,
                  "provide FjCorruptContent(T&, uint64_t) for this type");
    return FjCorruptContent(value, salt);
  }
};

}  // namespace internal

/// Order-sensitive content hash of `value` (FNV-1a based).
template <typename T>
uint64_t ContentHashOf(const T& value) {
  return internal::ContentHash<T>::Of(value);
}

/// Flips one deterministic, salt-chosen bit/byte inside `value`. Returns
/// false when the value holds nothing corruptible (e.g. an empty string).
template <typename T>
bool CorruptInPlace(T& value, uint64_t salt) {
  if constexpr (std::is_integral_v<T>) {
    value = static_cast<T>(static_cast<uint64_t>(value) ^
                           (uint64_t{1} << (salt % (8 * sizeof(T)))));
    return true;
  } else {
    return internal::Corrupt<T>::In(value, salt);
  }
}

/// Checksum of one shuffled pair.
template <typename K, typename V>
uint64_t ShufflePairChecksum(const std::pair<K, V>& pair) {
  return HashCombine(ContentHashOf(pair.first), ContentHashOf(pair.second));
}

/// Order-sensitive checksum of a whole sorted run.
template <typename K, typename V>
uint64_t RunChecksum(const std::vector<std::pair<K, V>>& pairs) {
  uint64_t h = kFnvOffsetBasis;
  for (const auto& pair : pairs) h = HashCombine(h, ShufflePairChecksum(pair));
  return h;
}

/// Per-line checksum used by the Dfs (whole-file hash is the ordered fold
/// of these with HashCombine, seeded with kFnvOffsetBasis).
inline uint64_t LineChecksum(const std::string& line) {
  return HashString(line);
}

}  // namespace fj::mr
