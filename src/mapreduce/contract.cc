#include "mapreduce/contract.h"

#include <cstdio>
#include <cstdlib>
#include <string>

namespace fj::mr {

bool ContractChecksDefaultOn() {
  // Resolved once: the FJ_CHECK_CONTRACTS env var wins (CI sets it to run
  // release builds with checks on), otherwise debug builds default on and
  // optimized builds default off — mirroring assert().
  static const bool kDefault = [] {
    if (const char* env = std::getenv("FJ_CHECK_CONTRACTS")) {
      return env[0] != '\0' && env[0] != '0';
    }
#ifdef NDEBUG
    return false;
#else
    return true;
#endif
  }();
  return kDefault;
}

Status ContractViolation(const std::string& job_name, const std::string& rule,
                         const std::string& detail) {
  return Status::FailedPrecondition("job '" + job_name +
                                    "': contract violation [" + rule +
                                    "]: " + detail);
}

namespace contract_internal {

std::string QuoteForDebug(const std::string& s) {
  constexpr size_t kMaxShown = 48;
  std::string out = "\"";
  const size_t shown = std::min(s.size(), kMaxShown);
  for (size_t i = 0; i < shown; ++i) {
    const char c = s[i];
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else if (c == '\t') {
      out += "\\t";
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\x%02x",
                    static_cast<unsigned>(static_cast<unsigned char>(c)));
      out += buf;
    } else {
      out += c;
    }
  }
  out += '"';
  if (s.size() > kMaxShown) {
    out += "… (";
    out += std::to_string(s.size());
    out += " bytes)";
  }
  return out;
}

}  // namespace contract_internal

}  // namespace fj::mr
