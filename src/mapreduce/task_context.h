// Per-task context: counters, simulated-cost charging, and local scratch
// space (the analogue of a task's local disk, used by reduce-based block
// processing in Section 5 of the paper).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/counters.h"
#include "common/result.h"
#include "mapreduce/fault.h"

namespace fj::mr {

/// Models a task's local disk. Data lives in memory, but reads and writes
/// are metered (bytes + simulated seconds) so the cluster cost model can
/// charge for the extra I/O that reduce-based block processing performs.
class LocalScratch {
 public:
  /// seconds_per_byte: simulated cost of one byte of local I/O
  /// (default ~100 MB/s).
  explicit LocalScratch(double seconds_per_byte = 1e-8)
      : seconds_per_byte_(seconds_per_byte) {}

  /// Stores `lines` under `key`, replacing any previous content.
  void Put(const std::string& key, std::vector<std::string> lines);

  /// Reads back a stored block. NotFound if absent.
  Result<const std::vector<std::string>*> Get(const std::string& key) const;

  void Erase(const std::string& key);

  uint64_t bytes_written() const { return bytes_written_; }
  uint64_t bytes_read() const { return bytes_read_; }

  /// Spill-run channel: the engine's sort-spill-merge shuffle keeps its
  /// runs typed (in memory, like every block here) but routes their
  /// serialized size through the scratch so spill traffic is attributed
  /// to the task that performed it. Kept separate from Put/Get traffic
  /// and NOT folded into io_seconds(): the cluster cost model prices
  /// spill bytes with its own local-disk bandwidth term
  /// (ClusterConfig::local_disk_bytes_per_second_per_node).
  void ChargeSpillWrite(uint64_t bytes) { spill_bytes_written_ += bytes; }
  void ChargeSpillRead(uint64_t bytes) { spill_bytes_read_ += bytes; }
  uint64_t spill_bytes_written() const { return spill_bytes_written_; }
  uint64_t spill_bytes_read() const { return spill_bytes_read_; }

  /// Simulated seconds spent on scratch I/O so far.
  double io_seconds() const {
    return seconds_per_byte_ * static_cast<double>(bytes_written_ + bytes_read_);
  }

 private:
  double seconds_per_byte_;
  std::map<std::string, std::vector<std::string>> blocks_;
  uint64_t bytes_written_ = 0;
  mutable uint64_t bytes_read_ = 0;
  uint64_t spill_bytes_written_ = 0;
  uint64_t spill_bytes_read_ = 0;
};

/// Handed to mapper/reducer Setup(); identifies the task *attempt* and
/// collects costs. The engine creates one TaskContext per attempt: a
/// retried or speculative task sees a fresh context, so counters and
/// scratch from a failed attempt never leak into the committed result.
class TaskContext {
 public:
  TaskContext(size_t task_id, CounterSet* counters)
      : task_id_(task_id), counters_(counters) {}

  TaskContext(size_t task_id, uint32_t attempt, CounterSet* counters)
      : task_id_(task_id), attempt_(attempt), counters_(counters) {}

  size_t task_id() const { return task_id_; }

  /// 0 for the original attempt; retries and speculative backups count up.
  uint32_t attempt() const { return attempt_; }

  CounterSet& counters() { return *counters_; }

  /// Fault injection hooks (see mapreduce/fault.h). The engine installs
  /// the attempt's resolved fault and ticks record progress; user code
  /// never calls these — mappers/reducers stay fault-oblivious.
  void set_fault(const AttemptFault& fault) { fault_ = fault; }
  const AttemptFault& fault() const { return fault_; }

  /// True when the installed fault says this attempt must crash now
  /// (checked by the engine before each record / reduce group).
  bool CrashDue() const {
    return records_processed_ >= fault_.crash_after_records;
  }
  void NoteRecordProcessed() { records_processed_++; }
  uint64_t records_processed() const { return records_processed_; }

  /// Malformed-input quarantine (map attempts only). Instead of aborting
  /// the job on an unparsable input line, a mapper hands the raw line here;
  /// the engine writes the committed attempt's quarantined lines to
  /// `<output_file>.bad` in map-task order and counts them against
  /// JobSpec::max_skipped_records. Attempt-scoped like everything else: a
  /// crashed attempt's quarantined lines are dropped with it.
  void QuarantineRecord(std::string line) {
    quarantined_.push_back(std::move(line));
  }
  const std::vector<std::string>& quarantined_records() const {
    return quarantined_;
  }
  std::vector<std::string> TakeQuarantined() { return std::move(quarantined_); }

  /// Adds simulated seconds to this task's cost without actually sleeping.
  /// Used to model work whose real cost the simulator cannot observe
  /// (e.g. spinning disks, JVM startup).
  void ChargeSeconds(double seconds) { charged_seconds_ += seconds; }

  double charged_seconds() const {
    return charged_seconds_ + scratch_.io_seconds();
  }

  LocalScratch& scratch() { return scratch_; }
  const LocalScratch& scratch() const { return scratch_; }

 private:
  size_t task_id_;
  uint32_t attempt_ = 0;
  CounterSet* counters_;
  double charged_seconds_ = 0;
  uint64_t records_processed_ = 0;
  AttemptFault fault_;
  LocalScratch scratch_;
  std::vector<std::string> quarantined_;
};

}  // namespace fj::mr
