// Map-side shuffle layer: memory-bounded buffering, sorting, combining,
// and spilling of map output — the analogue of Hadoop's MapOutputBuffer.
//
// Every map task owns one SortBuffer. Emitted pairs accumulate against the
// job's byte budget (JobSpec::sort_buffer_bytes); when the next pair would
// overflow it, the buffer is stable-sorted by (partition, sort comparator),
// the combiner (if any) runs once per key group, and the result is written
// out as one sorted run per reduce partition — a "spill". Spill bytes are
// charged through the task's LocalScratch so the cost model sees the I/O.
// With a zero budget the whole map output becomes a single in-memory run
// at Flush() and nothing is charged — the legacy unbounded behaviour.
//
// Determinism: the sort is stable, so pairs with equal keys stay in emit
// order within a run, and spills are numbered in temporal order. The
// reduce-side RunMerger breaks ties toward earlier (map task, spill) runs,
// which reproduces the legacy concatenate-then-stable-sort order exactly;
// job output is byte-identical with spilling on or off.
#pragma once

#include <algorithm>
#include <cassert>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "mapreduce/byte_size.h"
#include "mapreduce/contract.h"
#include "mapreduce/integrity.h"
#include "mapreduce/job_spec.h"
#include "mapreduce/metrics.h"
#include "mapreduce/record_format.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

/// One sorted run of shuffle pairs for a single reduce partition. Runs are
/// the unit the reduce side merges; `bytes` is the estimated serialized
/// size (computed while the run was built, so nothing re-walks the data).
template <typename K, typename V>
struct SortedRun {
  std::vector<std::pair<K, V>> pairs;
  uint64_t bytes = 0;
  /// True when the run was spilled: its write was charged to the producing
  /// task's scratch and its read will be charged to the consuming task.
  bool on_disk = false;
  /// Write-side content checksum, computed when the run is finalized and
  /// JobSpec::verify_integrity is on; re-verified at map-attempt commit
  /// and at the reduce side's run-merge read. Text format: integrity.h
  /// RunChecksum over `pairs`. Binary format: HashString over `encoded` —
  /// the checksum covers the block bytes that actually sit in the
  /// shuffle, compressed or not. 0 when verification is off.
  uint64_t checksum = 0;
  /// Binary format only: the framed (possibly compressed) run block
  /// produced by EncodeRunBlock. When non-empty, `pairs` is empty (the
  /// encoded block is authoritative; the reduce side decodes a private
  /// copy), `bytes` is the encoded size, and `record_count` remembers how
  /// many pairs the block holds.
  std::string encoded;
  uint64_t record_count = 0;
  /// Binary format only: pre-codec payload size, for compression-ratio
  /// metering.
  uint64_t logical_bytes = 0;

  /// True when the run carries any records, decoded or still encoded.
  bool HasRecords() const { return !pairs.empty() || record_count > 0; }
};

/// Everything one map task ships to the shuffle: spills in temporal order,
/// each holding one sorted run per reduce partition.
template <typename K, typename V>
struct MapTaskOutput {
  std::vector<std::vector<SortedRun<K, V>>> spills;
};

/// The Emitter handed to mappers. Buffers, sorts, combines, and spills.
template <typename K, typename V>
class SortBuffer : public Emitter<K, V> {
 public:
  using Pair = std::pair<K, V>;

  SortBuffer(const JobSpec<K, V>* spec, const SpecOrdering<K, V>* ordering,
             TaskContext* ctx, TaskMetrics* metrics, MapTaskOutput<K, V>* out,
             KeyContractChecker<K, SpecOrdering<K, V>>* checker = nullptr)
      : spec_(spec), ordering_(ordering), ctx_(ctx), metrics_(metrics),
        out_(out), checker_(checker) {}

  void Emit(K key, V value) override {
    // Once the checker latched a violation the job is failing anyway;
    // stop accepting output so the attempt winds down fast.
    if (checker_ != nullptr && !checker_->ok()) return;

    const uint64_t pair_bytes = ByteSizeOf(key) + ByteSizeOf(value);
    metrics_->output_records++;
    metrics_->output_bytes += pair_bytes;

    // Spill-before-insert keeps the buffered bytes at or under the budget
    // (a single pair larger than the whole budget still gets buffered —
    // it has to live somewhere before it can be spilled).
    const uint64_t budget = spec_->sort_buffer_bytes;
    if (budget > 0 && !entries_.empty() &&
        buffered_bytes_ + pair_bytes > budget) {
      Spill(/*to_disk=*/true);
    }

    const size_t partition = ordering_->PartitionOf(key);
    if (checker_ != nullptr) {
      // The checker reports an out-of-range partition as a structured
      // violation BEFORE the assert below would hit it (in release builds
      // the assert compiles away and the bad index would be UB).
      checker_->ObserveEmit(key, partition);
      if (!checker_->ok()) return;
    }
    assert(partition < spec_->num_reduce_tasks);
    entries_.push_back(
        Entry{partition, pair_bytes, Pair(std::move(key), std::move(value))});
    buffered_bytes_ += pair_bytes;
    metrics_->peak_buffer_bytes =
        std::max(metrics_->peak_buffer_bytes, buffered_bytes_);
  }

  /// Finalizes the map task's output. With a budget every spill is a disk
  /// spill (Hadoop always writes map output to local disk); without one
  /// the single final run stays an uncharged in-memory run.
  void Flush() {
    if (!entries_.empty()) Spill(/*to_disk=*/spec_->sort_buffer_bytes > 0);
  }

 private:
  struct Entry {
    size_t partition;
    uint64_t bytes;
    Pair pair;
  };

  // Routes combiner output into per-partition accumulators. The combiner
  // may emit any key, so the partition is recomputed per emitted pair, and
  // the combined output is metered here — this is where post-combine
  // records/bytes are accounted (they become the run totals below).
  class CombineCollector : public Emitter<K, V> {
   public:
    CombineCollector(const SpecOrdering<K, V>* ordering, size_t num_partitions)
        : ordering_(ordering), pairs_(num_partitions), bytes_(num_partitions) {}

    void Emit(K key, V value) override {
      const size_t partition = ordering_->PartitionOf(key);
      assert(partition < pairs_.size());
      bytes_[partition] += ByteSizeOf(key) + ByteSizeOf(value);
      pairs_[partition].emplace_back(std::move(key), std::move(value));
    }

    std::vector<std::vector<Pair>>& pairs() { return pairs_; }
    const std::vector<uint64_t>& bytes() const { return bytes_; }

   private:
    const SpecOrdering<K, V>* ordering_;
    std::vector<std::vector<Pair>> pairs_;
    std::vector<uint64_t> bytes_;
  };

  void Spill(bool to_disk) {
    // Stable sort by (partition, key): equal keys keep emit order, which
    // the merge layer relies on for deterministic output.
    std::stable_sort(entries_.begin(), entries_.end(),
                     [this](const Entry& a, const Entry& b) {
                       if (a.partition != b.partition) {
                         return a.partition < b.partition;
                       }
                       return ordering_->SortLess(a.pair.first, b.pair.first);
                     });

    std::vector<SortedRun<K, V>> runs(spec_->num_reduce_tasks);
    if (spec_->combiner) {
      CombineRuns(&runs);
    } else {
      for (Entry& e : entries_) {
        runs[e.partition].pairs.push_back(std::move(e.pair));
        runs[e.partition].bytes += e.bytes;
      }
    }

    uint64_t run_bytes = 0;
    const bool binary = spec_->record_format == RecordFormat::kBinary;
    for (SortedRun<K, V>& run : runs) {
      metrics_->shuffle_records += run.pairs.size();
      if (binary && !run.pairs.empty()) {
        // Serialization is real in binary mode: the run's pairs become one
        // encoded (optionally compressed) block, the shuffle meters count
        // encoded bytes actually produced, and the write-side checksum
        // covers the encoded bytes — the bytes in the shuffle are the
        // bytes verified at the read boundaries.
        run.record_count = run.pairs.size();
        EncodeRunBlock(spec_->block_codec, run.pairs, &run.encoded,
                       &run.logical_bytes);
        run.pairs.clear();
        run.pairs.shrink_to_fit();
        run.bytes = run.encoded.size();
        metrics_->codec_logical_bytes += run.logical_bytes;
        metrics_->codec_encoded_bytes += run.encoded.size();
        if (spec_->verify_integrity) run.checksum = HashString(run.encoded);
      } else if (spec_->verify_integrity) {
        // Write-side checksum, the HDFS "checksum on write" half; the read
        // boundaries re-verify it.
        run.checksum = RunChecksum(run.pairs);
      }
      metrics_->shuffle_bytes += run.bytes;
      run_bytes += run.bytes;
      run.on_disk = to_disk;
    }
    if (to_disk) {
      metrics_->spill_count++;
      metrics_->spilled_bytes += run_bytes;
      ctx_->scratch().ChargeSpillWrite(run_bytes);
    }

    out_->spills.push_back(std::move(runs));
    entries_.clear();
    buffered_bytes_ = 0;
  }

  // Runs the combiner over each key group of the sorted buffer (partition
  // by partition, groups in sort order — the same call sequence the legacy
  // per-bucket combine pass produced), then rebuilds sorted runs from its
  // output.
  void CombineRuns(std::vector<SortedRun<K, V>>* runs) {
    CombineCollector collector(ordering_, spec_->num_reduce_tasks);
    size_t begin = 0;
    size_t groups_checked = 0;
    size_t groups_seen = 0;
    while (begin < entries_.size()) {
      size_t end = begin + 1;
      while (end < entries_.size() &&
             entries_[end].partition == entries_[begin].partition &&
             ordering_->GroupEqual(entries_[begin].pair.first,
                                   entries_[end].pair.first)) {
        ++end;
      }
      std::vector<V> values;
      values.reserve(end - begin);
      for (size_t i = begin; i < end; ++i) {
        values.push_back(std::move(entries_[i].pair.second));
      }
      // Property-test the combiner on a few sampled groups per spill,
      // BEFORE the real run consumes the values (the test only copies).
      if (checker_ != nullptr && checker_->ok() &&
          groups_checked < kContractCombinerGroupsPerSpill &&
          groups_seen++ % checker_->sample_every() == 0) {
        ++groups_checked;
        checker_->Latch(CheckCombinerContract(
            spec_->combiner, *ordering_, entries_[begin].pair.first, values,
            checker_->job_name(), &checker_->stats()));
      }
      spec_->combiner(entries_[begin].pair.first, std::move(values),
                      &collector);
      begin = end;
    }
    for (size_t p = 0; p < runs->size(); ++p) {
      SortedRun<K, V>& run = (*runs)[p];
      run.pairs = std::move(collector.pairs()[p]);
      run.bytes = collector.bytes()[p];
      // The combiner usually emits in key order already; stable sort keeps
      // its emit order on ties either way.
      std::stable_sort(run.pairs.begin(), run.pairs.end(),
                       [this](const Pair& a, const Pair& b) {
                         return ordering_->SortLess(a.first, b.first);
                       });
    }
  }

  const JobSpec<K, V>* spec_;
  const SpecOrdering<K, V>* ordering_;
  TaskContext* ctx_;
  TaskMetrics* metrics_;
  MapTaskOutput<K, V>* out_;
  /// Optional contract checker for this attempt; nullptr when
  /// JobSpec::check_contracts is off.
  KeyContractChecker<K, SpecOrdering<K, V>>* checker_;

  std::vector<Entry> entries_;
  uint64_t buffered_bytes_ = 0;
};

}  // namespace fj::mr
