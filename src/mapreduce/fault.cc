#include "mapreduce/fault.h"

#include <algorithm>

#include "common/hash.h"

namespace fj::mr {

namespace {

/// Maps a 64-bit hash onto [0, 1). 53 mantissa bits, like Rng::NextDouble.
double UnitDraw(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* TaskPhaseName(TaskPhase phase) {
  switch (phase) {
    case TaskPhase::kMap:
      return "map";
    case TaskPhase::kReduce:
      return "reduce";
  }
  return "?";
}

const char* CorruptTargetName(CorruptTarget target) {
  switch (target) {
    case CorruptTarget::kNone:
      return "none";
    case CorruptTarget::kMapOutput:
      return "map_output";
    case CorruptTarget::kSpill:
      return "spill";
    case CorruptTarget::kReduceOutput:
      return "reduce_output";
  }
  return "?";
}

bool FaultSpec::AppliesTo(TaskPhase p, size_t task, uint32_t attempt,
                          const std::string& job_name) const {
  if (p != phase || task != task_id) return false;
  if (attempt < first_attempt) return false;
  if (failing_attempts != kAllAttempts &&
      attempt - first_attempt >= failing_attempts) {
    return false;
  }
  if (!job_substring.empty() &&
      job_name.find(job_substring) == std::string::npos) {
    return false;
  }
  return true;
}

bool FaultPlan::Empty() const {
  return faults.empty() && crash_probability <= 0.0 &&
         straggler_probability <= 0.0 && corrupt_probability <= 0.0;
}

bool FaultPlan::RecoverableWith(uint32_t max_task_attempts,
                                bool verify_integrity) const {
  for (const FaultSpec& spec : faults) {
    // A corrupting spec behaves like a crash at commit time — but only the
    // integrity layer can detect it and trigger the retry.
    const bool corrupts = spec.corrupt_target != CorruptTarget::kNone;
    if (corrupts && !verify_integrity) return false;
    if (spec.crash_after_records == AttemptFault::kNoCrash && !corrupts) {
      continue;
    }
    if (spec.failing_attempts == FaultSpec::kAllAttempts) return false;
    // The attempts this fault covers must leave at least one clean attempt
    // inside the budget.
    uint64_t last_failing =
        static_cast<uint64_t>(spec.first_attempt) + spec.failing_attempts;
    if (spec.first_attempt == 0 && last_failing >= max_task_attempts) {
      return false;
    }
  }
  if (crash_probability > 0.0 && crash_failing_attempts >= max_task_attempts) {
    return false;
  }
  if (corrupt_probability > 0.0 &&
      (!verify_integrity || corrupt_failing_attempts >= max_task_attempts)) {
    return false;
  }
  return true;
}

FaultInjector::FaultInjector(const FaultPlan* plan, std::string job_name)
    : plan_(plan), job_name_(std::move(job_name)) {}

AttemptFault FaultInjector::FaultFor(TaskPhase phase, size_t task_id,
                                     uint32_t attempt) const {
  AttemptFault fault;
  if (!active()) return fault;

  // One stable hash per (job, phase, task, attempt) coordinate; scripted
  // corruption salts fold it in so each affected attempt corrupts a
  // distinct record, and the probabilistic layer salts it per draw.
  uint64_t h = HashString(job_name_);
  h = HashCombine(h, HashInt64(static_cast<uint64_t>(phase)));
  h = HashCombine(h, HashInt64(static_cast<uint64_t>(task_id)));
  h = HashCombine(h, HashInt64(attempt));
  h = HashCombine(h, HashInt64(plan_->seed));

  for (const FaultSpec& spec : plan_->faults) {
    if (!spec.AppliesTo(phase, task_id, attempt, job_name_)) continue;
    fault.crash_after_records =
        std::min(fault.crash_after_records, spec.crash_after_records);
    fault.slowdown *= spec.slowdown;
    fault.extra_seconds += spec.extra_seconds;
    if (spec.corrupt_target != CorruptTarget::kNone && !fault.corrupts()) {
      fault.corrupt_target = spec.corrupt_target;
      fault.corrupt_salt = HashCombine(h, HashInt64(spec.corrupt_salt));
    }
  }

  if (plan_->crash_probability > 0.0 &&
      attempt < plan_->crash_failing_attempts &&
      UnitDraw(HashInt64(h ^ 0xc1)) < plan_->crash_probability) {
    uint64_t k = HashInt64(h ^ 0xc2) % (plan_->crash_after_records + 1);
    fault.crash_after_records = std::min(fault.crash_after_records, k);
  }
  if (plan_->straggler_probability > 0.0 && attempt == 0 &&
      UnitDraw(HashInt64(h ^ 0x51)) < plan_->straggler_probability) {
    fault.slowdown *= plan_->straggler_slowdown;
    fault.extra_seconds += plan_->straggler_extra_seconds;
  }
  if (plan_->corrupt_probability > 0.0 && !fault.corrupts() &&
      attempt < plan_->corrupt_failing_attempts &&
      UnitDraw(HashInt64(h ^ 0xd1)) < plan_->corrupt_probability) {
    if (phase == TaskPhase::kMap) {
      fault.corrupt_target = (HashInt64(h ^ 0xd2) & 1)
                                 ? CorruptTarget::kSpill
                                 : CorruptTarget::kMapOutput;
    } else {
      fault.corrupt_target = CorruptTarget::kReduceOutput;
    }
    fault.corrupt_salt = HashInt64(h ^ 0xd3);
  }
  return fault;
}

}  // namespace fj::mr
