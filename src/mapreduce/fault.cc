#include "mapreduce/fault.h"

#include <algorithm>

#include "common/hash.h"

namespace fj::mr {

namespace {

/// Maps a 64-bit hash onto [0, 1). 53 mantissa bits, like Rng::NextDouble.
double UnitDraw(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* TaskPhaseName(TaskPhase phase) {
  switch (phase) {
    case TaskPhase::kMap:
      return "map";
    case TaskPhase::kReduce:
      return "reduce";
  }
  return "?";
}

bool FaultSpec::AppliesTo(TaskPhase p, size_t task, uint32_t attempt,
                          const std::string& job_name) const {
  if (p != phase || task != task_id) return false;
  if (attempt < first_attempt) return false;
  if (failing_attempts != kAllAttempts &&
      attempt - first_attempt >= failing_attempts) {
    return false;
  }
  if (!job_substring.empty() &&
      job_name.find(job_substring) == std::string::npos) {
    return false;
  }
  return true;
}

bool FaultPlan::Empty() const {
  return faults.empty() && crash_probability <= 0.0 &&
         straggler_probability <= 0.0;
}

bool FaultPlan::RecoverableWith(uint32_t max_task_attempts) const {
  for (const FaultSpec& spec : faults) {
    if (spec.crash_after_records == AttemptFault::kNoCrash) continue;
    if (spec.failing_attempts == FaultSpec::kAllAttempts) return false;
    // The attempts this crash covers must leave at least one clean attempt
    // inside the budget.
    uint64_t last_failing =
        static_cast<uint64_t>(spec.first_attempt) + spec.failing_attempts;
    if (spec.first_attempt == 0 && last_failing >= max_task_attempts) {
      return false;
    }
  }
  if (crash_probability > 0.0 && crash_failing_attempts >= max_task_attempts) {
    return false;
  }
  return true;
}

FaultInjector::FaultInjector(const FaultPlan* plan, std::string job_name)
    : plan_(plan), job_name_(std::move(job_name)) {}

AttemptFault FaultInjector::FaultFor(TaskPhase phase, size_t task_id,
                                     uint32_t attempt) const {
  AttemptFault fault;
  if (!active()) return fault;

  for (const FaultSpec& spec : plan_->faults) {
    if (!spec.AppliesTo(phase, task_id, attempt, job_name_)) continue;
    fault.crash_after_records =
        std::min(fault.crash_after_records, spec.crash_after_records);
    fault.slowdown *= spec.slowdown;
    fault.extra_seconds += spec.extra_seconds;
  }

  // Probabilistic layer: one stable hash per coordinate, salted per draw.
  uint64_t h = HashString(job_name_);
  h = HashCombine(h, HashInt64(static_cast<uint64_t>(phase)));
  h = HashCombine(h, HashInt64(static_cast<uint64_t>(task_id)));
  h = HashCombine(h, HashInt64(attempt));
  h = HashCombine(h, HashInt64(plan_->seed));

  if (plan_->crash_probability > 0.0 &&
      attempt < plan_->crash_failing_attempts &&
      UnitDraw(HashInt64(h ^ 0xc1)) < plan_->crash_probability) {
    uint64_t k = HashInt64(h ^ 0xc2) % (plan_->crash_after_records + 1);
    fault.crash_after_records = std::min(fault.crash_after_records, k);
  }
  if (plan_->straggler_probability > 0.0 && attempt == 0 &&
      UnitDraw(HashInt64(h ^ 0x51)) < plan_->straggler_probability) {
    fault.slowdown *= plan_->straggler_slowdown;
    fault.extra_seconds += plan_->straggler_extra_seconds;
  }
  return fault;
}

}  // namespace fj::mr
