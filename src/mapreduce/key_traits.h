// Default hashing for shuffle keys. The engine's default partitioner sends
// a key to reduce task `KeyHashOf(key) % num_reduce_tasks`, mirroring
// Hadoop's HashPartitioner. Custom key types either compose the types below
// or provide `uint64_t FjKeyHash(const T&)` discoverable via ADL (the
// paper's "custom partitioning function" hook is JobSpec::partitioner).
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>

#include "common/hash.h"

namespace fj::mr {

template <typename T>
uint64_t KeyHashOf(const T& key);

namespace internal {

template <typename T, typename = void>
struct HasAdlKeyHash : std::false_type {};

template <typename T>
struct HasAdlKeyHash<T,
                     std::void_t<decltype(FjKeyHash(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T>
struct KeyHash {
  static uint64_t Of(const T& key) {
    if constexpr (HasAdlKeyHash<T>::value) {
      return FjKeyHash(key);
    } else if constexpr (std::is_integral_v<T> || std::is_enum_v<T>) {
      return HashInt64(static_cast<uint64_t>(key));
    } else {
      static_assert(sizeof(T) == 0,
                    "provide FjKeyHash(const T&) for this key type");
      return 0;
    }
  }
};

template <>
struct KeyHash<std::string> {
  static uint64_t Of(const std::string& key) { return HashString(key); }
};

template <typename A, typename B>
struct KeyHash<std::pair<A, B>> {
  static uint64_t Of(const std::pair<A, B>& key) {
    return HashCombine(KeyHashOf(key.first), KeyHashOf(key.second));
  }
};

template <typename... Ts>
struct KeyHash<std::tuple<Ts...>> {
  static uint64_t Of(const std::tuple<Ts...>& key) {
    uint64_t h = kFnvOffsetBasis;
    std::apply(
        [&h](const Ts&... parts) {
          ((h = HashCombine(h, KeyHashOf(parts))), ...);
        },
        key);
    return h;
  }
};

}  // namespace internal

template <typename T>
uint64_t KeyHashOf(const T& key) {
  return internal::KeyHash<T>::Of(key);
}

}  // namespace fj::mr
