// Deterministic cluster cost model.
//
// The paper evaluates on a 10-node Hadoop cluster (4 map + 4 reduce slots
// per node). This reproduction executes jobs on one machine, meters every
// task, and then *simulates* the cluster running time:
//
//   job_time = startup_overhead
//            + makespan(map task costs on nodes*map_slots slots)
//            + shuffle_bytes / (nodes * per_node_shuffle_bandwidth)
//            + 2 * spilled_bytes / (nodes * per_node_local_disk_bandwidth)
//            + makespan(reduce task costs on nodes*reduce_slots slots)
//
// Makespans use LPT (longest-processing-time-first) list scheduling, which
// captures the effects the paper analyses: a stage with a single reduce
// task cannot speed up; skewed reducers dominate their wave; per-phase job
// overhead penalises multi-phase variants (BTO vs OPTO, BRJ vs OPRJ) on
// small inputs.
//
// Fault tolerance: a task's LPT cost is its whole retry chain — the
// crashed attempts' seconds serialized ahead of the committed attempt,
// exactly as Hadoop re-runs a failed task on a fresh slot after the
// failure is noticed. Speculative losers ran CONCURRENTLY with the winner
// on another slot, so they enter the schedule as separate entries and
// occupy slot time without extending the winning task's chain. All wasted
// work (failed attempts + speculation losers) is also reported in
// SimulatedJobTime::wasted_seconds so benchmarks can quote the recovery
// overhead directly.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "mapreduce/metrics.h"

namespace fj::mr {

/// Virtual cluster shape and physics.
struct ClusterConfig {
  size_t nodes = 10;
  size_t map_slots_per_node = 4;
  size_t reduce_slots_per_node = 4;

  /// Aggregate shuffle bandwidth contributed by each node, bytes/second.
  double shuffle_bytes_per_second_per_node = 50.0 * 1024 * 1024;

  /// Aggregate network bandwidth contributed by each node for the
  /// socket shuffle transport's segment traffic (JobSpec::transport),
  /// bytes/second. Priced against JobMetrics::net_bytes_pushed +
  /// net_bytes_fetched — every segment crosses the wire twice (map side
  /// pushes it to its worker, reduce side fetches it back), and
  /// redundant fetches / re-publishes after faults are in the counters,
  /// so recovery traffic is priced too. Distinct from
  /// shuffle_bytes_per_second_per_node, which prices the logical
  /// map->reduce volume: under `--transport=inproc` the segment counters
  /// are zero and this charge vanishes.
  double network_bytes_per_second_per_node = 100.0 * 1024 * 1024;

  /// Aggregate local-disk bandwidth contributed by each node for
  /// sort-spill-merge I/O (map-side spill files, reduce-side merge
  /// passes), bytes/second. Every spilled byte is written once and
  /// re-read once per consuming merge pass, so the priced traffic is
  /// 2 x JobMetrics::spilled_bytes. Jobs running with an unbounded sort
  /// buffer never spill and pay nothing here.
  double local_disk_bytes_per_second_per_node = 80.0 * 1024 * 1024;

  /// Aggregate checksum throughput contributed by each node for the
  /// integrity layer (JobSpec::verify_integrity): input files verified
  /// before the map phase, sorted runs re-hashed at map commit and at the
  /// reduce side's merge read, output lines re-hashed at reduce commit.
  /// Priced against JobMetrics::integrity_bytes_verified. FNV/xxhash-class
  /// hashing streams at several hundred MB/s per core.
  double integrity_bytes_per_second_per_node = 400.0 * 1024 * 1024;

  /// Aggregate block-codec throughput contributed by each node for the
  /// binary record format (JobSpec::record_format): varint encode at spill
  /// time plus decode at the reduce side's merge read, and the optional
  /// block codec on top. Priced against JobMetrics::codec_logical_bytes —
  /// the pre-codec payload size, which both sides of the codec touch.
  /// LZ4-class codecs stream at a few hundred MB/s per core.
  double codec_bytes_per_second_per_node = 200.0 * 1024 * 1024;

  /// Aggregate contract-check throughput contributed by each node
  /// (JobSpec::check_contracts): comparator/partitioner/combiner predicate
  /// evaluations and key hashes performed by the contract checker, priced
  /// against JobMetrics::contract_checks. Each check is a handful of
  /// comparisons on in-cache keys — order 10^8/s per node.
  double contract_checks_per_second_per_node = 100.0 * 1000 * 1000;

  /// Fixed cost of launching one MapReduce job (Hadoop job startup,
  /// scheduling, JVM spawn). Charged once per job.
  double job_startup_seconds = 3.0;

  /// Linear extrapolation factor applied to measured task costs and
  /// shuffle bytes (NOT to the per-job startup overhead). The benchmarks
  /// run paper-shaped workloads at laptop scale and set this to the ratio
  /// between the paper's dataset size and the local one, so simulated
  /// stage times land in the paper's regime while startup overhead keeps
  /// its true relative weight. 1.0 = no extrapolation.
  double work_scale = 1.0;

  size_t map_slots() const { return nodes * map_slots_per_node; }
  size_t reduce_slots() const { return nodes * reduce_slots_per_node; }
};

/// Makespan of `task_seconds` scheduled onto `slots` identical slots with
/// LPT list scheduling. Returns 0 for no tasks; requires slots >= 1.
double Makespan(const std::vector<double>& task_seconds, size_t slots);

/// Breakdown of one simulated job execution.
struct SimulatedJobTime {
  double startup_seconds = 0;
  double map_seconds = 0;
  double shuffle_seconds = 0;
  /// Wire time of the socket shuffle transport's segment traffic (zero
  /// under the in-process transport) — pushes plus fetches, recovery
  /// traffic included.
  double network_seconds = 0;
  /// Local-disk time of the sort-spill-merge shuffle (spill writes plus
  /// merge re-reads). Zero for jobs that never spill.
  double spill_seconds = 0;
  double reduce_seconds = 0;
  /// Checksum time of the integrity verification passes (zero when
  /// JobSpec::verify_integrity was off) — the price of the corruption
  /// guarantee, reported separately so benchmarks can quote the overhead.
  double integrity_seconds = 0;
  /// Contract-checker time (zero when JobSpec::check_contracts was off) —
  /// the price of proving the comparator/partitioner/combiner contract,
  /// reported separately so benchmarks can quote the overhead.
  double contract_seconds = 0;
  /// Block-codec CPU time of the binary record format (zero under text) —
  /// the encode/decode price paid to shrink shuffle_seconds and
  /// spill_seconds, reported separately so benchmarks can quote the
  /// trade-off.
  double codec_seconds = 0;

  /// Slot time consumed by attempts that did not commit: crashed attempts
  /// (serialized into their task's chain) and speculation losers (parallel
  /// entries), scaled by work_scale. Informational — this time is already
  /// inside map_seconds/reduce_seconds, so total() does not add it again.
  double wasted_seconds = 0;

  double total() const {
    return startup_seconds + map_seconds + shuffle_seconds +
           network_seconds + spill_seconds + reduce_seconds +
           integrity_seconds + contract_seconds + codec_seconds;
  }
};

/// Simulates `metrics` on `cluster`.
SimulatedJobTime SimulateJob(const JobMetrics& metrics,
                             const ClusterConfig& cluster);

/// Sum of simulated times of a job sequence (stages run back to back, as
/// the paper's three-stage pipeline does).
double SimulatePipelineSeconds(const std::vector<JobMetrics>& jobs,
                               const ClusterConfig& cluster);

}  // namespace fj::mr
