// Serialized-size estimation for shuffled (key, value) pairs.
//
// The engine charges shuffle traffic by summing ByteSizeOf over every pair
// that crosses the map->reduce boundary (after the combiner). The cluster
// cost model converts those bytes into simulated network time. Custom key
// types participate by being composed of the types handled here, or by
// providing their own `size_t FjByteSize(const T&)` found via ADL.
#pragma once

#include <cstdint>
#include <string>
#include <tuple>
#include <type_traits>
#include <utility>
#include <vector>

namespace fj::mr {

template <typename T>
size_t ByteSizeOf(const T& value);

namespace internal {

template <typename T, typename = void>
struct HasAdlByteSize : std::false_type {};

template <typename T>
struct HasAdlByteSize<T,
                      std::void_t<decltype(FjByteSize(std::declval<const T&>()))>>
    : std::true_type {};

template <typename T>
struct ByteSize;

template <>
struct ByteSize<std::string> {
  static size_t Of(const std::string& s) { return s.size() + 4; }
};

template <typename A, typename B>
struct ByteSize<std::pair<A, B>> {
  static size_t Of(const std::pair<A, B>& p) {
    return ByteSizeOf(p.first) + ByteSizeOf(p.second);
  }
};

template <typename... Ts>
struct ByteSize<std::tuple<Ts...>> {
  static size_t Of(const std::tuple<Ts...>& t) {
    return std::apply(
        [](const Ts&... parts) { return (size_t{0} + ... + ByteSizeOf(parts)); },
        t);
  }
};

template <typename T>
struct ByteSize<std::vector<T>> {
  static size_t Of(const std::vector<T>& v) {
    size_t total = 4;
    for (const auto& e : v) total += ByteSizeOf(e);
    return total;
  }
};

template <typename T>
struct ByteSize {
  static size_t Of(const T& value) {
    if constexpr (HasAdlByteSize<T>::value) {
      return FjByteSize(value);
    } else {
      static_assert(std::is_trivially_copyable_v<T>,
                    "provide FjByteSize(const T&) for non-trivial types");
      (void)value;
      return sizeof(T);
    }
  }
};

}  // namespace internal

/// Estimated on-the-wire size of `value` in bytes.
template <typename T>
size_t ByteSizeOf(const T& value) {
  return internal::ByteSize<T>::Of(value);
}

}  // namespace fj::mr
