#include "mapreduce/dfs.h"

#include <algorithm>
#include <cmath>

#include "common/hash.h"
#include "common/varint.h"
#include "mapreduce/integrity.h"

namespace fj::mr {

Dfs::FileEntry::FileEntry() : file_hash(kFnvOffsetBasis) {}

void Dfs::FileEntry::Append(const std::string& line) {
  const uint64_t h = LineChecksum(line);
  lines.push_back(line);
  line_hashes.push_back(h);
  file_hash = HashCombine(file_hash, h);
}

Result<const Dfs::FileEntry*> Dfs::FindLocked(const std::string& name) const {
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("dfs file: " + name);
  return static_cast<const FileEntry*>(it->second.get());
}

Status Dfs::WriteInternal(const std::string& name,
                          std::vector<std::string> lines, bool binary) {
  auto entry = std::make_unique<FileEntry>();
  entry->lines = std::move(lines);
  entry->binary = binary;
  entry->line_hashes.reserve(entry->lines.size());
  for (const auto& line : entry->lines) {
    const uint64_t h = LineChecksum(line);
    entry->line_hashes.push_back(h);
    entry->file_hash = HashCombine(entry->file_hash, h);
  }
  WriterMutexLock lock(&mu_);
  auto [it, inserted] = files_.try_emplace(name, std::move(entry));
  (void)it;
  if (!inserted) return Status::AlreadyExists("dfs file exists: " + name);
  return Status::OK();
}

Status Dfs::WriteFile(const std::string& name,
                      std::vector<std::string> lines) {
  return WriteInternal(name, std::move(lines), /*binary=*/false);
}

Status Dfs::WriteFileBlocks(const std::string& name,
                            std::vector<std::string> blocks) {
  return WriteInternal(name, std::move(blocks), /*binary=*/true);
}

bool Dfs::IsBinary(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  auto it = files_.find(name);
  return it != files_.end() && it->second->binary;
}

Status Dfs::AppendToFile(const std::string& name,
                         const std::vector<std::string>& lines) {
  WriterMutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, std::make_unique<FileEntry>()).first;
  }
  for (const auto& line : lines) it->second->Append(line);
  return Status::OK();
}

Result<const std::vector<std::string>*> Dfs::ReadFile(
    const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  FJ_ASSIGN_OR_RETURN(const FileEntry* entry, FindLocked(name));
  return &entry->lines;
}

bool Dfs::Exists(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  return files_.count(name) > 0;
}

Status Dfs::DeleteFile(const std::string& name) {
  WriterMutexLock lock(&mu_);
  if (files_.erase(name) == 0) return Status::NotFound("dfs file: " + name);
  return Status::OK();
}

Status Dfs::RenameFile(const std::string& from, const std::string& to) {
  WriterMutexLock lock(&mu_);
  auto it = files_.find(from);
  if (it == files_.end()) return Status::NotFound("dfs file: " + from);
  if (files_.count(to) > 0) {
    return Status::AlreadyExists("dfs file exists: " + to);
  }
  auto entry = std::move(it->second);
  files_.erase(it);
  files_.emplace(to, std::move(entry));
  return Status::OK();
}

void Dfs::Clear() {
  WriterMutexLock lock(&mu_);
  files_.clear();
}

Result<uint64_t> Dfs::VerifyFile(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  FJ_ASSIGN_OR_RETURN(const FileEntry* entry, FindLocked(name));
  uint64_t bytes = 0;
  uint64_t fold = kFnvOffsetBasis;
  for (size_t i = 0; i < entry->lines.size(); ++i) {
    const uint64_t h = LineChecksum(entry->lines[i]);
    // Binary blocks are framed by a varint length prefix, text lines by a
    // newline terminator.
    bytes += entry->binary
                 ? VarintLen(entry->lines[i].size()) + entry->lines[i].size()
                 : entry->lines[i].size() + 1;
    if (h != entry->line_hashes[i]) {
      return Status::DataLoss("dfs file " + name + ": line " +
                              std::to_string(i) +
                              " does not match its stored checksum");
    }
    fold = HashCombine(fold, h);
  }
  if (fold != entry->file_hash) {
    return Status::DataLoss("dfs file " + name +
                            ": whole-file checksum mismatch");
  }
  return bytes;
}

Result<uint64_t> Dfs::FileChecksum(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  FJ_ASSIGN_OR_RETURN(const FileEntry* entry, FindLocked(name));
  return entry->file_hash;
}

Status Dfs::CorruptByteForTest(const std::string& name, uint64_t seed) {
  WriterMutexLock lock(&mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("dfs file: " + name);
  auto& lines = it->second->lines;
  if (lines.empty()) {
    return Status::InvalidArgument("cannot corrupt empty file: " + name);
  }
  // Pick a deterministic non-empty line, then a byte and a non-zero mask.
  const uint64_t h = HashCombine(HashString(name), HashInt64(seed));
  for (size_t probe = 0; probe < lines.size(); ++probe) {
    auto& line = lines[(h + probe) % lines.size()];
    if (line.empty()) continue;
    line[HashInt64(h) % line.size()] ^= static_cast<char>(1u << (1 + h % 7));
    return Status::OK();
  }
  return Status::InvalidArgument("cannot corrupt file of empty lines: " +
                                 name);
}

std::vector<std::string> Dfs::ListFiles() const {
  ReaderMutexLock lock(&mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, entry] : files_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

Result<uint64_t> Dfs::FileBytes(const std::string& name) const {
  ReaderMutexLock lock(&mu_);
  FJ_ASSIGN_OR_RETURN(const FileEntry* entry, FindLocked(name));
  uint64_t total = 0;
  for (const auto& l : entry->lines) {
    total += entry->binary ? VarintLen(l.size()) + l.size() : l.size() + 1;
  }
  return total;
}

Result<size_t> Dfs::FileLines(const std::string& name) const {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines, ReadFile(name));
  return lines->size();
}

Result<std::vector<InputSplit>> Dfs::MakeSplits(
    const std::vector<std::string>& names, size_t target_splits) const {
  size_t total_lines = 0;
  std::vector<size_t> line_counts(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(line_counts[i], FileLines(names[i]));
    total_lines += line_counts[i];
  }

  std::vector<InputSplit> splits;
  for (size_t i = 0; i < names.size(); ++i) {
    size_t lines = line_counts[i];
    if (lines == 0) continue;
    size_t file_splits = 1;
    if (target_splits > 0 && total_lines > 0) {
      // Proportional share, at least one split per non-empty file.
      double share = static_cast<double>(lines) / total_lines;
      file_splits = std::max<size_t>(
          1, static_cast<size_t>(std::llround(share * target_splits)));
      file_splits = std::min(file_splits, lines);
    }
    size_t base = lines / file_splits;
    size_t extra = lines % file_splits;
    size_t begin = 0;
    for (size_t s = 0; s < file_splits; ++s) {
      size_t len = base + (s < extra ? 1 : 0);
      splits.push_back(InputSplit{i, names[i], begin, begin + len});
      begin += len;
    }
  }
  return splits;
}

}  // namespace fj::mr
