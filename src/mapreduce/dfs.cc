#include "mapreduce/dfs.h"

#include <algorithm>
#include <cmath>

namespace fj::mr {

Status Dfs::WriteFile(const std::string& name,
                      std::vector<std::string> lines) {
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = files_.try_emplace(
      name, std::make_unique<std::vector<std::string>>(std::move(lines)));
  (void)it;
  if (!inserted) return Status::AlreadyExists("dfs file exists: " + name);
  return Status::OK();
}

Status Dfs::AppendToFile(const std::string& name,
                         const std::vector<std::string>& lines) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) {
    it = files_.emplace(name, std::make_unique<std::vector<std::string>>())
             .first;
  }
  auto& dest = *it->second;
  dest.insert(dest.end(), lines.begin(), lines.end());
  return Status::OK();
}

Result<const std::vector<std::string>*> Dfs::ReadFile(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = files_.find(name);
  if (it == files_.end()) return Status::NotFound("dfs file: " + name);
  return static_cast<const std::vector<std::string>*>(it->second.get());
}

bool Dfs::Exists(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(name) > 0;
}

Status Dfs::DeleteFile(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  if (files_.erase(name) == 0) return Status::NotFound("dfs file: " + name);
  return Status::OK();
}

void Dfs::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  files_.clear();
}

std::vector<std::string> Dfs::ListFiles() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> names;
  names.reserve(files_.size());
  for (const auto& [name, lines] : files_) names.push_back(name);
  return names;  // std::map iterates in sorted order
}

Result<uint64_t> Dfs::FileBytes(const std::string& name) const {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines, ReadFile(name));
  uint64_t total = 0;
  for (const auto& l : *lines) total += l.size() + 1;
  return total;
}

Result<size_t> Dfs::FileLines(const std::string& name) const {
  FJ_ASSIGN_OR_RETURN(const std::vector<std::string>* lines, ReadFile(name));
  return lines->size();
}

Result<std::vector<InputSplit>> Dfs::MakeSplits(
    const std::vector<std::string>& names, size_t target_splits) const {
  size_t total_lines = 0;
  std::vector<size_t> line_counts(names.size());
  for (size_t i = 0; i < names.size(); ++i) {
    FJ_ASSIGN_OR_RETURN(line_counts[i], FileLines(names[i]));
    total_lines += line_counts[i];
  }

  std::vector<InputSplit> splits;
  for (size_t i = 0; i < names.size(); ++i) {
    size_t lines = line_counts[i];
    if (lines == 0) continue;
    size_t file_splits = 1;
    if (target_splits > 0 && total_lines > 0) {
      // Proportional share, at least one split per non-empty file.
      double share = static_cast<double>(lines) / total_lines;
      file_splits = std::max<size_t>(
          1, static_cast<size_t>(std::llround(share * target_splits)));
      file_splits = std::min(file_splits, lines);
    }
    size_t base = lines / file_splits;
    size_t extra = lines % file_splits;
    size_t begin = 0;
    for (size_t s = 0; s < file_splits; ++s) {
      size_t len = base + (s < extra ? 1 : 0);
      splits.push_back(InputSplit{i, names[i], begin, begin + len});
      begin += len;
    }
  }
  return splits;
}

}  // namespace fj::mr
