#include "mapreduce/cluster_model.h"

#include <algorithm>
#include <cassert>
#include <queue>

namespace fj::mr {

double Makespan(const std::vector<double>& task_seconds, size_t slots) {
  assert(slots >= 1);
  if (task_seconds.empty()) return 0;
  if (slots == 1) {
    double sum = 0;
    for (double t : task_seconds) sum += t;
    return sum;
  }
  std::vector<double> sorted = task_seconds;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());
  // Min-heap of slot finish times.
  std::priority_queue<double, std::vector<double>, std::greater<double>> heap;
  for (size_t i = 0; i < slots; ++i) heap.push(0.0);
  double makespan = 0;
  for (double t : sorted) {
    double slot = heap.top();
    heap.pop();
    double finish = slot + t;
    makespan = std::max(makespan, finish);
    heap.push(finish);
  }
  return makespan;
}

SimulatedJobTime SimulateJob(const JobMetrics& metrics,
                             const ClusterConfig& cluster) {
  SimulatedJobTime out;
  out.startup_seconds = cluster.job_startup_seconds;

  const double scale = cluster.work_scale;
  // A task occupies its slot for the whole retry chain: every crashed
  // attempt runs to its crash point before the committed attempt starts
  // over. Speculative losers ran in parallel on other slots, so they are
  // scheduled as independent entries rather than extending the chain.
  auto phase_costs = [scale](const std::vector<TaskMetrics>& tasks,
                             double* wasted) {
    std::vector<double> costs;
    costs.reserve(tasks.size());
    for (const TaskMetrics& t : tasks) {
      costs.push_back((t.failed_attempt_seconds + t.seconds) * scale);
      if (t.speculative_loser_seconds > 0) {
        costs.push_back(t.speculative_loser_seconds * scale);
      }
      *wasted += t.wasted_seconds() * scale;
    }
    return costs;
  };

  out.map_seconds =
      Makespan(phase_costs(metrics.map_tasks, &out.wasted_seconds),
               cluster.map_slots());

  double bandwidth =
      cluster.shuffle_bytes_per_second_per_node * static_cast<double>(cluster.nodes);
  if (metrics.shuffle_bytes > 0 && bandwidth > 0) {
    out.shuffle_seconds =
        static_cast<double>(metrics.shuffle_bytes) * scale / bandwidth;
  }

  // Socket-transport segment traffic: pushes and fetches both cross the
  // wire (recovery traffic included in the counters), priced against the
  // cluster's aggregate network bandwidth. Zero under inproc.
  const uint64_t net_bytes =
      metrics.net_bytes_pushed + metrics.net_bytes_fetched;
  double net_bandwidth = cluster.network_bytes_per_second_per_node *
                         static_cast<double>(cluster.nodes);
  if (net_bytes > 0 && net_bandwidth > 0) {
    out.network_seconds =
        static_cast<double>(net_bytes) * scale / net_bandwidth;
  }

  // Sort-spill-merge disk traffic: each spilled byte is written once and
  // re-read once per consuming merge pass (spilled_bytes already counts
  // intermediate merge re-spills as fresh writes), so the disk moves
  // 2 x spilled_bytes in total.
  double disk_bandwidth = cluster.local_disk_bytes_per_second_per_node *
                          static_cast<double>(cluster.nodes);
  if (metrics.spilled_bytes > 0 && disk_bandwidth > 0) {
    out.spill_seconds = 2.0 * static_cast<double>(metrics.spilled_bytes) *
                        scale / disk_bandwidth;
  }

  out.reduce_seconds =
      Makespan(phase_costs(metrics.reduce_tasks, &out.wasted_seconds),
               cluster.reduce_slots());

  // Integrity verification passes: every verified byte was hashed once at
  // the recording boundary (input read, run commit/merge-read, output
  // commit) — integrity_bytes_verified already counts each boundary
  // separately, so the traffic is priced exactly once here.
  double integrity_bandwidth = cluster.integrity_bytes_per_second_per_node *
                               static_cast<double>(cluster.nodes);
  if (metrics.integrity_bytes_verified > 0 && integrity_bandwidth > 0) {
    out.integrity_seconds =
        static_cast<double>(metrics.integrity_bytes_verified) * scale /
        integrity_bandwidth;
  }

  // Block-codec CPU: every logical byte was varint-encoded once at spill
  // time and decoded once at the merge read — codec_logical_bytes already
  // counts the two boundaries separately, so the work is priced exactly
  // once here.
  double codec_bandwidth = cluster.codec_bytes_per_second_per_node *
                           static_cast<double>(cluster.nodes);
  if (metrics.codec_logical_bytes > 0 && codec_bandwidth > 0) {
    out.codec_seconds = static_cast<double>(metrics.codec_logical_bytes) *
                        scale / codec_bandwidth;
  }

  // Contract checking is priced like integrity verification: every counted
  // check was really evaluated (across failed attempts too), against the
  // cluster's aggregate predicate throughput.
  double contract_bandwidth = cluster.contract_checks_per_second_per_node *
                              static_cast<double>(cluster.nodes);
  if (metrics.contract_checks > 0 && contract_bandwidth > 0) {
    out.contract_seconds = static_cast<double>(metrics.contract_checks) *
                           scale / contract_bandwidth;
  }

  return out;
}

double SimulatePipelineSeconds(const std::vector<JobMetrics>& jobs,
                               const ClusterConfig& cluster) {
  double total = 0;
  for (const auto& job : jobs) total += SimulateJob(job, cluster).total();
  return total;
}

}  // namespace fj::mr
