#include "mapreduce/shuffle_transport.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/hash.h"
#include "mapreduce/worker_net.h"

namespace fj::mr {

namespace {

/// Maps a 64-bit hash onto [0, 1). Same mantissa trick as fault.cc.
double UnitDraw(uint64_t h) {
  return static_cast<double>(h >> 11) * 0x1.0p-53;
}

}  // namespace

const char* TransportKindName(TransportKind kind) {
  switch (kind) {
    case TransportKind::kInproc:
      return "inproc";
    case TransportKind::kSocket:
      return "socket";
  }
  return "?";
}

bool ParseTransportKind(std::string_view name, TransportKind* kind) {
  if (name == "inproc") {
    *kind = TransportKind::kInproc;
    return true;
  }
  if (name == "socket") {
    *kind = TransportKind::kSocket;
    return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// NetFaultPlan.

bool NetFaultPlan::Empty() const {
  return drop_probability <= 0 && truncate_probability <= 0 &&
         corrupt_probability <= 0 && stall_probability <= 0 &&
         delay_probability <= 0 && refuse_connect_probability <= 0;
}

std::string NetFaultPlan::Serialize() const {
  std::string out = std::to_string(seed);
  for (double p : {drop_probability, truncate_probability, corrupt_probability,
                   stall_probability, delay_probability,
                   refuse_connect_probability}) {
    out += ':';
    out += std::to_string(p);
  }
  out += ':';
  out += std::to_string(delay_ms);
  out += ':';
  out += std::to_string(stall_ms);
  out += ':';
  out += std::to_string(fault_attempts);
  return out;
}

bool NetFaultPlan::Deserialize(std::string_view text, NetFaultPlan* plan) {
  std::vector<std::string> fields;
  size_t start = 0;
  while (start <= text.size()) {
    size_t colon = text.find(':', start);
    if (colon == std::string_view::npos) colon = text.size();
    fields.emplace_back(text.substr(start, colon - start));
    start = colon + 1;
  }
  if (fields.size() != 10) return false;
  NetFaultPlan parsed;
  char* end = nullptr;
  parsed.seed = std::strtoull(fields[0].c_str(), &end, 10);
  if (*end != '\0') return false;
  double* probs[] = {&parsed.drop_probability,    &parsed.truncate_probability,
                     &parsed.corrupt_probability, &parsed.stall_probability,
                     &parsed.delay_probability,
                     &parsed.refuse_connect_probability};
  for (size_t i = 0; i < 6; ++i) {
    *probs[i] = std::strtod(fields[1 + i].c_str(), &end);
    if (*end != '\0' || *probs[i] < 0 || *probs[i] > 1) return false;
  }
  parsed.delay_ms = static_cast<uint32_t>(
      std::strtoul(fields[7].c_str(), &end, 10));
  if (*end != '\0') return false;
  parsed.stall_ms = static_cast<uint32_t>(
      std::strtoul(fields[8].c_str(), &end, 10));
  if (*end != '\0') return false;
  parsed.fault_attempts = static_cast<uint32_t>(
      std::strtoul(fields[9].c_str(), &end, 10));
  if (*end != '\0') return false;
  *plan = parsed;
  return true;
}

double NetFaultDraw(const NetFaultPlan& plan, std::string_view job,
                    uint64_t map_task, uint64_t partition, uint64_t attempt,
                    NetOp op, uint64_t salt) {
  uint64_t h = HashBytes(job.data(), job.size());
  h = HashCombine(h, HashInt64(map_task));
  h = HashCombine(h, HashInt64(partition));
  h = HashCombine(h, HashInt64(attempt));
  h = HashCombine(h, HashInt64(static_cast<uint64_t>(op)));
  h = HashCombine(h, HashInt64(plan.seed));
  return UnitDraw(HashInt64(h ^ salt));
}

// ---------------------------------------------------------------------------
// InprocTransport.

Status InprocTransport::Publish(const ShuffleSegmentKey& key,
                                std::string segment, NetCallStats* stats) {
  if (stats) {
    stats->rpcs++;
    stats->bytes_sent += segment.size();
  }
  MutexLock lock(&mu_);
  segments_[{key.job, key.map_task, key.partition}] = std::move(segment);
  return Status::OK();
}

Result<std::string> InprocTransport::Fetch(const ShuffleSegmentKey& key,
                                           NetCallStats* stats) {
  if (stats) stats->rpcs++;
  MutexLock lock(&mu_);
  auto it = segments_.find({key.job, key.map_task, key.partition});
  if (it == segments_.end()) {
    return Status::Unavailable("segment not published: " + key.job + " m" +
                               std::to_string(key.map_task) + " r" +
                               std::to_string(key.partition));
  }
  if (stats) stats->bytes_received += it->second.size();
  return it->second;
}

void InprocTransport::DropJob(const std::string& job) {
  MutexLock lock(&mu_);
  auto it = segments_.lower_bound({job, 0, 0});
  while (it != segments_.end() && std::get<0>(it->first) == job) {
    it = segments_.erase(it);
  }
}

// ---------------------------------------------------------------------------
// SocketTransport.

namespace {

class SocketTransport : public ShuffleTransport {
 public:
  SocketTransport(std::vector<int> ports,
                  std::shared_ptr<const NetFaultPlan> fault_plan,
                  const SocketTransportOptions& options)
      : ports_(std::move(ports)),
        fault_plan_(std::move(fault_plan)),
        options_(options),
        lost_(ports_.size(), false),
        heartbeat_misses_(ports_.size(), 0) {
    if (options_.heartbeat_interval_ms > 0 && !ports_.empty()) {
      heartbeat_thread_ =  // lint: allow-thread (liveness probe, not task work)
          std::thread([this] { HeartbeatLoop(); });
    }
  }

  ~SocketTransport() override {
    {
      MutexLock lock(&mu_);
      stopping_ = true;
    }
    heartbeat_cv_.NotifyAll();
    if (heartbeat_thread_.joinable()) heartbeat_thread_.join();
  }

  const char* name() const override { return "socket"; }

  Status Publish(const ShuffleSegmentKey& key, std::string segment,
                 NetCallStats* stats) override {
    net::Request request;
    request.job = key.job;
    request.map_task = key.map_task;
    request.partition = key.partition;
    request.body = std::move(segment);
    // Ring placement: the segment's home is worker m % N; a lost home
    // shifts it to the next live worker, and Fetch follows the recorded
    // placement rather than re-deriving it.
    Status last = Status::Unavailable("no live shuffle workers");
    for (size_t hop = 0; hop < ports_.size(); ++hop) {
      const size_t target = (key.map_task + hop) % ports_.size();
      if (IsLost(target)) continue;
      Status attempt = CallWithRetries(target, net::FrameType::kPut, &request,
                                       nullptr, stats);
      if (attempt.ok()) {
        MutexLock lock(&mu_);
        placement_[{key.job, key.map_task, key.partition}] = target;
        return Status::OK();
      }
      last = attempt;
      MarkLost(target);
    }
    return last;
  }

  Result<std::string> Fetch(const ShuffleSegmentKey& key,
                            NetCallStats* stats) override {
    size_t target = 0;
    {
      MutexLock lock(&mu_);
      auto it = placement_.find({key.job, key.map_task, key.partition});
      if (it == placement_.end()) {
        return Status::Unavailable("segment was never published: " + key.job +
                                   " m" + std::to_string(key.map_task) + " r" +
                                   std::to_string(key.partition));
      }
      target = it->second;
    }
    if (IsLost(target)) {
      return Status::Unavailable("shuffle worker " + std::to_string(target) +
                                 " holding the segment is lost");
    }
    net::Request request;
    request.job = key.job;
    request.map_task = key.map_task;
    request.partition = key.partition;
    std::string body;
    Status status =
        CallWithRetries(target, net::FrameType::kGet, &request, &body, stats);
    if (!status.ok()) {
      MarkLost(target);
      return status;
    }
    if (stats) stats->bytes_received += body.size();
    return body;
  }

  void DropJob(const std::string& job) override {
    net::Request request;
    request.job = job;
    for (size_t i = 0; i < ports_.size(); ++i) {
      if (IsLost(i)) continue;
      (void)CallWithRetries(i, net::FrameType::kDropJob, &request, nullptr,
                            nullptr);
    }
    MutexLock lock(&mu_);
    auto it = placement_.lower_bound({job, 0, 0});
    while (it != placement_.end() && std::get<0>(it->first) == job) {
      it = placement_.erase(it);
    }
  }

  uint64_t worker_losses() const override {
    return worker_losses_.load(std::memory_order_relaxed);
  }

 private:
  bool IsLost(size_t index) const {
    MutexLock lock(&mu_);
    return lost_[index];
  }

  void MarkLost(size_t index) {
    MutexLock lock(&mu_);
    if (!lost_[index]) {
      lost_[index] = true;
      worker_losses_.fetch_add(1, std::memory_order_relaxed);
    }
  }

  /// Backoff before retry `attempt` (1-based): base * 2^(attempt-1),
  /// capped, plus deterministic jitter hashed off the operation
  /// coordinate so two racing retries don't thundering-herd in lockstep.
  void BackoffBeforeRetry(const net::Request& request, NetOp op,
                          uint32_t attempt) {
    uint64_t delay = options_.backoff_base_ms;
    for (uint32_t i = 1; i < attempt && delay < options_.backoff_max_ms; ++i) {
      delay *= 2;
    }
    delay = std::min<uint64_t>(delay, options_.backoff_max_ms);
    const NetFaultPlan no_faults{};
    const NetFaultPlan& plan = fault_plan_ ? *fault_plan_ : no_faults;
    const double jitter_draw =
        NetFaultDraw(plan, request.job, request.map_task, request.partition,
                     attempt, op, /*salt=*/0x6a);
    delay += static_cast<uint64_t>(
        jitter_draw * static_cast<double>(options_.backoff_base_ms));
    std::this_thread::sleep_for(std::chrono::milliseconds(delay));
  }

  /// One operation against one worker: up to max_attempts_per_op round
  /// trips with backoff. Request.attempt carries the per-op attempt
  /// number — the server's fault-eligibility coordinate.
  Status CallWithRetries(size_t target, net::FrameType type,
                         net::Request* request, std::string* body_out,
                         NetCallStats* stats) {
    const NetOp op =
        type == net::FrameType::kPut ? NetOp::kPush : NetOp::kFetch;
    Status last = Status::Unavailable("no attempts made");
    for (uint32_t attempt = 0; attempt < options_.max_attempts_per_op;
         ++attempt) {
      if (attempt > 0) {
        if (stats) stats->retries++;
        BackoffBeforeRetry(*request, op, attempt);
      }
      request->attempt = attempt;
      last = CallOnce(target, type, *request, body_out, stats);
      if (last.ok()) return last;
      if (last.code() == StatusCode::kDataLoss && stats) {
        stats->corrupt_frames++;
      }
      // NotFound is the worker's definitive answer (it is alive and does
      // not hold the segment) — retrying cannot change it.
      if (last.code() == StatusCode::kNotFound) return last;
    }
    return last;
  }

  Status CallOnce(size_t target, net::FrameType type,
                  const net::Request& request, std::string* body_out,
                  NetCallStats* stats) {
    if (stats) stats->rpcs++;
    // Client-side refuse-connect fault: the dial never happens. Only
    // PUT/GET are eligible, mirroring the server-side data-op rule.
    if (fault_plan_ && !fault_plan_->Empty() &&
        (type == net::FrameType::kPut || type == net::FrameType::kGet) &&
        request.attempt < fault_plan_->fault_attempts &&
        NetFaultDraw(*fault_plan_, request.job, request.map_task,
                     request.partition, request.attempt,
                     type == net::FrameType::kPut ? NetOp::kPush
                                                  : NetOp::kFetch,
                     /*salt=*/6) < fault_plan_->refuse_connect_probability) {
      return Status::Unavailable("connection refused (injected)");
    }
    FJ_ASSIGN_OR_RETURN(
        int fd, net::DialTcpLoopback(ports_[target], options_.connect_timeout_ms,
                                     options_.io_timeout_ms));
    std::string payload;
    net::EncodeRequest(request, &payload);
    Status sent = net::SendFrame(fd, type, payload);
    if (!sent.ok()) {
      net::CloseFd(fd);
      return sent;
    }
    if (stats) stats->bytes_sent += payload.size();
    Result<net::Frame> reply = net::RecvFrame(fd);
    net::CloseFd(fd);
    FJ_RETURN_IF_ERROR(reply.status());
    net::Response response;
    if (!net::DecodeResponse(reply->payload, &response)) {
      return Status::DataLoss("malformed shuffle response payload");
    }
    if (!response.status.ok()) return response.status;
    if (body_out) *body_out = std::move(response.body);
    return Status::OK();
  }

  void HeartbeatLoop() {
    for (;;) {
      std::vector<size_t> live;
      {
        MutexLock lock(&mu_);
        if (stopping_) return;
        heartbeat_cv_.WaitFor(
            &mu_, std::chrono::milliseconds(options_.heartbeat_interval_ms));
        if (stopping_) return;
        for (size_t i = 0; i < ports_.size(); ++i) {
          if (!lost_[i]) live.push_back(i);
        }
      }
      // Ping with the lock dropped: a stalled peer must not block
      // Publish/Fetch while the probe waits out its socket timeout.
      for (size_t i : live) {
        if (PingWorker(i)) {
          MutexLock inner(&mu_);
          heartbeat_misses_[i] = 0;
        } else {
          bool declare_lost = false;
          {
            MutexLock inner(&mu_);
            declare_lost =
                ++heartbeat_misses_[i] >= options_.heartbeat_misses_to_loss;
          }
          if (declare_lost) MarkLost(i);
        }
      }
    }
  }

  bool PingWorker(size_t index) {
    Result<int> fd = net::DialTcpLoopback(
        ports_[index], options_.connect_timeout_ms, options_.io_timeout_ms);
    if (!fd.ok()) return false;
    net::Request request;
    std::string payload;
    net::EncodeRequest(request, &payload);
    Status sent = net::SendFrame(*fd, net::FrameType::kPing, payload);
    if (!sent.ok()) {
      net::CloseFd(*fd);
      return false;
    }
    Result<net::Frame> reply = net::RecvFrame(*fd);
    net::CloseFd(*fd);
    return reply.ok() && reply->type == net::FrameType::kOk;
  }

  const std::vector<int> ports_;
  const std::shared_ptr<const NetFaultPlan> fault_plan_;
  const SocketTransportOptions options_;

  mutable Mutex mu_{"transport.socket", lock_rank::kTransport};
  std::vector<bool> lost_ FJ_GUARDED_BY(mu_);
  std::vector<uint32_t> heartbeat_misses_ FJ_GUARDED_BY(mu_);
  std::map<std::tuple<std::string, uint64_t, uint64_t>, size_t> placement_
      FJ_GUARDED_BY(mu_);
  std::atomic<uint64_t> worker_losses_{0};

  bool stopping_ FJ_GUARDED_BY(mu_) = false;
  CondVar heartbeat_cv_;
  std::thread heartbeat_thread_;  // lint: allow-thread (liveness probe)
};

}  // namespace

std::unique_ptr<ShuffleTransport> MakeSocketTransport(
    std::vector<int> ports, std::shared_ptr<const NetFaultPlan> fault_plan,
    const SocketTransportOptions& options) {
  return std::make_unique<SocketTransport>(std::move(ports),
                                           std::move(fault_plan), options);
}

}  // namespace fj::mr
