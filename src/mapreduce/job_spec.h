// Job description layer: the user-facing MapReduce contract.
//
// This header holds everything a job author touches — the Emitter /
// Mapper / Reducer hooks, the functional adapters, and JobSpec, the full
// declarative description of one job (inputs, task counts, comparators,
// combiner, and the shuffle memory budget). The execution machinery lives
// in separate layers: sort_buffer.h (map-side buffering and spilling),
// run_merger.h (reduce-side k-way merging), and job.h (the engine that
// wires them together).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "common/executor.h"
#include "mapreduce/fault.h"
#include "mapreduce/input.h"
#include "mapreduce/key_traits.h"
#include "mapreduce/record_format.h"
#include "mapreduce/task_context.h"

namespace fj::mr {

class ShuffleTransport;  // shuffle_transport.h; kept light here

/// Default for JobSpec::check_contracts: the FJ_CHECK_CONTRACTS env var if
/// set, else on in debug builds and off under NDEBUG (defined in
/// contract.cc; declared here so the spec default needs no heavy include).
bool ContractChecksDefaultOn();

/// Receives intermediate (key, value) pairs from map or combine functions.
template <typename K, typename V>
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void Emit(K key, V value) = 0;
};

/// Receives final output lines from reduce functions.
class OutputEmitter {
 public:
  virtual ~OutputEmitter() = default;
  virtual void Emit(std::string line) = 0;
};

/// User map function. One instance is created per map task.
template <typename K, typename V>
class Mapper {
 public:
  virtual ~Mapper() = default;
  /// Called once before the first record (Hadoop "configure").
  virtual void Setup(TaskContext* ctx) { (void)ctx; }
  virtual void Map(const InputRecord& record, Emitter<K, V>* out,
                   TaskContext* ctx) = 0;
  /// Called once after the last record (Hadoop "close").
  virtual void Teardown(Emitter<K, V>* out, TaskContext* ctx) {
    (void)out;
    (void)ctx;
  }
};

/// User reduce function. One instance is created per reduce task.
///
/// `group` is the run of sorted (key, value) pairs that compare equal under
/// the job's group comparator. Individual keys within the group may differ
/// in secondary-sort fields — exactly Hadoop's value-iteration behaviour
/// under a custom grouping comparator, which the PK kernel relies on to see
/// projections in increasing length order.
template <typename K, typename V>
class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void Setup(TaskContext* ctx) { (void)ctx; }
  virtual void Reduce(const K& key, std::span<const std::pair<K, V>> group,
                      OutputEmitter* out, TaskContext* ctx) = 0;
  virtual void Teardown(OutputEmitter* out, TaskContext* ctx) {
    (void)out;
    (void)ctx;
  }
};

/// Functional adapters for small jobs.
template <typename K, typename V>
class LambdaMapper : public Mapper<K, V> {
 public:
  using MapFn =
      std::function<void(const InputRecord&, Emitter<K, V>*, TaskContext*)>;
  explicit LambdaMapper(MapFn fn) : fn_(std::move(fn)) {}
  void Map(const InputRecord& record, Emitter<K, V>* out,
           TaskContext* ctx) override {
    fn_(record, out, ctx);
  }

 private:
  MapFn fn_;
};

template <typename K, typename V>
class LambdaReducer : public Reducer<K, V> {
 public:
  using ReduceFn = std::function<void(
      const K&, std::span<const std::pair<K, V>>, OutputEmitter*, TaskContext*)>;
  explicit LambdaReducer(ReduceFn fn) : fn_(std::move(fn)) {}
  void Reduce(const K& key, std::span<const std::pair<K, V>> group,
              OutputEmitter* out, TaskContext* ctx) override {
    fn_(key, group, out, ctx);
  }

 private:
  ReduceFn fn_;
};

/// Full description of one MapReduce job.
template <typename K, typename V>
struct JobSpec {
  std::string name = "job";

  std::vector<std::string> input_files;
  std::string output_file;

  /// Target number of map tasks; 0 means one split per input file.
  size_t num_map_tasks = 0;
  size_t num_reduce_tasks = 1;

  /// Host threads used to execute tasks (physical concurrency only; the
  /// simulated cluster size lives in ClusterConfig, not here). 0 = auto:
  /// resolve to std::thread::hardware_concurrency(). Ignored when
  /// `executor` is set — the host executor's worker count rules.
  size_t local_threads = 1;

  /// Host executor running this job's tasks. Shared across the jobs of a
  /// pipeline so workers persist (warm caches, no per-phase pool
  /// construction). nullptr = the job creates a private executor with
  /// local_threads workers for the duration of Run().
  std::shared_ptr<Executor> executor;

  std::function<std::unique_ptr<Mapper<K, V>>()> mapper_factory;
  std::function<std::unique_ptr<Reducer<K, V>>()> reducer_factory;

  /// Optional local aggregation of map output before the shuffle. Receives
  /// one key group at a time (grouped with the job's comparators) and emits
  /// replacement pairs. With spilling enabled the combiner runs once per
  /// spill (exactly Hadoop's behaviour), so it must be algebraic: feeding
  /// its own output back through it must not change the reduce result.
  std::function<void(const K&, std::vector<V>&&, Emitter<K, V>*)> combiner;

  /// Partition function; nullptr = hash(key) % num_reduce_tasks.
  std::function<size_t(const K&, size_t num_partitions)> partitioner;

  /// Sort comparator; nullptr = std::less<K>. Must be a strict weak order.
  std::function<bool(const K&, const K&)> sort_less;

  /// Group comparator; nullptr = equality under sort_less. Keys equal under
  /// group_equal MUST be contiguous under sort_less.
  std::function<bool(const K&, const K&)> group_equal;

  /// Map-side sort buffer budget in bytes — the analogue of Hadoop's
  /// io.sort.mb. Emitted pairs accumulate in a per-task SortBuffer; when
  /// their estimated serialized size would exceed this budget, the buffer
  /// is sorted, combined, and spilled to the task's local scratch as one
  /// sorted run per reduce partition. The reduce side then k-way merges
  /// the runs instead of re-sorting a materialized partition. 0 =
  /// unbounded: the whole map output becomes a single in-memory run and no
  /// spill I/O is charged (the legacy behaviour). Output is byte-identical
  /// either way.
  uint64_t sort_buffer_bytes = 0;

  /// Maximum number of sorted runs merged in one reduce-side pass — the
  /// analogue of Hadoop's io.sort.factor. When a partition accumulates
  /// more runs, contiguous groups are first collapsed into intermediate
  /// on-disk runs (extra merge passes that re-read and re-write the data)
  /// until one streaming pass suffices.
  size_t merge_factor = 16;

  /// Maximum attempts per task before the job fails — the analogue of
  /// Hadoop's mapred.map.max.attempts / mapred.reduce.max.attempts (both
  /// default 4 there too). A task whose every attempt crashes fails the
  /// whole job with a structured Status; no partial output is written.
  uint32_t max_task_attempts = 4;

  /// End-to-end integrity verification — the HDFS checksum analogue. When
  /// on: job inputs are verified against their Dfs hashes before the map
  /// phase; every sorted run is checksummed at spill time and re-verified
  /// at map-attempt commit and again at the reduce side's run-merge read;
  /// reduce output lines are checksummed at emit and re-verified at the
  /// attempt's commit. Any mismatch crashes the detecting attempt — a
  /// transient failure retried under max_task_attempts — so a recoverable
  /// CorruptRecord fault plan still yields byte-identical output.
  /// Verified bytes are metered (TaskMetrics::integrity_bytes_verified)
  /// and priced by the cluster model.
  bool verify_integrity = false;

  static constexpr uint64_t kUnlimitedSkippedRecords = ~0ULL;
  /// Cap on malformed input records a job may quarantine (see
  /// TaskContext::QuarantineRecord): quarantined lines land in
  /// `<output_file>.bad` instead of aborting the job, but when their total
  /// exceeds this cap the job fails with DataLoss — mass corruption should
  /// not silently shrink the input.
  uint64_t max_skipped_records = kUnlimitedSkippedRecords;

  /// Launch speculative backup attempts for straggling tasks (Hadoop's
  /// mapred.*.tasks.speculative.execution). After a phase's tasks commit,
  /// any task whose cost exceeds speculation_slowdown_factor x the phase
  /// median is re-executed as a backup attempt; the first finisher (by
  /// simulated completion time) wins the output commit and the loser's
  /// cost is recorded as wasted work.
  bool speculative_execution = false;

  /// Straggler threshold for speculation, as a multiple of the phase's
  /// median committed task cost. Must be > 1.
  double speculation_slowdown_factor = 3.0;

  /// Contract checking (mapreduce/contract.h): verify the user-supplied
  /// sort/group comparators against the strict-weak-ordering axioms, the
  /// partitioner against the group comparator (group-equal keys must share
  /// a partition; partition ids in range), the combiner's algebraic laws
  /// (associativity, order-insensitivity, idempotence) on sampled key
  /// groups, and key immutability across reduce calls. A violation fails
  /// the job with a structured FailedPrecondition Status naming the
  /// offending key pair — never a wrong answer. Checks are sampled (see
  /// contract_sample_every), metered as TaskMetrics::contract_checks, and
  /// priced by the cluster model. Default: on in debug builds and CI, off
  /// under NDEBUG (overridable via the FJ_CHECK_CONTRACTS env var).
  bool check_contracts = ContractChecksDefaultOn();

  /// Every kth emitted key enters the contract checker's axiom pool
  /// (1 = every key). Must be >= 1 when check_contracts is on.
  uint32_t contract_sample_every = 16;

  /// Deterministic fault plan injected into this job's task attempts;
  /// nullptr = fault-free. Shared so one plan can be handed to every job
  /// of a pipeline. With any recoverable plan the job output is
  /// byte-identical to the fault-free run (see mapreduce/fault.h).
  std::shared_ptr<const FaultPlan> fault_plan;

  /// Representation of spill runs and shuffle segments (record_format.h).
  /// Text (the default) keeps pairs in memory and meters ByteSizeOf
  /// estimates; binary really serializes every run at spill time (varint
  /// record format, optional block codec), meters actual encoded bytes,
  /// and defines run checksums over the encoded blocks. Job output is
  /// byte-identical across formats and codecs.
  RecordFormat record_format = RecordFormat::kText;

  /// Block codec applied per spill-run/shuffle block in binary format
  /// (ignored under text). Codec CPU bytes are metered per task and
  /// priced by the cluster model.
  BlockCodec block_codec = BlockCodec::kNone;

  /// Shuffle transport moving committed map-output partition segments to
  /// the reduce side (shuffle_transport.h). nullptr = the classic direct
  /// hand-off (map output consumed in place, no segment encoding). When
  /// set, every non-empty (map task x partition) slot is encoded,
  /// Publish()ed at map commit, and Fetch()ed back — checksum-verified —
  /// before the partition's reduce countdown fires; the reduce side
  /// merges the FETCHED bytes. Output is byte-identical either way.
  /// Shared across a pipeline's jobs like `executor`.
  std::shared_ptr<ShuffleTransport> transport;

  /// Escalation rung 2 (transport runs only): when a fetch exhausts the
  /// transport's retry budget, answer it from the map task's locally
  /// committed output (the DFS-spill analogue) instead of immediately
  /// re-running the map attempt. Metered as net_redundant_fetches. Off
  /// forces the ladder straight to rung 3 (deterministic map re-run) —
  /// useful for exercising it in tests.
  bool net_fetch_local_fallback = true;

  /// Commit the job's output file through the Dfs binary block API
  /// (Dfs::WriteFileBlocks) instead of the line API: emitted records are
  /// stored as length-prefixed blocks, and the file's checksums/byte
  /// counts are defined over the varint-framed encoding. Set by stages
  /// whose emitted records are binary wire records (record_format.h
  /// layer 3) rather than text lines.
  bool binary_output = false;
};

/// The job's resolved key ordering: comparators and partitioner with the
/// spec's nullptr defaults filled in. Shared by the map-side SortBuffer
/// and the reduce-side RunMerger so both layers agree on one order.
template <typename K, typename V>
class SpecOrdering {
 public:
  explicit SpecOrdering(const JobSpec<K, V>* spec) : spec_(spec) {}

  bool SortLess(const K& a, const K& b) const {
    if (spec_->sort_less) return spec_->sort_less(a, b);
    return a < b;
  }

  bool GroupEqual(const K& a, const K& b) const {
    if (spec_->group_equal) return spec_->group_equal(a, b);
    if (spec_->sort_less) return !spec_->sort_less(a, b) && !spec_->sort_less(b, a);
    return !(a < b) && !(b < a);
  }

  size_t PartitionOf(const K& key) const {
    return spec_->partitioner
               ? spec_->partitioner(key, spec_->num_reduce_tasks)
               : KeyHashOf(key) % spec_->num_reduce_tasks;
  }

 private:
  const JobSpec<K, V>* spec_;
};

}  // namespace fj::mr
