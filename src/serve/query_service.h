// QueryService: the production trimmings around a ServingIndex.
//
// The index itself is single-writer / single-prober (serve/serving_index.h);
// this layer makes it servable under concurrent callers:
//
//   * a bounded FIFO request queue — callers enqueue from any thread and
//     get their response through a completion callback;
//   * admission control — Enqueue REJECTS with a structured
//     ResourceExhausted Status (never blocks, never queues unboundedly)
//     when the queue depth or the queued record bytes would exceed their
//     bounds; shedding load at the door is what keeps p99 bounded;
//   * batching — one drainer task on the PR 6 executor drains up to
//     max_batch requests per queue lock acquisition and executes them
//     back-to-back on a warm index (successive drainer incarnations are
//     serialized by the queue mutex, so the index never sees two threads);
//   * an LRU result cache keyed on (probe signature, threshold/k) — the
//     probe signature is a 64-bit hash of the token set, and entries pin
//     the exact tokens so a collision can never serve a wrong answer.
//     Entries record the index write epoch at compute time and are valid
//     only while the epoch stands: any Insert/Remove invalidates the
//     whole cache at once (stale entries are evicted lazily on touch);
//     compaction does not move the epoch, so caches survive it;
//   * per-request latency (enqueue to completion, queue wait included)
//     recorded into common/latency_histogram.h, probes and writes
//     separately, surfaced through stats() and the driver's --stats.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <unordered_map>
#include <vector>

#include "common/executor.h"
#include "common/latency_histogram.h"
#include "common/status.h"
#include "common/sync.h"
#include "serve/serving_index.h"

namespace fj::serve {

enum class RequestKind {
  kProbeThreshold,
  kProbeTopK,
  kInsert,
  kRemove,
};

struct Request {
  RequestKind kind = RequestKind::kProbeThreshold;
  TokenSetRecord record;   ///< probe / insert payload
  double threshold = 0.8;  ///< kProbeThreshold
  size_t top_k = 0;        ///< kProbeTopK
  uint64_t rid = 0;        ///< kRemove
};

struct ServeResponse {
  Status status;
  std::vector<ProbeResult> results;  ///< probes only
  bool cache_hit = false;
  double latency_seconds = 0;  ///< enqueue -> completion, queue wait included
};

struct QueryServiceOptions {
  /// Admission bound on queued requests; Enqueue rejects beyond it.
  size_t max_queue_depth = 1024;
  /// Admission bound on token bytes held by queued requests.
  uint64_t max_bytes_in_flight = 8ull << 20;
  /// Requests drained per queue lock acquisition.
  size_t max_batch = 64;
  /// LRU result-cache entries; 0 disables caching.
  size_t cache_capacity = 4096;
  /// Route threshold probes through the index's MinHash-LSH tier
  /// (approximate: recall < 1). Requires the index to have been built
  /// with lsh_preroute.
  bool lsh_preroute = false;
  /// When false, no drainer task is spawned: the owner pumps DrainAll()
  /// itself. Lets tests and benches fill the queue deterministically to
  /// exercise admission control.
  bool auto_drain = true;
};

/// Counter snapshot of one QueryService (histograms included by value so
/// the caller can quantile them without holding the service lock).
struct QueryServiceStats {
  uint64_t accepted = 0;
  uint64_t rejected_queue_depth = 0;
  uint64_t rejected_bytes = 0;
  uint64_t completed = 0;
  uint64_t batches = 0;
  uint64_t cache_hits = 0;
  uint64_t cache_stale = 0;  ///< hits invalidated by a newer write epoch
  uint64_t cache_misses = 0;
  LatencyHistogram probe_latency;
  LatencyHistogram write_latency;
  /// Drained batch sizes (in requests) — the batching effectiveness meter.
  LatencyHistogram batch_size;

  uint64_t rejected() const { return rejected_queue_depth + rejected_bytes; }
};

class QueryService {
 public:
  /// The service borrows `index` and `executor`; both must outlive it.
  QueryService(ServingIndex* index, Executor* executor,
               QueryServiceOptions options = {});

  /// Drains outstanding work before destruction.
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Admits `request` into the queue, or rejects it with ResourceExhausted
  /// (queue depth / bytes in flight) without calling `done`. On admission,
  /// `done` runs exactly once, on a drainer thread, in FIFO order.
  Status Enqueue(Request request, std::function<void(ServeResponse)> done);

  /// Enqueue + wait: runs `request` to completion and returns its
  /// response (admission rejections come back as the response status).
  /// Must not be called from an executor worker (it blocks).
  ServeResponse ExecuteSync(Request request);

  /// Blocks until every admitted request has completed.
  void Flush();

  /// Synchronously drains the whole queue on the calling thread
  /// (auto_drain=false mode). Returns the number of requests processed.
  size_t DrainAll();

  QueryServiceStats stats() const;

  const QueryServiceOptions& options() const { return options_; }

 private:
  struct Pending {
    Request request;
    std::function<void(ServeResponse)> done;
    std::chrono::steady_clock::time_point enqueued;
    uint64_t bytes = 0;
  };

  struct CacheEntry {
    uint64_t key = 0;
    Request request;  ///< pinned for exact-match confirmation
    uint64_t epoch = 0;
    std::vector<ProbeResult> results;
  };

  static uint64_t CacheKey(const Request& request);
  static bool SameProbe(const Request& a, const Request& b);

  /// Runs one request against the index (drainer context only).
  ServeResponse Execute(const Request& request);

  /// Cache lookup / store (drainer context only).
  bool CacheLookup(uint64_t key, const Request& request,
                   std::vector<ProbeResult>* results) FJ_EXCLUDES(mu_);
  void CacheStore(uint64_t key, const Request& request,
                  std::vector<ProbeResult> results) FJ_EXCLUDES(mu_);

  /// Body of the drainer task; exits when the queue is empty.
  void DrainLoop();

  /// Takes up to max_batch requests; returns false when the queue is
  /// empty (and, for the drainer, clears drain_scheduled_ under the same
  /// lock so no wakeup is lost).
  bool TakeBatch(std::vector<Pending>* batch, bool drainer);

  void CompleteBatch(std::vector<Pending>* batch);

  ServingIndex* index_;
  Executor* executor_;
  QueryServiceOptions options_;
  TaskGroup group_;

  mutable Mutex mu_{"query_service", lock_rank::kService};
  CondVar idle_cv_;
  std::deque<Pending> queue_ FJ_GUARDED_BY(mu_);
  uint64_t bytes_in_flight_ FJ_GUARDED_BY(mu_) = 0;
  /// Requests taken from the queue, not yet done.
  size_t in_progress_ FJ_GUARDED_BY(mu_) = 0;
  bool drain_scheduled_ FJ_GUARDED_BY(mu_) = false;

  // LRU cache: most-recently-used at the front. Serving tier, ordering
  // never observable (results are per-key).
  std::list<CacheEntry> lru_ FJ_GUARDED_BY(mu_);
  std::unordered_map<uint64_t, std::list<CacheEntry>::iterator> cache_
      FJ_GUARDED_BY(mu_);

  QueryServiceStats stats_ FJ_GUARDED_BY(mu_);
};

}  // namespace fj::serve
