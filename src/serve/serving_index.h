// ServingIndex: a long-lived, incrementally-maintained PPJoin posting
// index — the online complement of the batch pipeline.
//
// The batch kernel (ppjoin/ppjoin.h) exploits length-ordered arrival:
// records stream in by ascending token count, which makes the shorter
// self-join prefix and length-filter eviction sound. A serving index gets
// no such ordering — inserts, deletes, and probes interleave arbitrarily —
// so this class indexes every record's full *probe prefix* at a configured
// threshold floor (the R-S "index side" discipline of Section 4): for any
// pair with sim >= tau >= tau_floor, the probe's prefix at tau must share
// a token with the indexed record's prefix at tau_floor (the indexed
// prefix only grows as the threshold drops, so indexing at the floor
// covers every servable threshold).
//
// Mutability model:
//   * Insert appends tokens to a contiguous arena and posting entries to
//     per-token lists; each successful write bumps the index write epoch
//     (the result-cache invalidation clock, see serve/query_service.h).
//   * Remove is an epoch-stamped tombstone: the slot records the epoch
//     that killed it, probes skip dead slots, and postings/arena stay
//     until compaction.
//   * Compaction triggers when the tombstone fraction reaches
//     compact_tombstone_fraction: live records are rewritten into a fresh
//     arena / posting index / LSH tables, dead postings disappear, and
//     probe answers are provably unchanged (compaction does NOT bump the
//     write epoch, so cached results stay valid across it).
//
// Probes are exact PPJoin probes: prefix filter at the query threshold,
// length filter, positional filter at a candidate's first match, the
// 128-bit hashed-bitmap pre-verification bound, then an early-terminating
// merge over the full token arrays. ProbeTopK answers "the k most similar
// records" exactly down to the floor, by iterative threshold deepening.
// An optional MinHash-LSH tier (lsh_preroute) maintains band buckets
// incrementally and serves approximate probes (perfect precision, recall
// follows the 1-(1-s^r)^b curve) for cheap first-pass routing.
//
// Thread-compatibility: like the batch kernel, this class is single
// writer / single prober (probes reuse epoch-stamped candidate scratch).
// serve/query_service.h serializes access behind a bounded request queue.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/status.h"
#include "ppjoin/minhash_lsh.h"
#include "ppjoin/token_set.h"
#include "similarity/filters.h"
#include "similarity/similarity.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::serve {

using ppjoin::TokenSetRecord;

/// One probe answer: an indexed record and its exact similarity to the
/// probe. ProbeThreshold returns these ascending by rid; ProbeTopK by
/// (similarity descending, rid ascending).
struct ProbeResult {
  uint64_t rid = 0;
  double similarity = 0;

  friend bool operator==(const ProbeResult& a, const ProbeResult& b) {
    return a.rid == b.rid && a.similarity == b.similarity;
  }
};

struct ServingIndexOptions {
  sim::SimilarityFunction function = sim::SimilarityFunction::kJaccard;
  /// Lowest threshold the index can serve exactly. Index prefix depth is
  /// derived from it: lower floor = longer indexed prefixes = larger
  /// index and slower probes. Probes below the floor are refused with
  /// FailedPrecondition.
  double tau_floor = 0.5;
  /// Compact when dead slots reach this fraction of all slots (dead +
  /// live). Values outside (0, 1] disable threshold-triggered compaction
  /// (CompactNow is always available).
  double compact_tombstone_fraction = 0.25;
  /// Maintain MinHash-LSH band buckets incrementally so ProbeApprox can
  /// serve approximate probes (recall < 1, precision 1).
  bool lsh_preroute = false;
  ppjoin::MinHashLshOptions lsh;
};

/// Monotonic counters describing the life of one ServingIndex.
struct ServingIndexStats {
  uint64_t inserts = 0;
  uint64_t removes = 0;
  uint64_t probes = 0;
  uint64_t candidates = 0;        ///< distinct (probe, indexed) pairs seen
  uint64_t positional_pruned = 0;
  uint64_t bitmap_pruned = 0;
  uint64_t verified = 0;          ///< pairs reaching the merge
  uint64_t results = 0;
  uint64_t compactions = 0;
  uint64_t tombstones_purged = 0;  ///< dead slots removed by compaction
  uint64_t lsh_probes = 0;
  uint64_t lsh_candidates = 0;
  uint64_t topk_deepenings = 0;   ///< extra ladder rungs ProbeTopK probed
};

class ServingIndex {
 public:
  explicit ServingIndex(ServingIndexOptions options = {});

  // --- Writes (each successful one bumps the write epoch) ---

  /// Indexes `record`. Tokens must be strictly ascending (a canonical
  /// set, e.g. from TokenOrdering::ToSortedIds) and non-empty;
  /// InvalidArgument otherwise. AlreadyExists if a live record with the
  /// same rid is indexed.
  Status Insert(const TokenSetRecord& record);

  /// Tombstones the live record with `rid` (NotFound if absent). May
  /// trigger compaction.
  Status Remove(uint64_t rid);

  // --- Probes (exact) ---

  /// All live indexed records y with sim(record, y) >= tau, excluding y
  /// with y.rid == record.rid (a record never matches itself when probed
  /// back). Results ascending by rid; set-identical to the offline batch
  /// join's pairs for `record` at `tau`. FailedPrecondition when tau is
  /// below the index floor; InvalidArgument on a malformed record.
  Status ProbeThreshold(const TokenSetRecord& record, double tau,
                        std::vector<ProbeResult>* out);

  /// The k live records most similar to `record` among those with
  /// similarity >= tau_floor, ordered by (similarity desc, rid asc); ties
  /// broken by rid so answers are deterministic. Fewer than k results
  /// means fewer than k records clear the floor.
  Status ProbeTopK(const TokenSetRecord& record, size_t k,
                   std::vector<ProbeResult>* out);

  // --- Probes (approximate, lsh_preroute only) ---

  /// LSH-routed probe: candidates come from MinHash band buckets instead
  /// of the posting index, then verify exactly. A subset of
  /// ProbeThreshold's answer (precision 1, recall < 1). Jaccard only.
  /// FailedPrecondition unless options.lsh_preroute is on.
  Status ProbeApprox(const TokenSetRecord& record, double tau,
                     std::vector<ProbeResult>* out);

  // --- Maintenance / introspection ---

  /// Rewrites the index without its tombstones. Answers are unchanged
  /// (and the write epoch does not move — caches survive compaction).
  void CompactNow();

  /// Live records in slot order (the order a from-scratch rebuild would
  /// insert them). Powers snapshots and rebuild-equivalence tests.
  void ExportLive(std::vector<TokenSetRecord>* out) const;

  /// Advances on every successful Insert/Remove. The result-cache
  /// validity clock: a cached probe answer is valid iff it was computed
  /// at the current epoch.
  uint64_t write_epoch() const { return write_epoch_; }

  size_t live_records() const { return rid_to_slot_.size(); }
  size_t tombstones() const { return dead_slots_; }
  /// Tokens of live records (arena bytes also cover dead tokens until
  /// compaction reclaims them).
  uint64_t live_tokens() const { return live_tokens_; }
  uint64_t arena_tokens() const { return arena_.size(); }

  const ServingIndexStats& stats() const { return stats_; }
  const ServingIndexOptions& options() const { return options_; }

 private:
  struct Posting {
    uint32_t slot = 0;
    uint32_t position = 0;  ///< token position within the record
    uint32_t length = 0;    ///< record length (length filter reads postings)
  };

  struct PostingList {
    std::vector<Posting> entries;
  };

  struct Slot {
    uint64_t rid = 0;
    sim::BitmapSignature signature;
    size_t arena_begin = 0;
    uint32_t length = 0;
    /// 0 = live; otherwise the write epoch whose Remove killed it.
    uint64_t tombstone_epoch = 0;

    bool live() const { return tombstone_epoch == 0; }
  };

  /// Per-slot probe dedupe state, versioned by probe_epoch_ (never
  /// cleared, exactly like the batch kernel's candidate accumulator).
  struct CandidateSlot {
    uint64_t epoch = 0;
  };

  sim::TokenIdSpan TokensOf(const Slot& slot) const {
    return sim::TokenIdSpan(arena_.data() + slot.arena_begin, slot.length);
  }

  PostingList* FindPostingList(sim::TokenId id);
  PostingList& PostingListFor(sim::TokenId id);

  /// Appends `record` as a new live slot (store + arena + postings + LSH
  /// buckets). The caller has validated it.
  void AppendSlot(const TokenSetRecord& record);

  /// Shared verify loop over candidate_order_ under `spec`; appends
  /// results and clears the scratch.
  void VerifyCandidates(const TokenSetRecord& record,
                        const sim::SimilaritySpec& spec,
                        std::vector<ProbeResult>* out);

  /// ProbeThreshold without the floor check (ProbeTopK's ladder rungs are
  /// always >= the floor by construction).
  void ProbeUnchecked(const TokenSetRecord& record,
                      const sim::SimilaritySpec& spec,
                      std::vector<ProbeResult>* out);

  Status ValidateRecord(const TokenSetRecord& record) const;

  void MaybeCompact();

  ServingIndexOptions options_;
  sim::SimilaritySpec floor_spec_;  ///< (function, tau_floor): index depth

  std::vector<Slot> slots_;
  std::vector<sim::TokenId> arena_;  ///< all indexed tokens, contiguous
  std::vector<PostingList> dense_index_;  ///< slot = stage-1 token rank
  // Serving tier, not the batch hot loop; probe results are sorted before
  // they leave, so map iteration order never escapes.
  std::unordered_map<sim::TokenId, PostingList> unknown_index_;
  std::unordered_map<uint64_t, uint32_t> rid_to_slot_;  ///< live rids only

  /// MinHash band buckets (lsh_preroute): band -> band key -> slots.
  std::vector<std::unordered_map<uint64_t, std::vector<uint32_t>>> bands_;

  std::vector<CandidateSlot> candidate_slots_;  ///< one per slot
  std::vector<uint32_t> candidate_order_;       ///< touched list
  uint64_t probe_epoch_ = 0;

  uint64_t write_epoch_ = 0;
  size_t dead_slots_ = 0;
  uint64_t live_tokens_ = 0;
  ServingIndexStats stats_;
};

/// A serving index plus the token ordering that maps raw text onto its id
/// space (the driver needs both: the ordering tokenizes incoming INSERT /
/// PROBE text exactly the way the seeded corpus was tokenized).
struct SeededIndex {
  std::unique_ptr<ServingIndex> index;
  text::TokenOrdering ordering;
};

/// Seeds a ServingIndex from an offline stage-1 run: `ordering_lines` is
/// the stage-1 output ("token<TAB>count" per line, rank order — pass {}
/// to derive the ordering from the corpus itself), `record_lines` are
/// data::Record lines whose join attributes become the indexed sets.
Result<SeededIndex> BuildFromJoinOutput(
    const std::vector<std::string>& ordering_lines,
    const std::vector<std::string>& record_lines,
    const text::Tokenizer& tokenizer, const ServingIndexOptions& options);

/// Snapshot of a seeded index as self-describing binary blocks (varint
/// framed; block 0 is a header carrying the options). Load rebuilds an
/// index that answers identically.
std::vector<std::string> SaveSnapshot(const ServingIndex& index,
                                      const text::TokenOrdering& ordering);
Result<SeededIndex> LoadSnapshot(const std::vector<std::string>& blocks);

}  // namespace fj::serve
