#include "serve/query_service.h"

#include <bit>
#include <chrono>
#include <functional>
#include <memory>
#include <utility>

#include "common/hash.h"

namespace fj::serve {
namespace {

uint64_t RequestBytes(const Request& request) {
  return sizeof(Request) +
         request.record.tokens.size() * sizeof(sim::TokenId);
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

QueryService::QueryService(ServingIndex* index, Executor* executor,
                           QueryServiceOptions options)
    : index_(index),
      executor_(executor),
      options_(options),
      group_(executor) {}

QueryService::~QueryService() {
  if (options_.auto_drain) {
    Flush();
  } else {
    DrainAll();
  }
  Status ignored = group_.Wait();
  (void)ignored;
}

uint64_t QueryService::CacheKey(const Request& request) {
  uint64_t key = HashBytes(request.record.tokens.data(),
                           request.record.tokens.size() * sizeof(sim::TokenId));
  key = HashCombine(key, request.record.tokens.size());
  key = HashCombine(key, request.record.rid);
  key = HashCombine(key, static_cast<uint64_t>(request.kind));
  key = HashCombine(key, std::bit_cast<uint64_t>(request.threshold));
  key = HashCombine(key, request.top_k);
  return key;
}

bool QueryService::SameProbe(const Request& a, const Request& b) {
  return a.kind == b.kind && a.threshold == b.threshold &&
         a.top_k == b.top_k && a.record.rid == b.record.rid &&
         a.record.tokens == b.record.tokens;
}

Status QueryService::Enqueue(Request request,
                             std::function<void(ServeResponse)> done) {
  const uint64_t bytes = RequestBytes(request);
  bool spawn_drainer = false;
  {
    MutexLock lock(&mu_);
    if (queue_.size() >= options_.max_queue_depth) {
      ++stats_.rejected_queue_depth;
      return Status::ResourceExhausted(
          "serving queue is full (" +
          std::to_string(options_.max_queue_depth) +
          " requests queued); retry with backoff");
    }
    if (bytes_in_flight_ + bytes > options_.max_bytes_in_flight) {
      ++stats_.rejected_bytes;
      return Status::ResourceExhausted(
          "serving queue holds " + std::to_string(bytes_in_flight_) +
          " bytes in flight (limit " +
          std::to_string(options_.max_bytes_in_flight) +
          "); retry with backoff");
    }
    ++stats_.accepted;
    bytes_in_flight_ += bytes;
    queue_.push_back(Pending{std::move(request), std::move(done),
                             std::chrono::steady_clock::now(), bytes});
    if (options_.auto_drain && !drain_scheduled_) {
      drain_scheduled_ = true;
      spawn_drainer = true;
    }
  }
  if (spawn_drainer) {
    group_.Spawn([this] { DrainLoop(); });
  }
  return Status::OK();
}

ServeResponse QueryService::ExecuteSync(Request request) {
  struct SyncState {
    // Unranked local latch: held only around the done flip / final read,
    // never while any other lock is taken.
    Mutex mu{"query_service.sync"};
    CondVar cv;
    bool done FJ_GUARDED_BY(mu) = false;
    ServeResponse response FJ_GUARDED_BY(mu);
  };
  auto state = std::make_shared<SyncState>();
  Status admitted = Enqueue(std::move(request), [state](ServeResponse r) {
    MutexLock lock(&state->mu);
    state->response = std::move(r);
    state->done = true;
    state->cv.NotifyAll();
  });
  if (!admitted.ok()) {
    ServeResponse rejected;
    rejected.status = admitted;
    return rejected;
  }
  if (!options_.auto_drain) DrainAll();
  MutexLock lock(&state->mu);
  while (!state->done) state->cv.Wait(&state->mu);
  return std::move(state->response);
}

void QueryService::Flush() {
  MutexLock lock(&mu_);
  while (!(queue_.empty() && in_progress_ == 0 && !drain_scheduled_)) {
    idle_cv_.Wait(&mu_);
  }
}

size_t QueryService::DrainAll() {
  if (options_.auto_drain) return 0;  // the drainer task owns the index
  size_t processed = 0;
  std::vector<Pending> batch;
  while (TakeBatch(&batch, /*drainer=*/false)) {
    processed += batch.size();
    CompleteBatch(&batch);
  }
  return processed;
}

bool QueryService::TakeBatch(std::vector<Pending>* batch, bool drainer) {
  batch->clear();
  MutexLock lock(&mu_);
  if (queue_.empty()) {
    if (drainer) {
      drain_scheduled_ = false;
      if (in_progress_ == 0) idle_cv_.NotifyAll();
    }
    return false;
  }
  const size_t take = std::min(options_.max_batch, queue_.size());
  for (size_t i = 0; i < take; ++i) {
    batch->push_back(std::move(queue_.front()));
    queue_.pop_front();
  }
  in_progress_ += take;
  ++stats_.batches;
  stats_.batch_size.RecordNanos(take);
  return true;
}

void QueryService::CompleteBatch(std::vector<Pending>* batch) {
  uint64_t batch_bytes = 0;
  for (Pending& pending : *batch) {
    ServeResponse response = Execute(pending.request);
    response.latency_seconds = SecondsSince(pending.enqueued);
    batch_bytes += pending.bytes;
    {
      MutexLock lock(&mu_);
      ++stats_.completed;
      switch (pending.request.kind) {
        case RequestKind::kProbeThreshold:
        case RequestKind::kProbeTopK:
          stats_.probe_latency.Record(response.latency_seconds);
          break;
        case RequestKind::kInsert:
        case RequestKind::kRemove:
          stats_.write_latency.Record(response.latency_seconds);
          break;
      }
    }
    if (pending.done) pending.done(std::move(response));
  }
  MutexLock lock(&mu_);
  in_progress_ -= batch->size();
  bytes_in_flight_ -= batch_bytes;
  if (queue_.empty() && in_progress_ == 0) idle_cv_.NotifyAll();
}

void QueryService::DrainLoop() {
  std::vector<Pending> batch;
  while (TakeBatch(&batch, /*drainer=*/true)) {
    CompleteBatch(&batch);
  }
}

bool QueryService::CacheLookup(uint64_t key, const Request& request,
                               std::vector<ProbeResult>* results) {
  MutexLock lock(&mu_);
  auto it = cache_.find(key);
  if (it == cache_.end() || !SameProbe(it->second->request, request)) {
    ++stats_.cache_misses;
    return false;
  }
  if (it->second->epoch != index_->write_epoch()) {
    // A write moved the epoch since this answer was computed: the entry
    // may list vanished records or miss new ones. Drop it.
    ++stats_.cache_stale;
    lru_.erase(it->second);
    cache_.erase(it);
    return false;
  }
  lru_.splice(lru_.begin(), lru_, it->second);  // touch
  *results = it->second->results;
  ++stats_.cache_hits;
  return true;
}

void QueryService::CacheStore(uint64_t key, const Request& request,
                              std::vector<ProbeResult> results) {
  MutexLock lock(&mu_);
  auto it = cache_.find(key);
  if (it != cache_.end()) {  // re-computed after staleness or collision
    lru_.erase(it->second);
    cache_.erase(it);
  }
  lru_.push_front(CacheEntry{key, request, index_->write_epoch(),
                             std::move(results)});
  cache_[key] = lru_.begin();
  while (lru_.size() > options_.cache_capacity) {
    cache_.erase(lru_.back().key);
    lru_.pop_back();
  }
}

ServeResponse QueryService::Execute(const Request& request) {
  ServeResponse response;
  switch (request.kind) {
    case RequestKind::kInsert:
      response.status = index_->Insert(request.record);
      return response;
    case RequestKind::kRemove:
      response.status = index_->Remove(request.rid);
      return response;
    case RequestKind::kProbeThreshold:
    case RequestKind::kProbeTopK:
      break;
  }
  const bool cacheable = options_.cache_capacity > 0;
  const uint64_t key = cacheable ? CacheKey(request) : 0;
  if (cacheable && CacheLookup(key, request, &response.results)) {
    response.cache_hit = true;
    return response;
  }
  if (request.kind == RequestKind::kProbeThreshold) {
    response.status =
        options_.lsh_preroute
            ? index_->ProbeApprox(request.record, request.threshold,
                                  &response.results)
            : index_->ProbeThreshold(request.record, request.threshold,
                                     &response.results);
  } else {
    response.status =
        index_->ProbeTopK(request.record, request.top_k, &response.results);
  }
  if (cacheable && response.status.ok()) {
    CacheStore(key, request, response.results);
  }
  return response;
}

QueryServiceStats QueryService::stats() const {
  MutexLock lock(&mu_);
  return stats_;
}

}  // namespace fj::serve
