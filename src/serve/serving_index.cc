#include "serve/serving_index.h"

#include <algorithm>
#include <bit>
#include <map>
#include <utility>

#include "common/varint.h"
#include "data/record.h"

namespace fj::serve {
namespace {

// ProbeTopK's iterative-deepening ladder: probe cheap high thresholds
// first, fall through to the floor only when k results have not been
// found. Each rung's answer is a superset of the rungs above it, so the
// first rung with >= k results is final.
constexpr double kTopKLadder[] = {0.9, 0.75, 0.6};

constexpr char kSnapshotMagic[] = "FJSV1";

}  // namespace

ServingIndex::ServingIndex(ServingIndexOptions options)
    : options_(options),
      floor_spec_(options.function, options.tau_floor) {
  if (options_.lsh_preroute) bands_.resize(options_.lsh.num_bands);
}

Status ServingIndex::ValidateRecord(const TokenSetRecord& record) const {
  if (record.tokens.empty()) {
    return Status::InvalidArgument("record " + std::to_string(record.rid) +
                                   ": empty token set");
  }
  for (size_t i = 1; i < record.tokens.size(); ++i) {
    if (record.tokens[i] <= record.tokens[i - 1]) {
      return Status::InvalidArgument(
          "record " + std::to_string(record.rid) +
          ": tokens must be strictly ascending (a canonical set)");
    }
  }
  return Status::OK();
}

ServingIndex::PostingList* ServingIndex::FindPostingList(sim::TokenId id) {
  if (!text::IsUnknownToken(id)) {
    if (id >= dense_index_.size()) return nullptr;
    return &dense_index_[static_cast<size_t>(id)];
  }
  auto it = unknown_index_.find(id);
  return it == unknown_index_.end() ? nullptr : &it->second;
}

ServingIndex::PostingList& ServingIndex::PostingListFor(sim::TokenId id) {
  if (!text::IsUnknownToken(id)) {
    if (id >= dense_index_.size()) {
      dense_index_.resize(static_cast<size_t>(id) + 1);
    }
    return dense_index_[static_cast<size_t>(id)];
  }
  return unknown_index_[id];
}

void ServingIndex::AppendSlot(const TokenSetRecord& record) {
  const auto slot_index = static_cast<uint32_t>(slots_.size());
  const auto length = static_cast<uint32_t>(record.tokens.size());
  Slot slot;
  slot.rid = record.rid;
  slot.signature = sim::BuildBitmapSignature(record.tokens);
  slot.arena_begin = arena_.size();
  slot.length = length;
  arena_.insert(arena_.end(), record.tokens.begin(), record.tokens.end());
  slots_.push_back(slot);
  candidate_slots_.emplace_back();
  rid_to_slot_[record.rid] = slot_index;
  live_tokens_ += length;

  // Index the record's probe prefix at the threshold floor: any partner
  // with sim >= tau >= tau_floor shares a token within this prefix.
  const size_t index_prefix = floor_spec_.PrefixLength(record.tokens.size());
  for (size_t i = 0; i < index_prefix; ++i) {
    PostingListFor(record.tokens[i])
        .entries.push_back({slot_index, static_cast<uint32_t>(i), length});
  }

  if (options_.lsh_preroute) {
    const auto signature = ppjoin::MinHashSignature(
        record, options_.lsh.num_bands * options_.lsh.rows_per_band,
        options_.lsh.seed);
    const auto keys = ppjoin::BandKeys(signature, options_.lsh);
    for (size_t band = 0; band < keys.size(); ++band) {
      bands_[band][keys[band]].push_back(slot_index);
    }
  }
}

Status ServingIndex::Insert(const TokenSetRecord& record) {
  FJ_RETURN_IF_ERROR(ValidateRecord(record));
  if (rid_to_slot_.count(record.rid) != 0) {
    return Status::AlreadyExists("record " + std::to_string(record.rid) +
                                 " is already indexed");
  }
  AppendSlot(record);
  ++write_epoch_;
  ++stats_.inserts;
  return Status::OK();
}

Status ServingIndex::Remove(uint64_t rid) {
  auto it = rid_to_slot_.find(rid);
  if (it == rid_to_slot_.end()) {
    return Status::NotFound("record " + std::to_string(rid) +
                            " is not indexed");
  }
  Slot& slot = slots_[it->second];
  ++write_epoch_;
  slot.tombstone_epoch = write_epoch_;
  ++dead_slots_;
  live_tokens_ -= slot.length;
  rid_to_slot_.erase(it);
  ++stats_.removes;
  MaybeCompact();
  return Status::OK();
}

void ServingIndex::VerifyCandidates(const TokenSetRecord& record,
                                    const sim::SimilaritySpec& spec,
                                    std::vector<ProbeResult>* out) {
  for (uint32_t slot_index : candidate_order_) {
    const Slot& slot = slots_[slot_index];
    ++stats_.verified;
    const size_t alpha = spec.MinOverlap(record.tokens.size(), slot.length);
    const size_t overlap = sim::VerifyOverlap(record.tokens, TokensOf(slot),
                                              0, 0, 0, alpha);
    if (overlap == sim::kOverlapFailed) continue;
    const double similarity = sim::SimilarityFromOverlap(
        spec.function(), overlap, record.tokens.size(), slot.length);
    out->push_back(ProbeResult{slot.rid, similarity});
    ++stats_.results;
  }
  candidate_order_.clear();
}

void ServingIndex::ProbeUnchecked(const TokenSetRecord& record,
                                  const sim::SimilaritySpec& spec,
                                  std::vector<ProbeResult>* out) {
  ++stats_.probes;
  ++probe_epoch_;
  const size_t length = record.tokens.size();
  const size_t prefix = spec.PrefixLength(length);
  const size_t lb = spec.LengthLowerBound(length);
  const size_t ub = spec.LengthUpperBound(length);
  const sim::BitmapSignature probe_sig =
      sim::BuildBitmapSignature(record.tokens);
  for (size_t i = 0; i < prefix; ++i) {
    PostingList* plist = FindPostingList(record.tokens[i]);
    if (plist == nullptr) continue;
    for (const Posting& posting : plist->entries) {
      const Slot& slot = slots_[posting.slot];
      if (!slot.live() || slot.rid == record.rid) continue;
      if (posting.length < lb || posting.length > ub) continue;
      CandidateSlot& candidate = candidate_slots_[posting.slot];
      if (candidate.epoch == probe_epoch_) continue;
      candidate.epoch = probe_epoch_;
      ++stats_.candidates;
      const size_t alpha = spec.MinOverlap(length, posting.length);
      // First match of this candidate: no common token precedes (i,
      // posting.position) — an earlier one would itself be indexed and
      // scanned — so the positional bound applies with zero accumulated
      // overlap, and a failure is final (the pair can never qualify).
      if (!sim::PassesPositionalFilter(length, posting.length, i,
                                       posting.position, 0, alpha)) {
        ++stats_.positional_pruned;
        continue;
      }
      if (sim::BitmapOverlapUpperBound(probe_sig, slot.signature, length,
                                       posting.length) < alpha) {
        ++stats_.bitmap_pruned;
        continue;
      }
      candidate_order_.push_back(posting.slot);
    }
  }
  VerifyCandidates(record, spec, out);
}

Status ServingIndex::ProbeThreshold(const TokenSetRecord& record, double tau,
                                    std::vector<ProbeResult>* out) {
  out->clear();
  FJ_RETURN_IF_ERROR(ValidateRecord(record));
  if (tau > 1.0 || !(tau > 0.0)) {
    return Status::InvalidArgument("threshold must lie in (0, 1]");
  }
  if (tau < options_.tau_floor - 1e-12) {
    return Status::FailedPrecondition(
        "probe threshold " + std::to_string(tau) +
        " is below the index floor " + std::to_string(options_.tau_floor) +
        " (rebuild the index with a lower tau_floor)");
  }
  const sim::SimilaritySpec spec(options_.function, tau);
  ProbeUnchecked(record, spec, out);
  std::sort(out->begin(), out->end(),
            [](const ProbeResult& a, const ProbeResult& b) {
              return a.rid < b.rid;
            });
  return Status::OK();
}

Status ServingIndex::ProbeTopK(const TokenSetRecord& record, size_t k,
                               std::vector<ProbeResult>* out) {
  out->clear();
  FJ_RETURN_IF_ERROR(ValidateRecord(record));
  if (k == 0) return Status::OK();
  for (double rung : kTopKLadder) {
    if (rung <= options_.tau_floor) continue;
    out->clear();
    ProbeUnchecked(record, sim::SimilaritySpec(options_.function, rung), out);
    if (out->size() >= k) break;
    ++stats_.topk_deepenings;
  }
  if (out->size() < k) {
    out->clear();
    ProbeUnchecked(record, floor_spec_, out);
  }
  std::sort(out->begin(), out->end(),
            [](const ProbeResult& a, const ProbeResult& b) {
              if (a.similarity != b.similarity) {
                return a.similarity > b.similarity;
              }
              return a.rid < b.rid;
            });
  if (out->size() > k) out->resize(k);
  return Status::OK();
}

Status ServingIndex::ProbeApprox(const TokenSetRecord& record, double tau,
                                 std::vector<ProbeResult>* out) {
  out->clear();
  if (!options_.lsh_preroute) {
    return Status::FailedPrecondition(
        "approximate probes need lsh_preroute enabled at index build time");
  }
  FJ_RETURN_IF_ERROR(ValidateRecord(record));
  if (tau > 1.0 || !(tau > 0.0)) {
    return Status::InvalidArgument("threshold must lie in (0, 1]");
  }
  // No floor check: band buckets cover whole records, so (approximate)
  // answers below the exact index's floor are still servable.
  const sim::SimilaritySpec spec(options_.function, tau);
  ++stats_.probes;
  ++stats_.lsh_probes;
  ++probe_epoch_;
  const size_t length = record.tokens.size();
  const size_t lb = spec.LengthLowerBound(length);
  const size_t ub = spec.LengthUpperBound(length);
  const sim::BitmapSignature probe_sig =
      sim::BuildBitmapSignature(record.tokens);
  const auto signature = ppjoin::MinHashSignature(
      record, options_.lsh.num_bands * options_.lsh.rows_per_band,
      options_.lsh.seed);
  const auto keys = ppjoin::BandKeys(signature, options_.lsh);
  for (size_t band = 0; band < keys.size(); ++band) {
    auto bucket = bands_[band].find(keys[band]);
    if (bucket == bands_[band].end()) continue;
    for (uint32_t slot_index : bucket->second) {
      const Slot& slot = slots_[slot_index];
      if (!slot.live() || slot.rid == record.rid) continue;
      if (slot.length < lb || slot.length > ub) continue;
      CandidateSlot& candidate = candidate_slots_[slot_index];
      if (candidate.epoch == probe_epoch_) continue;
      candidate.epoch = probe_epoch_;
      ++stats_.candidates;
      ++stats_.lsh_candidates;
      const size_t alpha = spec.MinOverlap(length, slot.length);
      if (sim::BitmapOverlapUpperBound(probe_sig, slot.signature, length,
                                       slot.length) < alpha) {
        ++stats_.bitmap_pruned;
        continue;
      }
      candidate_order_.push_back(slot_index);
    }
  }
  VerifyCandidates(record, spec, out);
  std::sort(out->begin(), out->end(),
            [](const ProbeResult& a, const ProbeResult& b) {
              return a.rid < b.rid;
            });
  return Status::OK();
}

void ServingIndex::CompactNow() {
  std::vector<TokenSetRecord> live;
  ExportLive(&live);
  const size_t purged = dead_slots_;

  slots_.clear();
  arena_.clear();
  dense_index_.clear();
  unknown_index_.clear();
  rid_to_slot_.clear();
  bands_.assign(options_.lsh_preroute ? options_.lsh.num_bands : 0, {});
  candidate_slots_.clear();
  candidate_order_.clear();
  probe_epoch_ = 0;
  dead_slots_ = 0;
  live_tokens_ = 0;

  for (const TokenSetRecord& record : live) AppendSlot(record);
  ++stats_.compactions;
  stats_.tombstones_purged += purged;
}

void ServingIndex::ExportLive(std::vector<TokenSetRecord>* out) const {
  out->clear();
  out->reserve(rid_to_slot_.size());
  for (const Slot& slot : slots_) {
    if (!slot.live()) continue;
    const auto tokens = TokensOf(slot);
    out->push_back(TokenSetRecord{
        slot.rid, std::vector<sim::TokenId>(tokens.begin(), tokens.end())});
  }
}

void ServingIndex::MaybeCompact() {
  const double fraction = options_.compact_tombstone_fraction;
  if (!(fraction > 0.0) || fraction > 1.0 || slots_.empty()) return;
  if (static_cast<double>(dead_slots_) >=
      fraction * static_cast<double>(slots_.size())) {
    CompactNow();
  }
}

// --- Seeding and snapshots -----------------------------------------------

Result<SeededIndex> BuildFromJoinOutput(
    const std::vector<std::string>& ordering_lines,
    const std::vector<std::string>& record_lines,
    const text::Tokenizer& tokenizer, const ServingIndexOptions& options) {
  FJ_ASSIGN_OR_RETURN(std::vector<data::Record> records,
                      data::RecordsFromLines(record_lines));
  std::vector<std::vector<std::string>> tokenized;
  tokenized.reserve(records.size());
  for (const auto& record : records) {
    tokenized.push_back(tokenizer.Tokenize(record.JoinAttribute()));
  }

  SeededIndex seeded;
  if (!ordering_lines.empty()) {
    FJ_ASSIGN_OR_RETURN(seeded.ordering,
                        text::TokenOrdering::FromLines(ordering_lines));
  } else {
    // No offline stage-1 output: derive the ordering from the corpus the
    // way stage 1 would (frequency ascending, ties lexicographic).
    std::map<std::string, uint64_t> counts;
    for (const auto& tokens : tokenized) {
      for (const auto& token : tokens) ++counts[token];
    }
    seeded.ordering =
        text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  }

  seeded.index = std::make_unique<ServingIndex>(options);
  for (size_t i = 0; i < records.size(); ++i) {
    TokenSetRecord record{records[i].rid,
                          seeded.ordering.ToSortedIds(tokenized[i])};
    // A join attribute that tokenizes to nothing can never join; skip it
    // (the batch pipeline never emits pairs for it either).
    if (record.tokens.empty()) continue;
    FJ_RETURN_IF_ERROR(seeded.index->Insert(record));
  }
  return seeded;
}

std::vector<std::string> SaveSnapshot(const ServingIndex& index,
                                      const text::TokenOrdering& ordering) {
  const ServingIndexOptions& options = index.options();
  std::vector<std::string> blocks;

  std::string header(kSnapshotMagic);
  AppendVarint(&header, static_cast<uint64_t>(options.function));
  AppendVarint(&header, std::bit_cast<uint64_t>(options.tau_floor));
  AppendVarint(&header,
               std::bit_cast<uint64_t>(options.compact_tombstone_fraction));
  AppendVarint(&header, options.lsh_preroute ? 1 : 0);
  AppendVarint(&header, options.lsh.num_bands);
  AppendVarint(&header, options.lsh.rows_per_band);
  AppendVarint(&header, options.lsh.seed);

  std::vector<TokenSetRecord> live;
  index.ExportLive(&live);
  AppendVarint(&header, live.size());
  blocks.push_back(std::move(header));

  // Ordering lines are "token<TAB>count" — newline-free — so one text
  // block holds them all.
  std::string ordering_block;
  for (const std::string& line : ordering.ToLines()) {
    ordering_block += line;
    ordering_block += '\n';
  }
  blocks.push_back(std::move(ordering_block));

  for (const TokenSetRecord& record : live) {
    std::string block;
    AppendVarint(&block, record.rid);
    AppendVarint(&block, record.tokens.size());
    sim::TokenId previous = 0;
    for (sim::TokenId token : record.tokens) {
      AppendVarint(&block, token - previous);  // ascending: deltas fit
      previous = token;
    }
    blocks.push_back(std::move(block));
  }
  return blocks;
}

Result<SeededIndex> LoadSnapshot(const std::vector<std::string>& blocks) {
  constexpr size_t kMagicLen = sizeof(kSnapshotMagic) - 1;
  if (blocks.size() < 2 || blocks[0].size() < kMagicLen ||
      blocks[0].compare(0, kMagicLen, kSnapshotMagic) != 0) {
    return Status::DataLoss("not a serving-index snapshot");
  }
  const std::string& header = blocks[0];
  size_t pos = kMagicLen;
  uint64_t function = 0, tau_bits = 0, fraction_bits = 0, lsh = 0;
  uint64_t bands = 0, rows = 0, seed = 0, record_count = 0;
  for (uint64_t* field : {&function, &tau_bits, &fraction_bits, &lsh, &bands,
                          &rows, &seed, &record_count}) {
    if (!DecodeVarint(header, &pos, field)) {
      return Status::DataLoss("truncated snapshot header");
    }
  }
  if (function > static_cast<uint64_t>(sim::SimilarityFunction::kOverlap)) {
    return Status::DataLoss("snapshot names an unknown similarity function");
  }
  ServingIndexOptions options;
  options.function = static_cast<sim::SimilarityFunction>(function);
  options.tau_floor = std::bit_cast<double>(tau_bits);
  options.compact_tombstone_fraction = std::bit_cast<double>(fraction_bits);
  options.lsh_preroute = lsh != 0;
  options.lsh.num_bands = static_cast<size_t>(bands);
  options.lsh.rows_per_band = static_cast<size_t>(rows);
  options.lsh.seed = seed;
  if (!(options.tau_floor > 0.0) || options.tau_floor > 1.0) {
    return Status::DataLoss("snapshot carries an invalid tau floor");
  }
  if (record_count != blocks.size() - 2) {
    return Status::DataLoss("snapshot record count does not match blocks");
  }

  SeededIndex seeded;
  std::vector<std::string> ordering_lines;
  const std::string& ordering_block = blocks[1];
  size_t start = 0;
  while (start < ordering_block.size()) {
    const size_t end = ordering_block.find('\n', start);
    if (end == std::string::npos) {
      return Status::DataLoss("snapshot ordering block is unterminated");
    }
    ordering_lines.push_back(ordering_block.substr(start, end - start));
    start = end + 1;
  }
  if (!ordering_lines.empty()) {
    FJ_ASSIGN_OR_RETURN(seeded.ordering,
                        text::TokenOrdering::FromLines(ordering_lines));
  }

  seeded.index = std::make_unique<ServingIndex>(options);
  for (size_t b = 2; b < blocks.size(); ++b) {
    const std::string& block = blocks[b];
    size_t at = 0;
    uint64_t rid = 0, count = 0;
    if (!DecodeVarint(block, &at, &rid) ||
        !DecodeVarint(block, &at, &count)) {
      return Status::DataLoss("truncated snapshot record block");
    }
    TokenSetRecord record;
    record.rid = rid;
    record.tokens.reserve(static_cast<size_t>(count));
    sim::TokenId previous = 0;
    for (uint64_t i = 0; i < count; ++i) {
      uint64_t delta = 0;
      if (!DecodeVarint(block, &at, &delta)) {
        return Status::DataLoss("truncated snapshot token deltas");
      }
      previous += delta;
      record.tokens.push_back(previous);
    }
    FJ_RETURN_IF_ERROR(seeded.index->Insert(record));
  }
  return seeded;
}

}  // namespace fj::serve
