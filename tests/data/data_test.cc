// Record serialization, synthetic generators, and the paper's
// dataset-increase technique (whose two invariants — constant token
// dictionary and linear join-result growth — are verified here).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "data/generator.h"
#include "data/increase.h"
#include "data/record.h"
#include "ppjoin/naive.h"
#include "text/token_ordering.h"
#include "text/tokenizer.h"

namespace fj::data {
namespace {

TEST(RecordTest, LineRoundTrip) {
  Record r{42, "a title", "some authors", "payload with spaces"};
  auto parsed = Record::FromLine(r.ToLine());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), r);
}

TEST(RecordTest, PayloadMayContainTabs) {
  // SplitN(4) keeps everything after the third tab in the payload.
  auto parsed = Record::FromLine("7\tt\ta\tpay\tload");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->payload, "pay\tload");
}

TEST(RecordTest, RejectsMalformedLines) {
  EXPECT_FALSE(Record::FromLine("").ok());
  EXPECT_FALSE(Record::FromLine("1\tt\ta").ok());       // 3 fields
  EXPECT_FALSE(Record::FromLine("x\tt\ta\tp").ok());    // bad rid
}

TEST(RecordTest, JoinAttributeConcatenatesTitleAndAuthors) {
  Record r{1, "deep joins", "mcfoo mcbar", "p"};
  EXPECT_EQ(r.JoinAttribute(), "deep joins mcfoo mcbar");
}

TEST(RecordTest, LinesRoundTrip) {
  std::vector<Record> records{{1, "t1", "a1", "p1"}, {2, "t2", "a2", "p2"}};
  auto parsed = RecordsFromLines(RecordsToLines(records));
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed.value(), records);
}

TEST(GeneratorTest, DeterministicForSeed) {
  auto a = GenerateRecords(DblpLikeConfig(50, 9));
  auto b = GenerateRecords(DblpLikeConfig(50, 9));
  auto c = GenerateRecords(DblpLikeConfig(50, 10));
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(GeneratorTest, RidsAreSequentialFromFirstRid) {
  auto config = DblpLikeConfig(10, 1);
  config.first_rid = 100;
  auto records = GenerateRecords(config);
  ASSERT_EQ(records.size(), 10u);
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(records[i].rid, 100 + i);
  }
}

TEST(GeneratorTest, RecordLengthsMatchDatasetProfiles) {
  auto dblp = GenerateRecords(DblpLikeConfig(200, 3));
  auto citeseer = GenerateRecords(CiteseerxLikeConfig(200, 4));
  auto avg_bytes = [](const std::vector<Record>& records) {
    size_t total = 0;
    for (const auto& r : records) total += r.ToLine().size();
    return static_cast<double>(total) / records.size();
  };
  double dblp_avg = avg_bytes(dblp);
  double citeseer_avg = avg_bytes(citeseer);
  // Paper: DBLP ~259 B, CITESEERX ~1374 B (ratio ~5.3).
  EXPECT_NEAR(dblp_avg, 259, 80);
  EXPECT_NEAR(citeseer_avg, 1374, 300);
  EXPECT_GT(citeseer_avg / dblp_avg, 3.5);
}

TEST(GeneratorTest, DuplicateFractionCreatesSimilarPairs) {
  auto with_dups = DblpLikeConfig(300, 5);
  with_dups.duplicate_fraction = 0.3;
  auto no_dups = DblpLikeConfig(300, 5);
  no_dups.duplicate_fraction = 0.0;

  text::WordTokenizer tokenizer;
  auto count_pairs = [&](const std::vector<Record>& records) {
    std::map<std::string, uint64_t> counts;
    for (const auto& r : records) {
      for (const auto& t : tokenizer.Tokenize(r.JoinAttribute())) counts[t]++;
    }
    auto ordering =
        text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
    std::vector<ppjoin::TokenSetRecord> sets;
    for (const auto& r : records) {
      sets.push_back(ppjoin::TokenSetRecord{
          r.rid, ordering.ToSortedIds(tokenizer.Tokenize(r.JoinAttribute()))});
    }
    sim::SimilaritySpec spec(sim::SimilarityFunction::kJaccard, 0.8);
    return ppjoin::NaiveSelfJoin(sets, spec).size();
  };
  EXPECT_GT(count_pairs(GenerateRecords(with_dups)),
            4 * count_pairs(GenerateRecords(no_dups)));
}

TEST(GeneratorTest, VocabWordsAreDistinctAndTabFree) {
  std::set<std::string> words;
  for (size_t i = 0; i < 3000; ++i) {
    auto w = VocabWord(i);
    EXPECT_TRUE(words.insert(w).second) << "duplicate word " << w;
    EXPECT_EQ(w.find('\t'), std::string::npos);
    EXPECT_EQ(w.find(' '), std::string::npos);
  }
  EXPECT_NE(VocabWord(3), AuthorWord(3));
}

TEST(GeneratorTest, InjectOverlapCreatesCrossDatasetMatches) {
  auto r = GenerateRecords(DblpLikeConfig(100, 6));
  auto s = GenerateRecords(CiteseerxLikeConfig(100, 7));
  std::set<std::string> r_titles;
  for (const auto& rec : r) r_titles.insert(rec.title);
  size_t before = 0;
  for (const auto& rec : s) before += r_titles.count(rec.title);

  InjectOverlap(r, 0.5, /*max_edits=*/0, 8, &s);
  size_t after = 0;
  for (const auto& rec : s) after += r_titles.count(rec.title);
  EXPECT_GT(after, before + 20);
  // Payloads and RIDs untouched.
  auto fresh = GenerateRecords(CiteseerxLikeConfig(100, 7));
  for (size_t i = 0; i < s.size(); ++i) {
    EXPECT_EQ(s[i].rid, fresh[i].rid);
    EXPECT_EQ(s[i].payload, fresh[i].payload);
  }
}

// ------------------------------------------------------- dataset increase

std::set<std::string> Dictionary(const std::vector<Record>& records) {
  text::WordTokenizer tokenizer;
  std::set<std::string> dictionary;
  for (const auto& r : records) {
    for (const auto& t : tokenizer.Tokenize(r.JoinAttribute())) {
      dictionary.insert(t);
    }
  }
  return dictionary;
}

size_t CountJoinPairs(const std::vector<Record>& records) {
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  for (const auto& r : records) {
    for (const auto& t : tokenizer.Tokenize(r.JoinAttribute())) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  std::vector<ppjoin::TokenSetRecord> sets;
  for (const auto& r : records) {
    sets.push_back(ppjoin::TokenSetRecord{
        r.rid, ordering.ToSortedIds(tokenizer.Tokenize(r.JoinAttribute()))});
  }
  sim::SimilaritySpec spec(sim::SimilarityFunction::kJaccard, 0.8);
  return ppjoin::NaiveSelfJoin(sets, spec).size();
}

TEST(IncreaseTest, FactorOneIsIdentity) {
  auto base = GenerateRecords(DblpLikeConfig(30, 2));
  auto increased = IncreaseDataset(base, 1);
  ASSERT_TRUE(increased.ok());
  EXPECT_EQ(increased.value(), base);
}

TEST(IncreaseTest, FactorZeroRejected) {
  EXPECT_FALSE(IncreaseDataset({}, 0).ok());
}

TEST(IncreaseTest, SizeGrowsByFactorWithUniqueRids) {
  auto base = GenerateRecords(DblpLikeConfig(40, 3));
  auto increased = IncreaseDataset(base, 4);
  ASSERT_TRUE(increased.ok());
  EXPECT_EQ(increased->size(), 160u);
  std::set<uint64_t> rids;
  for (const auto& r : *increased) {
    EXPECT_TRUE(rids.insert(r.rid).second) << "duplicate rid " << r.rid;
  }
}

TEST(IncreaseTest, TokenDictionaryStaysConstant) {
  // The paper's first invariant: "maintained a roughly constant token
  // dictionary" — exactly constant here because the shift wraps around.
  auto base = GenerateRecords(DblpLikeConfig(120, 4));
  auto increased = IncreaseDataset(base, 5);
  ASSERT_TRUE(increased.ok());
  EXPECT_EQ(Dictionary(*increased), Dictionary(base));
}

TEST(IncreaseTest, JoinResultGrowsLinearly) {
  // The paper's second invariant: result cardinality grows linearly with
  // the increase factor (each shifted copy reproduces the base pairs).
  auto config = DblpLikeConfig(150, 5);
  auto base = GenerateRecords(config);
  size_t base_pairs = CountJoinPairs(base);
  ASSERT_GT(base_pairs, 5u);
  for (size_t factor : {2u, 3u, 4u}) {
    auto increased = IncreaseDataset(base, factor);
    ASSERT_TRUE(increased.ok());
    size_t pairs = CountJoinPairs(*increased);
    EXPECT_GE(pairs, factor * base_pairs);         // every copy contributes
    EXPECT_LE(pairs, factor * base_pairs * 3 / 2)  // few accidental extras
        << "factor " << factor;
  }
}

size_t CountRSPairs(const std::vector<Record>& r,
                    const std::vector<Record>& s) {
  text::WordTokenizer tokenizer;
  std::map<std::string, uint64_t> counts;
  for (const auto& rec : r) {
    for (const auto& t : tokenizer.Tokenize(rec.JoinAttribute())) counts[t]++;
  }
  auto ordering =
      text::TokenOrdering::FromCounts({counts.begin(), counts.end()});
  auto to_sets = [&](const std::vector<Record>& records) {
    std::vector<ppjoin::TokenSetRecord> sets;
    for (const auto& rec : records) {
      sets.push_back(ppjoin::TokenSetRecord{
          rec.rid,
          ordering.ToSortedIds(tokenizer.Tokenize(rec.JoinAttribute()))});
    }
    return sets;
  };
  sim::SimilaritySpec spec(sim::SimilarityFunction::kJaccard, 0.8);
  return ppjoin::NaiveRSJoin(to_sets(r), to_sets(s), spec).size();
}

TEST(IncreaseTest, JointIncreasePreservesCrossDatasetMatches) {
  // Increasing R and S with one shared token order must grow the R-S join
  // result linearly; independent orders would scramble copy-k matches.
  auto r = GenerateRecords(DblpLikeConfig(120, 7));
  auto s = GenerateRecords(CiteseerxLikeConfig(100, 8));
  InjectOverlap(r, 0.4, 1, 9, &s);
  size_t base_pairs = CountRSPairs(r, s);
  ASSERT_GT(base_pairs, 10u);

  for (size_t factor : {2u, 3u}) {
    auto r_copy = r;
    auto s_copy = s;
    ASSERT_TRUE(data::IncreaseDatasetsTogether(&r_copy, &s_copy, factor).ok());
    EXPECT_EQ(r_copy.size(), r.size() * factor);
    EXPECT_EQ(s_copy.size(), s.size() * factor);
    size_t pairs = CountRSPairs(r_copy, s_copy);
    EXPECT_GE(pairs, factor * base_pairs);
    EXPECT_LE(pairs, factor * base_pairs * 3 / 2) << "factor " << factor;
  }

  // Contrast: independent increases lose the cross-copy matches.
  auto r_indep = IncreaseDataset(r, 3);
  auto s_indep = IncreaseDataset(s, 3);
  ASSERT_TRUE(r_indep.ok());
  ASSERT_TRUE(s_indep.ok());
  EXPECT_LT(CountRSPairs(*r_indep, *s_indep), 3 * base_pairs);
}

TEST(IncreaseTest, JointIncreaseFactorValidation) {
  std::vector<Record> r{{1, "a b", "c", "p"}};
  std::vector<Record> s{{1, "a d", "c", "p"}};
  EXPECT_FALSE(data::IncreaseDatasetsTogether(&r, &s, 0).ok());
  EXPECT_TRUE(data::IncreaseDatasetsTogether(&r, &s, 1).ok());
  EXPECT_EQ(r.size(), 1u);  // factor 1 is a no-op
}

TEST(IncreaseTest, PayloadsPreservedInCopies) {
  auto base = GenerateRecords(DblpLikeConfig(20, 6));
  auto increased = IncreaseDataset(base, 2);
  ASSERT_TRUE(increased.ok());
  for (size_t i = 0; i < base.size(); ++i) {
    EXPECT_EQ((*increased)[base.size() + i].payload, base[i].payload);
    EXPECT_NE((*increased)[base.size() + i].title, base[i].title);
  }
}

}  // namespace
}  // namespace fj::data
