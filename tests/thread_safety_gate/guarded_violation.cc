// Thread-safety gate SEEDED VIOLATION: an unguarded write to a
// FJ_GUARDED_BY field. Must FAIL to compile under clang++
// -Wthread-safety -Werror; if this file ever compiles there, the
// analysis stopped biting and tests/CMakeLists.txt fails the configure.
// Compiled via try_compile only; never linked into the engine.
#include "common/sync.h"

namespace {

class Account {
 public:
  // No lock taken: writing balance_ here must be a compile error
  // (clang: "writing variable 'balance_' requires holding mutex 'mu_'").
  void Deposit(int amount) { balance_ += amount; }

 private:
  fj::Mutex mu_{"gate.account"};
  int balance_ FJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

void ThreadSafetyGateViolation() {
  Account account;
  account.Deposit(1);
}
