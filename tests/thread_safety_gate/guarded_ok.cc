// Thread-safety gate CONTROL: a guarded field accessed under its lock.
// Must COMPILE under clang++ -Wthread-safety -Werror — proves the gate
// isn't rejecting everything (see tests/CMakeLists.txt). Compiled via
// try_compile only; never linked into the engine.
#include "common/sync.h"

namespace {

class Account {
 public:
  void Deposit(int amount) {
    fj::MutexLock lock(&mu_);
    balance_ += amount;
  }

  int balance() {
    fj::MutexLock lock(&mu_);
    return balance_;
  }

 private:
  fj::Mutex mu_{"gate.account"};
  int balance_ FJ_GUARDED_BY(mu_) = 0;
};

}  // namespace

void ThreadSafetyGateControl() {
  Account account;
  account.Deposit(1);
  (void)account.balance();
}
