// ByteSizeOf / KeyHashOf trait machinery: built-in types, composites, and
// ADL extension points (the hooks custom keys like Stage2Key use).
#include <gtest/gtest.h>

#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "fuzzyjoin/projection.h"
#include "fuzzyjoin/stage2.h"
#include "mapreduce/byte_size.h"
#include "mapreduce/key_traits.h"

namespace fj::mr {
namespace {

TEST(ByteSizeTest, Strings) {
  EXPECT_EQ(ByteSizeOf(std::string("")), 4u);
  EXPECT_EQ(ByteSizeOf(std::string("abcd")), 8u);
}

TEST(ByteSizeTest, TrivialTypes) {
  EXPECT_EQ(ByteSizeOf(uint64_t{7}), 8u);
  EXPECT_EQ(ByteSizeOf(uint8_t{7}), 1u);
  EXPECT_EQ(ByteSizeOf(3.5), 8u);
}

TEST(ByteSizeTest, Composites) {
  EXPECT_EQ(ByteSizeOf(std::pair<uint64_t, std::string>(1, "ab")), 8u + 6u);
  EXPECT_EQ(ByteSizeOf(std::tuple<uint8_t, uint8_t, uint64_t>(1, 2, 3)), 10u);
  std::vector<uint64_t> v{1, 2, 3};
  EXPECT_EQ(ByteSizeOf(v), 4u + 24u);
}

TEST(ByteSizeTest, AdlExtensionPoints) {
  join::Stage2Key key{1, 2, 3, 4};
  EXPECT_EQ(ByteSizeOf(key), 10u);
  ppjoin::TokenSetRecord projection{42, {1, 2, 3}};
  EXPECT_EQ(ByteSizeOf(projection), 8u + 12u);
  // Composites of ADL types work too.
  EXPECT_EQ(ByteSizeOf(std::pair<join::Stage2Key, ppjoin::TokenSetRecord>(
                key, projection)),
            10u + 20u);
}

TEST(KeyHashTest, StableAndTypeAware) {
  EXPECT_EQ(KeyHashOf(std::string("x")), KeyHashOf(std::string("x")));
  EXPECT_NE(KeyHashOf(std::string("x")), KeyHashOf(std::string("y")));
  EXPECT_EQ(KeyHashOf(uint64_t{5}), KeyHashOf(uint64_t{5}));
  EXPECT_NE(KeyHashOf(uint64_t{5}), KeyHashOf(uint64_t{6}));
}

TEST(KeyHashTest, PairsAndTuples) {
  using P = std::pair<std::string, uint64_t>;
  EXPECT_EQ(KeyHashOf(P("a", 1)), KeyHashOf(P("a", 1)));
  EXPECT_NE(KeyHashOf(P("a", 1)), KeyHashOf(P("a", 2)));
  using T = std::tuple<uint32_t, uint32_t>;
  EXPECT_NE(KeyHashOf(T(1, 2)), KeyHashOf(T(2, 1)));
}

TEST(KeyHashTest, Stage2KeyHashesGroupOnly) {
  // The stage-2 partitioning contract: keys differing only in the
  // secondary-sort fields land on the same reducer.
  join::Stage2Key a{7, 1, 2, 3};
  join::Stage2Key b{7, 9, 9, 9};
  join::Stage2Key c{8, 1, 2, 3};
  EXPECT_EQ(KeyHashOf(a), KeyHashOf(b));
  EXPECT_NE(KeyHashOf(a), KeyHashOf(c));
}

TEST(KeyHashTest, DistributesAcrossPartitions) {
  // Sanity: the default partitioner spreads sequential integer keys.
  std::map<size_t, int> buckets;
  const size_t partitions = 8;
  for (uint64_t k = 0; k < 8000; ++k) {
    buckets[KeyHashOf(k) % partitions]++;
  }
  ASSERT_EQ(buckets.size(), partitions);
  for (const auto& [bucket, count] : buckets) {
    EXPECT_GT(count, 700) << "bucket " << bucket << " underfilled";
    EXPECT_LT(count, 1300) << "bucket " << bucket << " overfilled";
  }
}

TEST(Stage2KeyTest, OrderingIsLexicographic) {
  using join::Stage2Key;
  EXPECT_LT((Stage2Key{1, 9, 9, 9}), (Stage2Key{2, 0, 0, 0}));
  EXPECT_LT((Stage2Key{1, 1, 9, 9}), (Stage2Key{1, 2, 0, 0}));
  EXPECT_LT((Stage2Key{1, 1, 1, 9}), (Stage2Key{1, 1, 2, 0}));
  EXPECT_LT((Stage2Key{1, 1, 1, 1}), (Stage2Key{1, 1, 1, 2}));
  EXPECT_EQ((Stage2Key{1, 2, 3, 4}), (Stage2Key{1, 2, 3, 4}));
}

}  // namespace
}  // namespace fj::mr
