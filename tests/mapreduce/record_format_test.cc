// The binary record format, bottom up: varint primitives, the typed
// content codec, the fjlz block codec, run-block framing, and the wire
// records stored in DFS stage files — plus an end-to-end job proving the
// binary path produces byte-identical output to text. The decode-side
// tests are deliberately hostile: every truncation prefix and random
// byte-flip must come back as `false`/Status, never UB (the job layer
// relies on that to turn corrupted shuffle blocks into failed attempts).
#include "mapreduce/record_format.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "common/string_util.h"
#include "common/varint.h"
#include "fuzzyjoin/projection.h"
#include "mapreduce/dfs.h"
#include "mapreduce/job.h"

namespace fj::mr {
namespace {

// --- layer 0: varints ---------------------------------------------------

TEST(VarintTest, RoundTripsEdgeValues) {
  const uint64_t values[] = {0,
                             1,
                             127,
                             128,
                             300,
                             16383,
                             16384,
                             (1ull << 32) - 1,
                             1ull << 32,
                             1ull << 63,
                             std::numeric_limits<uint64_t>::max()};
  for (uint64_t v : values) {
    std::string buf;
    AppendVarint(&buf, v);
    EXPECT_LE(buf.size(), kMaxVarintBytes);
    EXPECT_EQ(buf.size(), VarintLen(v));
    size_t pos = 0;
    uint64_t decoded = 0;
    ASSERT_TRUE(DecodeVarint(buf, &pos, &decoded)) << v;
    EXPECT_EQ(decoded, v);
    EXPECT_EQ(pos, buf.size());
  }
}

TEST(VarintTest, FuzzRoundTrip) {
  std::mt19937_64 rng(20260808);
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 2000; ++i) {
    // Bias toward small values (shift by a random bit width) so every
    // encoded length 1..10 is exercised.
    uint64_t v = rng() >> (rng() % 64);
    values.push_back(v);
    AppendVarint(&buf, v);
  }
  size_t pos = 0;
  for (uint64_t expected : values) {
    uint64_t decoded = 0;
    ASSERT_TRUE(DecodeVarint(buf, &pos, &decoded));
    EXPECT_EQ(decoded, expected);
  }
  EXPECT_EQ(pos, buf.size());
}

TEST(VarintTest, EveryTruncationPrefixFailsWithPosUntouched) {
  std::string buf;
  AppendVarint(&buf, std::numeric_limits<uint64_t>::max());  // 10 bytes
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view prefix(buf.data(), cut);
    size_t pos = 0;
    uint64_t v = 0;
    EXPECT_FALSE(DecodeVarint(prefix, &pos, &v)) << cut;
    EXPECT_EQ(pos, 0u) << "pos must be untouched on failure";
  }
}

TEST(VarintTest, OverlongEncodingRejected) {
  // 11 continuation bytes can never be a valid varint.
  std::string buf(11, '\x80');
  size_t pos = 0;
  uint64_t v = 0;
  EXPECT_FALSE(DecodeVarint(buf, &pos, &v));
}

TEST(VarintTest, ZigZagRoundTripsSignedEdges) {
  const int64_t values[] = {0,
                            -1,
                            1,
                            -64,
                            63,
                            -65,
                            std::numeric_limits<int64_t>::min(),
                            std::numeric_limits<int64_t>::max()};
  for (int64_t v : values) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v);
  }
  // Small magnitudes map to small codes (the point of zigzag).
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
}

// --- layer 1: typed content codec ---------------------------------------

template <typename T>
void ExpectContentRoundTrip(const T& value) {
  std::string buf = "prefix";  // encoding appends, decoding starts mid-buffer
  EncodeContent(value, &buf);
  size_t pos = 6;
  T decoded{};
  ASSERT_TRUE(DecodeContent(buf, &pos, &decoded));
  EXPECT_EQ(decoded, value);
  EXPECT_EQ(pos, buf.size());
}

TEST(ContentCodecTest, RoundTripsScalarsStringsAndComposites) {
  ExpectContentRoundTrip(std::string());
  ExpectContentRoundTrip(std::string("hello\tworld"));
  ExpectContentRoundTrip(std::string("embedded\0nul", 12));
  ExpectContentRoundTrip(std::string(100000, 'x'));  // max-length record
  ExpectContentRoundTrip(uint64_t{0});
  ExpectContentRoundTrip(std::numeric_limits<uint64_t>::max());
  ExpectContentRoundTrip(int64_t{-123456789});
  ExpectContentRoundTrip(uint8_t{7});
  ExpectContentRoundTrip(true);
  ExpectContentRoundTrip(false);
  ExpectContentRoundTrip(3.14159265358979);
  ExpectContentRoundTrip(-0.0);
  ExpectContentRoundTrip(std::make_pair(std::string("k"), uint64_t{9}));
  ExpectContentRoundTrip(
      std::make_tuple(uint64_t{1}, std::string("two"), 3.0));
  ExpectContentRoundTrip(std::vector<uint64_t>{});
  ExpectContentRoundTrip(std::vector<uint64_t>{1, 127, 128, 1ull << 40});
  ExpectContentRoundTrip(std::vector<std::string>{"", "a", "bb"});
}

TEST(ContentCodecTest, DoubleRoundTripIsExactBits) {
  // 1/3 has no short decimal rendering; the fixed64 path must preserve
  // the exact bit pattern, not a formatted approximation.
  double v = 1.0 / 3.0;
  std::string buf;
  EncodeContent(v, &buf);
  ASSERT_EQ(buf.size(), 8u);
  size_t pos = 0;
  double decoded = 0;
  ASSERT_TRUE(DecodeContent(buf, &pos, &decoded));
  EXPECT_EQ(decoded, v);  // bitwise, not approximate
}

TEST(ContentCodecTest, NarrowIntegerRangeChecked) {
  std::string buf;
  EncodeContent(uint64_t{300}, &buf);
  size_t pos = 0;
  uint8_t narrow = 0;
  EXPECT_FALSE(DecodeContent(buf, &pos, &narrow));
  EXPECT_EQ(pos, 0u);
}

TEST(ContentCodecTest, EveryTruncationPrefixFails) {
  std::string buf;
  EncodeContent(std::make_tuple(uint64_t{12345}, std::string("payload"),
                                0.25),
                &buf);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    std::string_view prefix(buf.data(), cut);
    size_t pos = 0;
    std::tuple<uint64_t, std::string, double> out;
    EXPECT_FALSE(DecodeContent(prefix, &pos, &out)) << cut;
  }
}

TEST(ContentCodecTest, VectorCountBeyondBufferRejectedBeforeReserve) {
  // A corrupted element count must be rejected by the sanity bound, not
  // fed to reserve() (which could attempt a huge allocation).
  std::string buf;
  AppendVarint(&buf, std::numeric_limits<uint64_t>::max());
  size_t pos = 0;
  std::vector<uint64_t> out;
  EXPECT_FALSE(DecodeContent(buf, &pos, &out));
}

TEST(ContentCodecTest, TokenSetRecordDeltaVarintRoundTrip) {
  using fj::join::TokenSetRecord;
  std::mt19937_64 rng(42);
  for (int iter = 0; iter < 200; ++iter) {
    TokenSetRecord record;
    record.rid = rng();
    size_t n = rng() % 50;  // includes empty token sets
    uint64_t token = 0;
    for (size_t i = 0; i < n; ++i) {
      token += rng() % 1000;  // ascending, as stage 2 produces them
      record.tokens.push_back(token);
    }
    std::string buf;
    EncodeContent(record, &buf);
    // Ascending token ids delta-encode far below the text estimate.
    if (n > 0) {
      EXPECT_LT(buf.size(), 10 + 10 * n);
    }
    size_t pos = 0;
    TokenSetRecord decoded;
    ASSERT_TRUE(DecodeContent(buf, &pos, &decoded));
    EXPECT_EQ(decoded.rid, record.rid);
    EXPECT_EQ(decoded.tokens, record.tokens);
    EXPECT_EQ(pos, buf.size());
    for (size_t cut = 0; cut + 1 < buf.size(); ++cut) {
      size_t p = 0;
      TokenSetRecord t;
      EXPECT_FALSE(DecodeContent(std::string_view(buf.data(), cut), &p, &t));
    }
  }
}

// --- layer 2: fjlz and run blocks ----------------------------------------

std::string CompressibleBytes(size_t n) {
  std::string s;
  s.reserve(n);
  while (s.size() < n) s += "the quick brown fox jumps over the lazy dog ";
  s.resize(n);
  return s;
}

std::string RandomBytes(size_t n, uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::string s(n, '\0');
  for (char& c : s) c = static_cast<char>(rng() & 0xff);
  return s;
}

TEST(FjlzTest, RoundTripsEmptyCompressibleAndRandom) {
  for (const std::string& raw :
       {std::string(), CompressibleBytes(10000), RandomBytes(5000, 1),
        std::string(4096, 'A'),  // pure RLE
        RandomBytes(3, 2)}) {    // below min-match length
    std::string compressed;
    FjlzCompress(raw, &compressed);
    std::string decompressed;
    auto status = FjlzDecompress(compressed, raw.size(), &decompressed);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decompressed, raw);
  }
}

TEST(FjlzTest, CompressesRepetitiveData) {
  std::string raw = CompressibleBytes(16384);
  std::string compressed;
  FjlzCompress(raw, &compressed);
  EXPECT_LT(compressed.size() * 2, raw.size());
}

TEST(FjlzTest, TruncationAndBitFlipsNeverUB) {
  std::string raw = CompressibleBytes(2000);
  std::string compressed;
  FjlzCompress(raw, &compressed);
  std::string out;
  for (size_t cut = 0; cut < compressed.size(); ++cut) {
    // Either a clean error or (for a cut that lands on a token boundary)
    // a short output — both fine; UB/overread is what the sanitizer
    // builds are watching for.
    (void)FjlzDecompress(std::string_view(compressed.data(), cut), raw.size(),
                         &out);
  }
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    std::string mutated = compressed;
    mutated[rng() % mutated.size()] ^= static_cast<char>(1 + rng() % 255);
    if (FjlzDecompress(mutated, raw.size(), &out).ok()) {
      EXPECT_EQ(out.size(), raw.size());
    }
  }
}

TEST(RunBlockTest, RoundTripsThroughBothCodecs) {
  using Pair = std::pair<std::string, uint64_t>;
  std::vector<Pair> pairs;
  for (int i = 0; i < 500; ++i) {
    pairs.emplace_back("token" + std::to_string(i % 37), i);
  }
  for (BlockCodec codec : {BlockCodec::kNone, BlockCodec::kFjlz}) {
    std::string encoded;
    uint64_t logical = 0;
    EncodeRunBlock(codec, pairs, &encoded, &logical);
    EXPECT_GT(logical, 0u);
    if (codec == BlockCodec::kFjlz) {
      EXPECT_LT(encoded.size(), logical);
    }
    std::vector<Pair> decoded;
    auto status = DecodeRunBlock(encoded, &decoded);
    ASSERT_TRUE(status.ok()) << status.ToString();
    EXPECT_EQ(decoded, pairs);
  }
}

TEST(RunBlockTest, EmptyRunRoundTrips) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  std::string encoded;
  uint64_t logical = 0;
  EncodeRunBlock(BlockCodec::kFjlz, pairs, &encoded, &logical);
  EXPECT_EQ(logical, 0u);
  std::vector<std::pair<uint64_t, uint64_t>> decoded{{1, 2}};
  ASSERT_TRUE(DecodeRunBlock(encoded, &decoded).ok());
  EXPECT_TRUE(decoded.empty());
}

TEST(RunBlockTest, EveryTruncationPrefixIsStatusNotUB) {
  std::vector<std::pair<std::string, uint64_t>> pairs{
      {"alpha", 1}, {"beta", 2}, {"gamma", 3}};
  for (BlockCodec codec : {BlockCodec::kNone, BlockCodec::kFjlz}) {
    std::string encoded;
    uint64_t logical = 0;
    EncodeRunBlock(codec, pairs, &encoded, &logical);
    for (size_t cut = 0; cut < encoded.size(); ++cut) {
      std::vector<std::pair<std::string, uint64_t>> decoded;
      EXPECT_FALSE(
          DecodeRunBlock(std::string_view(encoded.data(), cut), &decoded)
              .ok())
          << "codec=" << BlockCodecName(codec) << " cut=" << cut;
    }
  }
}

TEST(RunBlockTest, UnknownCodecByteRejected) {
  std::vector<std::pair<uint64_t, uint64_t>> pairs{{1, 2}};
  std::string encoded;
  uint64_t logical = 0;
  EncodeRunBlock(BlockCodec::kNone, pairs, &encoded, &logical);
  encoded[0] = '\x7e';
  std::vector<std::pair<uint64_t, uint64_t>> decoded;
  EXPECT_FALSE(DecodeRunBlock(encoded, &decoded).ok());
}

TEST(RunBlockTest, IncompressiblePayloadFallsBackToStored) {
  std::vector<std::pair<std::string, uint64_t>> pairs;
  std::mt19937_64 rng(99);
  for (int i = 0; i < 50; ++i) pairs.emplace_back(RandomBytes(64, rng()), i);
  std::string encoded;
  uint64_t logical = 0;
  EncodeRunBlock(BlockCodec::kFjlz, pairs, &encoded, &logical);
  // Framing overhead only — incompressible data must not blow up.
  EXPECT_LE(encoded.size(), logical + 2 * kMaxVarintBytes + 1);
  std::vector<std::pair<std::string, uint64_t>> decoded;
  ASSERT_TRUE(DecodeRunBlock(encoded, &decoded).ok());
  EXPECT_EQ(decoded, pairs);
}

// --- layer 3: wire records -----------------------------------------------

TEST(WireRecordTest, TokenCountRoundTripAndSniffing) {
  for (const auto& [token, count] :
       std::vector<std::pair<std::string, uint64_t>>{
           {"", 0},
           {"hello", 42},
           {"tab\tand\nnewline", 7},
           {std::string(5000, 'q'), std::numeric_limits<uint64_t>::max()}}) {
    std::string record;
    FormatTokenCountRecord(token, count, &record);
    EXPECT_TRUE(IsBinaryRecord(record));
    std::string token_out;
    uint64_t count_out = 0;
    ASSERT_TRUE(ParseTokenCountRecord(record, &token_out, &count_out));
    EXPECT_EQ(token_out, token);
    EXPECT_EQ(count_out, count);
    for (size_t cut = 0; cut < record.size(); ++cut) {
      EXPECT_FALSE(ParseTokenCountRecord(
          std::string_view(record.data(), cut), &token_out, &count_out));
    }
  }
  EXPECT_FALSE(IsBinaryRecord(""));
  EXPECT_FALSE(IsBinaryRecord("plain\ttext\tline"));
}

TEST(WireRecordTest, RidPairCarriesExactDoubleBits) {
  double similarity = 2.0 / 3.0;
  std::string record;
  FormatRidPairRecord(81, 1024, similarity, &record);
  EXPECT_TRUE(IsBinaryRecord(record));
  uint64_t rid1 = 0, rid2 = 0;
  double sim_out = 0;
  ASSERT_TRUE(ParseRidPairRecord(record, &rid1, &rid2, &sim_out));
  EXPECT_EQ(rid1, 81u);
  EXPECT_EQ(rid2, 1024u);
  EXPECT_EQ(sim_out, similarity);  // exact bits, not %.6f precision
  // A token-count record must not parse as a rid pair (kind byte).
  std::string other;
  FormatTokenCountRecord("x", 1, &other);
  EXPECT_FALSE(ParseRidPairRecord(other, &rid1, &rid2, &sim_out));
  EXPECT_FALSE(ParseTokenCountRecord(record, &other, &rid1));
}

TEST(RecordFormatTest, NamesAndParsersAgree) {
  RecordFormat format = RecordFormat::kText;
  EXPECT_TRUE(ParseRecordFormat("binary", &format));
  EXPECT_EQ(format, RecordFormat::kBinary);
  EXPECT_TRUE(ParseRecordFormat("text", &format));
  EXPECT_EQ(format, RecordFormat::kText);
  EXPECT_FALSE(ParseRecordFormat("avro", &format));
  BlockCodec codec = BlockCodec::kNone;
  EXPECT_TRUE(ParseBlockCodec("fjlz", &codec));
  EXPECT_EQ(codec, BlockCodec::kFjlz);
  EXPECT_TRUE(ParseBlockCodec("none", &codec));
  EXPECT_FALSE(ParseBlockCodec("zstd", &codec));
  EXPECT_STREQ(RecordFormatName(RecordFormat::kBinary), "binary");
  EXPECT_STREQ(BlockCodecName(BlockCodec::kFjlz), "fjlz");
}

// --- end to end: a binary job matches the text job byte for byte ---------

using K = std::string;
using V = uint64_t;

JobSpec<K, V> WordCountSpec(const std::string& in, const std::string& out) {
  JobSpec<K, V> spec;
  spec.name = "format-wordcount";
  spec.input_files = {in};
  spec.output_file = out;
  spec.num_map_tasks = 4;
  spec.num_reduce_tasks = 3;
  spec.sort_buffer_bytes = 256;  // force real spills through the codec
  spec.mapper_factory = [] {
    return std::make_unique<LambdaMapper<K, V>>(
        [](const InputRecord& record, Emitter<K, V>* out, TaskContext*) {
          for (const auto& w : Split(*record.line, ' ')) {
            if (!w.empty()) out->Emit(w, 1);
          }
        });
  };
  spec.reducer_factory = [] {
    return std::make_unique<LambdaReducer<K, V>>(
        [](const K& key, std::span<const std::pair<K, V>> group,
           OutputEmitter* out, TaskContext*) {
          uint64_t total = 0;
          for (const auto& [k, v] : group) total += v;
          out->Emit(key + "\t" + std::to_string(total));
        });
  };
  return spec;
}

TEST(RecordFormatTest, BinaryJobOutputIsByteIdenticalToText) {
  Dfs dfs;
  std::vector<std::string> lines;
  for (int i = 0; i < 300; ++i) {
    lines.push_back("w" + std::to_string(i % 31) + " w" +
                    std::to_string(i % 11) + " w" + std::to_string(i % 5));
  }
  ASSERT_TRUE(dfs.WriteFile("in", std::move(lines)).ok());

  auto RunWith = [&](const std::string& out, RecordFormat format,
                     BlockCodec codec) {
    auto spec = WordCountSpec("in", out);
    spec.record_format = format;
    spec.block_codec = codec;
    Job<K, V> job(&dfs, std::move(spec));
    auto metrics = job.Run();
    EXPECT_TRUE(metrics.ok()) << metrics.status().ToString();
    return *metrics;
  };

  auto text = RunWith("out_text", RecordFormat::kText, BlockCodec::kNone);
  auto binary = RunWith("out_bin", RecordFormat::kBinary, BlockCodec::kNone);
  auto packed = RunWith("out_fjlz", RecordFormat::kBinary, BlockCodec::kFjlz);

  auto text_out = dfs.ReadFile("out_text");
  auto bin_out = dfs.ReadFile("out_bin");
  auto packed_out = dfs.ReadFile("out_fjlz");
  ASSERT_TRUE(text_out.ok() && bin_out.ok() && packed_out.ok());
  EXPECT_EQ(*text_out.value(), *bin_out.value());
  EXPECT_EQ(*text_out.value(), *packed_out.value());

  // Text meters estimates and never exercises the codec.
  EXPECT_EQ(text.codec_logical_bytes, 0u);
  EXPECT_EQ(text.codec_encoded_bytes, 0u);
  // Binary meters real encoded bytes across spill + reduce boundaries.
  EXPECT_GT(binary.codec_logical_bytes, 0u);
  EXPECT_GT(binary.codec_encoded_bytes, 0u);
  EXPECT_GT(binary.spill_count, 0u);
  // fjlz must shrink this highly repetitive shuffle.
  EXPECT_LT(packed.codec_encoded_bytes, packed.codec_logical_bytes);
  EXPECT_LT(packed.spilled_bytes, binary.spilled_bytes);
}

TEST(RecordFormatTest, CorruptedEncodedBlockIsDetectedAndRetried) {
  Dfs dfs;
  std::vector<std::string> lines;
  for (int i = 0; i < 100; ++i) {
    lines.push_back("a" + std::to_string(i % 13) + " b" +
                    std::to_string(i % 7));
  }
  ASSERT_TRUE(dfs.WriteFile("in", std::move(lines)).ok());

  auto spec = WordCountSpec("in", "out");
  spec.record_format = RecordFormat::kBinary;
  spec.block_codec = BlockCodec::kFjlz;
  spec.verify_integrity = true;
  spec.max_task_attempts = 4;
  auto plan = std::make_shared<FaultPlan>();
  plan->seed = 5;
  plan->corrupt_probability = 1.0;  // flip a byte in every eligible attempt
  plan->corrupt_failing_attempts = 2;
  spec.fault_plan = plan;
  Job<K, V> job(&dfs, std::move(spec));
  auto metrics = job.Run();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  // The flips hit *encoded* (compressed) block bytes; the checksum over
  // those bytes must still catch every one.
  EXPECT_GT(metrics->corruption_detected, 0u);

  Dfs clean_dfs;
  std::vector<std::string> clean_lines;
  for (int i = 0; i < 100; ++i) {
    clean_lines.push_back("a" + std::to_string(i % 13) + " b" +
                          std::to_string(i % 7));
  }
  ASSERT_TRUE(clean_dfs.WriteFile("in", std::move(clean_lines)).ok());
  auto clean_spec = WordCountSpec("in", "out");
  clean_spec.record_format = RecordFormat::kBinary;
  clean_spec.block_codec = BlockCodec::kFjlz;
  Job<K, V> clean_job(&clean_dfs, std::move(clean_spec));
  ASSERT_TRUE(clean_job.Run().ok());
  auto faulted = dfs.ReadFile("out");
  auto clean = clean_dfs.ReadFile("out");
  ASSERT_TRUE(faulted.ok() && clean.ok());
  EXPECT_EQ(*faulted.value(), *clean.value());
}

// --- DFS binary block files ----------------------------------------------

TEST(RecordFormatTest, DfsBinaryBlocksVerifyAndCharge) {
  Dfs dfs;
  std::vector<std::string> blocks{std::string("\xfb\x01raw", 5),
                                  std::string(), RandomBytes(256, 3)};
  ASSERT_TRUE(dfs.WriteFileBlocks("bin", blocks).ok());
  EXPECT_TRUE(dfs.IsBinary("bin"));
  ASSERT_TRUE(dfs.WriteFile("txt", {"a line"}).ok());
  EXPECT_FALSE(dfs.IsBinary("txt"));

  auto stored = dfs.ReadFile("bin");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(*stored.value(), blocks);

  // Binary files charge varint length prefixes, not newline terminators.
  uint64_t expected = 0;
  for (const auto& b : blocks) expected += VarintLen(b.size()) + b.size();
  auto bytes = dfs.FileBytes("bin");
  ASSERT_TRUE(bytes.ok());
  EXPECT_EQ(*bytes, expected);

  auto verified = dfs.VerifyFile("bin");
  ASSERT_TRUE(verified.ok()) << verified.status().ToString();
  EXPECT_EQ(*verified, expected);
  ASSERT_TRUE(dfs.CorruptByteForTest("bin", 11).ok());
  EXPECT_FALSE(dfs.VerifyFile("bin").ok());
}

}  // namespace
}  // namespace fj::mr
