// In-memory DFS: file lifecycle, stable line storage, split computation.
#include "mapreduce/dfs.h"

#include <gtest/gtest.h>

namespace fj::mr {
namespace {

TEST(DfsTest, WriteReadDelete) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"a", "b"}).ok());
  EXPECT_TRUE(dfs.Exists("f"));
  auto lines = dfs.ReadFile("f");
  ASSERT_TRUE(lines.ok());
  EXPECT_EQ(*lines.value(), (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(dfs.FileLines("f").value(), 2u);
  EXPECT_EQ(dfs.FileBytes("f").value(), 4u);  // "a\n" + "b\n"
  ASSERT_TRUE(dfs.DeleteFile("f").ok());
  EXPECT_FALSE(dfs.Exists("f"));
  EXPECT_EQ(dfs.ReadFile("f").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(dfs.DeleteFile("f").code(), StatusCode::kNotFound);
}

TEST(DfsTest, WriteRefusesOverwrite) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"a"}).ok());
  EXPECT_EQ(dfs.WriteFile("f", {"b"}).code(), StatusCode::kAlreadyExists);
}

TEST(DfsTest, AppendCreatesAndExtends) {
  Dfs dfs;
  ASSERT_TRUE(dfs.AppendToFile("f", {"1"}).ok());
  ASSERT_TRUE(dfs.AppendToFile("f", {"2", "3"}).ok());
  EXPECT_EQ(*dfs.ReadFile("f").value(),
            (std::vector<std::string>{"1", "2", "3"}));
}

TEST(DfsTest, LinePointersStableAcrossOtherWrites) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("f", {"x"}).ok());
  const std::vector<std::string>* before = dfs.ReadFile("f").value();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(dfs.WriteFile("g" + std::to_string(i), {"y"}).ok());
  }
  EXPECT_EQ(before, dfs.ReadFile("f").value());
  EXPECT_EQ((*before)[0], "x");
}

TEST(DfsTest, ListFilesSorted) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("b", {}).ok());
  ASSERT_TRUE(dfs.WriteFile("a", {}).ok());
  EXPECT_EQ(dfs.ListFiles(), (std::vector<std::string>{"a", "b"}));
  dfs.Clear();
  EXPECT_TRUE(dfs.ListFiles().empty());
}

TEST(DfsTest, SplitsCoverEveryLineExactlyOnce) {
  Dfs dfs;
  std::vector<std::string> lines(103, "l");
  ASSERT_TRUE(dfs.WriteFile("f", lines).ok());
  for (size_t target : {0u, 1u, 4u, 7u, 103u, 200u}) {
    auto splits = dfs.MakeSplits({"f"}, target);
    ASSERT_TRUE(splits.ok()) << target;
    size_t covered = 0;
    size_t expect_begin = 0;
    for (const auto& s : *splits) {
      EXPECT_EQ(s.begin_line, expect_begin);
      EXPECT_GT(s.end_line, s.begin_line);  // no empty splits
      covered += s.end_line - s.begin_line;
      expect_begin = s.end_line;
    }
    EXPECT_EQ(covered, 103u) << "target " << target;
  }
}

TEST(DfsTest, SplitsProportionalAcrossFiles) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("big", std::vector<std::string>(90, "x")).ok());
  ASSERT_TRUE(dfs.WriteFile("small", std::vector<std::string>(10, "y")).ok());
  auto splits = dfs.MakeSplits({"big", "small"}, 10);
  ASSERT_TRUE(splits.ok());
  size_t big_splits = 0, small_splits = 0;
  for (const auto& s : *splits) {
    EXPECT_EQ(s.file_name, s.file_index == 0 ? "big" : "small");
    (s.file_index == 0 ? big_splits : small_splits)++;
  }
  EXPECT_GT(big_splits, small_splits);
  EXPECT_GE(small_splits, 1u);  // non-empty files always get a split
}

TEST(DfsTest, SplitsSkipEmptyFiles) {
  Dfs dfs;
  ASSERT_TRUE(dfs.WriteFile("empty", {}).ok());
  ASSERT_TRUE(dfs.WriteFile("full", {"a"}).ok());
  auto splits = dfs.MakeSplits({"empty", "full"}, 4);
  ASSERT_TRUE(splits.ok());
  ASSERT_EQ(splits->size(), 1u);
  EXPECT_EQ((*splits)[0].file_index, 1u);
}

TEST(DfsTest, SplitsMissingFileFails) {
  Dfs dfs;
  EXPECT_EQ(dfs.MakeSplits({"nope"}, 2).status().code(),
            StatusCode::kNotFound);
}

}  // namespace
}  // namespace fj::mr
